//! Workspace-level integration tests: whole-stack scenarios spanning the
//! languages, the AM, the substrate, the baselines, and the recipes.

use std::collections::HashMap;

use hiway::core::cluster::Cluster;
use hiway::core::driver::Runtime;
use hiway::core::{HiwayConfig, SchedulerPolicy};
use hiway::lang::cuneiform::CuneiformWorkflow;
use hiway::lang::ir::WorkflowSource;
use hiway::provdb::ProvDb;
use hiway::recipes::cook_str;
use hiway::sim::{ClusterSpec, NodeId, NodeSpec};

#[test]
fn all_four_languages_execute_on_one_cluster_sequentially() {
    // Cuneiform.
    let cuneiform = CuneiformWorkflow::parse(
        "cf",
        r#"deftask t( out("/cf/out.dat", 1000) : x ) cpu 5;
           target t(file("/shared/in.dat", 1000));"#,
        1,
    )
    .unwrap();
    // DAX.
    let dax = hiway::lang::dax::parse_dax(
        r#"<adag name="dx">
             <job id="a" name="toolA" runtime="5">
               <uses file="/shared/in.dat" link="input" size="1000"/>
               <uses file="/dax/out.dat" link="output" size="1000"/>
             </job>
           </adag>"#,
    )
    .unwrap();
    // Galaxy.
    let mut bindings = HashMap::new();
    bindings.insert(
        "reads".to_string(),
        hiway::lang::galaxy::BoundInput {
            path: "/shared/in.dat".into(),
            size: 1000,
        },
    );
    let galaxy = hiway::lang::galaxy::parse_galaxy(
        r#"{"name": "gx", "steps": {
             "0": {"id": 0, "type": "data_input", "label": "reads",
                   "inputs": [{"name": "reads"}], "input_connections": {}, "outputs": []},
             "1": {"id": 1, "type": "tool", "tool_id": "toolB",
                   "input_connections": {"in": {"id": 0, "output_name": "output"}},
                   "outputs": [{"name": "o", "type": "dat"}]}}}"#,
        &bindings,
        &hiway::lang::galaxy::ToolProfiles::default(),
    )
    .unwrap();

    let spec = ClusterSpec::homogeneous(2, "n", &NodeSpec::m3_large("p"));
    let mut cluster = Cluster::new(spec, 9);
    cluster.prestage("/shared/in.dat", 1000);
    let mut rt = Runtime::new(cluster);
    let db = ProvDb::new();
    let a = rt.submit(Box::new(cuneiform), HiwayConfig::default(), db.clone());
    let b = rt.submit(Box::new(dax), HiwayConfig::default(), db.clone());
    let c = rt.submit(Box::new(galaxy), HiwayConfig::default(), db.clone());
    let reports = rt.run_to_completion();
    for (i, lang) in [(a, "cuneiform"), (b, "dax"), (c, "galaxy")] {
        assert!(rt.error_of(i).is_none(), "{lang}: {:?}", rt.error_of(i));
        assert_eq!(reports[i].language, lang);
    }

    // Fourth language: replay the Cuneiform run's trace.
    let trace = reports[a].trace.clone();
    let replay = hiway::lang::trace::parse_trace(&trace).unwrap();
    assert_eq!(replay.language(), "trace");
    let spec2 = ClusterSpec::homogeneous(2, "n", &NodeSpec::m3_large("p"));
    let mut cluster2 = Cluster::new(spec2, 10);
    cluster2.prestage("/shared/in.dat", 1000);
    let mut rt2 = Runtime::new(cluster2);
    let d = rt2.submit(Box::new(replay), HiwayConfig::default(), ProvDb::new());
    let reports2 = rt2.run_to_completion();
    assert!(rt2.error_of(d).is_none());
    assert_eq!(reports2[d].tasks.len(), 1);
}

#[test]
fn provenance_statistics_survive_between_workflows_and_feed_heft() {
    // Run a Montage workflow twice on a heterogeneous cluster with a
    // shared provenance DB and verify the second (HEFT) run uses the
    // statistics: its runtime must beat the cold HEFT run.
    let montage = hiway::workloads::montage::MontageParams::default();
    let db = ProvDb::new();
    let mut runtimes = Vec::new();
    for k in 0..3 {
        let mut deployment =
            hiway::workloads::profiles::ec2_cluster(11, &NodeSpec::m3_large("proto"), 50 + k);
        let workers = deployment.worker_ids();
        for (i, level) in [2u32, 4, 8, 16].iter().enumerate() {
            deployment
                .runtime
                .cluster
                .add_cpu_stress(workers[1 + i], *level);
        }
        for (path, size) in montage.input_files() {
            deployment.runtime.cluster.prestage(&path, size);
        }
        let source = hiway::lang::dax::parse_dax(&montage.dax_source()).unwrap();
        let config = HiwayConfig {
            container_resource: hiway::yarn::Resource::new(1, 2048),
            scheduler: SchedulerPolicy::Heft,
            seed: 50 + k,
            write_trace: false,
            ..HiwayConfig::default()
        };
        let mut rt = deployment.runtime;
        let wf = rt.submit(Box::new(source), config, db.clone());
        let reports = rt.run_to_completion();
        assert!(rt.error_of(wf).is_none(), "{:?}", rt.error_of(wf));
        runtimes.push(reports[wf].runtime_secs());
    }
    assert!(
        runtimes[2] < runtimes[0],
        "warm HEFT {:?} must beat cold HEFT",
        runtimes
    );
}

#[test]
fn recipe_to_report_round_trip() {
    let cooked = cook_str(
        "cluster ec2 workers=3 node=m3.large seed=21\n\
         scheduler data-aware\n\
         container vcores=1 memory=1024\n\
         workflow montage images=7\n",
    )
    .expect("cooks");
    let mut rt = cooked.runtime;
    let wf = rt.submit(cooked.source, cooked.config, ProvDb::new());
    let reports = rt.run_to_completion();
    assert!(rt.error_of(wf).is_none(), "{:?}", rt.error_of(wf));
    assert!(rt.cluster.hdfs.exists("out/mosaic.jpg"));
    // Every task ran on a worker, never on the reserved master nodes.
    for t in &reports[wf].tasks {
        assert!(t.node.starts_with("worker-"), "{}", t.node);
    }
}

#[test]
fn data_aware_beats_fcfs_on_a_congested_switch() {
    // The Figure 4 mechanism in miniature: many data-heavy independent
    // tasks on a cluster whose switch is the bottleneck.
    let run = |policy: SchedulerPolicy| -> f64 {
        let mut deployment = hiway::workloads::profiles::local_cluster(6, 77);
        // Scale CPU down so the shared switch, not compute, is the
        // bottleneck — the regime Figure 4's right-hand side probes.
        let snv = hiway::workloads::snv::SnvParams::fig4(6).scaled(0.05);
        for (path, size) in snv.input_files() {
            deployment.runtime.cluster.prestage(&path, size);
        }
        let source = CuneiformWorkflow::parse("snv", &snv.cuneiform_source(), 77).unwrap();
        let mut config = HiwayConfig {
            container_resource: hiway::yarn::Resource::new(1, 1000),
            scheduler: policy,
            seed: 77,
            write_trace: false,
            ..HiwayConfig::default()
        };
        // Plenty of one-core containers per node.
        for node in 0..6 {
            deployment
                .runtime
                .cluster
                .rm
                .set_capacity(NodeId(node), hiway::yarn::Resource::new(8, 8000));
        }
        config.heartbeat_secs = 1.0;
        let mut rt = deployment.runtime;
        let wf = rt.submit(Box::new(source), config, ProvDb::new());
        let reports = rt.run_to_completion();
        assert!(rt.error_of(wf).is_none(), "{:?}", rt.error_of(wf));
        reports[wf].runtime_secs()
    };
    let data_aware = run(SchedulerPolicy::DataAware);
    let fcfs = run(SchedulerPolicy::Fcfs);
    assert!(
        data_aware < fcfs,
        "data-aware {data_aware:.0}s vs fcfs {fcfs:.0}s"
    );
}

#[test]
fn node_failure_mid_run_is_survived_with_re_replication() {
    // Start a long workflow, then fail a worker at a known instant via a
    // two-phase run: we drive the runtime manually by injecting failure
    // before submission-time placement has finished spreading replicas.
    let spec = ClusterSpec::homogeneous(5, "w", &NodeSpec::m3_large("p"));
    let mut cluster = Cluster::new(spec, 31);
    cluster.prestage("/in", 256 << 20);
    let tasks: Vec<hiway::lang::TaskSpec> = (0..6)
        .map(|i| hiway::lang::TaskSpec {
            id: hiway::lang::TaskId(i),
            name: "crunch".into(),
            command: "crunch".into(),
            inputs: vec!["/in".into()],
            outputs: vec![hiway::lang::OutputSpec {
                path: format!("/o{i}"),
                size: 1 << 20,
            }],
            cost: hiway::lang::TaskCost::new(120.0, 1, 512),
        })
        .collect();
    let wf = hiway::lang::StaticWorkflow::new("resilient", "test", tasks);
    let mut rt = Runtime::new(cluster);
    let idx = rt.submit(
        Box::new(wf),
        HiwayConfig::default().with_scheduler(SchedulerPolicy::Fcfs),
        ProvDb::new(),
    );
    rt.fail_node(NodeId(3));
    rt.cluster.re_replicate();
    let reports = rt.run_to_completion();
    assert!(rt.error_of(idx).is_none(), "{:?}", rt.error_of(idx));
    assert_eq!(reports[idx].tasks.len(), 6);
    for t in &reports[idx].tasks {
        assert_ne!(t.node, "w-3");
    }
}
