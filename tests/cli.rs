//! End-to-end tests of the `hiway` client binary (paper §3.1's
//! "light-weight client program").

use std::process::Command;

fn hiway() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hiway"))
}

fn write_recipe(dir: &std::path::Path, name: &str, body: &str) -> std::path::PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, body).unwrap();
    path
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hiway-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const RECIPE: &str = "cluster ec2 workers=3 node=m3.large seed=4\n\
                      scheduler data-aware\n\
                      container vcores=1 memory=2048\n\
                      workflow montage images=5\n";

#[test]
fn run_executes_a_recipe_and_reports() {
    let dir = tmpdir("run");
    let recipe = write_recipe(&dir, "montage.recipe", RECIPE);
    let out = hiway().arg("run").arg(&recipe).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("finished"), "{stdout}");
    assert!(stdout.contains("mProjectPP"), "{stdout}");
}

#[test]
fn trace_written_by_run_replays() {
    let dir = tmpdir("replay");
    let recipe = write_recipe(&dir, "montage.recipe", RECIPE);
    let trace = dir.join("run.trace");
    let out = hiway()
        .arg("run")
        .arg(&recipe)
        .arg("--trace")
        .arg(&trace)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(trace.exists());

    let out = hiway()
        .arg("replay")
        .arg(&trace)
        .arg(&recipe)
        .arg("--verbose")
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("[trace]"), "{stdout}");
    assert!(stdout.contains("per-task schedule"), "{stdout}");
}

#[test]
fn check_validates_without_running() {
    let dir = tmpdir("check");
    let recipe = write_recipe(&dir, "ok.recipe", RECIPE);
    let out = hiway().arg("check").arg(&recipe).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("recipe OK"));

    let bad = write_recipe(&dir, "bad.recipe", "cluster martian\nworkflow montage\n");
    let out = hiway().arg("check").arg(&bad).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown cluster kind"));
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = hiway().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = hiway().arg("run").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = hiway().arg("run").arg("/no/such/recipe").output().unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn dot_exports_the_workflow_graph() {
    let dir = tmpdir("dot");
    let recipe = write_recipe(&dir, "montage.recipe", RECIPE);
    let out = hiway().arg("dot").arg(&recipe).output().unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let dot = String::from_utf8_lossy(&out.stdout);
    assert!(dot.starts_with("digraph workflow {"), "{dot}");
    assert!(dot.contains("mProjectPP"), "{dot}");
    assert!(dot.contains("->"), "{dot}");
}
