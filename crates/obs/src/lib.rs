//! Deterministic virtual-time observability for the Hi-WAY reproduction.
//!
//! The paper's evaluation is built on *watching* the system — Figure 6
//! monitors per-node resource usage, and §3.5's provenance traces exist so
//! that a run can be audited after the fact. This crate provides that
//! visibility for every simulated subsystem:
//!
//! * [`trace::Tracer`] — a span/event/counter sink on **virtual time**. No
//!   wall-clock ever enters the trace, so the same seed produces the same
//!   bytes. Disabled tracers are a `None` behind one pointer; every record
//!   call is an inlined early-return with zero allocation.
//! * [`metrics::MetricsRegistry`] — counters, gauges, and fixed-bucket
//!   histograms with a deterministic (sorted) layout.
//! * [`audit::Decision`] — the scheduler decision audit log: for each
//!   placement, the candidates considered, their scores, and why the
//!   winner won.
//! * [`export`] — three renderers over a finished trace: Chrome
//!   trace-event JSON (loadable in Perfetto), a JSON-lines event log, and
//!   a plain-text per-node Gantt chart.
//!
//! Determinism rules (also in DESIGN.md):
//! 1. Timestamps are simulation seconds (`f64`), never wall-clock.
//! 2. Events export in insertion order; metrics in `BTreeMap` order.
//! 3. All formatting uses fixed precision; no pointers, hashes with
//!    ambient state, or platform-dependent iteration order.

pub mod audit;
pub mod export;
pub mod metrics;
pub mod trace;

pub use audit::{CandidateScore, Decision, DecisionKind, QueueAudit, QueueEventKind};
pub use metrics::{Histogram, MetricsRegistry};
pub use trace::{TraceData, TraceEvent, Tracer, TrackId};

/// Escapes a string for embedding in a JSON document. Minimal but
/// complete for the ASCII control range; deterministic by construction.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
