//! Trace exporters: Chrome trace-event JSON (Perfetto), JSON-lines, and
//! a plain-text per-node Gantt chart.
//!
//! All three are pure functions of a [`TraceData`] snapshot and emit
//! bytes deterministically: events in insertion order, metrics in sorted
//! order, fixed-precision floats everywhere.

use crate::json_escape;
use crate::trace::{TraceData, TraceEvent};

/// Microseconds with fixed sub-µs precision — the Chrome trace format's
/// native unit.
fn us(t: f64) -> String {
    format!("{:.3}", t * 1e6)
}

fn args_json(args: &[(String, String)]) -> String {
    let fields: Vec<String> = args
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
        .collect();
    format!("{{{}}}", fields.join(","))
}

/// Renders the trace as Chrome trace-event JSON, loadable at
/// `ui.perfetto.dev`. One thread (track) per node; container spans are
/// named by task signature, which is what Perfetto colours slices by, so
/// every `mProject` is one colour and every `mDiff` another.
pub fn to_perfetto(data: &TraceData) -> String {
    let mut ev: Vec<String> = Vec::with_capacity(data.events.len() + data.tracks.len() + 8);
    ev.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"hiway\"}}"
            .to_string(),
    );
    let sched_tid = data.tracks.len() as u32;
    for (i, name) in data.tracks.iter().enumerate() {
        ev.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"name\":\"{}\"}}}}",
            i,
            json_escape(name)
        ));
        ev.push(format!(
            "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":{i},\
             \"args\":{{\"sort_index\":{i}}}}}"
        ));
    }
    if !data.decisions.is_empty() {
        ev.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{sched_tid},\
             \"args\":{{\"name\":\"scheduler\"}}}}"
        ));
        ev.push(format!(
            "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":{sched_tid},\
             \"args\":{{\"sort_index\":{sched_tid}}}}}"
        ));
    }
    let queue_tid = sched_tid + 1;
    if !data.queue_audits.is_empty() {
        ev.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{queue_tid},\
             \"args\":{{\"name\":\"queues\"}}}}"
        ));
        ev.push(format!(
            "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":{queue_tid},\
             \"args\":{{\"sort_index\":{queue_tid}}}}}"
        ));
    }
    for e in &data.events {
        match e {
            TraceEvent::Span {
                track,
                name,
                cat,
                t0,
                t1,
                args,
            } => ev.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{},\"args\":{}}}",
                json_escape(name),
                cat,
                us(*t0),
                us(t1 - t0),
                track.0,
                args_json(args)
            )),
            TraceEvent::Instant {
                track,
                name,
                cat,
                t,
                args,
            } => ev.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
                 \"pid\":1,\"tid\":{},\"args\":{}}}",
                json_escape(name),
                cat,
                us(*t),
                track.0,
                args_json(args)
            )),
            TraceEvent::Counter { name, t, value, .. } => ev.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\
                 \"args\":{{\"value\":{value:.3}}}}}",
                json_escape(name),
                us(*t),
            )),
        }
    }
    for d in &data.decisions {
        let cands: Vec<String> = d
            .candidates
            .iter()
            .map(|c| {
                format!(
                    "t{} {} score={:.4} ({})",
                    c.task, c.label, c.score, c.detail
                )
            })
            .collect();
        ev.push(format!(
            "{{\"name\":\"{}:{}\",\"cat\":\"sched\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
             \"pid\":1,\"tid\":{sched_tid},\"args\":{{\"node\":\"{}\",\"winner\":\"{}\",\
             \"reason\":\"{}\",\"candidates\":\"{}\"}}}}",
            d.policy,
            d.kind.as_str(),
            us(d.t),
            json_escape(&d.node_name),
            d.winner
                .map(|w| w.to_string())
                .unwrap_or_else(|| "-".into()),
            json_escape(&d.reason),
            json_escape(&cands.join("; ")),
        ));
    }
    for q in &data.queue_audits {
        ev.push(format!(
            "{{\"name\":\"{}:{}\",\"cat\":\"queue\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
             \"pid\":1,\"tid\":{queue_tid},\"args\":{{\"app\":\"{}\",\"container\":\"{}\",\
             \"used\":\"{}vc/{}MB\",\"pending\":\"{}\",\"share\":\"{:.4}\",\
             \"fair_share\":\"{:.4}\",\"detail\":\"{}\"}}}}",
            json_escape(&q.queue),
            q.kind.as_str(),
            us(q.t),
            q.app.map(|a| a.to_string()).unwrap_or_else(|| "-".into()),
            q.container
                .map(|c| c.to_string())
                .unwrap_or_else(|| "-".into()),
            q.used_vcores,
            q.used_memory_mb,
            q.pending,
            q.share,
            q.fair_share,
            json_escape(&q.detail),
        ));
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
        ev.join(",\n")
    )
}

/// Renders the trace as a JSON-lines event log: one object per line, in
/// order — events, then decisions, then the final metrics.
pub fn to_jsonl(data: &TraceData) -> String {
    let mut out = String::new();
    let track_name = |id: u32| -> &str {
        data.tracks
            .get(id as usize)
            .map(|s| s.as_str())
            .unwrap_or("?")
    };
    for e in &data.events {
        let line = match e {
            TraceEvent::Span {
                track,
                name,
                cat,
                t0,
                t1,
                args,
            } => format!(
                "{{\"type\":\"span\",\"track\":\"{}\",\"name\":\"{}\",\"cat\":\"{}\",\
                 \"t0\":{t0:.6},\"t1\":{t1:.6},\"args\":{}}}",
                json_escape(track_name(track.0)),
                json_escape(name),
                cat,
                args_json(args)
            ),
            TraceEvent::Instant {
                track,
                name,
                cat,
                t,
                args,
            } => format!(
                "{{\"type\":\"instant\",\"track\":\"{}\",\"name\":\"{}\",\"cat\":\"{}\",\
                 \"t\":{t:.6},\"args\":{}}}",
                json_escape(track_name(track.0)),
                json_escape(name),
                cat,
                args_json(args)
            ),
            TraceEvent::Counter {
                track,
                name,
                t,
                value,
            } => format!(
                "{{\"type\":\"counter\",\"track\":\"{}\",\"name\":\"{}\",\
                 \"t\":{t:.6},\"value\":{value:.6}}}",
                json_escape(track_name(track.0)),
                json_escape(name)
            ),
        };
        out.push_str(&line);
        out.push('\n');
    }
    for d in &data.decisions {
        let cands: Vec<String> = d
            .candidates
            .iter()
            .map(|c| {
                format!(
                    "{{\"task\":{},\"label\":\"{}\",\"score\":{:.6},\"detail\":\"{}\"}}",
                    c.task,
                    json_escape(&c.label),
                    c.score,
                    json_escape(&c.detail)
                )
            })
            .collect();
        out.push_str(&format!(
            "{{\"type\":\"decision\",\"t\":{:.6},\"policy\":\"{}\",\"kind\":\"{}\",\
             \"node\":\"{}\",\"winner\":{},\"reason\":\"{}\",\"candidates\":[{}]}}\n",
            d.t,
            d.policy,
            d.kind.as_str(),
            json_escape(&d.node_name),
            d.winner
                .map(|w| w.to_string())
                .unwrap_or_else(|| "null".into()),
            json_escape(&d.reason),
            cands.join(",")
        ));
    }
    for q in &data.queue_audits {
        out.push_str(&format!(
            "{{\"type\":\"queue\",\"t\":{:.6},\"queue\":\"{}\",\"kind\":\"{}\",\
             \"app\":{},\"container\":{},\"used_vcores\":{},\"used_memory_mb\":{},\
             \"pending\":{},\"share\":{:.6},\"fair_share\":{:.6},\"detail\":\"{}\"}}\n",
            q.t,
            json_escape(&q.queue),
            q.kind.as_str(),
            q.app
                .map(|a| a.to_string())
                .unwrap_or_else(|| "null".into()),
            q.container
                .map(|c| c.to_string())
                .unwrap_or_else(|| "null".into()),
            q.used_vcores,
            q.used_memory_mb,
            q.pending,
            q.share,
            q.fair_share,
            json_escape(&q.detail),
        ));
    }
    for (name, v) in data.metrics.counters() {
        out.push_str(&format!(
            "{{\"type\":\"metric\",\"metric\":\"counter\",\"name\":\"{}\",\"value\":{v}}}\n",
            json_escape(name)
        ));
    }
    for (name, v) in data.metrics.gauges() {
        out.push_str(&format!(
            "{{\"type\":\"metric\",\"metric\":\"gauge\",\"name\":\"{}\",\"value\":{v:.6}}}\n",
            json_escape(name)
        ));
    }
    for (name, h) in data.metrics.histograms() {
        let counts: Vec<String> = h.counts.iter().map(|c| c.to_string()).collect();
        out.push_str(&format!(
            "{{\"type\":\"metric\",\"metric\":\"histogram\",\"name\":\"{}\",\
             \"count\":{},\"sum\":{:.6},\"counts\":[{}]}}\n",
            json_escape(name),
            h.count,
            h.sum,
            counts.join(",")
        ));
    }
    out
}

const GANTT_WIDTH: usize = 72;

/// Renders per-node timelines as fixed-width text. Only spans appear (a
/// Gantt chart of instants is not useful); tracks render in registration
/// order and spans per track in recording order.
pub fn to_gantt(data: &TraceData) -> String {
    let spans: Vec<(u32, &str, f64, f64)> = data
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Span {
                track,
                name,
                t0,
                t1,
                ..
            } => Some((track.0, name.as_str(), *t0, *t1)),
            _ => None,
        })
        .collect();
    let t_max = spans.iter().map(|s| s.3).fold(0.0, f64::max);
    let mut out = String::new();
    out.push_str(&format!(
        "virtual-time gantt · {} tracks · {} spans · horizon {:.1}s\n",
        data.tracks.len(),
        spans.len(),
        t_max
    ));
    let scale = if t_max > 0.0 {
        GANTT_WIDTH as f64 / t_max
    } else {
        0.0
    };
    for (i, track) in data.tracks.iter().enumerate() {
        let mine: Vec<&(u32, &str, f64, f64)> = spans.iter().filter(|s| s.0 == i as u32).collect();
        if mine.is_empty() {
            continue;
        }
        out.push_str(&format!("\n== {track} ==\n"));
        for (_, name, t0, t1) in mine {
            let a = (t0 * scale).floor() as usize;
            let b = ((t1 * scale).ceil() as usize).clamp(a + 1, GANTT_WIDTH.max(a + 1));
            let mut bar = String::with_capacity(GANTT_WIDTH);
            for _ in 0..a {
                bar.push(' ');
            }
            for _ in a..b {
                bar.push('#');
            }
            for _ in b..GANTT_WIDTH {
                bar.push(' ');
            }
            out.push_str(&format!("  |{bar}| {:>9.2}s..{:<9.2}s  {name}\n", t0, t1));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::{CandidateScore, Decision, DecisionKind};
    use crate::trace::Tracer;

    fn sample() -> TraceData {
        let t = Tracer::enabled();
        let w0 = t.track("worker-0");
        let w1 = t.track("worker-1");
        t.span(
            w0,
            "mProject_1",
            "task",
            1.0,
            3.0,
            &[("attempt", "1".into())],
        );
        t.span(w1, "mDiff_2", "task", 2.0, 2.5, &[]);
        t.instant(w0, "fault.crash_node", "fault", 2.2, &[]);
        t.counter(w0, "heap_depth", 1.5, 42.0);
        t.inc("hdfs.cache_hit", 7);
        t.set_gauge("engine.activities", 3.0);
        t.observe("task.wait_secs", 0.5);
        t.audit(Decision {
            t: 1.0,
            policy: "fcfs",
            kind: DecisionKind::Select,
            node: 0,
            node_name: "worker-0".into(),
            candidates: vec![CandidateScore {
                task: 1,
                label: "mProject".into(),
                score: 0.0,
                detail: "queue pos 0".into(),
            }],
            winner: Some(1),
            reason: "queue head".into(),
        });
        t.snapshot().unwrap()
    }

    #[test]
    fn perfetto_has_metadata_and_events() {
        let json = to_perfetto(&sample());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"worker-0\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"mProject_1\""));
        // 1.0s -> 1000000.000 µs
        assert!(json.contains("\"ts\":1000000.000"));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("fcfs:select"));
        // Balanced braces — cheap well-formedness check without a parser.
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn jsonl_one_line_per_record() {
        let data = sample();
        let out = to_jsonl(&data);
        // 4 events + 1 decision + 1 counter + 1 gauge + 1 histogram.
        assert_eq!(out.lines().count(), 8);
        assert!(out.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(out.contains("\"type\":\"decision\""));
        assert!(out.contains("\"hdfs.cache_hit\",\"value\":7"));
    }

    #[test]
    fn gantt_renders_each_track_once() {
        let g = to_gantt(&sample());
        assert!(g.contains("== worker-0 =="));
        assert!(g.contains("== worker-1 =="));
        assert!(g.contains("mProject_1"));
        assert!(g.contains('#'));
    }

    #[test]
    fn queue_audits_render_in_both_formats() {
        use crate::audit::{QueueAudit, QueueEventKind};
        let t = Tracer::enabled();
        t.queue_audit(QueueAudit {
            t: 4.0,
            queue: "tenant-a".into(),
            kind: QueueEventKind::Allocate,
            app: Some(1),
            container: Some(9),
            used_vcores: 3,
            used_memory_mb: 6144,
            pending: 2,
            share: 0.1875,
            fair_share: 0.6667,
            detail: "drf pick".into(),
        });
        let data = t.snapshot().unwrap();
        let jsonl = to_jsonl(&data);
        assert_eq!(jsonl.lines().count(), 1);
        assert!(jsonl.contains("\"type\":\"queue\""));
        assert!(jsonl.contains("\"queue\":\"tenant-a\""));
        assert!(jsonl.contains("\"kind\":\"allocate\""));
        assert!(jsonl.contains("\"used_vcores\":3"));
        let perfetto = to_perfetto(&data);
        assert!(perfetto.contains("tenant-a:allocate"));
        assert!(perfetto.contains("\"queues\""));
        assert_eq!(perfetto.matches('{').count(), perfetto.matches('}').count());
    }

    #[test]
    fn exports_are_deterministic() {
        let a = sample();
        let b = sample();
        assert_eq!(to_perfetto(&a), to_perfetto(&b));
        assert_eq!(to_jsonl(&a), to_jsonl(&b));
        assert_eq!(to_gantt(&a), to_gantt(&b));
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let data = TraceData::default();
        assert!(to_perfetto(&data).contains("traceEvents"));
        assert_eq!(to_jsonl(&data), "");
        assert!(to_gantt(&data).contains("0 spans"));
    }
}
