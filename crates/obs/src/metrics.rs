//! A deterministic metrics registry: counters, gauges, and fixed-bucket
//! histograms.
//!
//! Layout rules keeping exports byte-stable: names are stored in
//! `BTreeMap`s (sorted iteration), histogram buckets are fixed at
//! registration (no dynamic resizing), and no wall-clock value ever
//! enters the registry.

use std::collections::BTreeMap;

/// Default histogram bucket upper bounds, in seconds (or whatever unit
/// the caller observes): quarter-decade spacing from 1 ms to ~17 min,
/// plus a +inf overflow bucket appended implicitly.
pub const DEFAULT_BOUNDS: [f64; 13] = [
    0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0,
];

/// A fixed-bucket histogram. `counts[i]` tallies observations
/// `<= bounds[i]`; the final slot counts overflow.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    pub bounds: Vec<f64>,
    /// `bounds.len() + 1` slots; the last is the overflow bucket.
    pub counts: Vec<u64>,
    pub sum: f64,
    pub count: u64,
}

impl Histogram {
    pub fn new(bounds: &[f64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    pub fn observe(&mut self, value: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.sum += value;
        self.count += 1;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new(&DEFAULT_BOUNDS)
    }
}

/// The live registry. Held inside a [`crate::Tracer`]; not usually
/// constructed directly outside tests.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A frozen copy of the registry for export.
pub type MetricsSnapshot = MetricsRegistry;

impl MetricsRegistry {
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Observes into the named histogram, creating it with
    /// [`DEFAULT_BOUNDS`] on first use.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Counters in sorted-name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Gauges in sorted-name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Histograms in sorted-name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut m = MetricsRegistry::default();
        m.inc("b", 1);
        m.inc("a", 2);
        m.inc("a", 3);
        m.set_gauge("g", 1.5);
        m.set_gauge("g", 2.5);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge("g"), Some(2.5));
        // Sorted iteration regardless of insertion order.
        let names: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn histogram_buckets_observations() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.observe(0.5);
        h.observe(1.0); // boundary lands in its bucket (<=)
        h.observe(5.0);
        h.observe(100.0); // overflow
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!(h.count, 4);
        assert!((h.mean() - 26.625).abs() < 1e-12);
    }

    #[test]
    fn default_bounds_cover_subsecond_to_minutes() {
        let mut m = MetricsRegistry::default();
        m.observe("lat", 0.002);
        m.observe("lat", 250.0);
        m.observe("lat", 1e9); // overflow slot
        let h = m.histogram("lat").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(*h.counts.last().unwrap(), 1);
        assert_eq!(h.counts.len(), DEFAULT_BOUNDS.len() + 1);
    }

    #[test]
    fn empty_histogram_mean_is_zero() {
        assert_eq!(Histogram::default().mean(), 0.0);
    }
}
