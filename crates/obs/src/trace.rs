//! The span/event tracer: a shared, clonable handle over one trace buffer.
//!
//! Subsystems (engine, HDFS, RM, driver, fault injector) each hold a
//! cloned [`Tracer`]; all clones append to the same buffer, so one export
//! sees the whole run. A disabled tracer is `None` behind a single
//! pointer-sized field — every record method checks it first and returns
//! without touching memory, which is what keeps the engine hot path at
//! zero overhead when observability is off.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::audit::{Decision, QueueAudit};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};

/// Index of a named track (one per node, plus synthetic tracks such as
/// `engine` or `faults`). Returned by [`Tracer::track`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TrackId(pub u32);

impl TrackId {
    /// The id handed out by a disabled tracer; never dereferenced because
    /// record methods no-op first.
    pub const NONE: TrackId = TrackId(u32::MAX);
}

/// One recorded trace event, on virtual time.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A complete span `[t0, t1]` on a track.
    Span {
        track: TrackId,
        name: String,
        cat: &'static str,
        t0: f64,
        t1: f64,
        args: Vec<(String, String)>,
    },
    /// A point-in-time marker.
    Instant {
        track: TrackId,
        name: String,
        cat: &'static str,
        t: f64,
        args: Vec<(String, String)>,
    },
    /// A sampled counter value (renders as a line chart in Perfetto).
    Counter {
        track: TrackId,
        name: String,
        t: f64,
        value: f64,
    },
}

/// Everything one run recorded, detached from the live tracer. The
/// exporters in [`crate::export`] consume this.
#[derive(Clone, Debug, Default)]
pub struct TraceData {
    /// Track names in registration order; `TrackId(i)` indexes this.
    pub tracks: Vec<String>,
    /// Events in insertion (i.e. simulation) order.
    pub events: Vec<TraceEvent>,
    /// Scheduler decision audit log, in decision order.
    pub decisions: Vec<Decision>,
    /// Per-queue admission/allocation/preemption audit log, in event order.
    pub queue_audits: Vec<QueueAudit>,
    /// Final counter/gauge/histogram values.
    pub metrics: MetricsSnapshot,
}

#[derive(Default)]
struct TraceBuf {
    tracks: Vec<String>,
    by_name: HashMap<String, u32>,
    events: Vec<TraceEvent>,
    decisions: Vec<Decision>,
    queue_audits: Vec<QueueAudit>,
    metrics: MetricsRegistry,
}

/// The recording handle. `Clone` is one `Rc` bump; all clones share the
/// buffer. Interior mutability keeps every record method `&self`, so
/// subsystems can hold a tracer without threading `&mut` through the
/// simulation call graph.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Rc<RefCell<TraceBuf>>>,
}

impl Tracer {
    /// A tracer that records nothing and allocates nothing.
    #[inline]
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// A live tracer with an empty buffer.
    pub fn enabled() -> Tracer {
        Tracer {
            inner: Some(Rc::new(RefCell::new(TraceBuf::default()))),
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Interns a track by name. Calling twice with the same name returns
    /// the same id, so the engine, HDFS, and driver all land their events
    /// on one shared per-node track.
    pub fn track(&self, name: &str) -> TrackId {
        let Some(inner) = &self.inner else {
            return TrackId::NONE;
        };
        let mut buf = inner.borrow_mut();
        if let Some(&id) = buf.by_name.get(name) {
            return TrackId(id);
        }
        let id = buf.tracks.len() as u32;
        buf.tracks.push(name.to_string());
        buf.by_name.insert(name.to_string(), id);
        TrackId(id)
    }

    /// Records a complete span. `args` become Perfetto slice arguments.
    #[inline]
    pub fn span(
        &self,
        track: TrackId,
        name: &str,
        cat: &'static str,
        t0: f64,
        t1: f64,
        args: &[(&str, String)],
    ) {
        let Some(inner) = &self.inner else { return };
        inner.borrow_mut().events.push(TraceEvent::Span {
            track,
            name: name.to_string(),
            cat,
            t0,
            t1: t1.max(t0),
            args: args
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    /// Records a point event.
    #[inline]
    pub fn instant(
        &self,
        track: TrackId,
        name: &str,
        cat: &'static str,
        t: f64,
        args: &[(&str, String)],
    ) {
        let Some(inner) = &self.inner else { return };
        inner.borrow_mut().events.push(TraceEvent::Instant {
            track,
            name: name.to_string(),
            cat,
            t,
            args: args
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    /// Samples a counter track (e.g. event-heap depth over time).
    #[inline]
    pub fn counter(&self, track: TrackId, name: &str, t: f64, value: f64) {
        let Some(inner) = &self.inner else { return };
        inner.borrow_mut().events.push(TraceEvent::Counter {
            track,
            name: name.to_string(),
            t,
            value,
        });
    }

    /// Bumps a registry counter (no per-call event; exported once at the
    /// end). Use for high-frequency tallies like cache hits.
    #[inline]
    pub fn inc(&self, name: &str, by: u64) {
        let Some(inner) = &self.inner else { return };
        inner.borrow_mut().metrics.inc(name, by);
    }

    /// Sets a registry gauge to its latest value.
    #[inline]
    pub fn set_gauge(&self, name: &str, value: f64) {
        let Some(inner) = &self.inner else { return };
        inner.borrow_mut().metrics.set_gauge(name, value);
    }

    /// Records one observation into a fixed-bucket histogram.
    #[inline]
    pub fn observe(&self, name: &str, value: f64) {
        let Some(inner) = &self.inner else { return };
        inner.borrow_mut().metrics.observe(name, value);
    }

    /// Appends one scheduler decision to the audit log.
    #[inline]
    pub fn audit(&self, decision: Decision) {
        let Some(inner) = &self.inner else { return };
        inner.borrow_mut().decisions.push(decision);
    }

    /// Appends one entry to the per-queue audit log.
    #[inline]
    pub fn queue_audit(&self, entry: QueueAudit) {
        let Some(inner) = &self.inner else { return };
        inner.borrow_mut().queue_audits.push(entry);
    }

    /// Number of span/instant/counter events recorded so far. A disabled
    /// tracer reports 0 — by construction it cannot have allocated.
    pub fn event_count(&self) -> usize {
        self.inner
            .as_ref()
            .map(|i| i.borrow().events.len())
            .unwrap_or(0)
    }

    /// Number of audit-log decisions recorded so far.
    pub fn decision_count(&self) -> usize {
        self.inner
            .as_ref()
            .map(|i| i.borrow().decisions.len())
            .unwrap_or(0)
    }

    /// Number of queue audit entries recorded so far.
    pub fn queue_audit_count(&self) -> usize {
        self.inner
            .as_ref()
            .map(|i| i.borrow().queue_audits.len())
            .unwrap_or(0)
    }

    /// Runs `f` over the queue audit log (empty slice when disabled).
    pub fn with_queue_audits<R>(&self, f: impl FnOnce(&[QueueAudit]) -> R) -> R {
        match &self.inner {
            Some(i) => f(&i.borrow().queue_audits),
            None => f(&[]),
        }
    }

    /// Current value of a registry counter (0 when absent or disabled).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.borrow().metrics.counter(name))
            .unwrap_or(0)
    }

    /// Runs `f` over the audit log (empty slice when disabled).
    pub fn with_decisions<R>(&self, f: impl FnOnce(&[Decision]) -> R) -> R {
        match &self.inner {
            Some(i) => f(&i.borrow().decisions),
            None => f(&[]),
        }
    }

    /// Snapshots the buffer for export. `None` when disabled.
    pub fn snapshot(&self) -> Option<TraceData> {
        let inner = self.inner.as_ref()?;
        let buf = inner.borrow();
        Some(TraceData {
            tracks: buf.tracks.clone(),
            events: buf.events.clone(),
            decisions: buf.decisions.clone(),
            queue_audits: buf.queue_audits.clone(),
            metrics: buf.metrics.snapshot(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        let tr = t.track("node");
        assert_eq!(tr, TrackId::NONE);
        t.span(tr, "s", "cat", 0.0, 1.0, &[]);
        t.instant(tr, "i", "cat", 0.5, &[]);
        t.counter(tr, "c", 0.5, 1.0);
        t.inc("n", 3);
        t.observe("h", 1.0);
        assert_eq!(t.event_count(), 0);
        assert_eq!(t.counter_value("n"), 0);
        assert!(t.snapshot().is_none());
    }

    #[test]
    fn tracks_intern_by_name() {
        let t = Tracer::enabled();
        let a = t.track("worker-0");
        let b = t.track("worker-1");
        let a2 = t.track("worker-0");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        let data = t.snapshot().unwrap();
        assert_eq!(data.tracks, vec!["worker-0", "worker-1"]);
    }

    #[test]
    fn clones_share_one_buffer() {
        let t = Tracer::enabled();
        let clone = t.clone();
        let tr = clone.track("n");
        clone.span(tr, "a", "task", 1.0, 2.0, &[("k", "v".into())]);
        t.instant(tr, "b", "fault", 3.0, &[]);
        assert_eq!(t.event_count(), 2);
        let data = t.snapshot().unwrap();
        match &data.events[0] {
            TraceEvent::Span {
                name, t0, t1, args, ..
            } => {
                assert_eq!(name, "a");
                assert_eq!((*t0, *t1), (1.0, 2.0));
                assert_eq!(args, &[("k".to_string(), "v".to_string())]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn span_clamps_inverted_intervals() {
        let t = Tracer::enabled();
        let tr = t.track("n");
        t.span(tr, "z", "task", 5.0, 4.0, &[]);
        match &t.snapshot().unwrap().events[0] {
            TraceEvent::Span { t0, t1, .. } => assert_eq!((*t0, *t1), (5.0, 5.0)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn queue_audits_record_and_snapshot() {
        use crate::audit::{QueueAudit, QueueEventKind};
        let entry = QueueAudit {
            t: 2.0,
            queue: "default".into(),
            kind: QueueEventKind::Usage,
            app: None,
            container: None,
            used_vcores: 4,
            used_memory_mb: 4096,
            pending: 1,
            share: 0.25,
            fair_share: 1.0,
            detail: String::new(),
        };
        let disabled = Tracer::disabled();
        disabled.queue_audit(entry.clone());
        assert_eq!(disabled.queue_audit_count(), 0);
        disabled.with_queue_audits(|a| assert!(a.is_empty()));

        let t = Tracer::enabled();
        t.clone().queue_audit(entry.clone());
        assert_eq!(t.queue_audit_count(), 1);
        t.with_queue_audits(|a| assert_eq!(a[0], entry));
        assert_eq!(t.snapshot().unwrap().queue_audits.len(), 1);
    }

    #[test]
    fn registry_counters_accumulate_across_clones() {
        let t = Tracer::enabled();
        let c = t.clone();
        t.inc("hdfs.cache_hit", 2);
        c.inc("hdfs.cache_hit", 3);
        assert_eq!(t.counter_value("hdfs.cache_hit"), 5);
    }
}
