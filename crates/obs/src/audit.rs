//! The scheduler decision audit log.
//!
//! Every time a scheduler places work — dynamically when YARN hands back
//! a container, or statically at plan time — it records *what it saw*:
//! the candidates considered, the score each one earned under the
//! policy's own objective, and which candidate won. This is the
//! "recoverable, queryable run structure" the provenance literature asks
//! of workflow systems: afterwards one can answer "why did task 17 run on
//! worker-3?" from the log alone.

/// How the decision was made.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecisionKind {
    /// Container-arrival-time selection (dynamic policies, and static
    /// policies confirming their plan).
    Select,
    /// Ahead-of-execution placement by a static policy's `plan()`.
    Plan,
    /// The task never reached a scheduler: a committed invocation with the
    /// same signature and input digests existed in the warm provenance
    /// store, so the driver satisfied it from memo instead of executing.
    Memo,
}

impl DecisionKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            DecisionKind::Select => "select",
            DecisionKind::Plan => "plan",
            DecisionKind::Memo => "memo",
        }
    }
}

/// One candidate the scheduler weighed.
#[derive(Clone, Debug, PartialEq)]
pub struct CandidateScore {
    /// Task id (`TaskId.0` upstream; obs stays dependency-free).
    pub task: u64,
    /// Tool signature / task name.
    pub label: String,
    /// The policy's score for this candidate. Orientation is per policy
    /// and stated in `Decision::reason` (e.g. locality fraction: higher
    /// wins; relative fitness or EFT: lower wins).
    pub score: f64,
    /// Human-readable score breakdown, e.g. `"local 3/4 blocks"`.
    pub detail: String,
}

/// One placement decision.
#[derive(Clone, Debug, PartialEq)]
pub struct Decision {
    /// Virtual time of the decision.
    pub t: f64,
    /// Policy name (`"fcfs"`, `"data_aware"`, `"round_robin"`, `"heft"`,
    /// `"adaptive"`).
    pub policy: &'static str,
    pub kind: DecisionKind,
    /// Node index the container/assignment targets.
    pub node: u32,
    pub node_name: String,
    /// Candidates in the order the scheduler considered them.
    pub candidates: Vec<CandidateScore>,
    /// Task id of the winner; `None` when the scheduler declined to place
    /// anything (empty queue, or late binding waiting for a better node).
    pub winner: Option<u64>,
    /// Why the winner won, in the policy's own terms.
    pub reason: String,
}

impl Decision {
    /// The winning candidate's entry, if the winner was scored.
    pub fn winning_candidate(&self) -> Option<&CandidateScore> {
        let w = self.winner?;
        self.candidates.iter().find(|c| c.task == w)
    }
}

/// What happened to a queue — the multi-tenancy counterpart of
/// [`Decision`]. The RM records one entry per admission verdict,
/// per-container grant or preemption, and (once per allocation round)
/// per-queue usage sample, so fairness questions — "did tenant-b get its
/// 1/3 share while tenant-a was saturating the cluster?" — are answerable
/// from the log alone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueEventKind {
    /// An application was admitted to the queue at submission.
    Admit,
    /// An application was parked behind the queue's pending-AM limit; it
    /// will be admitted when a live application finishes.
    Queued,
    /// An application was rejected outright (admission policy `Reject`).
    Reject,
    /// A container was granted to an application in this queue.
    Allocate,
    /// A container in this queue was selected as a preemption victim on
    /// behalf of a starved sibling queue.
    Preempt,
    /// A container request could never be satisfied by any node and was
    /// failed fast instead of queued.
    Infeasible,
    /// Per-round usage sample: the queue's footprint after allocation.
    Usage,
}

impl QueueEventKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            QueueEventKind::Admit => "admit",
            QueueEventKind::Queued => "queued",
            QueueEventKind::Reject => "reject",
            QueueEventKind::Allocate => "allocate",
            QueueEventKind::Preempt => "preempt",
            QueueEventKind::Infeasible => "infeasible",
            QueueEventKind::Usage => "usage",
        }
    }
}

/// One entry in the per-queue audit log.
#[derive(Clone, Debug, PartialEq)]
pub struct QueueAudit {
    /// Virtual time of the event (the RM's last-seen heartbeat time for
    /// submission-time events — the RM deliberately has no clock).
    pub t: f64,
    /// Leaf queue name.
    pub queue: String,
    pub kind: QueueEventKind,
    /// Application the event concerns, when there is one (`AppId.0`).
    pub app: Option<u32>,
    /// Container the event concerns (`ContainerId.0`), for
    /// allocate/preempt entries.
    pub container: Option<u64>,
    /// Queue usage after the event, in vcores.
    pub used_vcores: u64,
    /// Queue usage after the event, in MB.
    pub used_memory_mb: u64,
    /// Pending (admitted, unscheduled) requests in the queue.
    pub pending: u64,
    /// The queue's dominant share of the live cluster after the event.
    pub share: f64,
    /// The queue's instantaneous fair share (demand-bounded water-filling
    /// over weights) at the time of the event.
    pub fair_share: f64,
    /// Free-form detail, e.g. the starved sibling a preemption serves.
    pub detail: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_event_kind_labels() {
        for (kind, label) in [
            (QueueEventKind::Admit, "admit"),
            (QueueEventKind::Queued, "queued"),
            (QueueEventKind::Reject, "reject"),
            (QueueEventKind::Allocate, "allocate"),
            (QueueEventKind::Preempt, "preempt"),
            (QueueEventKind::Infeasible, "infeasible"),
            (QueueEventKind::Usage, "usage"),
        ] {
            assert_eq!(kind.as_str(), label);
        }
    }

    #[test]
    fn winning_candidate_lookup() {
        let d = Decision {
            t: 1.0,
            policy: "data_aware",
            kind: DecisionKind::Select,
            node: 2,
            node_name: "worker-0".into(),
            candidates: vec![
                CandidateScore {
                    task: 7,
                    label: "mProject".into(),
                    score: 0.25,
                    detail: "local 1/4".into(),
                },
                CandidateScore {
                    task: 9,
                    label: "mDiff".into(),
                    score: 1.0,
                    detail: "local 4/4".into(),
                },
            ],
            winner: Some(9),
            reason: "highest locality fraction".into(),
        };
        assert_eq!(d.winning_candidate().unwrap().task, 9);
        assert_eq!(d.kind.as_str(), "select");
        let none = Decision { winner: None, ..d };
        assert!(none.winning_candidate().is_none());
    }
}
