//! The scheduler decision audit log.
//!
//! Every time a scheduler places work — dynamically when YARN hands back
//! a container, or statically at plan time — it records *what it saw*:
//! the candidates considered, the score each one earned under the
//! policy's own objective, and which candidate won. This is the
//! "recoverable, queryable run structure" the provenance literature asks
//! of workflow systems: afterwards one can answer "why did task 17 run on
//! worker-3?" from the log alone.

/// How the decision was made.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecisionKind {
    /// Container-arrival-time selection (dynamic policies, and static
    /// policies confirming their plan).
    Select,
    /// Ahead-of-execution placement by a static policy's `plan()`.
    Plan,
}

impl DecisionKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            DecisionKind::Select => "select",
            DecisionKind::Plan => "plan",
        }
    }
}

/// One candidate the scheduler weighed.
#[derive(Clone, Debug, PartialEq)]
pub struct CandidateScore {
    /// Task id (`TaskId.0` upstream; obs stays dependency-free).
    pub task: u64,
    /// Tool signature / task name.
    pub label: String,
    /// The policy's score for this candidate. Orientation is per policy
    /// and stated in `Decision::reason` (e.g. locality fraction: higher
    /// wins; relative fitness or EFT: lower wins).
    pub score: f64,
    /// Human-readable score breakdown, e.g. `"local 3/4 blocks"`.
    pub detail: String,
}

/// One placement decision.
#[derive(Clone, Debug, PartialEq)]
pub struct Decision {
    /// Virtual time of the decision.
    pub t: f64,
    /// Policy name (`"fcfs"`, `"data_aware"`, `"round_robin"`, `"heft"`,
    /// `"adaptive"`).
    pub policy: &'static str,
    pub kind: DecisionKind,
    /// Node index the container/assignment targets.
    pub node: u32,
    pub node_name: String,
    /// Candidates in the order the scheduler considered them.
    pub candidates: Vec<CandidateScore>,
    /// Task id of the winner; `None` when the scheduler declined to place
    /// anything (empty queue, or late binding waiting for a better node).
    pub winner: Option<u64>,
    /// Why the winner won, in the policy's own terms.
    pub reason: String,
}

impl Decision {
    /// The winning candidate's entry, if the winner was scored.
    pub fn winning_candidate(&self) -> Option<&CandidateScore> {
        let w = self.winner?;
        self.candidates.iter().find(|c| c.task == w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn winning_candidate_lookup() {
        let d = Decision {
            t: 1.0,
            policy: "data_aware",
            kind: DecisionKind::Select,
            node: 2,
            node_name: "worker-0".into(),
            candidates: vec![
                CandidateScore {
                    task: 7,
                    label: "mProject".into(),
                    score: 0.25,
                    detail: "local 1/4".into(),
                },
                CandidateScore {
                    task: 9,
                    label: "mDiff".into(),
                    score: 1.0,
                    detail: "local 4/4".into(),
                },
            ],
            winner: Some(9),
            reason: "highest locality fraction".into(),
        };
        assert_eq!(d.winning_candidate().unwrap().task, 9);
        assert_eq!(d.kind.as_str(), "select");
        let none = Decision { winner: None, ..d };
        assert!(none.winning_candidate().is_none());
    }
}
