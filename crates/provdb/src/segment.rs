//! Sorted snapshot segments — the output of explicit compaction.
//!
//! A snapshot segment (`snap-NNNNNN.seg`) is a byte-deterministic, fully
//! checksummed image of the database at compaction time: collections in
//! name order, each opened by its [`Record::Collection`] header, followed
//! by that collection's index definitions (field order sorted — the
//! segment header persists index *specs*, not index contents, which are
//! rebuilt on load) and its documents in insertion order. Frames reuse
//! the WAL encoding, so one scanner serves both file kinds.
//!
//! Snapshots are written to a temporary file and renamed into place, so a
//! crash during compaction leaves either the old state (WAL + previous
//! snapshot) or the new one — never a half-snapshot under the final name.
//! Since the store is append-only (no deletes), compaction needs no
//! tombstones: garbage collection is simply deleting the WAL segments and
//! older snapshots the new snapshot supersedes.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

use crate::wal::{scan_frames, snap_path, Record, SNAP_MAGIC};

/// One collection's full state, as carried by snapshots and recovery.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CollectionImage {
    /// Index field definitions, sorted.
    pub index_fields: Vec<String>,
    /// Documents as compact JSON, in insertion order.
    pub docs: Vec<String>,
}

/// The whole database's state: collection name → image, in name order.
pub type DbImage = Vec<(String, CollectionImage)>;

/// Writes `image` as snapshot segment `seq` in `dir`, atomically
/// (temp file + rename). Returns the frame bytes written.
pub fn write_snapshot(dir: &Path, seq: u64, image: &DbImage) -> io::Result<u64> {
    let tmp = dir.join(format!("snap-{seq:06}.tmp"));
    let mut bytes: Vec<u8> = SNAP_MAGIC.to_vec();
    for (name, col) in image {
        bytes.extend_from_slice(&Record::Collection { name: name.clone() }.frame());
        for field in &col.index_fields {
            bytes.extend_from_slice(
                &Record::Index {
                    collection: name.clone(),
                    field: field.clone(),
                }
                .frame(),
            );
        }
        for doc in &col.docs {
            bytes.extend_from_slice(
                &Record::Insert {
                    collection: name.clone(),
                    doc: doc.clone(),
                }
                .frame(),
            );
        }
    }
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, snap_path(dir, seq))?;
    Ok(bytes.len() as u64)
}

/// Loads a snapshot segment. `None` when the file is corrupt (torn frame,
/// bad CRC, bad magic) — the caller falls back to an older snapshot.
pub fn read_snapshot(path: &Path) -> io::Result<Option<DbImage>> {
    let bytes = fs::read(path)?;
    let scan = scan_frames(&bytes, SNAP_MAGIC);
    if scan.torn {
        return Ok(None);
    }
    let mut image: DbImage = Vec::new();
    for record in scan.records {
        if !apply_record(&mut image, record) {
            return Ok(None);
        }
    }
    Ok(Some(image))
}

/// Applies one record to an in-memory image; returns `false` on records
/// that reference a collection out of order (snapshot corruption) —
/// recovery replaying a WAL instead auto-creates collections.
pub fn apply_record(image: &mut DbImage, record: Record) -> bool {
    fn entry<'a>(image: &'a mut DbImage, name: &str) -> &'a mut CollectionImage {
        if let Some(i) = image.iter().position(|(n, _)| n == name) {
            return &mut image[i].1;
        }
        image.push((name.to_string(), CollectionImage::default()));
        &mut image.last_mut().expect("just pushed").1
    }
    match record {
        Record::Collection { name } => {
            entry(image, &name);
        }
        Record::Insert { collection, doc } => {
            entry(image, &collection).docs.push(doc);
        }
        Record::Index { collection, field } => {
            let col = entry(image, &collection);
            if !col.index_fields.contains(&field) {
                col.index_fields.push(field);
            }
        }
        // Rotation markers carry no state (and never appear in
        // snapshots; a WAL replay just steps over them).
        Record::Rotate => {}
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image() -> DbImage {
        vec![
            (
                "files".to_string(),
                CollectionImage {
                    index_fields: vec![],
                    docs: vec![r#"{"path":"/x"}"#.to_string()],
                },
            ),
            (
                "tasks".to_string(),
                CollectionImage {
                    index_fields: vec!["name".to_string()],
                    docs: vec![r#"{"name":"a"}"#.to_string(), r#"{"name":"b"}"#.to_string()],
                },
            ),
        ]
    }

    #[test]
    fn snapshot_round_trip_and_determinism() {
        let dir = crate::test_dir("segment_round_trip");
        let n1 = write_snapshot(&dir, 3, &image()).unwrap();
        let loaded = read_snapshot(&snap_path(&dir, 3)).unwrap().unwrap();
        assert_eq!(loaded, image());
        // Re-writing the same image produces byte-identical files.
        let n2 = write_snapshot(&dir, 4, &image()).unwrap();
        assert_eq!(n1, n2);
        assert_eq!(
            fs::read(snap_path(&dir, 3)).unwrap(),
            fs::read(snap_path(&dir, 4)).unwrap()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_reads_as_none() {
        let dir = crate::test_dir("segment_corrupt");
        write_snapshot(&dir, 1, &image()).unwrap();
        let path = snap_path(&dir, 1);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }
}
