//! Collections, documents, and hash indexes.

use std::collections::HashMap;
use std::sync::Arc;

use std::sync::RwLock;

use hiway_format::json::Json;

use crate::query::{Filter, Query};

/// Identifier of a document within its collection (dense, insertion order).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DocId(pub u64);

/// Canonical index key for a scalar JSON value. Non-scalars are not
/// indexable (documents lacking the field, or holding arrays/objects,
/// simply don't appear in the index).
fn index_key(value: &Json) -> Option<String> {
    match value {
        Json::Null => Some("null".to_string()),
        Json::Bool(b) => Some(format!("b:{b}")),
        Json::Number(n) => Some(format!("n:{n}")),
        Json::String(s) => Some(format!("s:{s}")),
        Json::Array(_) | Json::Object(_) => None,
    }
}

#[derive(Default)]
struct CollectionInner {
    docs: Vec<Json>,
    /// field → (key → doc ids)
    indexes: HashMap<String, HashMap<String, Vec<DocId>>>,
}

/// A named collection of JSON documents. Cheap to clone (shared handle).
#[derive(Clone, Default)]
pub struct Collection {
    inner: Arc<RwLock<CollectionInner>>,
}

impl Collection {
    /// Inserts a document, maintaining any existing indexes.
    pub fn insert(&self, doc: Json) -> DocId {
        let mut inner = self.inner.write().expect("provdb lock poisoned");
        let id = DocId(inner.docs.len() as u64);
        let fields: Vec<String> = inner.indexes.keys().cloned().collect();
        for field in fields {
            if let Some(key) = doc.get(&field).and_then(index_key) {
                inner
                    .indexes
                    .get_mut(&field)
                    .expect("listed above")
                    .entry(key)
                    .or_default()
                    .push(id);
            }
        }
        inner.docs.push(doc);
        id
    }

    /// Builds (or rebuilds) a hash index over `field`.
    pub fn create_index(&self, field: &str) {
        let mut inner = self.inner.write().expect("provdb lock poisoned");
        let mut index: HashMap<String, Vec<DocId>> = HashMap::new();
        for (i, doc) in inner.docs.iter().enumerate() {
            if let Some(key) = doc.get(field).and_then(index_key) {
                index.entry(key).or_default().push(DocId(i as u64));
            }
        }
        inner.indexes.insert(field.to_string(), index);
    }

    pub fn len(&self) -> usize {
        self.inner.read().expect("provdb lock poisoned").docs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn get(&self, id: DocId) -> Option<Json> {
        self.inner
            .read()
            .expect("provdb lock poisoned")
            .docs
            .get(id.0 as usize)
            .cloned()
    }

    /// Exact-match lookup, served from the index when one exists.
    pub fn find_eq(&self, field: &str, value: &Json) -> Vec<Json> {
        let inner = self.inner.read().expect("provdb lock poisoned");
        if let (Some(index), Some(key)) = (inner.indexes.get(field), index_key(value)) {
            return index
                .get(&key)
                .map(|ids| {
                    ids.iter()
                        .map(|id| inner.docs[id.0 as usize].clone())
                        .collect()
                })
                .unwrap_or_default();
        }
        inner
            .docs
            .iter()
            .filter(|d| d.get(field) == Some(value))
            .cloned()
            .collect()
    }

    /// Starts a filtered query (scan-based; composes multiple predicates).
    pub fn query(&self) -> Query {
        Query::new(self.snapshot())
    }

    /// A point-in-time copy of all documents.
    pub fn snapshot(&self) -> Vec<Json> {
        self.inner
            .read()
            .expect("provdb lock poisoned")
            .docs
            .clone()
    }

    /// Serializes to JSON lines.
    pub fn export_jsonl(&self) -> String {
        let inner = self.inner.read().expect("provdb lock poisoned");
        let mut out = String::new();
        for d in &inner.docs {
            out.push_str(&d.to_compact());
            out.push('\n');
        }
        out
    }

    /// Appends documents from a JSON-lines dump; returns how many loaded.
    pub fn import_jsonl(&self, text: &str) -> Result<usize, String> {
        let mut n = 0;
        for line in text.lines().map(str::trim).filter(|l| !l.is_empty()) {
            let doc = Json::parse(line).map_err(|e| e.to_string())?;
            self.insert(doc);
            n += 1;
        }
        Ok(n)
    }

    /// Scan with an arbitrary filter (used by [`Query`] internally too).
    pub fn scan(&self, filter: &Filter) -> Vec<Json> {
        self.inner
            .read()
            .expect("provdb lock poisoned")
            .docs
            .iter()
            .filter(|d| filter.matches(d))
            .cloned()
            .collect()
    }
}

/// The database: a set of named collections.
#[derive(Clone, Default)]
pub struct ProvDb {
    collections: Arc<RwLock<HashMap<String, Collection>>>,
}

impl ProvDb {
    pub fn new() -> ProvDb {
        ProvDb::default()
    }

    /// Gets or creates a collection.
    pub fn collection(&self, name: &str) -> Collection {
        let mut map = self.collections.write().expect("provdb lock poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    pub fn collection_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .collections
            .read()
            .expect("provdb lock poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Serializes every collection to a single durable dump: a header
    /// line `#collection <name>` followed by that collection's JSON
    /// lines. The moral equivalent of a `mysqldump` of the provenance
    /// database (§3.5's long-term storage concern).
    pub fn export_all(&self) -> String {
        let mut out = String::new();
        for name in self.collection_names() {
            out.push_str(&format!("#collection {name}\n"));
            out.push_str(&self.collection(&name).export_jsonl());
        }
        out
    }

    /// Appends the contents of a dump produced by [`ProvDb::export_all`].
    /// Returns the number of documents loaded.
    pub fn import_all(&self, dump: &str) -> Result<usize, String> {
        let mut current: Option<Collection> = None;
        let mut loaded = 0;
        for line in dump.lines().map(str::trim).filter(|l| !l.is_empty()) {
            if let Some(name) = line.strip_prefix("#collection ") {
                current = Some(self.collection(name.trim()));
                continue;
            }
            let col = current
                .as_ref()
                .ok_or_else(|| "document before any #collection header".to_string())?;
            col.import_jsonl(line)?;
            loaded += 1;
        }
        Ok(loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(task: &str, node: &str, runtime: f64) -> Json {
        Json::object()
            .with("task", task)
            .with("node", node)
            .with("runtime", runtime)
    }

    #[test]
    fn insert_and_get() {
        let c = Collection::default();
        let id = c.insert(doc("align", "n0", 12.5));
        assert_eq!(c.len(), 1);
        assert_eq!(
            c.get(id).unwrap().get("task").unwrap().as_str(),
            Some("align")
        );
        assert!(c.get(DocId(99)).is_none());
    }

    #[test]
    fn find_eq_without_index_scans() {
        let c = Collection::default();
        c.insert(doc("align", "n0", 1.0));
        c.insert(doc("sort", "n0", 2.0));
        c.insert(doc("align", "n1", 3.0));
        let hits = c.find_eq("task", &Json::String("align".into()));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn index_serves_lookups_and_tracks_inserts() {
        let c = Collection::default();
        c.insert(doc("align", "n0", 1.0));
        c.create_index("task");
        c.insert(doc("align", "n1", 2.0)); // inserted after index creation
        c.insert(doc("sort", "n0", 3.0));
        let hits = c.find_eq("task", &Json::String("align".into()));
        assert_eq!(hits.len(), 2);
        let miss = c.find_eq("task", &Json::String("nothing".into()));
        assert!(miss.is_empty());
    }

    #[test]
    fn index_distinguishes_types() {
        let c = Collection::default();
        c.insert(Json::object().with("v", 1u64));
        c.insert(Json::object().with("v", "1"));
        c.create_index("v");
        assert_eq!(c.find_eq("v", &Json::Number(1.0)).len(), 1);
        assert_eq!(c.find_eq("v", &Json::String("1".into())).len(), 1);
    }

    #[test]
    fn export_import_round_trip() {
        let c = Collection::default();
        c.insert(doc("a", "n0", 1.5));
        c.insert(doc("b", "n1", 2.5));
        let dump = c.export_jsonl();
        let c2 = Collection::default();
        assert_eq!(c2.import_jsonl(&dump).unwrap(), 2);
        assert_eq!(c2.snapshot(), c.snapshot());
        assert!(c2.import_jsonl("garbage").is_err());
    }

    #[test]
    fn db_collections_are_shared_handles() {
        let db = ProvDb::new();
        let a = db.collection("tasks");
        a.insert(doc("x", "n0", 1.0));
        let b = db.collection("tasks");
        assert_eq!(b.len(), 1, "same underlying collection");
        db.collection("files");
        assert_eq!(
            db.collection_names(),
            vec!["files".to_string(), "tasks".to_string()]
        );
    }

    #[test]
    fn concurrent_inserts_are_safe() {
        let c = Collection::default();
        c.create_index("task");
        let mut handles = Vec::new();
        for t in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    c.insert(doc(&format!("t{t}"), &format!("n{i}"), i as f64));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.len(), 400);
        assert_eq!(c.find_eq("task", &Json::String("t2".into())).len(), 100);
    }
}

#[cfg(test)]
mod dump_tests {
    use super::*;
    use hiway_format::json::Json;

    #[test]
    fn export_import_all_round_trips_every_collection() {
        let db = ProvDb::new();
        db.collection("tasks")
            .insert(Json::object().with("name", "a").with("t", 1u64));
        db.collection("tasks")
            .insert(Json::object().with("name", "b").with("t", 2u64));
        db.collection("files")
            .insert(Json::object().with("path", "/x"));
        let dump = db.export_all();
        assert!(dump.contains("#collection files"));
        assert!(dump.contains("#collection tasks"));

        let restored = ProvDb::new();
        assert_eq!(restored.import_all(&dump).unwrap(), 3);
        assert_eq!(restored.collection("tasks").len(), 2);
        assert_eq!(restored.collection("files").len(), 1);
        assert_eq!(restored.export_all(), dump, "dump is stable");

        assert!(restored.import_all("{\"stray\": 1}").is_err());
    }
}
