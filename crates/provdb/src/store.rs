//! Collections, documents, hash indexes, and the durable engine hookup.
//!
//! A [`ProvDb`] is either **in-memory** (the historical default — state
//! dies with the process) or **durable**: opened on a directory via
//! [`ProvDb::open`], where every mutation is appended to a write-ahead
//! log before the call returns and [`ProvDb::compact`] folds the log into
//! a sorted snapshot segment (see [`crate::wal`], [`crate::segment`],
//! [`crate::recover`]). Both modes expose the identical API; existing
//! in-memory callers compile unchanged.
//!
//! Lock ordering for durable databases: the WAL mutex is always acquired
//! **before** any collection or map lock, by mutators and by compaction
//! alike, so a write's memory update and its log append are atomic with
//! respect to compaction's state capture.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use std::sync::{Mutex, MutexGuard, RwLock};

use hiway_format::json::Json;

use crate::query::{Filter, Query};
use crate::recover::recover;
use crate::segment::{write_snapshot, CollectionImage, DbImage};
use crate::wal::{snap_path, wal_path, DurabilityStats, Record, Wal};

/// Identifier of a document within its collection (dense, insertion order).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DocId(pub u64);

/// Tuning knobs of a durable database.
#[derive(Clone, Copy, Debug)]
pub struct DurableOptions {
    /// WAL segment rotation threshold, in frame bytes. Small values force
    /// frequent rotation (used by tests); the default keeps segments at a
    /// few MiB like a classic log-structured store.
    pub segment_bytes: u64,
}

impl Default for DurableOptions {
    fn default() -> DurableOptions {
        DurableOptions {
            segment_bytes: 4 << 20,
        }
    }
}

/// The durable side of a database: directory + active WAL.
struct DurableEngine {
    dir: PathBuf,
    wal: Wal,
    options: DurableOptions,
}

impl DurableEngine {
    fn append(&mut self, record: &Record) {
        self.wal
            .append(record)
            .expect("provdb WAL append failed (disk error)");
    }
}

/// Shared handle to the durable engine; `None` on in-memory databases.
type Durable = Arc<Mutex<DurableEngine>>;

/// Canonical index key for a scalar JSON value. Non-scalars are not
/// indexable (documents lacking the field, or holding arrays/objects,
/// simply don't appear in the index).
fn index_key(value: &Json) -> Option<String> {
    match value {
        Json::Null => Some("null".to_string()),
        Json::Bool(b) => Some(format!("b:{b}")),
        Json::Number(n) => Some(format!("n:{n}")),
        Json::String(s) => Some(format!("s:{s}")),
        Json::Array(_) | Json::Object(_) => None,
    }
}

#[derive(Default)]
struct CollectionInner {
    docs: Vec<Json>,
    /// field → (key → doc ids)
    indexes: HashMap<String, HashMap<String, Vec<DocId>>>,
}

impl CollectionInner {
    fn insert_unlogged(&mut self, doc: Json) -> DocId {
        let id = DocId(self.docs.len() as u64);
        let fields: Vec<String> = self.indexes.keys().cloned().collect();
        for field in fields {
            if let Some(key) = doc.get(&field).and_then(index_key) {
                self.indexes
                    .get_mut(&field)
                    .expect("listed above")
                    .entry(key)
                    .or_default()
                    .push(id);
            }
        }
        self.docs.push(doc);
        id
    }

    fn build_index(&mut self, field: &str) {
        let mut index: HashMap<String, Vec<DocId>> = HashMap::new();
        for (i, doc) in self.docs.iter().enumerate() {
            if let Some(key) = doc.get(field).and_then(index_key) {
                index.entry(key).or_default().push(DocId(i as u64));
            }
        }
        self.indexes.insert(field.to_string(), index);
    }
}

/// A named collection of JSON documents. Cheap to clone (shared handle).
#[derive(Clone, Default)]
pub struct Collection {
    inner: Arc<RwLock<CollectionInner>>,
    /// `(collection name, engine)` when the parent database is durable.
    durable: Option<(String, Durable)>,
}

impl Collection {
    /// WAL guard honoring the global lock order (WAL before collection).
    fn wal_guard(&self) -> Option<MutexGuard<'_, DurableEngine>> {
        self.durable
            .as_ref()
            .map(|(_, engine)| engine.lock().expect("provdb wal lock poisoned"))
    }

    /// Inserts a document, maintaining any existing indexes. On durable
    /// databases the insert is in the WAL before this returns.
    pub fn insert(&self, doc: Json) -> DocId {
        let mut wal = self.wal_guard();
        let serialized = wal.as_ref().map(|_| doc.to_compact());
        let id = self
            .inner
            .write()
            .expect("provdb lock poisoned")
            .insert_unlogged(doc);
        if let (Some(engine), Some(doc)) = (wal.as_deref_mut(), serialized) {
            let name = self
                .durable
                .as_ref()
                .expect("wal implies durable")
                .0
                .clone();
            engine.append(&Record::Insert {
                collection: name,
                doc,
            });
        }
        id
    }

    /// Inserts a batch of documents under a single write guard (and a
    /// single WAL acquisition) — the bulk path `import_jsonl` and the
    /// dump loader use, instead of re-acquiring the lock per line.
    pub fn insert_many(&self, docs: Vec<Json>) -> Vec<DocId> {
        let mut wal = self.wal_guard();
        let name = self.durable.as_ref().map(|(n, _)| n.clone());
        let mut ids = Vec::with_capacity(docs.len());
        {
            let mut inner = self.inner.write().expect("provdb lock poisoned");
            for doc in docs {
                let serialized = wal.as_ref().map(|_| doc.to_compact());
                ids.push(inner.insert_unlogged(doc));
                if let (Some(engine), Some(doc)) = (wal.as_deref_mut(), serialized) {
                    engine.append(&Record::Insert {
                        collection: name.clone().expect("wal implies durable"),
                        doc,
                    });
                }
            }
        }
        ids
    }

    /// Builds a hash index over `field`. Idempotent: an already-indexed
    /// field is left untouched (incremental maintenance keeps existing
    /// indexes exact), so re-opening callers don't bloat the WAL.
    pub fn create_index(&self, field: &str) {
        let mut wal = self.wal_guard();
        {
            let mut inner = self.inner.write().expect("provdb lock poisoned");
            if inner.indexes.contains_key(field) {
                return;
            }
            inner.build_index(field);
        }
        if let Some(engine) = wal.as_deref_mut() {
            let name = self
                .durable
                .as_ref()
                .expect("wal implies durable")
                .0
                .clone();
            engine.append(&Record::Index {
                collection: name,
                field: field.to_string(),
            });
        }
    }

    /// Fields with a hash index, sorted — persisted by dumps and durable
    /// snapshots so restored databases keep serving indexed lookups.
    pub fn index_fields(&self) -> Vec<String> {
        let inner = self.inner.read().expect("provdb lock poisoned");
        let mut fields: Vec<String> = inner.indexes.keys().cloned().collect();
        fields.sort();
        fields
    }

    pub fn len(&self) -> usize {
        self.inner.read().expect("provdb lock poisoned").docs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn get(&self, id: DocId) -> Option<Json> {
        self.inner
            .read()
            .expect("provdb lock poisoned")
            .docs
            .get(id.0 as usize)
            .cloned()
    }

    /// Exact-match lookup, served from the index when one exists.
    pub fn find_eq(&self, field: &str, value: &Json) -> Vec<Json> {
        let inner = self.inner.read().expect("provdb lock poisoned");
        if let (Some(index), Some(key)) = (inner.indexes.get(field), index_key(value)) {
            return index
                .get(&key)
                .map(|ids| {
                    ids.iter()
                        .map(|id| inner.docs[id.0 as usize].clone())
                        .collect()
                })
                .unwrap_or_default();
        }
        inner
            .docs
            .iter()
            .filter(|d| d.get(field) == Some(value))
            .cloned()
            .collect()
    }

    /// Starts a filtered query (scan-based; composes multiple predicates).
    pub fn query(&self) -> Query {
        Query::new(self.snapshot())
    }

    /// A point-in-time copy of all documents.
    pub fn snapshot(&self) -> Vec<Json> {
        self.inner
            .read()
            .expect("provdb lock poisoned")
            .docs
            .clone()
    }

    /// Serializes to JSON lines.
    pub fn export_jsonl(&self) -> String {
        let inner = self.inner.read().expect("provdb lock poisoned");
        let mut out = String::new();
        for d in &inner.docs {
            out.push_str(&d.to_compact());
            out.push('\n');
        }
        out
    }

    /// Appends documents from a JSON-lines dump; returns how many loaded.
    /// Parsing happens before any insert, under no lock; the documents
    /// then land in one [`Collection::insert_many`] batch — a dump either
    /// imports fully or not at all.
    pub fn import_jsonl(&self, text: &str) -> Result<usize, String> {
        let mut docs = Vec::new();
        for line in text.lines().map(str::trim).filter(|l| !l.is_empty()) {
            docs.push(Json::parse(line).map_err(|e| e.to_string())?);
        }
        let n = docs.len();
        self.insert_many(docs);
        Ok(n)
    }

    /// Scan with an arbitrary filter (used by [`Query`] internally too).
    pub fn scan(&self, filter: &Filter) -> Vec<Json> {
        self.inner
            .read()
            .expect("provdb lock poisoned")
            .docs
            .iter()
            .filter(|d| filter.matches(d))
            .cloned()
            .collect()
    }
}

/// The database: a set of named collections, optionally durable.
#[derive(Clone, Default)]
pub struct ProvDb {
    collections: Arc<RwLock<HashMap<String, Collection>>>,
    durable: Option<Durable>,
}

impl ProvDb {
    /// An in-memory database (state dies with the process).
    pub fn new() -> ProvDb {
        ProvDb::default()
    }

    /// Alias of [`ProvDb::new`], named for symmetry with [`ProvDb::open`].
    pub fn in_memory() -> ProvDb {
        ProvDb::default()
    }

    /// Opens (or creates) a durable database rooted at `path`, recovering
    /// collections, documents, **and index definitions** from the newest
    /// snapshot segment plus the WAL. A torn WAL tail — a crash mid-append
    /// or any byte-truncation of the log — is silently truncated; the
    /// recovered state is always a prefix of the committed writes.
    pub fn open(path: impl AsRef<Path>) -> Result<ProvDb, String> {
        ProvDb::open_with(path, DurableOptions::default())
    }

    /// [`ProvDb::open`] with explicit tuning (small `segment_bytes` forces
    /// WAL rotation; tests use it to cover multi-segment recovery).
    pub fn open_with(path: impl AsRef<Path>, options: DurableOptions) -> Result<ProvDb, String> {
        let dir = path.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| format!("provdb dir {dir:?}: {e}"))?;
        let recovered = recover(&dir).map_err(|e| format!("provdb recovery in {dir:?}: {e}"))?;
        let wal = Wal::create(&dir, recovered.next_seq, options.segment_bytes)
            .map_err(|e| format!("provdb WAL create in {dir:?}: {e}"))?;
        let engine: Durable = Arc::new(Mutex::new(DurableEngine { dir, wal, options }));
        let mut map = HashMap::new();
        for (name, image) in recovered.image {
            let mut inner = CollectionInner::default();
            for doc in &image.docs {
                let parsed = Json::parse(doc).map_err(|e| {
                    format!("provdb: unreadable document in collection {name}: {e}")
                })?;
                inner.docs.push(parsed);
            }
            for field in &image.index_fields {
                inner.build_index(field);
            }
            map.insert(
                name.clone(),
                Collection {
                    inner: Arc::new(RwLock::new(inner)),
                    durable: Some((name, engine.clone())),
                },
            );
        }
        Ok(ProvDb {
            collections: Arc::new(RwLock::new(map)),
            durable: Some(engine),
        })
    }

    /// Whether this database writes through to disk.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// The durable directory, if any.
    pub fn path(&self) -> Option<PathBuf> {
        self.durable
            .as_ref()
            .map(|e| e.lock().expect("provdb wal lock poisoned").dir.clone())
    }

    /// WAL/compaction counters since this handle opened (zeros for
    /// in-memory databases).
    pub fn stats(&self) -> DurabilityStats {
        self.durable
            .as_ref()
            .map(|e| e.lock().expect("provdb wal lock poisoned").wal.stats)
            .unwrap_or_default()
    }

    /// Gets or creates a collection. Creation on a durable database is
    /// logged, so empty collections survive restarts.
    pub fn collection(&self, name: &str) -> Collection {
        // Lock order: WAL mutex before the collections map.
        let mut wal = self
            .durable
            .as_ref()
            .map(|e| e.lock().expect("provdb wal lock poisoned"));
        let mut map = self.collections.write().expect("provdb lock poisoned");
        if let Some(existing) = map.get(name) {
            return existing.clone();
        }
        let col = Collection {
            inner: Arc::default(),
            durable: self.durable.as_ref().map(|e| (name.to_string(), e.clone())),
        };
        map.insert(name.to_string(), col.clone());
        if let Some(engine) = wal.as_deref_mut() {
            engine.append(&Record::Collection {
                name: name.to_string(),
            });
        }
        col
    }

    pub fn collection_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .collections
            .read()
            .expect("provdb lock poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Deterministic, explicit compaction: folds the WAL (and any previous
    /// snapshot) into a single sorted snapshot segment, then deletes the
    /// superseded files — tombstone-free GC, since the store is
    /// append-only. No background thread: the caller picks the moment.
    /// No-op on in-memory databases.
    pub fn compact(&self) -> Result<(), String> {
        let Some(engine) = self.durable.as_ref() else {
            return Ok(());
        };
        let mut engine = engine.lock().expect("provdb wal lock poisoned");
        // Capture the image under the WAL lock: every mutator also holds
        // it, so the capture is consistent across collections.
        let image: DbImage = {
            let map = self.collections.read().expect("provdb lock poisoned");
            let mut names: Vec<&String> = map.keys().collect();
            names.sort();
            names
                .into_iter()
                .map(|name| {
                    let col = &map[name];
                    let inner = col.inner.read().expect("provdb lock poisoned");
                    let mut fields: Vec<String> = inner.indexes.keys().cloned().collect();
                    fields.sort();
                    (
                        name.clone(),
                        CollectionImage {
                            index_fields: fields,
                            docs: inner.docs.iter().map(Json::to_compact).collect(),
                        },
                    )
                })
                .collect()
        };
        let old_wal_seq = engine.wal.seq;
        let snap_seq = old_wal_seq + 1;
        write_snapshot(&engine.dir, snap_seq, &image)
            .map_err(|e| format!("provdb snapshot: {e}"))?;
        // GC: WAL segments folded into the snapshot, and older snapshots.
        for seq in 1..=old_wal_seq {
            let _ = std::fs::remove_file(wal_path(&engine.dir, seq));
            let _ = std::fs::remove_file(snap_path(&engine.dir, seq));
        }
        let stats = engine.wal.stats;
        let dir = engine.dir.clone();
        let segment_bytes = engine.options.segment_bytes;
        engine.wal = Wal::create(&dir, snap_seq + 1, segment_bytes)
            .map_err(|e| format!("provdb WAL rotate after compaction: {e}"))?;
        engine.wal.stats = stats;
        engine.wal.stats.compactions += 1;
        Ok(())
    }

    /// Serializes every collection to a single durable dump: a header
    /// line `#collection <name>`, that collection's index definitions as
    /// `#index <field>` lines, then its JSON lines. The moral equivalent
    /// of a `mysqldump` of the provenance database (§3.5's long-term
    /// storage concern).
    pub fn export_all(&self) -> String {
        let mut out = String::new();
        for name in self.collection_names() {
            out.push_str(&format!("#collection {name}\n"));
            let col = self.collection(&name);
            for field in col.index_fields() {
                out.push_str(&format!("#index {field}\n"));
            }
            out.push_str(&col.export_jsonl());
        }
        out
    }

    /// Appends the contents of a dump produced by [`ProvDb::export_all`].
    /// Index definitions round-trip: a restored database serves
    /// `find_eq` from the same indexes the original had. Documents load
    /// in one batch per collection section. Returns the number of
    /// documents loaded.
    pub fn import_all(&self, dump: &str) -> Result<usize, String> {
        let mut current: Option<Collection> = None;
        let mut pending: Vec<Json> = Vec::new();
        let mut loaded = 0;
        let flush = |col: &Option<Collection>, pending: &mut Vec<Json>| {
            if let Some(col) = col {
                if !pending.is_empty() {
                    col.insert_many(std::mem::take(pending));
                }
            }
        };
        for line in dump.lines().map(str::trim).filter(|l| !l.is_empty()) {
            if let Some(name) = line.strip_prefix("#collection ") {
                flush(&current, &mut pending);
                current = Some(self.collection(name.trim()));
                continue;
            }
            if let Some(field) = line.strip_prefix("#index ") {
                let col = current
                    .as_ref()
                    .ok_or_else(|| "index before any #collection header".to_string())?;
                flush(&current, &mut pending);
                col.create_index(field.trim());
                continue;
            }
            if current.is_none() {
                return Err("document before any #collection header".to_string());
            }
            pending.push(Json::parse(line).map_err(|e| e.to_string())?);
            loaded += 1;
        }
        flush(&current, &mut pending);
        Ok(loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(task: &str, node: &str, runtime: f64) -> Json {
        Json::object()
            .with("task", task)
            .with("node", node)
            .with("runtime", runtime)
    }

    #[test]
    fn insert_and_get() {
        let c = Collection::default();
        let id = c.insert(doc("align", "n0", 12.5));
        assert_eq!(c.len(), 1);
        assert_eq!(
            c.get(id).unwrap().get("task").unwrap().as_str(),
            Some("align")
        );
        assert!(c.get(DocId(99)).is_none());
    }

    #[test]
    fn find_eq_without_index_scans() {
        let c = Collection::default();
        c.insert(doc("align", "n0", 1.0));
        c.insert(doc("sort", "n0", 2.0));
        c.insert(doc("align", "n1", 3.0));
        let hits = c.find_eq("task", &Json::String("align".into()));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn index_serves_lookups_and_tracks_inserts() {
        let c = Collection::default();
        c.insert(doc("align", "n0", 1.0));
        c.create_index("task");
        c.insert(doc("align", "n1", 2.0)); // inserted after index creation
        c.insert(doc("sort", "n0", 3.0));
        let hits = c.find_eq("task", &Json::String("align".into()));
        assert_eq!(hits.len(), 2);
        let miss = c.find_eq("task", &Json::String("nothing".into()));
        assert!(miss.is_empty());
    }

    #[test]
    fn index_distinguishes_types() {
        let c = Collection::default();
        c.insert(Json::object().with("v", 1u64));
        c.insert(Json::object().with("v", "1"));
        c.create_index("v");
        assert_eq!(c.find_eq("v", &Json::Number(1.0)).len(), 1);
        assert_eq!(c.find_eq("v", &Json::String("1".into())).len(), 1);
    }

    #[test]
    fn insert_many_matches_serial_inserts() {
        let serial = Collection::default();
        serial.create_index("task");
        let batch = Collection::default();
        batch.create_index("task");
        let docs: Vec<Json> = (0..10)
            .map(|i| doc("t", &format!("n{i}"), i as f64))
            .collect();
        for d in docs.clone() {
            serial.insert(d);
        }
        let ids = batch.insert_many(docs);
        assert_eq!(ids.len(), 10);
        assert_eq!(ids[0], DocId(0));
        assert_eq!(batch.snapshot(), serial.snapshot());
        assert_eq!(
            batch.find_eq("task", &Json::String("t".into())).len(),
            serial.find_eq("task", &Json::String("t".into())).len()
        );
    }

    #[test]
    fn export_import_round_trip() {
        let c = Collection::default();
        c.insert(doc("a", "n0", 1.5));
        c.insert(doc("b", "n1", 2.5));
        let dump = c.export_jsonl();
        let c2 = Collection::default();
        assert_eq!(c2.import_jsonl(&dump).unwrap(), 2);
        assert_eq!(c2.snapshot(), c.snapshot());
        assert!(c2.import_jsonl("garbage").is_err());
    }

    #[test]
    fn failed_import_inserts_nothing() {
        let c = Collection::default();
        assert!(c.import_jsonl("{\"ok\":1}\ngarbage\n{\"ok\":2}").is_err());
        assert!(c.is_empty(), "batch import is atomic");
    }

    #[test]
    fn db_collections_are_shared_handles() {
        let db = ProvDb::new();
        let a = db.collection("tasks");
        a.insert(doc("x", "n0", 1.0));
        let b = db.collection("tasks");
        assert_eq!(b.len(), 1, "same underlying collection");
        db.collection("files");
        assert_eq!(
            db.collection_names(),
            vec!["files".to_string(), "tasks".to_string()]
        );
    }

    #[test]
    fn concurrent_inserts_are_safe() {
        let c = Collection::default();
        c.create_index("task");
        let mut handles = Vec::new();
        for t in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    c.insert(doc(&format!("t{t}"), &format!("n{i}"), i as f64));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.len(), 400);
        assert_eq!(c.find_eq("task", &Json::String("t2".into())).len(), 100);
    }
}

#[cfg(test)]
mod dump_tests {
    use super::*;
    use hiway_format::json::Json;

    #[test]
    fn export_import_all_round_trips_every_collection() {
        let db = ProvDb::new();
        db.collection("tasks")
            .insert(Json::object().with("name", "a").with("t", 1u64));
        db.collection("tasks")
            .insert(Json::object().with("name", "b").with("t", 2u64));
        db.collection("files")
            .insert(Json::object().with("path", "/x"));
        let dump = db.export_all();
        assert!(dump.contains("#collection files"));
        assert!(dump.contains("#collection tasks"));

        let restored = ProvDb::new();
        assert_eq!(restored.import_all(&dump).unwrap(), 3);
        assert_eq!(restored.collection("tasks").len(), 2);
        assert_eq!(restored.collection("files").len(), 1);
        assert_eq!(restored.export_all(), dump, "dump is stable");

        assert!(restored.import_all("{\"stray\": 1}").is_err());
    }

    /// Regression: index definitions used to be lost on round-trip — a
    /// freshly imported database silently fell back to full scans in
    /// `find_eq`. Dumps now carry `#index` lines and rebuild on import.
    #[test]
    fn dump_round_trip_preserves_index_definitions() {
        let db = ProvDb::new();
        let tasks = db.collection("tasks");
        tasks.insert(Json::object().with("name", "a"));
        tasks.create_index("name");
        tasks.create_index("node");
        db.collection("files"); // no indexes on this one

        let dump = db.export_all();
        assert!(dump.contains("#index name"));
        assert!(dump.contains("#index node"));

        let restored = ProvDb::new();
        restored.import_all(&dump).unwrap();
        assert_eq!(
            restored.collection("tasks").index_fields(),
            vec!["name".to_string(), "node".to_string()]
        );
        assert!(restored.collection("files").index_fields().is_empty());
        // Second-generation dump is identical (stability with indexes).
        assert_eq!(restored.export_all(), dump);
        // The restored index actually serves lookups (and stays exact as
        // new documents arrive).
        let r = restored.collection("tasks");
        r.insert(Json::object().with("name", "b"));
        assert_eq!(r.find_eq("name", &Json::String("b".into())).len(), 1);
    }
}

#[cfg(test)]
mod durable_tests {
    use super::*;

    #[test]
    fn durable_round_trip_across_reopen() {
        let dir = crate::test_dir("store_reopen");
        {
            let db = ProvDb::open(&dir).unwrap();
            assert!(db.is_durable());
            assert_eq!(db.path().unwrap(), dir);
            let tasks = db.collection("tasks");
            tasks.create_index("name");
            tasks.insert(Json::object().with("name", "a").with("rt", 1.5));
            tasks.insert(Json::object().with("name", "b").with("rt", 2.5));
            db.collection("empty"); // must survive despite zero documents
            assert_eq!(db.stats().wal_records, 5);
        }
        let db = ProvDb::open(&dir).unwrap();
        assert_eq!(
            db.collection_names(),
            vec!["empty".to_string(), "tasks".to_string()]
        );
        let tasks = db.collection("tasks");
        assert_eq!(tasks.len(), 2);
        assert_eq!(tasks.index_fields(), vec!["name".to_string()]);
        assert_eq!(tasks.find_eq("name", &Json::String("a".into())).len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_preserves_state_and_gcs_wal() {
        let dir = crate::test_dir("store_compact");
        let export = {
            let db = ProvDb::open_with(
                &dir,
                DurableOptions {
                    segment_bytes: 128, // force rotation every few records
                },
            )
            .unwrap();
            let t = db.collection("t");
            t.create_index("i");
            for i in 0..50u64 {
                t.insert(Json::object().with("i", i));
            }
            assert!(db.stats().wal_rotations > 0, "tiny segments must rotate");
            db.compact().unwrap();
            assert_eq!(db.stats().compactions, 1);
            // After compaction: exactly one snapshot + one (fresh) WAL.
            let mut snaps = 0;
            let mut wals = 0;
            for e in std::fs::read_dir(&dir).unwrap() {
                let name = e.unwrap().file_name().to_string_lossy().to_string();
                if name.starts_with("snap-") {
                    snaps += 1;
                }
                if name.starts_with("wal-") {
                    wals += 1;
                }
            }
            assert_eq!((snaps, wals), (1, 1));
            // Writes after compaction land in the fresh WAL.
            t.insert(Json::object().with("i", 50u64));
            db.export_all()
        };
        let db = ProvDb::open(&dir).unwrap();
        assert_eq!(db.collection("t").len(), 51);
        assert_eq!(db.collection("t").index_fields(), vec!["i".to_string()]);
        assert_eq!(db.export_all(), export);
        // Compacting twice is idempotent on state.
        db.compact().unwrap();
        db.compact().unwrap();
        let db2 = ProvDb::open(&dir).unwrap();
        assert_eq!(db2.export_all(), export);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Regression: every `open` starts a fresh WAL segment, so a store
    /// reopened N times has N generations of segments. Recovery must
    /// seal each accepted tail — otherwise the next recovery mistakes an
    /// old generation's unsealed tail for the end of the log and drops
    /// every later generation's writes.
    #[test]
    fn writes_survive_many_reopen_generations() {
        let dir = crate::test_dir("store_generations");
        for gen in 0..4u64 {
            let db = ProvDb::open(&dir).unwrap();
            let t = db.collection("t");
            assert_eq!(t.len() as u64, gen, "all prior generations visible");
            t.insert(Json::object().with("gen", gen));
        }
        let db = ProvDb::open(&dir).unwrap();
        let docs = db.collection("t").snapshot();
        let gens: Vec<u64> = docs
            .iter()
            .map(|d| d.get("gen").and_then(Json::as_u64).unwrap())
            .collect();
        assert_eq!(gens, vec![0, 1, 2, 3]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn in_memory_db_reports_no_durability() {
        let db = ProvDb::in_memory();
        assert!(!db.is_durable());
        assert_eq!(db.path(), None);
        assert_eq!(db.stats(), DurabilityStats::default());
        db.compact().unwrap(); // no-op, not an error
    }

    #[test]
    fn concurrent_durable_inserts_are_safe_and_recoverable() {
        let dir = crate::test_dir("store_concurrent");
        {
            let db = ProvDb::open(&dir).unwrap();
            let c = db.collection("t");
            c.create_index("task");
            let mut handles = Vec::new();
            for t in 0..4 {
                let c = c.clone();
                handles.push(std::thread::spawn(move || {
                    for i in 0..50 {
                        c.insert(
                            Json::object()
                                .with("task", format!("t{t}"))
                                .with("i", i as u64),
                        );
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(c.len(), 200);
        }
        let db = ProvDb::open(&dir).unwrap();
        let c = db.collection("t");
        assert_eq!(c.len(), 200);
        assert_eq!(c.find_eq("task", &Json::String("t2".into())).len(), 50);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
