//! The append-only write-ahead log.
//!
//! Every mutation of a durable [`crate::ProvDb`] — collection creation,
//! document insert, index definition — is appended to the active WAL
//! segment before the call returns. Records are framed as
//!
//! ```text
//! [payload_len: u32 LE][crc32(payload): u32 LE][payload]
//! ```
//!
//! and the payload encoding is byte-deterministic (op byte followed by
//! length-prefixed UTF-8 strings; documents serialize through
//! [`Json::to_compact`], which preserves field order). A record is
//! *committed* once its full frame is on disk; a crash mid-frame leaves a
//! torn tail that recovery truncates, so the recovered database always
//! equals a prefix of the committed writes — never a partial record.
//!
//! Segments rotate at a size threshold (`wal-NNNNNN.log`, monotonically
//! numbered); [`crate::ProvDb::compact`] folds all of them into a sorted
//! snapshot segment and deletes them.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use hiway_format::json::Json;

/// Magic bytes opening every WAL segment file.
pub const WAL_MAGIC: &[u8; 8] = b"HIWAYWL1";
/// Magic bytes opening every snapshot segment file.
pub const SNAP_MAGIC: &[u8; 8] = b"HIWAYSG1";

/// Upper bound on a single record payload — anything larger in a length
/// field is corruption, not data (documents are provenance events, not
/// blobs).
pub const MAX_RECORD_BYTES: u32 = 1 << 30;

/// CRC-32 (IEEE 802.3 polynomial, reflected), the checksum HDFS itself
/// uses for block integrity. Table-driven, built at compile time.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// One logical WAL record.
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// A collection was created (so empty collections survive restarts).
    Collection { name: String },
    /// A document was inserted into `collection`. The document travels as
    /// its compact-JSON serialization, which is canonical for our
    /// insertion-ordered [`Json`] model.
    Insert { collection: String, doc: String },
    /// A hash index over `field` was defined on `collection`.
    Index { collection: String, field: String },
    /// End-of-segment marker, appended as the final frame before rotating
    /// to the next segment. Its absence is load-bearing: a segment that
    /// ends cleanly but has no trailing marker is the *end of the log* —
    /// any byte-truncation of the stream, even one landing exactly on a
    /// frame boundary, is thereby distinguishable from a rotation, and
    /// recovery drops all later segments to preserve the prefix
    /// invariant.
    Rotate,
}

const OP_COLLECTION: u8 = 1;
const OP_INSERT: u8 = 2;
const OP_INDEX: u8 = 3;
const OP_ROTATE: u8 = 4;

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn take_str(bytes: &[u8], pos: &mut usize) -> Option<String> {
    let len = u32::from_le_bytes(bytes.get(*pos..*pos + 4)?.try_into().ok()?) as usize;
    *pos += 4;
    let s = std::str::from_utf8(bytes.get(*pos..*pos + len)?).ok()?;
    *pos += len;
    Some(s.to_string())
}

impl Record {
    /// Deterministic payload encoding (no frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Record::Collection { name } => {
                out.push(OP_COLLECTION);
                put_str(&mut out, name);
            }
            Record::Insert { collection, doc } => {
                out.push(OP_INSERT);
                put_str(&mut out, collection);
                put_str(&mut out, doc);
            }
            Record::Index { collection, field } => {
                out.push(OP_INDEX);
                put_str(&mut out, collection);
                put_str(&mut out, field);
            }
            Record::Rotate => out.push(OP_ROTATE),
        }
        out
    }

    /// Decodes a payload previously produced by [`Record::encode`].
    /// `None` means the payload is malformed (treated as a torn tail by
    /// recovery, corruption by snapshot loading).
    pub fn decode(payload: &[u8]) -> Option<Record> {
        let op = *payload.first()?;
        let mut pos = 1;
        let record = match op {
            OP_COLLECTION => Record::Collection {
                name: take_str(payload, &mut pos)?,
            },
            OP_INSERT => Record::Insert {
                collection: take_str(payload, &mut pos)?,
                doc: take_str(payload, &mut pos)?,
            },
            OP_INDEX => Record::Index {
                collection: take_str(payload, &mut pos)?,
                field: take_str(payload, &mut pos)?,
            },
            OP_ROTATE => Record::Rotate,
            _ => return None,
        };
        if pos != payload.len() {
            return None; // trailing garbage inside a CRC-valid frame
        }
        Some(record)
    }

    /// The full framed bytes: length, CRC, payload.
    pub fn frame(&self) -> Vec<u8> {
        let payload = self.encode();
        let mut out = Vec::with_capacity(payload.len() + 8);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Validates that `doc` inside an `Insert` record parses; used by
    /// recovery so a CRC-valid but unparsable document is treated as a
    /// torn tail rather than a panic downstream.
    pub fn parse_doc(&self) -> Option<Json> {
        match self {
            Record::Insert { doc, .. } => Json::parse(doc).ok(),
            _ => None,
        }
    }
}

/// Outcome of scanning one segment file's frames.
pub struct FrameScan {
    pub records: Vec<Record>,
    /// Byte offset of the first torn/invalid frame (file length when the
    /// whole file is clean).
    pub valid_bytes: u64,
    /// Whether the scan stopped early on a torn or corrupt frame.
    pub torn: bool,
}

/// Reads every valid frame from `bytes` (which must start with `magic`).
/// Stops — without panicking — at the first short, CRC-mismatched, or
/// undecodable frame.
pub fn scan_frames(bytes: &[u8], magic: &[u8; 8]) -> FrameScan {
    if bytes.len() < magic.len() || &bytes[..magic.len()] != magic {
        return FrameScan {
            records: Vec::new(),
            valid_bytes: 0,
            torn: true,
        };
    }
    let mut records = Vec::new();
    let mut pos = magic.len();
    loop {
        let Some(header) = bytes.get(pos..pos + 8) else {
            // Clean EOF only when not a single header byte remains.
            let torn = pos < bytes.len();
            return FrameScan {
                records,
                valid_bytes: pos as u64,
                torn,
            };
        };
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
        if len > MAX_RECORD_BYTES {
            return FrameScan {
                records,
                valid_bytes: pos as u64,
                torn: true,
            };
        }
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len as usize) else {
            return FrameScan {
                records,
                valid_bytes: pos as u64,
                torn: true,
            };
        };
        if crc32(payload) != crc {
            return FrameScan {
                records,
                valid_bytes: pos as u64,
                torn: true,
            };
        }
        match Record::decode(payload) {
            Some(r) => records.push(r),
            None => {
                return FrameScan {
                    records,
                    valid_bytes: pos as u64,
                    torn: true,
                }
            }
        }
        pos += 8 + len as usize;
    }
}

/// Counters describing the durable engine's activity since open.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Records appended to the WAL since this handle opened.
    pub wal_records: u64,
    /// Frame bytes appended to the WAL since this handle opened.
    pub wal_bytes: u64,
    /// WAL segment rotations since open.
    pub wal_rotations: u64,
    /// Explicit compactions run since open.
    pub compactions: u64,
}

/// The append side of the log: owns the active segment file.
pub struct Wal {
    dir: PathBuf,
    file: File,
    /// Sequence number of the active segment.
    pub seq: u64,
    bytes_in_segment: u64,
    /// Rotation threshold (frame bytes per segment, excluding the magic).
    pub segment_bytes: u64,
    pub stats: DurabilityStats,
}

/// `wal-NNNNNN.log` path for sequence `seq`.
pub fn wal_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:06}.log"))
}

/// `snap-NNNNNN.seg` path for sequence `seq`.
pub fn snap_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snap-{seq:06}.seg"))
}

impl Wal {
    /// Creates a fresh active segment `wal-{seq}.log` in `dir`.
    pub fn create(dir: &Path, seq: u64, segment_bytes: u64) -> io::Result<Wal> {
        let path = wal_path(dir, seq);
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        file.write_all(WAL_MAGIC)?;
        Ok(Wal {
            dir: dir.to_path_buf(),
            file,
            seq,
            bytes_in_segment: 0,
            segment_bytes,
            stats: DurabilityStats::default(),
        })
    }

    /// Appends one committed record; rotates to a new segment first when
    /// the active one is at its threshold. Each frame lands in a single
    /// `write_all`, so a crash tears at most the final frame.
    pub fn append(&mut self, record: &Record) -> io::Result<()> {
        if self.bytes_in_segment >= self.segment_bytes && self.bytes_in_segment > 0 {
            self.rotate()?;
        }
        let frame = record.frame();
        self.file.write_all(&frame)?;
        self.bytes_in_segment += frame.len() as u64;
        self.stats.wal_records += 1;
        self.stats.wal_bytes += frame.len() as u64;
        Ok(())
    }

    /// Starts a new segment `wal-{seq+1}.log`; subsequent appends go there.
    /// The old segment is sealed with a [`Record::Rotate`] marker first —
    /// recovery treats an unsealed segment as the end of the log.
    pub fn rotate(&mut self) -> io::Result<()> {
        self.file.write_all(&Record::Rotate.frame())?;
        self.file.flush()?;
        let next = Wal::create(&self.dir, self.seq + 1, self.segment_bytes)?;
        self.file = next.file;
        self.seq += 1;
        self.bytes_in_segment = 0;
        self.stats.wal_rotations += 1;
        Ok(())
    }

    /// Flushes OS-visible state (tests reopen the directory in-process).
    pub fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_round_trip() {
        let records = vec![
            Record::Collection {
                name: "tasks".into(),
            },
            Record::Insert {
                collection: "tasks".into(),
                doc: r#"{"a":1,"b":"x\né"}"#.into(),
            },
            Record::Index {
                collection: "tasks".into(),
                field: "name".into(),
            },
        ];
        for r in &records {
            assert_eq!(Record::decode(&r.encode()).as_ref(), Some(r));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Record::decode(&[]), None);
        assert_eq!(Record::decode(&[99]), None);
        // Trailing garbage after a valid collection record.
        let mut bytes = Record::Collection { name: "c".into() }.encode();
        bytes.push(0);
        assert_eq!(Record::decode(&bytes), None);
        // Truncated string length.
        assert_eq!(Record::decode(&[OP_COLLECTION, 5, 0, 0, 0, b'a']), None);
    }

    #[test]
    fn scan_stops_at_torn_frame() {
        let a = Record::Collection { name: "c".into() };
        let b = Record::Insert {
            collection: "c".into(),
            doc: "{}".into(),
        };
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&a.frame());
        let clean_end = bytes.len() as u64;
        bytes.extend_from_slice(&b.frame()[..5]); // torn mid-frame
        let scan = scan_frames(&bytes, WAL_MAGIC);
        assert_eq!(scan.records, vec![a]);
        assert_eq!(scan.valid_bytes, clean_end);
        assert!(scan.torn);
    }

    #[test]
    fn scan_detects_crc_mismatch() {
        let a = Record::Collection { name: "c".into() };
        let mut bytes = WAL_MAGIC.to_vec();
        let mut frame = a.frame();
        let last = frame.len() - 1;
        frame[last] ^= 0xff; // flip a payload bit
        bytes.extend_from_slice(&frame);
        let scan = scan_frames(&bytes, WAL_MAGIC);
        assert!(scan.records.is_empty());
        assert!(scan.torn);
        assert_eq!(scan.valid_bytes, WAL_MAGIC.len() as u64);
    }

    #[test]
    fn scan_rejects_wrong_magic() {
        let scan = scan_frames(b"NOTMAGIC", WAL_MAGIC);
        assert!(scan.torn);
        assert_eq!(scan.valid_bytes, 0);
    }
}
