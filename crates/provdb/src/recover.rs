//! Crash-consistent recovery: snapshot + WAL replay with torn-tail
//! truncation.
//!
//! The recovery invariant: **for any byte-truncation of the on-disk log,
//! recovery succeeds and reconstructs exactly a prefix of the committed
//! writes** — collections, documents, *and index definitions*. The
//! procedure:
//!
//! 1. Load the newest intact snapshot segment (corrupt snapshots fall
//!    back to the next older one; with none, start empty).
//! 2. Replay WAL segments with sequence numbers greater than the
//!    snapshot's, in order. The first torn frame (short read, CRC
//!    mismatch, undecodable payload, unparsable document) marks the end
//!    of the committed prefix: the file is truncated there and every
//!    later WAL segment — which can only hold records committed *after*
//!    the torn one — is deleted.
//! 3. Stale files (WAL segments at or below the snapshot's sequence,
//!    superseded snapshots) are removed.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::segment::{apply_record, read_snapshot, CollectionImage, DbImage};
use crate::wal::{scan_frames, Record, WAL_MAGIC};

/// What recovery reconstructed.
pub struct Recovered {
    /// Collection name → image, in first-seen order (snapshot order, then
    /// WAL creation order).
    pub image: DbImage,
    /// The next unused sequence number (the reopened WAL starts here).
    pub next_seq: u64,
    /// Sequence of the snapshot the state is based on (0 = none).
    pub snapshot_seq: u64,
    /// Whether a torn WAL tail was truncated.
    pub truncated: bool,
}

fn numbered(dir: &Path, prefix: &str, suffix: &str) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = name
            .strip_prefix(prefix)
            .and_then(|rest| rest.strip_suffix(suffix))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            out.push((seq, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

/// Recovers the database image from `dir`, truncating any torn WAL tail
/// and deleting files the recovered state supersedes.
pub fn recover(dir: &Path) -> io::Result<Recovered> {
    let snapshots = numbered(dir, "snap-", ".seg")?;
    let wals = numbered(dir, "wal-", ".log")?;

    // Newest intact snapshot wins; corrupt ones are removed.
    let mut image: DbImage = Vec::new();
    let mut snapshot_seq = 0u64;
    let mut stale: Vec<PathBuf> = Vec::new();
    for (seq, path) in snapshots.iter().rev() {
        match read_snapshot(path)? {
            Some(loaded) => {
                image = loaded;
                snapshot_seq = *seq;
                break;
            }
            None => stale.push(path.clone()),
        }
    }
    // Snapshots older than the one loaded are superseded.
    for (seq, path) in &snapshots {
        if *seq < snapshot_seq {
            stale.push(path.clone());
        }
    }

    let mut truncated = false;
    let mut max_seq = snapshot_seq;
    let mut replay_done = false;
    // The last replayed segment and whether it ended with a rotation
    // seal. Recovery seals an unsealed tail before the store opens a new
    // active segment, so the next recovery knows the log continues.
    let mut tail: Option<(PathBuf, bool)> = None;
    for (seq, path) in &wals {
        if *seq <= snapshot_seq {
            stale.push(path.clone()); // folded into the snapshot already
            continue;
        }
        if replay_done {
            // Everything after a torn segment was committed later than
            // the tear; keeping it would violate the prefix invariant.
            stale.push(path.clone());
            continue;
        }
        max_seq = max_seq.max(*seq);
        let bytes = fs::read(path)?;
        let scan = scan_frames(&bytes, WAL_MAGIC);
        let mut valid = scan.valid_bytes;
        let mut records_applied = 0usize;
        for record in &scan.records {
            // A CRC-valid Insert whose document does not parse is treated
            // as the start of the torn tail too: replay stops, the file
            // is truncated just before it.
            if matches!(record, Record::Insert { .. }) && record.parse_doc().is_none() {
                valid = frame_offset(&bytes, records_applied);
                break;
            }
            apply_record(&mut image, record.clone());
            records_applied += 1;
        }
        let tore_here = scan.torn || records_applied < scan.records.len();
        let sealed = !tore_here && matches!(scan.records.last(), Some(Record::Rotate));
        if tore_here {
            truncated = true;
            replay_done = true;
            let file = fs::OpenOptions::new().write(true).open(path)?;
            file.set_len(valid.max(WAL_MAGIC.len() as u64))?;
        } else if !sealed {
            // Clean EOF but no rotation seal: this is the end of the log.
            // A truncation landing exactly on a frame boundary looks just
            // like this — without the seal it cannot be a rotation, so
            // anything in later segments was committed after this point
            // and must not survive.
            replay_done = true;
        }
        tail = Some((path.clone(), sealed));
    }

    for path in stale {
        let _ = fs::remove_file(path);
    }

    // Seal the accepted tail: its recovered content is now authoritative,
    // and the store will continue the log in a fresh segment. Without
    // this, the next recovery would mistake the old tail for the end of
    // the log and drop everything written since.
    if let Some((path, false)) = tail {
        let mut file = fs::OpenOptions::new().append(true).open(path)?;
        io::Write::write_all(&mut file, &Record::Rotate.frame())?;
    }

    Ok(Recovered {
        image,
        next_seq: max_seq + 1,
        snapshot_seq,
        truncated,
    })
}

/// Byte offset of the `n`-th frame in a scanned segment (frames 0..n are
/// valid by construction when this is called).
fn frame_offset(bytes: &[u8], n: usize) -> u64 {
    let mut pos = WAL_MAGIC.len();
    for _ in 0..n {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("valid frame")) as usize;
        pos += 8 + len;
    }
    pos as u64
}

/// Convenience for tests and the store: an empty image entry.
pub fn empty_collection() -> CollectionImage {
    CollectionImage::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::write_snapshot;
    use crate::wal::{wal_path, Wal};

    #[test]
    fn empty_dir_recovers_empty() {
        let dir = crate::test_dir("recover_empty");
        let r = recover(&dir).unwrap();
        assert!(r.image.is_empty());
        assert_eq!(r.next_seq, 1);
        assert!(!r.truncated);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_replay_reconstructs_collections_and_indexes() {
        let dir = crate::test_dir("recover_replay");
        let mut wal = Wal::create(&dir, 1, u64::MAX).unwrap();
        wal.append(&Record::Collection { name: "t".into() })
            .unwrap();
        wal.append(&Record::Index {
            collection: "t".into(),
            field: "name".into(),
        })
        .unwrap();
        wal.append(&Record::Insert {
            collection: "t".into(),
            doc: r#"{"name":"a"}"#.into(),
        })
        .unwrap();
        wal.flush().unwrap();
        let r = recover(&dir).unwrap();
        assert_eq!(r.image.len(), 1);
        assert_eq!(r.image[0].0, "t");
        assert_eq!(r.image[0].1.index_fields, vec!["name".to_string()]);
        assert_eq!(r.image[0].1.docs, vec![r#"{"name":"a"}"#.to_string()]);
        assert!(!r.truncated);
        assert_eq!(r.next_seq, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_later_segments_dropped() {
        let dir = crate::test_dir("recover_torn");
        {
            let mut wal = Wal::create(&dir, 1, u64::MAX).unwrap();
            wal.append(&Record::Insert {
                collection: "t".into(),
                doc: r#"{"i":0}"#.into(),
            })
            .unwrap();
            wal.append(&Record::Insert {
                collection: "t".into(),
                doc: r#"{"i":1}"#.into(),
            })
            .unwrap();
            wal.flush().unwrap();
        }
        {
            let mut wal = Wal::create(&dir, 2, u64::MAX).unwrap();
            wal.append(&Record::Insert {
                collection: "t".into(),
                doc: r#"{"i":2}"#.into(),
            })
            .unwrap();
            wal.flush().unwrap();
        }
        // Tear segment 1 in the middle of its second frame.
        let p1 = wal_path(&dir, 1);
        let bytes = fs::read(&p1).unwrap();
        fs::write(&p1, &bytes[..bytes.len() - 3]).unwrap();

        let r = recover(&dir).unwrap();
        assert!(r.truncated);
        // Only the first committed record survives; segment 2's record was
        // committed after the tear and must not reappear.
        assert_eq!(r.image[0].1.docs, vec![r#"{"i":0}"#.to_string()]);
        assert!(!wal_path(&dir, 2).exists(), "later segment deleted");
        // Recovery is idempotent: a second pass sees a clean prefix.
        let r2 = recover(&dir).unwrap();
        assert!(!r2.truncated);
        assert_eq!(r2.image[0].1.docs, vec![r#"{"i":0}"#.to_string()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_plus_wal_compose() {
        let dir = crate::test_dir("recover_compose");
        let image = vec![(
            "t".to_string(),
            CollectionImage {
                index_fields: vec!["k".to_string()],
                docs: vec![r#"{"k":1}"#.to_string()],
            },
        )];
        write_snapshot(&dir, 2, &image).unwrap();
        // A stale pre-snapshot WAL segment must be ignored (and removed).
        {
            let mut wal = Wal::create(&dir, 1, u64::MAX).unwrap();
            wal.append(&Record::Insert {
                collection: "t".into(),
                doc: r#"{"k":99}"#.into(),
            })
            .unwrap();
            wal.flush().unwrap();
        }
        {
            let mut wal = Wal::create(&dir, 3, u64::MAX).unwrap();
            wal.append(&Record::Insert {
                collection: "t".into(),
                doc: r#"{"k":2}"#.into(),
            })
            .unwrap();
            wal.flush().unwrap();
        }
        let r = recover(&dir).unwrap();
        assert_eq!(r.snapshot_seq, 2);
        assert_eq!(
            r.image[0].1.docs,
            vec![r#"{"k":1}"#.to_string(), r#"{"k":2}"#.to_string()]
        );
        assert_eq!(r.image[0].1.index_fields, vec!["k".to_string()]);
        assert!(!wal_path(&dir, 1).exists(), "stale segment removed");
        assert_eq!(r.next_seq, 4);
        fs::remove_dir_all(&dir).unwrap();
    }
}
