//! Filtering and aggregation over document snapshots.
//!
//! This is deliberately a small fraction of SQL — exactly the shapes the
//! Workflow Scheduler needs: "the observed runtimes of earlier tasks of
//! the same signature … running on either the same or other compute
//! nodes", "the names and sizes of the files being processed", and "the
//! data transfer times for obtaining this input data" (paper §3.4), plus
//! the manual aggregation queries §3.5 advertises.

use hiway_format::json::Json;

/// Comparison operators for filters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// A single field predicate.
#[derive(Clone, Debug)]
pub struct Filter {
    clauses: Vec<(String, Op, Json)>,
}

impl Filter {
    pub fn new() -> Filter {
        Filter {
            clauses: Vec::new(),
        }
    }

    pub fn and(mut self, field: &str, op: Op, value: impl Into<Json>) -> Filter {
        self.clauses.push((field.to_string(), op, value.into()));
        self
    }

    /// True when every clause holds. Numeric comparisons require numbers;
    /// `Eq`/`Ne` work on any type; ordering on strings is lexicographic.
    pub fn matches(&self, doc: &Json) -> bool {
        self.clauses.iter().all(|(field, op, expected)| {
            let actual = match doc.get(field) {
                Some(v) => v,
                None => return false,
            };
            match op {
                Op::Eq => actual == expected,
                Op::Ne => actual != expected,
                Op::Lt | Op::Le | Op::Gt | Op::Ge => match (actual, expected) {
                    (Json::Number(a), Json::Number(b)) => cmp_holds(*op, a.partial_cmp(b)),
                    (Json::String(a), Json::String(b)) => cmp_holds(*op, Some(a.cmp(b))),
                    _ => false,
                },
            }
        })
    }
}

impl Default for Filter {
    fn default() -> Filter {
        Filter::new()
    }
}

fn cmp_holds(op: Op, ord: Option<std::cmp::Ordering>) -> bool {
    use std::cmp::Ordering::*;
    matches!(
        (op, ord),
        (Op::Lt, Some(Less))
            | (Op::Le, Some(Less | Equal))
            | (Op::Gt, Some(Greater))
            | (Op::Ge, Some(Greater | Equal))
    )
}

/// A fluent query over a snapshot of documents.
pub struct Query {
    docs: Vec<Json>,
    filter: Filter,
}

impl Query {
    pub(crate) fn new(docs: Vec<Json>) -> Query {
        Query {
            docs,
            filter: Filter::new(),
        }
    }

    pub fn filter(mut self, field: &str, op: Op, value: impl Into<Json>) -> Query {
        self.filter = self.filter.and(field, op, value);
        self
    }

    /// Materializes the matching documents, in insertion order.
    pub fn collect(self) -> Vec<Json> {
        self.docs
            .into_iter()
            .filter(|d| self.filter.matches(d))
            .collect()
    }

    /// The last matching document (the "latest observation" the adaptive
    /// scheduler bases its runtime estimates on).
    pub fn last(self) -> Option<Json> {
        self.collect().into_iter().next_back()
    }

    /// Aggregates a numeric field over the matching documents.
    pub fn aggregate(self, field: &str, agg: Aggregate) -> Option<f64> {
        let values: Vec<f64> = self
            .collect()
            .iter()
            .filter_map(|d| d.get(field).and_then(Json::as_f64))
            .collect();
        agg.apply(&values)
    }

    /// Groups matching documents by a scalar field and aggregates another
    /// field per group. Returns (group key rendering, aggregate) pairs,
    /// sorted by key for deterministic output.
    pub fn group_aggregate(
        self,
        group_field: &str,
        value_field: &str,
        agg: Aggregate,
    ) -> Vec<(String, f64)> {
        let mut groups: std::collections::BTreeMap<String, Vec<f64>> =
            std::collections::BTreeMap::new();
        for doc in self.collect() {
            let key = match doc.get(group_field) {
                Some(Json::String(s)) => s.clone(),
                Some(Json::Number(n)) => format!("{n}"),
                Some(Json::Bool(b)) => format!("{b}"),
                _ => continue,
            };
            if let Some(v) = doc.get(value_field).and_then(Json::as_f64) {
                groups.entry(key).or_default().push(v);
            }
        }
        groups
            .into_iter()
            .filter_map(|(k, vs)| agg.apply(&vs).map(|a| (k, a)))
            .collect()
    }
}

/// Aggregation functions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Aggregate {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl Aggregate {
    pub fn apply(self, values: &[f64]) -> Option<f64> {
        if values.is_empty() {
            return match self {
                Aggregate::Count => Some(0.0),
                _ => None,
            };
        }
        Some(match self {
            Aggregate::Count => values.len() as f64,
            Aggregate::Sum => values.iter().sum(),
            Aggregate::Avg => values.iter().sum::<f64>() / values.len() as f64,
            Aggregate::Min => values.iter().cloned().fold(f64::INFINITY, f64::min),
            Aggregate::Max => values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Collection;

    fn seeded() -> Collection {
        let c = Collection::default();
        for (task, node, runtime) in [
            ("align", "n0", 10.0),
            ("align", "n1", 20.0),
            ("align", "n0", 12.0),
            ("sort", "n0", 5.0),
            ("sort", "n1", 6.0),
        ] {
            c.insert(
                Json::object()
                    .with("task", task)
                    .with("node", node)
                    .with("runtime", runtime),
            );
        }
        c
    }

    #[test]
    fn filter_composition() {
        let c = seeded();
        let hits = c
            .query()
            .filter("task", Op::Eq, "align")
            .filter("node", Op::Eq, "n0")
            .collect();
        assert_eq!(hits.len(), 2);
        let fast = c.query().filter("runtime", Op::Lt, 10.0).collect();
        assert_eq!(fast.len(), 2);
    }

    #[test]
    fn last_returns_latest_observation() {
        let c = seeded();
        let latest = c
            .query()
            .filter("task", Op::Eq, "align")
            .filter("node", Op::Eq, "n0")
            .last()
            .unwrap();
        assert_eq!(latest.get("runtime").unwrap().as_f64(), Some(12.0));
    }

    #[test]
    fn aggregates() {
        let c = seeded();
        let q = || c.query().filter("task", Op::Eq, "align");
        assert_eq!(q().aggregate("runtime", Aggregate::Count), Some(3.0));
        assert_eq!(q().aggregate("runtime", Aggregate::Sum), Some(42.0));
        assert_eq!(q().aggregate("runtime", Aggregate::Avg), Some(14.0));
        assert_eq!(q().aggregate("runtime", Aggregate::Min), Some(10.0));
        assert_eq!(q().aggregate("runtime", Aggregate::Max), Some(20.0));
        // Empty group: count 0, other aggregates None.
        let none = c.query().filter("task", Op::Eq, "nope");
        assert_eq!(none.aggregate("runtime", Aggregate::Avg), None);
        let zero = c.query().filter("task", Op::Eq, "nope");
        assert_eq!(zero.aggregate("runtime", Aggregate::Count), Some(0.0));
    }

    #[test]
    fn group_aggregate_by_node() {
        let c = seeded();
        let groups = c.query().group_aggregate("node", "runtime", Aggregate::Avg);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, "n0");
        assert!((groups[0].1 - 9.0).abs() < 1e-9); // (10+12+5)/3
        assert!((groups[1].1 - 13.0).abs() < 1e-9); // (20+6)/2
    }

    #[test]
    fn missing_fields_never_match() {
        let c = Collection::default();
        c.insert(Json::object().with("x", 1u64));
        assert!(c.query().filter("y", Op::Eq, 1u64).collect().is_empty());
        assert!(
            c.query().filter("x", Op::Lt, "str").collect().is_empty(),
            "type mismatch"
        );
    }

    #[test]
    fn string_ordering_is_lexicographic() {
        let c = Collection::default();
        c.insert(Json::object().with("name", "alpha"));
        c.insert(Json::object().with("name", "beta"));
        let hits = c.query().filter("name", Op::Ge, "b").collect();
        assert_eq!(hits.len(), 1);
    }
}
