//! # hiway-provdb — an embedded document store for provenance data
//!
//! Hi-WAY's Provenance Manager stores JSON trace events either as files in
//! HDFS or — "to cope with such high volumes of data" on heavily used
//! installations — in a MySQL or Couchbase database, which "brings the
//! added benefit of facilitating manual queries and aggregation" (paper
//! §3.5). Neither database is in this reproduction's dependency budget, so
//! this crate provides the moral equivalent: an embedded, thread-safe,
//! schemaless document store with
//!
//! * named collections of JSON documents,
//! * hash indexes over scalar fields (built eagerly, maintained on insert),
//! * a small filter/projection query API, and
//! * grouped aggregation (count / sum / avg / min / max),
//! * JSON-lines export/import for durability.
//!
//! The Workflow Scheduler's statistics lookups (latest observed runtime of
//! a task signature on a machine, file sizes, transfer times — §3.4) are
//! expressed as queries against this store in `hiway-core`.

pub mod query;
pub mod store;

pub use query::{Aggregate, Filter, Op};
pub use store::{Collection, DocId, ProvDb};
