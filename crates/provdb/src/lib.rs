//! # hiway-provdb — an embedded document store for provenance data
//!
//! Hi-WAY's Provenance Manager stores JSON trace events either as files in
//! HDFS or — "to cope with such high volumes of data" on heavily used
//! installations — in a MySQL or Couchbase database, which "brings the
//! added benefit of facilitating manual queries and aggregation" (paper
//! §3.5). Neither database is in this reproduction's dependency budget, so
//! this crate provides the moral equivalent: an embedded, thread-safe,
//! schemaless document store with
//!
//! * named collections of JSON documents,
//! * hash indexes over scalar fields (built eagerly, maintained on insert),
//! * a small filter/projection query API, and
//! * grouped aggregation (count / sum / avg / min / max),
//! * JSON-lines export/import for durability.
//!
//! The Workflow Scheduler's statistics lookups (latest observed runtime of
//! a task signature on a machine, file sizes, transfer times — §3.4) are
//! expressed as queries against this store in `hiway-core`.
//!
//! Since the durability PR the store also has a disk engine: an
//! append-only, CRC-framed write-ahead log with segment rotation
//! ([`wal`]), explicit compaction into sorted snapshot segments
//! ([`segment`]), and crash-consistent recovery that truncates torn tails
//! and reconstructs collections *and index definitions* ([`recover`]).
//! [`ProvDb::open`] returns a database whose every mutation is logged
//! before the call returns; [`ProvDb::in_memory`] keeps the historical
//! volatile behavior.

pub mod query;
pub mod recover;
pub mod segment;
pub mod store;
pub mod wal;

pub use query::{Aggregate, Filter, Op};
pub use store::{Collection, DocId, DurableOptions, ProvDb};
pub use wal::DurabilityStats;

/// Unique scratch directory for this crate's tests.
#[cfg(test)]
pub(crate) fn test_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hiway-provdb-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}
