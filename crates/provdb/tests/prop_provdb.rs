//! Property battery for the durable storage engine.
//!
//! Two invariants from the durability design:
//!
//! 1. **Byte-determinism**: any sequence of operations (unicode documents,
//!    escapes, nested values; collection creation; index definitions;
//!    compaction at an arbitrary point) survives close-and-reopen with a
//!    byte-identical `export_all` dump, across WAL segment rotations.
//! 2. **Prefix recovery**: truncating the on-disk log at *any* byte
//!    offset, `ProvDb::open` succeeds (no panic, no partial record) and
//!    the recovered state equals the state after some prefix of the
//!    committed writes.
//!
//! Run with `PROPTEST_CASES=4000` in nightly CI for a deep sweep.

use proptest::prelude::*;

use hiway_format::json::Json;
use hiway_provdb::{DurableOptions, ProvDb};

/// Unique scratch directory per test case.
fn scratch(tag: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hiway-provdb-prop-{}-{tag}-{case}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Bounded arbitrary JSON documents: unicode, escapes, nesting.
fn arb_doc() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        (-1.0e9f64..1.0e9).prop_map(|n| Json::Number((n * 100.0).round() / 100.0)),
        "[a-zA-Z0-9 _/.:\\\\\"\n\t\u{e9}\u{4e16}\u{1f600}]{0,12}".prop_map(Json::String),
    ];
    leaf.prop_recursive(2, 12, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Json::Array),
            proptest::collection::vec(("[a-z]{1,6}", inner), 0..4).prop_map(|pairs| {
                let mut seen = std::collections::HashSet::new();
                Json::Object(
                    pairs
                        .into_iter()
                        .filter(|(k, _)| seen.insert(k.clone()))
                        .collect(),
                )
            }),
        ]
    })
}

/// One logical operation against the database.
#[derive(Clone, Debug)]
enum DbOp {
    Insert { collection: usize, doc: Json },
    Index { collection: usize, field: String },
}

const COLLECTIONS: [&str; 3] = ["tasks", "files", "workflow_\u{e9}vents"];

fn arb_ops() -> impl Strategy<Value = Vec<DbOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..COLLECTIONS.len(), arb_doc())
                .prop_map(|(collection, doc)| DbOp::Insert { collection, doc }),
            (0usize..COLLECTIONS.len(), "[a-c]{1}")
                .prop_map(|(collection, field)| DbOp::Index { collection, field }),
        ],
        1..12,
    )
}

fn apply(db: &ProvDb, op: &DbOp) {
    match op {
        DbOp::Insert { collection, doc } => {
            db.collection(COLLECTIONS[*collection]).insert(doc.clone());
        }
        DbOp::Index { collection, field } => {
            db.collection(COLLECTIONS[*collection]).create_index(field);
        }
    }
}

/// `export_all` after applying each prefix of `ops` to a fresh in-memory
/// database — the reference states the recovered database must be among.
fn prefix_exports(ops: &[DbOp]) -> Vec<String> {
    // Record-level granularity: a first touch of a collection is its own
    // committed write (the WAL logs it separately from the insert that
    // triggered it), so it contributes its own prefix state.
    let db = ProvDb::new();
    let mut exports = vec![db.export_all()];
    for op in ops {
        let name = COLLECTIONS[match op {
            DbOp::Insert { collection, .. } | DbOp::Index { collection, .. } => *collection,
        }];
        if !db.collection_names().contains(&name.to_string()) {
            db.collection(name);
            exports.push(db.export_all());
        }
        let before = db.export_all();
        apply(&db, op);
        let after = db.export_all();
        if after != before {
            exports.push(after);
        }
    }
    exports
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Invariant 1: close-and-reopen is byte-identical, with segment
    /// rotation forced and compaction at an arbitrary point.
    #[test]
    fn reopen_is_byte_identical(
        (ops, case, segment_bytes, compact_at) in (
            arb_ops(),
            0u64..u64::MAX,
            64u64..512,
            0usize..12,
        )
    ) {
        let dir = scratch("reopen", case);
        let expected = {
            let db = ProvDb::open_with(&dir, DurableOptions { segment_bytes })
                .expect("open fresh");
            for (i, op) in ops.iter().enumerate() {
                if i == compact_at % ops.len().max(1) {
                    db.compact().expect("compact mid-stream");
                }
                apply(&db, op);
            }
            db.export_all()
        };
        {
            let reopened = ProvDb::open(&dir).expect("reopen");
            prop_assert_eq!(reopened.export_all(), expected.clone(), "reopen");
            // Index *definitions* survived, not just documents.
            for name in reopened.collection_names() {
                let _ = reopened.collection(&name).index_fields();
            }
            reopened.compact().expect("compact at quiesce");
        }
        let again = ProvDb::open(&dir).expect("reopen after compaction");
        prop_assert_eq!(again.export_all(), expected, "post-compaction reopen");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Invariant 2: truncating the log at ANY byte offset recovers
    /// exactly a prefix of the committed writes.
    #[test]
    fn any_truncation_recovers_a_prefix(
        (ops, case, segment_bytes, cut_seed) in (
            arb_ops(),
            0u64..u64::MAX,
            64u64..512,
            0u64..u64::MAX,
        )
    ) {
        let dir = scratch("truncate", case);
        {
            let db = ProvDb::open_with(&dir, DurableOptions { segment_bytes })
                .expect("open fresh");
            for op in &ops {
                apply(&db, op);
            }
        }
        // Pick a byte offset across the concatenated WAL segments.
        let mut segments: Vec<(String, u64)> = std::fs::read_dir(&dir)
            .expect("list dir")
            .map(|e| e.expect("entry"))
            .filter(|e| e.file_name().to_string_lossy().starts_with("wal-"))
            .map(|e| {
                (
                    e.path().to_string_lossy().to_string(),
                    e.metadata().expect("meta").len(),
                )
            })
            .collect();
        segments.sort();
        let total: u64 = segments.iter().map(|(_, len)| len).sum();
        let cut = cut_seed % (total + 1);
        let mut remaining = cut;
        for (path, len) in &segments {
            if remaining < *len {
                let f = std::fs::OpenOptions::new()
                    .write(true)
                    .open(path)
                    .expect("open segment");
                f.set_len(remaining).expect("truncate");
                break;
            }
            remaining -= len;
        }
        // Recovery must succeed and land on a committed-write prefix.
        // (Segments after the cut are intentionally left in place:
        // recovery itself must drop them to preserve the invariant.)
        let recovered = ProvDb::open(&dir).expect("recovery never fails");
        let export = recovered.export_all();
        let prefixes = prefix_exports(&ops);
        prop_assert!(
            prefixes.contains(&export),
            "recovered state is not a prefix of committed writes\n cut {} of {}\n got:\n{}",
            cut,
            total,
            export
        );
        // Idempotence: recovering again reproduces the same state.
        drop(recovered);
        let again = ProvDb::open(&dir).expect("second recovery");
        prop_assert_eq!(again.export_all(), export);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The dump format round-trips arbitrary documents and index specs
    /// through text (`export_all` → `import_all`) byte-identically.
    #[test]
    fn dump_round_trip_is_stable((ops, case) in (arb_ops(), 0u64..u64::MAX)) {
        let _ = case;
        let db = ProvDb::new();
        for op in &ops {
            apply(&db, op);
        }
        let dump = db.export_all();
        let restored = ProvDb::new();
        restored.import_all(&dump).expect("own dump imports");
        prop_assert_eq!(restored.export_all(), dump.clone(), "dump stability");
        for name in db.collection_names() {
            prop_assert_eq!(
                restored.collection(&name).index_fields(),
                db.collection(&name).index_fields(),
                "index specs round-trip"
            );
        }
    }
}
