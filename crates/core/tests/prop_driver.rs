//! Property tests of the Workflow Driver: random layered DAGs always run
//! to completion with dependencies respected, under every dynamic
//! scheduler and under random task failures.

use proptest::prelude::*;

use hiway_core::cluster::Cluster;
use hiway_core::config::{HiwayConfig, SchedulerPolicy};
use hiway_core::driver::Runtime;
use hiway_lang::ir::{OutputSpec, StaticWorkflow, TaskCost, TaskId, TaskSpec};
use hiway_provdb::ProvDb;
use hiway_sim::{ClusterSpec, NodeSpec};

/// Builds a random layered DAG: `layers[i]` tasks in layer `i`, each
/// consuming 1–2 outputs of the previous layer (or the staged input).
fn layered_dag(layers: &[usize], cpu: f64) -> StaticWorkflow {
    let mut tasks = Vec::new();
    let mut id = 0u64;
    let mut prev_outputs: Vec<String> = vec!["/in".to_string()];
    for (li, &width) in layers.iter().enumerate() {
        let mut outputs = Vec::new();
        for w in 0..width {
            let out = format!("/l{li}_t{w}");
            let mut inputs = vec![prev_outputs[w % prev_outputs.len()].clone()];
            if prev_outputs.len() > 1 && w % 3 == 0 {
                inputs.push(prev_outputs[(w + 1) % prev_outputs.len()].clone());
            }
            tasks.push(TaskSpec {
                id: TaskId(id),
                name: format!("layer{li}"),
                command: format!("tool-l{li}"),
                inputs,
                outputs: vec![OutputSpec {
                    path: out.clone(),
                    size: 1 << 20,
                }],
                cost: TaskCost::new(cpu, 1 + (w % 2) as u32, 256),
            });
            outputs.push(out);
            id += 1;
        }
        prev_outputs = outputs;
    }
    StaticWorkflow::new("random-dag", "test", tasks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every random DAG completes under both dynamic schedulers, and no
    /// task starts before its producers finished.
    #[test]
    fn random_dags_complete_with_dependencies_respected(
        layers in proptest::collection::vec(1usize..5, 1..4),
        nodes in 2usize..5,
        data_aware in any::<bool>(),
        seed in 0u64..500,
    ) {
        let wf = layered_dag(&layers, 3.0);
        let producers: std::collections::HashMap<String, TaskId> = wf
            .tasks
            .iter()
            .flat_map(|t| t.outputs.iter().map(|o| (o.path.clone(), t.id)))
            .collect();
        let task_inputs: std::collections::HashMap<TaskId, Vec<String>> =
            wf.tasks.iter().map(|t| (t.id, t.inputs.clone())).collect();
        let total = wf.tasks.len();

        let spec = ClusterSpec::homogeneous(nodes, "w", &NodeSpec::m3_large("p"));
        let mut cluster = Cluster::new(spec, seed);
        cluster.prestage("/in", 4 << 20);
        let mut rt = Runtime::new(cluster);
        let policy = if data_aware { SchedulerPolicy::DataAware } else { SchedulerPolicy::Fcfs };
        let idx = rt.submit(
            Box::new(wf),
            HiwayConfig::default().with_scheduler(policy).with_seed(seed),
            ProvDb::new(),
        );
        let reports = rt.run_to_completion();
        prop_assert!(rt.error_of(idx).is_none(), "{:?}", rt.error_of(idx));
        prop_assert_eq!(reports[idx].tasks.len(), total);

        let end_of: std::collections::HashMap<TaskId, f64> =
            reports[idx].tasks.iter().map(|t| (t.id, t.t_end)).collect();
        for t in &reports[idx].tasks {
            for input in &task_inputs[&t.id] {
                if let Some(p) = producers.get(input) {
                    prop_assert!(
                        end_of[p] <= t.t_start + 1e-9,
                        "task {:?} started before producer {:?} finished",
                        t.id, p
                    );
                }
            }
        }
    }

    /// Random task failures with enough retries never prevent completion,
    /// and the attempt counts reflect the failures.
    #[test]
    fn random_failures_are_retried_to_completion(
        width in 2usize..6,
        failure_prob in 0.0f64..0.5,
        seed in 0u64..500,
    ) {
        let wf = layered_dag(&[width, width], 2.0);
        let total = wf.tasks.len();
        let spec = ClusterSpec::homogeneous(3, "w", &NodeSpec::m3_large("p"));
        let mut cluster = Cluster::new(spec, seed);
        cluster.prestage("/in", 1 << 20);
        let mut rt = Runtime::new(cluster);
        let mut config = HiwayConfig::default().with_seed(seed);
        config.task_failure_prob = failure_prob;
        config.task_retries = 50; // p<0.5 ⇒ 50 straight failures ≈ never
        let idx = rt.submit(Box::new(wf), config, ProvDb::new());
        let reports = rt.run_to_completion();
        prop_assert!(rt.error_of(idx).is_none(), "{:?}", rt.error_of(idx));
        prop_assert_eq!(reports[idx].tasks.len(), total);
        for t in &reports[idx].tasks {
            prop_assert!(t.attempts >= 1);
        }
    }
}
