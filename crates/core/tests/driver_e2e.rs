//! End-to-end tests of the AM runtime: whole workflows executed on the
//! simulated substrate.

use hiway_core::cluster::Cluster;
use hiway_core::config::{HiwayConfig, SchedulerPolicy};
use hiway_core::driver::Runtime;
use hiway_lang::cuneiform::CuneiformWorkflow;
use hiway_lang::ir::{OutputSpec, StaticWorkflow, TaskCost, TaskId, TaskSpec};
use hiway_provdb::ProvDb;
use hiway_sim::{ClusterSpec, NodeId, NodeSpec};

fn small_cluster(nodes: usize) -> Cluster {
    let spec = ClusterSpec::homogeneous(nodes, "w", &NodeSpec::m3_large("proto"));
    Cluster::new(spec, 7)
}

fn task(id: u64, name: &str, inputs: &[&str], outputs: &[(&str, u64)], cpu: f64) -> TaskSpec {
    TaskSpec {
        id: TaskId(id),
        name: name.into(),
        command: format!("{name} ..."),
        inputs: inputs.iter().map(|s| s.to_string()).collect(),
        outputs: outputs
            .iter()
            .map(|(p, s)| OutputSpec {
                path: p.to_string(),
                size: *s,
            })
            .collect(),
        cost: TaskCost::new(cpu, 1, 256),
    }
}

/// in → a → (b, c) → d diamond.
fn diamond() -> StaticWorkflow {
    StaticWorkflow::new(
        "diamond",
        "test",
        vec![
            task(0, "pre", &["/in"], &[("/a", 10 << 20)], 5.0),
            task(1, "left", &["/a"], &[("/b", 1 << 20)], 10.0),
            task(2, "right", &["/a"], &[("/c", 1 << 20)], 10.0),
            task(3, "join", &["/b", "/c"], &[("/d", 1 << 10)], 2.0),
        ],
    )
}

#[test]
fn diamond_runs_to_completion_fcfs() {
    let mut cluster = small_cluster(3);
    cluster.prestage("/in", 20 << 20);
    let mut rt = Runtime::new(cluster);
    let config = HiwayConfig::default().with_scheduler(SchedulerPolicy::Fcfs);
    let wf = rt.submit(Box::new(diamond()), config, ProvDb::new());
    let reports = rt.run_to_completion();
    assert!(rt.error_of(wf).is_none(), "{:?}", rt.error_of(wf));
    let r = &reports[wf];
    assert_eq!(r.tasks.len(), 4);
    assert!(
        r.runtime_secs() > 17.0,
        "at least the critical path of CPU time"
    );
    // Execution respected the dependencies.
    let t_of = |name: &str| r.tasks.iter().find(|t| t.name == name).unwrap();
    assert!(t_of("pre").t_end <= t_of("left").t_start);
    assert!(t_of("left").t_end <= t_of("join").t_start);
    assert!(t_of("right").t_end <= t_of("join").t_start);
    // All outputs are committed in HDFS.
    for p in ["/a", "/b", "/c", "/d"] {
        assert!(rt.cluster.hdfs.exists(p), "{p} missing");
    }
    // Provenance trace is re-executable.
    assert!(r.trace_path.is_some());
    let replay = hiway_lang::trace::parse_trace(&r.trace).unwrap();
    assert_eq!(replay.tasks.len(), 4);
}

#[test]
fn trace_replay_executes_the_same_tasks() {
    let mut cluster = small_cluster(3);
    cluster.prestage("/in", 20 << 20);
    let mut rt = Runtime::new(cluster);
    let wf = rt.submit(
        Box::new(diamond()),
        HiwayConfig::default().with_scheduler(SchedulerPolicy::Fcfs),
        ProvDb::new(),
    );
    let reports = rt.run_to_completion();
    let trace = reports[wf].trace.clone();

    // Re-execute the trace on a fresh cluster (§3.5: traces are intended
    // for the same cluster, with inputs still present).
    let replay = hiway_lang::trace::parse_trace(&trace).unwrap();
    let mut cluster2 = small_cluster(3);
    cluster2.prestage("/in", 20 << 20);
    let mut rt2 = Runtime::new(cluster2);
    let wf2 = rt2.submit(Box::new(replay), HiwayConfig::default(), ProvDb::new());
    let reports2 = rt2.run_to_completion();
    assert!(rt2.error_of(wf2).is_none(), "{:?}", rt2.error_of(wf2));
    assert_eq!(reports2[wf2].tasks.len(), 4);
    let mut names: Vec<&str> = reports2[wf2]
        .tasks
        .iter()
        .map(|t| t.name.as_str())
        .collect();
    names.sort_unstable();
    assert_eq!(names, vec!["join", "left", "pre", "right"]);
}

#[test]
fn parallel_tasks_use_multiple_nodes() {
    let mut cluster = small_cluster(4);
    cluster.prestage("/in", 1 << 20);
    // Fan-out of 8 independent tasks.
    let tasks: Vec<TaskSpec> = (0..8)
        .map(|i| task(i, "fan", &["/in"], &[(&format!("/out{i}"), 1 << 20)], 30.0))
        .collect();
    let wf = StaticWorkflow::new("fan", "test", tasks);
    let mut rt = Runtime::new(cluster);
    let idx = rt.submit(
        Box::new(wf),
        HiwayConfig::default().with_scheduler(SchedulerPolicy::Fcfs),
        ProvDb::new(),
    );
    let reports = rt.run_to_completion();
    assert!(rt.error_of(idx).is_none());
    let nodes: std::collections::HashSet<&str> =
        reports[idx].tasks.iter().map(|t| t.node.as_str()).collect();
    assert!(nodes.len() >= 3, "work spread over nodes: {nodes:?}");
    // 8 tasks × 30 CPU-s on ≥6 concurrently usable cores: well under 8×30s.
    assert!(reports[idx].runtime_secs() < 8.0 * 30.0);
}

#[test]
fn kmeans_iterative_cuneiform_workflow() {
    let src = r#"
        deftask kmeans_step( out("cents_{1}.dat", 1000000) : c i )
            cpu 20 threads 2 mem 1000 yield add(i, 1);
        defun iterate(c, i) =
            let next = kmeans_step(c, i);
            if lt(val(next), 4) then iterate(next, val(next)) else next;
        let seed = file("/cents_init.dat", 1000000);
        target iterate(seed, 0);
    "#;
    let wf = CuneiformWorkflow::parse("kmeans", src, 3).unwrap();
    let mut cluster = small_cluster(2);
    cluster.prestage("/cents_init.dat", 1_000_000);
    let mut rt = Runtime::new(cluster);
    let idx = rt.submit(Box::new(wf), HiwayConfig::default(), ProvDb::new());
    let reports = rt.run_to_completion();
    assert!(rt.error_of(idx).is_none(), "{:?}", rt.error_of(idx));
    // Four refinement iterations, discovered one at a time (i = 0..=3).
    assert_eq!(reports[idx].tasks.len(), 4);
    for round in 0..=3 {
        assert!(rt.cluster.hdfs.exists(&format!("cents_{round}.dat")));
    }
}

#[test]
fn static_scheduler_rejects_iterative_language() {
    let src = r#"
        deftask t( out("o.dat", 1) : x ) cpu 1;
        target t(file("/in", 1));
    "#;
    let wf = CuneiformWorkflow::parse("iter", src, 0).unwrap();
    let mut cluster = small_cluster(2);
    cluster.prestage("/in", 1);
    let mut rt = Runtime::new(cluster);
    let idx = rt.submit(
        Box::new(wf),
        HiwayConfig::default().with_scheduler(SchedulerPolicy::Heft),
        ProvDb::new(),
    );
    rt.run_to_completion();
    let err = rt.error_of(idx).expect("must fail");
    assert!(err.contains("static scheduling policy"), "{err}");
}

#[test]
fn round_robin_assigns_tasks_in_equal_numbers() {
    let mut cluster = small_cluster(3);
    cluster.prestage("/in", 1 << 20);
    let tasks: Vec<TaskSpec> = (0..9)
        .map(|i| task(i, "t", &["/in"], &[(&format!("/o{i}"), 1 << 10)], 10.0))
        .collect();
    let mut rt = Runtime::new(cluster);
    let idx = rt.submit(
        Box::new(StaticWorkflow::new("rr", "test", tasks)),
        HiwayConfig::default().with_scheduler(SchedulerPolicy::RoundRobin),
        ProvDb::new(),
    );
    let reports = rt.run_to_completion();
    assert!(rt.error_of(idx).is_none(), "{:?}", rt.error_of(idx));
    let mut counts: std::collections::HashMap<&str, usize> = Default::default();
    for t in &reports[idx].tasks {
        *counts.entry(t.node.as_str()).or_default() += 1;
    }
    assert_eq!(counts.len(), 3);
    for (_, c) in counts {
        assert_eq!(c, 3, "round-robin assigns in equal numbers");
    }
}

#[test]
fn failed_attempts_are_retried_and_recorded() {
    let mut cluster = small_cluster(3);
    cluster.prestage("/in", 1 << 20);
    let tasks: Vec<TaskSpec> = (0..6)
        .map(|i| task(i, "flaky", &["/in"], &[(&format!("/o{i}"), 1 << 10)], 5.0))
        .collect();
    let mut rt = Runtime::new(cluster);
    let mut config = HiwayConfig::default().with_scheduler(SchedulerPolicy::Fcfs);
    config.task_failure_prob = 0.3;
    config.task_retries = 10;
    config.seed = 5;
    let idx = rt.submit(
        Box::new(StaticWorkflow::new("flaky", "test", tasks)),
        config,
        ProvDb::new(),
    );
    let reports = rt.run_to_completion();
    assert!(rt.error_of(idx).is_none(), "{:?}", rt.error_of(idx));
    assert_eq!(reports[idx].tasks.len(), 6);
    let total_attempts: u32 = reports[idx].tasks.iter().map(|t| t.attempts).sum();
    assert!(
        total_attempts > 6,
        "with p=0.3 some attempt must have failed"
    );
}

#[test]
fn retry_exhaustion_fails_the_workflow() {
    let mut cluster = small_cluster(2);
    cluster.prestage("/in", 1 << 10);
    let mut rt = Runtime::new(cluster);
    let config = HiwayConfig {
        task_failure_prob: 1.0, // every attempt dies
        task_retries: 2,
        ..HiwayConfig::default()
    };
    let idx = rt.submit(
        Box::new(StaticWorkflow::new(
            "doomed",
            "test",
            vec![task(0, "t", &["/in"], &[("/o", 1)], 1.0)],
        )),
        config,
        ProvDb::new(),
    );
    rt.run_to_completion();
    let err = rt.error_of(idx).expect("must fail");
    assert!(err.contains("failed too many times"), "{err}");
}

#[test]
fn node_failure_retries_on_surviving_nodes() {
    let mut cluster = small_cluster(4);
    cluster.prestage("/in", 64 << 20);
    let tasks: Vec<TaskSpec> = (0..4)
        .map(|i| task(i, "long", &["/in"], &[(&format!("/o{i}"), 1 << 20)], 300.0))
        .collect();
    let mut rt = Runtime::new(cluster);
    let idx = rt.submit(
        Box::new(StaticWorkflow::new("survivor", "test", tasks)),
        HiwayConfig::default().with_scheduler(SchedulerPolicy::Fcfs),
        ProvDb::new(),
    );
    // Kill a worker node before execution starts: every container and
    // replica placement must route around it.
    rt.fail_node(NodeId(1));
    rt.cluster.re_replicate();
    let reports = rt.run_to_completion();
    assert!(rt.error_of(idx).is_none(), "{:?}", rt.error_of(idx));
    assert_eq!(reports[idx].tasks.len(), 4);
    for t in &reports[idx].tasks {
        assert_ne!(t.node, "w-1", "dead node must not run tasks");
    }
}

#[test]
fn two_concurrent_workflows_share_the_cluster() {
    let mut cluster = small_cluster(4);
    cluster.prestage("/in", 1 << 20);
    let wf_a: Vec<TaskSpec> = (0..4)
        .map(|i| task(i, "a", &["/in"], &[(&format!("/a{i}"), 1 << 10)], 20.0))
        .collect();
    let wf_b: Vec<TaskSpec> = (0..4)
        .map(|i| task(i, "b", &["/in"], &[(&format!("/b{i}"), 1 << 10)], 20.0))
        .collect();
    let mut rt = Runtime::new(cluster);
    let ia = rt.submit(
        Box::new(StaticWorkflow::new("wf-a", "test", wf_a)),
        HiwayConfig::default(),
        ProvDb::new(),
    );
    let ib = rt.submit(
        Box::new(StaticWorkflow::new("wf-b", "test", wf_b)),
        HiwayConfig::default(),
        ProvDb::new(),
    );
    let reports = rt.run_to_completion();
    assert!(rt.error_of(ia).is_none());
    assert!(rt.error_of(ib).is_none());
    assert_eq!(reports[ia].tasks.len(), 4);
    assert_eq!(reports[ib].tasks.len(), 4);
    assert_eq!(reports[ia].name, "wf-a");
    assert_eq!(reports[ib].name, "wf-b");
}

#[test]
fn missing_input_stalls_with_diagnostic() {
    let cluster = small_cluster(2); // note: /in never staged
    let mut rt = Runtime::new(cluster);
    let idx = rt.submit(
        Box::new(StaticWorkflow::new(
            "stuck",
            "test",
            vec![task(0, "t", &["/never-staged"], &[("/o", 1)], 1.0)],
        )),
        HiwayConfig::default(),
        ProvDb::new(),
    );
    rt.run_to_completion();
    let err = rt.error_of(idx).expect("must stall");
    assert!(err.contains("stalled"), "{err}");
}

#[test]
fn provenance_feeds_shared_database_across_runs() {
    let db = ProvDb::new();
    for run in 0..2 {
        let mut cluster = small_cluster(2);
        cluster.prestage("/in", 1 << 20);
        let mut rt = Runtime::new(cluster);
        let idx = rt.submit(
            Box::new(StaticWorkflow::new(
                "repeat",
                "test",
                vec![task(0, "sig", &["/in"], &[("/o", 1 << 10)], 10.0)],
            )),
            HiwayConfig::default().with_seed(run),
            db.clone(),
        );
        let _ = rt.run_to_completion();
        assert!(rt.error_of(idx).is_none());
    }
    // Two executions of signature "sig" accumulated in the shared store.
    let tasks = db.collection(hiway_core::provenance::TASKS_COLLECTION);
    assert_eq!(tasks.len(), 2);
}

#[test]
fn external_inputs_are_fetched_during_execution() {
    let mut spec = ClusterSpec::homogeneous(2, "w", &NodeSpec::m3_large("p"));
    let s3 = spec.add_external(hiway_sim::ExternalSpec::s3());
    let mut cluster = Cluster::new(spec, 1);
    cluster.register_external_file("s3://bucket/reads.fq", s3, 800 << 20);
    let mut rt = Runtime::new(cluster);
    let idx = rt.submit(
        Box::new(StaticWorkflow::new(
            "s3-fetch",
            "test",
            vec![task(
                0,
                "align",
                &["s3://bucket/reads.fq"],
                &[("/aln", 80 << 20)],
                10.0,
            )],
        )),
        HiwayConfig::default(),
        ProvDb::new(),
    );
    let reports = rt.run_to_completion();
    assert!(rt.error_of(idx).is_none(), "{:?}", rt.error_of(idx));
    // 800 MiB at the S3 per-flow cap of 80 MB/s ⇒ ≥ 10.4 s stage-in, plus
    // 10 s compute and the stage-out.
    assert!(reports[idx].runtime_secs() > 20.0);
    assert!(rt.cluster.hdfs.exists("/aln"));
}

#[test]
fn tailored_containers_pack_mixed_workloads_tighter() {
    // §5 future work: uniform whole-node containers waste cores on
    // single-threaded tasks; tailored containers pack them.
    let build_tasks = || -> Vec<TaskSpec> {
        let mut tasks = Vec::new();
        for i in 0..4 {
            tasks.push(TaskSpec {
                id: TaskId(i),
                name: "heavy".into(),
                command: "heavy".into(),
                inputs: vec!["/in".into()],
                outputs: vec![OutputSpec {
                    path: format!("/h{i}"),
                    size: 1 << 10,
                }],
                cost: hiway_lang::TaskCost {
                    cpu_seconds: 40.0,
                    threads: 2,
                    memory_mb: 4000,
                    scratch_bytes: 0,
                },
            });
        }
        for i in 0..8 {
            tasks.push(TaskSpec {
                id: TaskId(4 + i),
                name: "light".into(),
                command: "light".into(),
                inputs: vec!["/in".into()],
                outputs: vec![OutputSpec {
                    path: format!("/l{i}"),
                    size: 1 << 10,
                }],
                cost: hiway_lang::TaskCost {
                    cpu_seconds: 20.0,
                    threads: 1,
                    memory_mb: 1000,
                    scratch_bytes: 0,
                },
            });
        }
        tasks
    };
    let run = |tailored: bool| -> f64 {
        let mut cluster = small_cluster(2); // m3.large: 2 cores, 7.5 GB
        cluster.prestage("/in", 1 << 20);
        let mut rt = Runtime::new(cluster);
        let mut config = HiwayConfig::default().with_scheduler(SchedulerPolicy::Fcfs);
        if tailored {
            config.tailored_containers = true;
        } else {
            // Uniform whole-node containers (2 vcores each).
            config.container_resource = hiway_yarn::Resource::new(2, 7000);
        }
        let idx = rt.submit(
            Box::new(StaticWorkflow::new("mixed", "test", build_tasks())),
            config,
            ProvDb::new(),
        );
        let reports = rt.run_to_completion();
        assert!(rt.error_of(idx).is_none(), "{:?}", rt.error_of(idx));
        reports[idx].runtime_secs()
    };
    let uniform = run(false);
    let tailored = run(true);
    assert!(
        tailored < uniform * 0.85,
        "tailored {tailored:.1}s vs uniform {uniform:.1}s"
    );
}

#[test]
fn adaptive_scheduler_runs_iterative_workflows_and_learns() {
    // The dynamic adaptive policy composes with iterative languages
    // (unlike HEFT) and improves with provenance on a heterogeneous
    // cluster: the k-means-shaped recursion below re-runs the same task
    // signature, and warm estimates steer it off the slow node.
    let src = r#"
        deftask step( out("/it/out_{1}.dat", 1000000) : c i )
            cpu 30 threads 1 mem 512 yield add(i, 1);
        defun iterate(c, i) =
            let next = step(c, i);
            if lt(val(next), 8) then iterate(next, val(next)) else next;
        let seed = file("/it/seed.dat", 1000000);
        target iterate(seed, 0);
    "#;
    let run = |db: hiway_provdb::ProvDb, seed: u64| -> f64 {
        let spec = ClusterSpec::homogeneous(3, "w", &NodeSpec::m3_large("proto"));
        let mut cluster = Cluster::new(spec, seed);
        // Node 2 is heavily CPU-stressed: 30 CPU-s take ~5x longer there.
        cluster.add_cpu_stress(NodeId(2), 8);
        cluster.prestage("/it/seed.dat", 1_000_000);
        let wf = CuneiformWorkflow::parse("iterative-adaptive", src, seed).unwrap();
        let mut rt = Runtime::new(cluster);
        let config = HiwayConfig::default()
            .with_scheduler(SchedulerPolicy::Adaptive)
            .with_seed(seed);
        let idx = rt.submit(Box::new(wf), config, db);
        let reports = rt.run_to_completion();
        assert!(rt.error_of(idx).is_none(), "{:?}", rt.error_of(idx));
        assert_eq!(reports[idx].tasks.len(), 8, "8 recursion rounds");
        reports[idx].runtime_secs()
    };
    // Cold (empty provenance), then two warm runs sharing a database.
    let shared = hiway_provdb::ProvDb::new();
    let first = run(shared.clone(), 1);
    let second = run(shared.clone(), 2);
    let third = run(shared, 3);
    // Learning effect: once the slow node has been observed, the chain
    // stays on fast nodes.
    assert!(
        third <= second && third < first,
        "no learning: {first:.0}s, {second:.0}s, {third:.0}s"
    );
}

#[test]
fn scratch_io_extends_execution_on_local_disk() {
    // Two identical tasks, one with 1 GiB of working-directory I/O: the
    // scratch round-trip (write + read back on the local disk) must show
    // up in the makespan.
    let run = |scratch: u64| -> f64 {
        let mut cluster = small_cluster(1);
        cluster.prestage("/in", 1 << 20);
        let spec = TaskSpec {
            id: TaskId(0),
            name: "tool".into(),
            command: "tool".into(),
            inputs: vec!["/in".into()],
            outputs: vec![OutputSpec {
                path: "/out".into(),
                size: 1 << 20,
            }],
            cost: TaskCost::new(10.0, 1, 256).with_scratch(scratch),
        };
        let mut rt = Runtime::new(cluster);
        let idx = rt.submit(
            Box::new(StaticWorkflow::new("s", "test", vec![spec])),
            HiwayConfig::default(),
            ProvDb::new(),
        );
        let reports = rt.run_to_completion();
        assert!(rt.error_of(idx).is_none(), "{:?}", rt.error_of(idx));
        reports[idx].tasks[0].makespan()
    };
    let without = run(0);
    let with = run(1 << 30);
    // 1 GiB write at 180 MB/s then read at 220 MB/s ≈ 6 + 4.9 s… the two
    // streams run concurrently, so ≥ max(6, 4.9) s extra.
    assert!(
        with > without + 5.0,
        "scratch not charged: {with:.1}s vs {without:.1}s"
    );
}

#[test]
fn node_failure_while_tasks_are_running_is_recovered() {
    // Let the workflow run for a while, then kill a node that is actively
    // executing tasks: in-flight activities must be cancelled, the tasks
    // retried elsewhere, and the workflow still complete.
    let mut cluster = small_cluster(4);
    cluster.prestage("/in", 128 << 20);
    let tasks: Vec<TaskSpec> = (0..8)
        .map(|i| task(i, "long", &["/in"], &[(&format!("/o{i}"), 8 << 20)], 200.0))
        .collect();
    let mut rt = Runtime::new(cluster);
    let idx = rt.submit(
        Box::new(StaticWorkflow::new("chaos", "test", tasks)),
        HiwayConfig::default().with_scheduler(SchedulerPolicy::Fcfs),
        ProvDb::new(),
    );
    // Run 60 virtual seconds: everything is mid-exec by then.
    let still_active = rt.run_until(hiway_sim::SimTime::from_secs(60.0));
    assert!(still_active, "workflow must still be running at t=60");
    let victim = NodeId(2);
    rt.fail_node(victim);
    rt.cluster.re_replicate();
    let reports = rt.run_to_completion();
    assert!(rt.error_of(idx).is_none(), "{:?}", rt.error_of(idx));
    assert_eq!(reports[idx].tasks.len(), 8);
    // Tasks that were on the victim show retries and finished elsewhere.
    for t in &reports[idx].tasks {
        assert_ne!(t.node, "w-2");
    }
    let retried: u32 = reports[idx].tasks.iter().map(|t| t.attempts - 1).sum();
    assert!(retried >= 1, "the victim was running at least one task");
}

#[test]
fn am_node_loss_fails_the_workflow_cleanly() {
    let mut cluster = small_cluster(3);
    cluster.prestage("/in", 1 << 20);
    let tasks: Vec<TaskSpec> = (0..4)
        .map(|i| task(i, "t", &["/in"], &[(&format!("/x{i}"), 1 << 10)], 300.0))
        .collect();
    let mut rt = Runtime::new(cluster);
    let idx = rt.submit(
        Box::new(StaticWorkflow::new("am-loss", "test", tasks)),
        HiwayConfig::default(),
        ProvDb::new(),
    );
    rt.run_until(hiway_sim::SimTime::from_secs(30.0));
    // Node 0 hosts the AM container (first allocation).
    rt.fail_node(NodeId(0));
    rt.cluster.re_replicate();
    rt.run_to_completion();
    let err = rt.error_of(idx).expect("AM loss fails the workflow");
    assert!(err.contains("AM container lost"), "{err}");
}

#[test]
fn trace_files_warm_the_statistics_of_a_fresh_database() {
    // §3.5: trace files in HDFS are the transport for statistics between
    // Hi-WAY instances. Run once, carry the TRACE (not the database) to a
    // second instance, and verify its HEFT estimates are warm.
    let mut cluster = small_cluster(2);
    cluster.prestage("/in", 1 << 20);
    let mut rt = Runtime::new(cluster);
    let idx = rt.submit(
        Box::new(StaticWorkflow::new(
            "first",
            "test",
            vec![task(0, "sig", &["/in"], &[("/o", 1 << 10)], 30.0)],
        )),
        HiwayConfig::default().with_scheduler(SchedulerPolicy::Fcfs),
        ProvDb::new(),
    );
    let reports = rt.run_to_completion();
    assert!(rt.error_of(idx).is_none());
    let trace = reports[idx].trace.clone();
    let node = reports[idx].tasks[0].node.clone();

    let mut fresh = hiway_core::ProvenanceManager::new(ProvDb::new());
    assert_eq!(fresh.latest_runtime("sig", &node), None);
    let loaded = fresh.import_trace(&trace).unwrap();
    assert_eq!(loaded, 1);
    let estimate = fresh.latest_runtime("sig", &node).expect("warm estimate");
    assert!(estimate > 25.0, "makespan covers exec: {estimate}");
}

#[test]
fn preemption_is_infra_and_spares_the_task_budget() {
    // A task with a zero task-retry budget survives repeated container
    // preemptions: infrastructure failures draw from their own allowance.
    let mut cluster = small_cluster(3);
    cluster.prestage("/in", 1 << 20);
    let mut rt = Runtime::new(cluster);
    let config = HiwayConfig {
        task_retries: 0, // one tool crash would end the workflow...
        retry_backoff_secs: 1.0,
        ..HiwayConfig::default().with_scheduler(SchedulerPolicy::Fcfs)
    };
    let idx = rt.submit(
        Box::new(StaticWorkflow::new(
            "preempted",
            "test",
            vec![task(0, "t", &["/in"], &[("/o", 1 << 10)], 60.0)],
        )),
        config,
        ProvDb::new(),
    );
    // Preempt the task's container three times, mid-exec each time.
    let mut t = 10.0;
    for _ in 0..3 {
        assert!(rt.run_until(hiway_sim::SimTime::from_secs(t)));
        let live = rt.worker_containers();
        assert_eq!(live.len(), 1, "exactly one task container at t={t}");
        assert!(rt.preempt_container(live[0]));
        t += 30.0;
    }
    let reports = rt.run_to_completion();
    assert!(rt.error_of(idx).is_none(), "{:?}", rt.error_of(idx));
    assert_eq!(reports[idx].tasks.len(), 1);
    assert_eq!(
        reports[idx].tasks[0].attempts, 4,
        "3 preempted + 1 successful"
    );
    assert_eq!(reports[idx].infra_failures, 3);
    assert_eq!(reports[idx].task_failures, 0);
    assert!(reports[idx].wasted_container_secs > 0.0);
}

#[test]
fn infra_budget_exhaustion_fails_the_workflow() {
    let mut cluster = small_cluster(3);
    cluster.prestage("/in", 1 << 20);
    let mut rt = Runtime::new(cluster);
    let config = HiwayConfig {
        task_retries: 10,
        infra_retries: 1, // two infra losses exhaust the budget
        retry_backoff_secs: 1.0,
        ..HiwayConfig::default().with_scheduler(SchedulerPolicy::Fcfs)
    };
    let idx = rt.submit(
        Box::new(StaticWorkflow::new(
            "fragile-infra",
            "test",
            vec![task(0, "t", &["/in"], &[("/o", 1 << 10)], 120.0)],
        )),
        config,
        ProvDb::new(),
    );
    let mut t = 10.0;
    for _ in 0..2 {
        assert!(rt.run_until(hiway_sim::SimTime::from_secs(t)));
        let live = rt.worker_containers();
        assert_eq!(live.len(), 1);
        rt.preempt_container(live[0]);
        t += 30.0;
    }
    rt.run_to_completion();
    let err = rt.error_of(idx).expect("infra budget exhausted");
    assert!(err.contains("infra budget"), "{err}");
}

#[test]
fn retry_backoff_delays_the_new_attempt() {
    // One 10-CPU-s task, preempted once: with a 20 s backoff the rerun
    // cannot start before ~26 s, so completion lands well past 30 s.
    let run = |backoff: f64| -> f64 {
        let mut cluster = small_cluster(2);
        cluster.prestage("/in", 1 << 20);
        let mut rt = Runtime::new(cluster);
        let config = HiwayConfig {
            retry_backoff_secs: backoff,
            retry_backoff_max_secs: backoff,
            ..HiwayConfig::default().with_scheduler(SchedulerPolicy::Fcfs)
        };
        let idx = rt.submit(
            Box::new(StaticWorkflow::new(
                "backoff",
                "test",
                vec![task(0, "t", &["/in"], &[("/o", 1 << 10)], 10.0)],
            )),
            config,
            ProvDb::new(),
        );
        assert!(rt.run_until(hiway_sim::SimTime::from_secs(6.0)));
        let live = rt.worker_containers();
        assert_eq!(live.len(), 1);
        rt.preempt_container(live[0]);
        let reports = rt.run_to_completion();
        assert!(rt.error_of(idx).is_none(), "{:?}", rt.error_of(idx));
        reports[idx].runtime_secs()
    };
    let quick = run(0.5);
    let slow = run(20.0);
    assert!(
        slow > quick + 15.0,
        "backoff must delay the retry: {quick:.1}s vs {slow:.1}s"
    );
}

#[test]
fn recovered_node_rejoins_the_cluster_and_runs_tasks() {
    // Crash a worker mid-run, bring it back, and verify the cluster is
    // whole again: full capacity, fresh DataNode, workflow completes.
    let mut cluster = small_cluster(3);
    cluster.prestage("/in", 32 << 20);
    let tasks: Vec<TaskSpec> = (0..10)
        .map(|i| task(i, "wave", &["/in"], &[(&format!("/o{i}"), 4 << 20)], 60.0))
        .collect();
    let mut rt = Runtime::new(cluster);
    let config = HiwayConfig {
        blacklist_decay_secs: 30.0, // let the revived node earn back trust
        retry_backoff_secs: 1.0,
        ..HiwayConfig::default().with_scheduler(SchedulerPolicy::Fcfs)
    };
    let idx = rt.submit(
        Box::new(StaticWorkflow::new("rejoin", "test", tasks)),
        config,
        ProvDb::new(),
    );
    assert!(rt.run_until(hiway_sim::SimTime::from_secs(20.0)));
    let victim = NodeId(2);
    rt.fail_node(victim);
    rt.cluster.re_replicate();
    assert!(rt.run_until(hiway_sim::SimTime::from_secs(60.0)));
    rt.recover_node(victim);
    let reports = rt.run_to_completion();
    assert!(rt.error_of(idx).is_none(), "{:?}", rt.error_of(idx));
    assert_eq!(reports[idx].tasks.len(), 10);
    assert!(rt.cluster.rm.is_alive(victim));
    assert!(rt.cluster.hdfs.is_alive(victim));
    assert_eq!(rt.cluster.rm.available(victim), rt.cluster.rm.total(victim));
    // Post-recovery waves may use the revived node again (its blacklist
    // strikes decayed) — at minimum, tasks DID run during its downtime.
    let nodes: std::collections::HashSet<&str> =
        reports[idx].tasks.iter().map(|t| t.node.as_str()).collect();
    assert!(!nodes.is_empty());
}

#[test]
fn speculative_duplicate_rescues_a_straggler() {
    // Six same-signature tasks on a cluster whose third node is heavily
    // CPU-stressed: the fast nodes' completions warm the runtime estimate,
    // the task stuck on the slow node overshoots it, a duplicate launches
    // on a fast node and wins, and the straggler attempt is cancelled.
    let spec = ClusterSpec::homogeneous(3, "w", &NodeSpec::m3_large("proto"));
    let mut cluster = Cluster::new(spec, 7);
    cluster.add_cpu_stress(NodeId(2), 8); // ~9x slowdown
    cluster.prestage("/in", 1 << 20);
    let tasks: Vec<TaskSpec> = (0..6)
        .map(|i| task(i, "sig", &["/in"], &[(&format!("/o{i}"), 1 << 10)], 10.0))
        .collect();
    let mut rt = Runtime::new(cluster);
    let config = HiwayConfig {
        speculative_execution: true,
        speculation_factor: 1.8,
        speculation_min_secs: 5.0,
        ..HiwayConfig::default().with_scheduler(SchedulerPolicy::Fcfs)
    };
    let idx = rt.submit(
        Box::new(StaticWorkflow::new("straggle", "test", tasks)),
        config,
        ProvDb::new(),
    );
    let reports = rt.run_to_completion();
    assert!(rt.error_of(idx).is_none(), "{:?}", rt.error_of(idx));
    assert_eq!(reports[idx].tasks.len(), 6);
    assert!(
        reports[idx].speculative_attempts >= 1,
        "no duplicate launched"
    );
    assert!(
        reports[idx].wasted_container_secs > 0.0,
        "loser time is waste"
    );
    // Without speculation the stragglers pin the makespan to ~90 s.
    assert!(
        reports[idx].runtime_secs() < 80.0,
        "speculation did not rescue: {:.1}s",
        reports[idx].runtime_secs()
    );
    // The lost race is in the provenance record.
    let prov = rt.provenance(idx);
    assert!(prov.attempt_count("primary-loser") + prov.attempt_count("speculative-loser") >= 1);
}

#[test]
fn rejected_admission_surfaces_as_submit_error() {
    use hiway_yarn::{AdmissionPolicy, QueueSpec, QueuesConfig};
    let mut cluster = small_cluster(3);
    cluster.prestage("/in", 20 << 20);
    let config = QueuesConfig {
        root: QueueSpec::parent(
            "root",
            1.0,
            1.0,
            1.0,
            vec![QueueSpec::leaf("q", 1.0, 1.0, 1.0).with_max_apps(1)],
        ),
        admission: AdmissionPolicy::Reject,
        preemption_grace_secs: None,
    };
    cluster.rm.configure_queues(config).unwrap();
    let mut rt = Runtime::new(cluster);
    let first = rt.submit(
        Box::new(diamond()),
        HiwayConfig::default().with_queue("q"),
        ProvDb::new(),
    );
    let second = rt.submit(
        Box::new(diamond()),
        HiwayConfig::default().with_queue("q"),
        ProvDb::new(),
    );
    let reports = rt.run_to_completion();
    assert!(rt.error_of(first).is_none(), "{:?}", rt.error_of(first));
    assert_eq!(reports[first].tasks.len(), 4);
    let err = rt
        .error_of(second)
        .expect("second submission must be refused");
    assert!(err.contains("rejected"), "{err}");
}

#[test]
fn queued_admission_runs_after_the_incumbent_finishes() {
    use hiway_yarn::{AdmissionPolicy, QueueSpec, QueuesConfig};
    let mut cluster = small_cluster(3);
    cluster.prestage("/in", 20 << 20);
    let config = QueuesConfig {
        root: QueueSpec::parent(
            "root",
            1.0,
            1.0,
            1.0,
            vec![QueueSpec::leaf("q", 1.0, 1.0, 1.0).with_max_apps(1)],
        ),
        admission: AdmissionPolicy::Queue,
        preemption_grace_secs: None,
    };
    cluster.rm.configure_queues(config).unwrap();
    let mut rt = Runtime::new(cluster);
    let first = rt.submit(
        Box::new(diamond()),
        HiwayConfig::default().with_queue("q"),
        ProvDb::new(),
    );
    // Same shape, different HDFS paths — both runs commit their outputs.
    let shifted = StaticWorkflow::new(
        "diamond2",
        "test",
        vec![
            task(0, "pre", &["/in"], &[("/2a", 10 << 20)], 5.0),
            task(1, "left", &["/2a"], &[("/2b", 1 << 20)], 10.0),
            task(2, "right", &["/2a"], &[("/2c", 1 << 20)], 10.0),
            task(3, "join", &["/2b", "/2c"], &[("/2d", 1 << 10)], 2.0),
        ],
    );
    let second = rt.submit(
        Box::new(shifted),
        HiwayConfig::default().with_queue("q"),
        ProvDb::new(),
    );
    let reports = rt.run_to_completion();
    assert!(rt.error_of(first).is_none(), "{:?}", rt.error_of(first));
    assert!(rt.error_of(second).is_none(), "{:?}", rt.error_of(second));
    assert_eq!(reports[second].tasks.len(), 4);
    // The parked workflow only started once the admission slot freed up:
    // strictly after every task of the incumbent had finished.
    let end_first = reports[first]
        .tasks
        .iter()
        .map(|t| t.t_end)
        .fold(0.0f64, f64::max);
    let start_second = reports[second]
        .tasks
        .iter()
        .map(|t| t.t_start)
        .fold(f64::INFINITY, f64::min);
    assert!(
        start_second >= end_first,
        "parked workflow ran concurrently: {start_second} < {end_first}"
    );
}

#[test]
fn cross_queue_preemption_lets_the_late_tenant_through() {
    use hiway_yarn::QueuesConfig;
    let mut cluster = small_cluster(3); // 6 cores
    cluster.prestage("/in", 20 << 20);
    cluster
        .rm
        .configure_queues(QueuesConfig::weighted_leaves(
            &[("a", 1.0), ("b", 1.0)],
            Some(10.0),
        ))
        .unwrap();
    let mut rt = Runtime::new(cluster);
    // Tenant A saturates the cluster with long tasks...
    let hog: Vec<TaskSpec> = (0..8)
        .map(|i| task(i, "hog", &["/in"], &[(&format!("/a{i}"), 1 << 10)], 300.0))
        .collect();
    let config_a = HiwayConfig {
        retry_backoff_secs: 1.0,
        ..HiwayConfig::default()
            .with_scheduler(SchedulerPolicy::Fcfs)
            .with_queue("a")
    };
    let ia = rt.submit(
        Box::new(StaticWorkflow::new("hog", "test", hog)),
        config_a,
        ProvDb::new(),
    );
    // Let the hog occupy every core before the second tenant shows up:
    // only then is B genuinely starved rather than served by DRF from an
    // empty cluster.
    assert!(rt.run_until(hiway_sim::SimTime::from_secs(20.0)));
    // ...now tenant B arrives with a couple of short tasks.
    let nimble: Vec<TaskSpec> = (0..2)
        .map(|i| task(i, "nimble", &["/in"], &[(&format!("/b{i}"), 1 << 10)], 30.0))
        .collect();
    let ib = rt.submit(
        Box::new(StaticWorkflow::new("nimble", "test", nimble)),
        HiwayConfig::default()
            .with_scheduler(SchedulerPolicy::Fcfs)
            .with_queue("b"),
        ProvDb::new(),
    );
    let reports = rt.run_to_completion();
    assert!(rt.error_of(ia).is_none(), "{:?}", rt.error_of(ia));
    assert!(rt.error_of(ib).is_none(), "{:?}", rt.error_of(ib));
    assert_eq!(reports[ia].tasks.len(), 8);
    assert_eq!(reports[ib].tasks.len(), 2);
    // B got capacity via preemption: A absorbed infra failures (not task
    // failures — preemption is not the task's fault) and B finished long
    // before the hog.
    assert!(reports[ia].infra_failures >= 1, "no preemption happened");
    assert_eq!(reports[ia].task_failures, 0);
    let end_b = reports[ib]
        .tasks
        .iter()
        .map(|t| t.t_end)
        .fold(0.0f64, f64::max);
    let end_a = reports[ia]
        .tasks
        .iter()
        .map(|t| t.t_end)
        .fold(0.0f64, f64::max);
    assert!(end_b < end_a / 2.0, "b at {end_b}, a at {end_a}");
}

#[test]
fn oversized_container_request_fails_fast_with_a_diagnostic() {
    let mut cluster = small_cluster(2);
    cluster.prestage("/in", 1 << 20);
    let mut rt = Runtime::new(cluster);
    let config = HiwayConfig {
        // No node has 64 cores: the request must be failed fast by the
        // RM, not parked forever.
        container_resource: hiway_yarn::Resource::new(64, 1 << 20),
        ..HiwayConfig::default()
    };
    let idx = rt.submit(
        Box::new(StaticWorkflow::new(
            "too-big",
            "test",
            vec![task(0, "t", &["/in"], &[("/o", 1)], 1.0)],
        )),
        config,
        ProvDb::new(),
    );
    rt.run_to_completion();
    let err = rt.error_of(idx).expect("must fail fast");
    assert!(err.contains("unsatisfiable"), "{err}");
    assert!(!err.contains("stalled"), "fail-fast, not a stall: {err}");
}

#[test]
fn unknown_queue_submission_fails_cleanly() {
    use hiway_yarn::QueuesConfig;
    let mut cluster = small_cluster(2);
    cluster.prestage("/in", 1 << 20);
    cluster
        .rm
        .configure_queues(QueuesConfig::weighted_leaves(&[("a", 1.0)], None))
        .unwrap();
    let mut rt = Runtime::new(cluster);
    let idx = rt.submit(
        Box::new(diamond()),
        HiwayConfig::default().with_queue("nope"),
        ProvDb::new(),
    );
    rt.run_to_completion();
    let err = rt.error_of(idx).expect("unknown queue must fail");
    assert!(err.contains("unknown queue"), "{err}");
}
