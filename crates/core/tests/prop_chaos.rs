//! Property tests of the fault-injection subsystem: random fault plans
//! applied to random workloads must be (i) bitwise deterministic — the
//! same seeds give the same outcome, event for event — and (ii) safe:
//! the run either completes with every task accounted for, or fails with
//! a diagnostic; it never panics, hangs, or corrupts the reports.
//!
//! The nightly CI job re-runs this with `PROPTEST_CASES` raised ~20x.

use proptest::prelude::*;

use hiway_core::cluster::Cluster;
use hiway_core::config::{HiwayConfig, SchedulerPolicy};
use hiway_core::driver::Runtime;
use hiway_core::faults::{FaultConfig, FaultInjector, FaultPlan};
use hiway_lang::ir::{OutputSpec, StaticWorkflow, TaskCost, TaskId, TaskSpec};
use hiway_provdb::ProvDb;
use hiway_sim::{ClusterSpec, NodeId, NodeSpec};

fn fan_dag(width: usize, depth: usize) -> StaticWorkflow {
    let mut tasks = Vec::new();
    let mut id = 0u64;
    let mut prev = vec!["/in".to_string()];
    for layer in 0..depth {
        let mut outs = Vec::new();
        for w in 0..width {
            let out = format!("/l{layer}_{w}");
            tasks.push(TaskSpec {
                id: TaskId(id),
                name: format!("layer{layer}"),
                command: "tool".into(),
                inputs: vec![prev[w % prev.len()].clone()],
                outputs: vec![OutputSpec {
                    path: out.clone(),
                    size: 1 << 20,
                }],
                cost: TaskCost::new(15.0, 1, 256),
            });
            outs.push(out);
            id += 1;
        }
        prev = outs;
    }
    StaticWorkflow::new("chaos-dag", "test", tasks)
}

/// The observable outcome of one chaos run, for bitwise comparison.
#[derive(Debug, Clone, PartialEq)]
struct Outcome {
    error: Option<String>,
    tasks_done: usize,
    makespan: f64,
    wasted: f64,
    infra_failures: u32,
    task_failures: u32,
    injected: Vec<(u64, String)>,
    skipped: u32,
}

fn chaos_run(width: usize, depth: usize, nodes: usize, intensity: f64, seed: u64) -> Outcome {
    let spec = ClusterSpec::homogeneous(nodes, "w", &NodeSpec::m3_large("p"));
    let mut cluster = Cluster::new(spec, seed);
    cluster.prestage("/in", 1 << 20);
    let wf = fan_dag(width, depth);
    let total = wf.tasks.len();
    let mut rt = Runtime::new(cluster);
    let config = HiwayConfig {
        task_retries: 50,
        infra_retries: 200,
        retry_backoff_secs: 1.0,
        retry_backoff_max_secs: 8.0,
        blacklist_decay_secs: 30.0,
        task_failure_prob: (intensity * 0.05).min(0.5),
        speculative_execution: true,
        speculation_factor: 2.0,
        speculation_min_secs: 10.0,
        seed,
        write_trace: false,
        ..HiwayConfig::default().with_scheduler(SchedulerPolicy::DataAware)
    };
    let idx = rt.submit(Box::new(wf), config, ProvDb::new());
    // Node 0 hosts the AM container (first allocation); keep it out of
    // the blast radius like the real deployments keep their masters.
    let eligible: Vec<NodeId> = (1..nodes as u32).map(NodeId).collect();
    let fc = FaultConfig {
        recovery_secs: 20.0,
        straggler_secs: 15.0,
        horizon_secs: 1800.0,
        ..FaultConfig::with_intensity(seed ^ 0x000c_4a05, intensity * 40.0)
    };
    let plan = FaultPlan::generate(&fc, &eligible);
    let mut injector = FaultInjector::new(plan, eligible);
    let reports = injector.run(&mut rt);
    let r = &reports[idx];
    Outcome {
        error: rt.error_of(idx).map(str::to_string),
        tasks_done: r.tasks.len(),
        makespan: if rt.error_of(idx).is_none() {
            r.runtime_secs()
        } else {
            0.0
        },
        wasted: r.wasted_container_secs,
        infra_failures: r.infra_failures,
        task_failures: r.task_failures,
        injected: injector
            .injected
            .iter()
            .map(|(t, what)| (t.to_bits(), what.clone()))
            .collect(),
        skipped: injector.skipped,
    }
    .check(total)
}

impl Outcome {
    /// Internal consistency of a single run.
    fn check(self, total_tasks: usize) -> Outcome {
        match &self.error {
            None => {
                assert_eq!(
                    self.tasks_done, total_tasks,
                    "completed run must report all tasks"
                );
                assert!(self.makespan > 0.0);
            }
            Some(msg) => assert!(!msg.is_empty(), "failures carry a diagnostic"),
        }
        assert!(self.wasted >= 0.0 && self.wasted.is_finite());
        if self.wasted > 0.0 {
            // Waste only comes from failed attempts or cancelled twins.
            assert!(
                self.infra_failures + self.task_failures > 0 || !self.injected.is_empty(),
                "waste without any failure or fault"
            );
        }
        self
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Two runs with identical seeds are identical in every observable:
    /// outcome, counters, and the exact injected-fault log.
    #[test]
    fn chaos_runs_are_bitwise_deterministic(
        width in 2usize..5,
        depth in 1usize..4,
        nodes in 3usize..6,
        intensity_tenths in 0u32..12,
        seed in 0u64..10_000,
    ) {
        let intensity = intensity_tenths as f64 / 10.0;
        let a = chaos_run(width, depth, nodes, intensity, seed);
        let b = chaos_run(width, depth, nodes, intensity, seed);
        prop_assert_eq!(a, b);
    }

    /// With generous retry budgets and the AM node protected, moderate
    /// chaos is always survivable: the workflow completes and failure
    /// counters line up with the injected faults.
    #[test]
    fn moderate_chaos_always_completes(
        width in 2usize..5,
        nodes in 4usize..6,
        seed in 0u64..10_000,
    ) {
        let outcome = chaos_run(width, 2, nodes, 0.3, seed);
        prop_assert!(
            outcome.error.is_none(),
            "moderate chaos must be survivable: {:?} (faults: {:?})",
            outcome.error, outcome.injected
        );
        prop_assert_eq!(outcome.tasks_done, width * 2);
    }

    /// Zero intensity injects nothing and equals a plain fault-free run.
    #[test]
    fn zero_intensity_is_a_noop(
        width in 2usize..5,
        nodes in 3usize..6,
        seed in 0u64..10_000,
    ) {
        let outcome = chaos_run(width, 2, nodes, 0.0, seed);
        prop_assert!(outcome.error.is_none());
        prop_assert!(outcome.injected.is_empty());
        prop_assert_eq!(outcome.skipped, 0);
        prop_assert_eq!(outcome.infra_failures, 0);
        prop_assert_eq!(outcome.task_failures, 0);
        prop_assert_eq!(outcome.wasted, 0.0);
    }
}
