//! Execution reports returned by the [`crate::driver::Runtime`].

use hiway_lang::TaskId;

/// Summary of one task's execution.
#[derive(Clone, Debug)]
pub struct TaskReport {
    pub id: TaskId,
    /// Tool signature.
    pub name: String,
    /// Node that ran the successful attempt.
    pub node: String,
    /// When the task's data dependencies were met.
    pub t_ready: f64,
    /// When its container started executing (after localization).
    pub t_start: f64,
    /// When its outputs were committed to HDFS.
    pub t_end: f64,
    pub attempts: u32,
    /// Seconds the winning attempt spent localizing — container startup
    /// plus obtaining its input data from HDFS, before the tool ran.
    pub localize_secs: f64,
    /// Seconds the winning attempt spent committing — writing outputs
    /// back to HDFS after the tool finished.
    pub commit_secs: f64,
}

impl TaskReport {
    pub fn makespan(&self) -> f64 {
        (self.t_end - self.t_start).max(0.0)
    }

    /// Queue wait: seconds between the task's dependencies being met and
    /// its winning container starting (clamped at zero — a speculative
    /// winner's container can start before a retry re-readies the task).
    pub fn wait_secs(&self) -> f64 {
        (self.t_start - self.t_ready).max(0.0)
    }

    /// Seconds the tool itself executed (makespan minus the localize and
    /// commit phases, clamped at zero).
    pub fn exec_secs(&self) -> f64 {
        (self.makespan() - self.localize_secs - self.commit_secs).max(0.0)
    }
}

/// Summary of one workflow execution.
#[derive(Clone, Debug)]
pub struct WorkflowReport {
    pub name: String,
    pub language: String,
    pub scheduler: &'static str,
    /// Virtual time the workflow was submitted.
    pub t_submit: f64,
    /// Virtual time the workflow completed.
    pub t_finish: f64,
    pub tasks: Vec<TaskReport>,
    /// The JSON-lines provenance trace (empty if trace writing disabled).
    pub trace: String,
    /// HDFS path the trace was stored under, if written.
    pub trace_path: Option<String>,
    /// Container-seconds burnt by attempts that did not produce the
    /// task's result: failed attempts and cancelled speculative copies.
    pub wasted_container_secs: f64,
    /// Attempt failures caused by the infrastructure (node crash,
    /// container preemption) — these do not count against a task's
    /// retry budget.
    pub infra_failures: u32,
    /// Attempt failures caused by the task itself (tool crash).
    pub task_failures: u32,
    /// Speculative duplicate attempts launched against stragglers.
    pub speculative_attempts: u32,
}

impl WorkflowReport {
    /// Total wall-clock (virtual) runtime in seconds.
    pub fn runtime_secs(&self) -> f64 {
        (self.t_finish - self.t_submit).max(0.0)
    }

    pub fn runtime_mins(&self) -> f64 {
        self.runtime_secs() / 60.0
    }

    /// Tasks grouped and counted by signature, for quick summaries.
    pub fn task_histogram(&self) -> Vec<(String, usize)> {
        let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
        for t in &self.tasks {
            *counts.entry(t.name.clone()).or_default() += 1;
        }
        counts.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accessors() {
        let r = WorkflowReport {
            name: "x".into(),
            language: "dax".into(),
            scheduler: "fcfs",
            t_submit: 60.0,
            t_finish: 240.0,
            tasks: vec![
                TaskReport {
                    id: TaskId(0),
                    name: "a".into(),
                    node: "w0".into(),
                    t_ready: 60.0,
                    t_start: 61.0,
                    t_end: 100.0,
                    attempts: 1,
                    localize_secs: 4.0,
                    commit_secs: 5.0,
                },
                TaskReport {
                    id: TaskId(1),
                    name: "a".into(),
                    node: "w1".into(),
                    t_ready: 60.0,
                    t_start: 61.0,
                    t_end: 90.0,
                    attempts: 2,
                    localize_secs: 0.0,
                    commit_secs: 0.0,
                },
            ],
            trace: String::new(),
            trace_path: None,
            wasted_container_secs: 0.0,
            infra_failures: 0,
            task_failures: 0,
            speculative_attempts: 0,
        };
        assert_eq!(r.runtime_secs(), 180.0);
        assert_eq!(r.runtime_mins(), 3.0);
        assert_eq!(r.tasks[0].makespan(), 39.0);
        assert_eq!(r.tasks[0].wait_secs(), 1.0);
        assert_eq!(r.tasks[0].exec_secs(), 30.0);
        assert_eq!(r.task_histogram(), vec![("a".to_string(), 2)]);
    }

    #[test]
    fn wait_secs_clamps_at_zero() {
        let t = TaskReport {
            id: TaskId(0),
            name: "a".into(),
            node: "w0".into(),
            // A speculative winner whose container predates the re-ready.
            t_ready: 50.0,
            t_start: 40.0,
            t_end: 45.0,
            attempts: 2,
            localize_secs: 10.0,
            commit_secs: 10.0,
        };
        assert_eq!(t.wait_secs(), 0.0);
        assert_eq!(t.exec_secs(), 0.0);
    }
}
