//! The Workflow Driver and the AM runtime (paper §3.1, §3.3, Figure 3).
//!
//! A [`Runtime`] hosts one or more Hi-WAY AM instances on a shared
//! [`Cluster`] — "each workflow that is launched from a client results in
//! a separate instance of a Hi-WAY AM being spawned in its own container".
//! The runtime owns the engine poll loop; AMs are state machines reacting
//! to engine completions:
//!
//! * **Heartbeat** — the AM–RM allocation round: pending container
//!   requests are matched to free capacity and handed to the owning AM.
//! * **Worker container lifecycle** — "(i) obtaining the task's input
//!   data from HDFS, (ii) invoking the commands associated with the task,
//!   and (iii) storing any generated output data in HDFS".
//! * **Iterative discovery** — every task completion is fed back to the
//!   language front-end, which may reveal new tasks (conditionals, loops,
//!   recursion).
//! * **Fault tolerance** — failed attempts are retried in fresh containers
//!   with exponential backoff, steered away from failing (blacklisted)
//!   nodes; infrastructure losses (node crash, preemption) are budgeted
//!   separately from tool crashes; stragglers can be re-executed
//!   speculatively, first finisher wins.
//!
//! A task may therefore have several *attempts* in flight at once (one
//! primary plus at most one speculative duplicate); every engine event
//! carries the attempt id it belongs to, so late events of a cancelled
//! attempt are recognized as stale and dropped.

use std::collections::{BTreeMap, HashMap, HashSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hiway_hdfs::exec as hdfs_exec;
use hiway_lang::trace::{FileEvent, TaskEvent};
use hiway_lang::{TaskId, TaskSpec, WorkflowSource};
use hiway_obs::{Tracer, TrackId};
use hiway_provdb::ProvDb;
use hiway_sim::{Activity, ActivityId, Completion, Endpoint, NodeId, SimTime};
use hiway_yarn::{AppId, Container, ContainerId, ContainerRequest};

use crate::cluster::{Cluster, Tag};
use crate::config::HiwayConfig;
use crate::memo::{memo_key, MemoHit, MemoStore};
use crate::provenance::ProvenanceManager;
use crate::report::{TaskReport, WorkflowReport};
use crate::scheduler::{make_scheduler, Scheduler};
use hiway_yarn::Resource;

/// Per-task execution state. Attempt-level phases (stage-in, exec,
/// stage-out) live on [`Attempt`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TaskState {
    /// Waiting for input files to be committed.
    Waiting,
    /// Dependencies met; a container request is outstanding.
    Requested,
    /// An attempt failed; the exponential-backoff timer is running.
    Backoff,
    /// At least one attempt is executing in a container.
    Active,
    Done,
}

/// Where one container attempt currently is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AttemptPhase {
    /// Container allocated; worker process starting up.
    Starting,
    /// Obtaining input data from HDFS / external services.
    StageIn,
    /// The black-box command is executing.
    Running,
    /// Writing outputs back to HDFS.
    StageOut,
}

/// Why an attempt failed — infrastructure losses are not the task's fault
/// and draw from a separate (much larger) retry budget than tool crashes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// Node crash, container preemption, storage loss mid-transfer.
    Infra,
    /// The tool itself crashed.
    Task,
}

/// One container execution of a task (a YARN "task attempt").
struct Attempt {
    container: Container,
    phase: AttemptPhase,
    speculative: bool,
    /// Remaining engine activities per phase-file group.
    group_remaining: HashMap<u32, usize>,
    group_started: HashMap<u32, SimTime>,
    /// All in-flight activity ids, for cancellation on failure.
    inflight: HashSet<ActivityId>,
    files_remaining: usize,
    /// Whether the working-directory (scratch) I/O phase has run.
    scratch_done: bool,
    t_start: f64,
    /// When the compute phase began (straggler detection).
    t_exec_start: f64,
}

impl Attempt {
    fn new(container: Container, now: f64, speculative: bool) -> Attempt {
        Attempt {
            container,
            phase: AttemptPhase::Starting,
            speculative,
            group_remaining: HashMap::new(),
            group_started: HashMap::new(),
            inflight: HashSet::new(),
            files_remaining: 0,
            scratch_done: false,
            t_start: now,
            t_exec_start: 0.0,
        }
    }
}

struct TaskRun {
    spec: TaskSpec,
    state: TaskState,
    /// Attempts launched so far (primary + speculative).
    attempts: u32,
    task_failures: u32,
    infra_failures: u32,
    /// Node of the last failed attempt, avoided on retry when possible.
    avoid_node: Option<NodeId>,
    /// Containers declined by the adaptive policy for this task so far.
    declines: u32,
    next_attempt: u32,
    /// In-flight attempts by attempt id (1 normally, 2 while speculating).
    active: BTreeMap<u32, Attempt>,
    /// A speculative duplicate has been requested or is running.
    speculating: bool,
    t_ready: f64,
    t_start: f64,
    t_exec_end: f64,
    t_end: f64,
}

impl TaskRun {
    fn new(spec: TaskSpec) -> TaskRun {
        TaskRun {
            spec,
            state: TaskState::Waiting,
            attempts: 0,
            task_failures: 0,
            infra_failures: 0,
            avoid_node: None,
            declines: 0,
            next_attempt: 0,
            active: BTreeMap::new(),
            speculating: false,
            t_ready: 0.0,
            t_start: 0.0,
            t_exec_end: 0.0,
            t_end: 0.0,
        }
    }
}

/// Per-workflow blacklist entry: strike count and its decay horizon.
#[derive(Clone, Copy, Debug, Default)]
struct Strikes {
    count: u32,
    expires: f64,
}

struct Am {
    app: AppId,
    source: Box<dyn WorkflowSource>,
    config: HiwayConfig,
    prov: ProvenanceManager,
    scheduler: Box<dyn Scheduler>,
    tasks: BTreeMap<TaskId, TaskRun>,
    /// Ready-but-unlaunched tasks in readiness order.
    ready_order: Vec<TaskId>,
    /// Tasks with an unserved speculative container request.
    spec_pending: Vec<TaskId>,
    /// Nodes this workflow has seen attempts fail on, with decay.
    blacklist: BTreeMap<NodeId, Strikes>,
    started: bool,
    planned: bool,
    done: bool,
    error: Option<String>,
    am_container: Option<Container>,
    t_submit: f64,
    t_finish: f64,
    rng: StdRng,
    reports: Vec<TaskReport>,
    wasted_secs: f64,
    infra_failures: u32,
    task_failures: u32,
    speculative_attempts: u32,
    /// Memo layer over the provenance database. Present whenever the run
    /// records or consumes cross-run invocation memos (`resume` flag or a
    /// durable `provdb_path`); lookups additionally require `resume`.
    memo: Option<MemoStore>,
    /// Completed invocations satisfied from the warm store this run.
    memo_hits: u64,
    memo_saved_secs: f64,
}

impl Am {
    fn active(&self) -> bool {
        !self.done && self.error.is_none()
    }

    fn has_inflight_tasks(&self) -> bool {
        self.tasks
            .values()
            .any(|t| !t.active.is_empty() || t.state == TaskState::Backoff)
    }

    /// Whether this workflow currently refuses containers on `node`.
    fn node_blacklisted(&self, node: NodeId, now: f64) -> bool {
        if self.config.blacklist_strikes == 0 {
            return false;
        }
        match self.blacklist.get(&node) {
            Some(s) => s.count >= self.config.blacklist_strikes && now < s.expires,
            None => false,
        }
    }

    /// Registers an attempt failure on `node`; strikes decay after
    /// `blacklist_decay_secs` of quiet.
    fn strike_node(&mut self, node: NodeId, now: f64) {
        let decay = self.config.blacklist_decay_secs;
        let entry = self.blacklist.entry(node).or_default();
        if now > entry.expires {
            entry.count = 0;
        }
        entry.count += 1;
        entry.expires = now + decay;
    }
}

/// Hosts AMs on a cluster and drives the simulation to completion.
pub struct Runtime {
    pub cluster: Cluster,
    ams: Vec<Am>,
    /// Worker container → (workflow, task, attempt) hosting it.
    containers: HashMap<ContainerId, (usize, TaskId, u32)>,
    heartbeat_armed: bool,
    heartbeat_secs: f64,
    stall_strikes: u32,
    /// Extra CPU charged to master nodes per cluster event, modelling
    /// NameNode/ResourceManager/AM bookkeeping (Figure 6's master load).
    pub master_overhead: Option<MasterOverhead>,
    /// Observability sink shared with the engine, HDFS, and the RM.
    tracer: Tracer,
    /// Per-node trace tracks (same interned names as the engine's).
    node_tracks: Vec<TrackId>,
}

/// Models the control plane's resource use on dedicated master nodes —
/// the quantities Figure 6 monitors with `uptime`/`iostat`/`ifstat`.
#[derive(Clone, Copy, Debug)]
pub struct MasterOverhead {
    /// Node hosting YARN's RM and HDFS's NameNode.
    pub hadoop_master: NodeId,
    /// Node hosting the Hi-WAY AM container.
    pub am_master: NodeId,
    /// CPU-seconds charged to the Hadoop master per container allocation
    /// and per HDFS file operation.
    pub per_event_cpu: f64,
    /// CPU-seconds charged to the AM node per task state transition.
    pub per_task_cpu: f64,
    /// Bytes of RPC/heartbeat/log-aggregation traffic between the worker
    /// and the master per control-plane event.
    pub rpc_bytes: u64,
    /// Bytes of audit/event logs the master writes per event.
    pub log_bytes: u64,
}

impl MasterOverhead {
    /// Defaults calibrated so the Figure 6 panels land in the paper's
    /// magnitude band (master load <5 % of a 2-core node at 128 workers).
    pub fn defaults(hadoop_master: NodeId, am_master: NodeId) -> MasterOverhead {
        MasterOverhead {
            hadoop_master,
            am_master,
            per_event_cpu: 0.2,
            per_task_cpu: 0.3,
            rpc_bytes: 4 << 20,
            log_bytes: 2 << 20,
        }
    }
}

impl Runtime {
    pub fn new(cluster: Cluster) -> Runtime {
        Runtime {
            cluster,
            ams: Vec::new(),
            containers: HashMap::new(),
            heartbeat_armed: false,
            heartbeat_secs: 1.0,
            stall_strikes: 0,
            master_overhead: None,
            tracer: Tracer::disabled(),
            node_tracks: Vec::new(),
        }
    }

    /// Attaches an observability sink to every layer of the deployment:
    /// the engine (activity lifecycle), HDFS (block and locality
    /// counters), the RM (allocation counters), and the driver itself
    /// (task-attempt phase spans and the scheduler audit log). Call before
    /// running; a disabled tracer keeps everything a no-op.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
        self.cluster.engine.set_tracer(tracer);
        self.cluster.hdfs.set_tracer(tracer);
        self.cluster.rm.set_tracer(tracer);
        self.node_tracks = self
            .cluster
            .engine
            .spec()
            .nodes
            .iter()
            .map(|n| tracer.track(&n.name))
            .collect();
    }

    /// Submits a workflow; returns its index. The AM starts once YARN
    /// allocates its container (first heartbeat).
    pub fn submit(
        &mut self,
        source: Box<dyn WorkflowSource>,
        config: HiwayConfig,
        prov_db: ProvDb,
    ) -> usize {
        // A configured durable path supersedes the passed-in handle: the
        // provenance database must outlive this process for resume to
        // mean anything. Open failures surface as submission errors.
        let (prov_db, open_error) = match config.provdb_path.as_deref() {
            Some(path) => match ProvDb::open(path) {
                Ok(db) => (db, None),
                Err(e) => (ProvDb::new(), Some(format!("provenance store: {e}"))),
            },
            None => (prov_db, None),
        };
        // Route the submission through the configured scheduler queue.
        // Queued submissions hold their AM request until admitted;
        // rejected ones (admission limit, unknown queue) become errored
        // AMs without ever touching the RM queue.
        let queue_name = config
            .queue
            .clone()
            .unwrap_or_else(|| self.cluster.rm.default_queue().to_string());
        let (app, submit_error) = match self
            .cluster
            .rm
            .submit_app_to(&queue_name, source.name().to_string())
        {
            Ok((app, hiway_yarn::Admission::Rejected)) => (
                app,
                Some(format!(
                    "submission rejected: queue '{queue_name}' is at its application limit"
                )),
            ),
            Ok((app, _)) => (app, None),
            Err(why) => {
                let app = self.cluster.rm.submit_app(source.name().to_string());
                self.cluster.rm.finish_app(app);
                (app, Some(format!("submission failed: {why}")))
            }
        };
        let submit_error = open_error.or(submit_error);
        if submit_error.is_none() {
            // The AM container must never fall to cross-queue preemption:
            // killing the AM kills the whole workflow.
            self.cluster.rm.request(
                app,
                hiway_yarn::ContainerRequest::anywhere(config.am_resource).never_preempt(),
            );
        }
        self.heartbeat_secs = self.heartbeat_secs.min(config.heartbeat_secs);
        let seed = config.seed ^ (self.ams.len() as u64).wrapping_mul(0x9e37_79b9);
        let scheduler = make_scheduler(config.scheduler);
        let t_submit = self.cluster.engine.now().as_secs();
        // Memos are maintained whenever this run could feed (or is) a
        // resume: an explicit resume flag, or any durable store.
        let memo = (config.resume || config.provdb_path.is_some())
            .then(|| MemoStore::new(prov_db.clone()));
        self.ams.push(Am {
            app,
            source,
            config,
            prov: ProvenanceManager::new(prov_db),
            scheduler,
            tasks: BTreeMap::new(),
            ready_order: Vec::new(),
            spec_pending: Vec::new(),
            blacklist: BTreeMap::new(),
            started: false,
            planned: false,
            done: false,
            error: submit_error,
            am_container: None,
            t_submit,
            t_finish: 0.0,
            rng: StdRng::seed_from_u64(seed),
            reports: Vec::new(),
            wasted_secs: 0.0,
            infra_failures: 0,
            task_failures: 0,
            speculative_attempts: 0,
            memo,
            memo_hits: 0,
            memo_saved_secs: 0.0,
        });
        self.arm_heartbeat();
        self.ams.len() - 1
    }

    fn arm_heartbeat(&mut self) {
        if !self.heartbeat_armed {
            self.heartbeat_armed = true;
            self.cluster
                .engine
                .set_timer_after(self.heartbeat_secs, Tag::Heartbeat { wf: 0 });
        }
    }

    /// Runs until every submitted workflow has finished or failed, then
    /// returns the reports (in submission order).
    pub fn run_to_completion(&mut self) -> Vec<WorkflowReport> {
        while let Some(events) = self.cluster.engine.step() {
            for ev in events {
                match ev {
                    Completion::Timer { tag, .. } | Completion::Activity { tag, .. } => {
                        self.dispatch(tag)
                    }
                }
            }
            if self.ams.iter().all(|am| !am.active()) {
                break;
            }
        }
        // Anything still active at engine drain is stalled.
        let mut finished = Vec::new();
        for am in &mut self.ams {
            if am.active() {
                am.error = Some("workflow stalled: no runnable work left".to_string());
                finished.push(am.app);
            }
        }
        for app in finished {
            self.cluster.rm.finish_app(app);
        }
        self.reports()
    }

    /// Runs until virtual time `deadline` (or until all workflows finish,
    /// whichever is first) and returns control — the hook that lets tests
    /// and chaos harnesses inject node failures mid-run. Returns `true`
    /// while at least one workflow is still active.
    pub fn run_until(&mut self, deadline: SimTime) -> bool {
        loop {
            if self.ams.iter().all(|am| !am.active()) {
                return false;
            }
            match self.cluster.engine.peek_next_time() {
                Some(t) if t <= deadline => {
                    let events = self.cluster.engine.step().expect("peeked");
                    for ev in events {
                        match ev {
                            Completion::Timer { tag, .. } | Completion::Activity { tag, .. } => {
                                self.dispatch(tag)
                            }
                        }
                    }
                }
                _ => {
                    self.cluster
                        .engine
                        .advance_to(deadline.max(self.cluster.engine.now()));
                    return self.ams.iter().any(Am::active);
                }
            }
        }
    }

    /// Builds the final reports.
    pub fn reports(&mut self) -> Vec<WorkflowReport> {
        let now = self.cluster.engine.now().as_secs();
        self.ams
            .iter_mut()
            .map(|am| {
                let t_finish = if am.done { am.t_finish } else { now };
                let total = (t_finish - am.t_submit).max(0.0);
                let (trace, trace_path) = if am.done && am.config.write_trace {
                    let text =
                        am.prov
                            .finish_workflow(am.source.name(), am.source.language(), total);
                    (
                        text,
                        Some(format!("/hiway/traces/{}.trace", am.source.name())),
                    )
                } else {
                    (String::new(), None)
                };
                WorkflowReport {
                    name: am.source.name().to_string(),
                    language: am.source.language().to_string(),
                    scheduler: am.scheduler.policy().name(),
                    t_submit: am.t_submit,
                    t_finish,
                    tasks: am.reports.clone(),
                    trace,
                    trace_path,
                    wasted_container_secs: am.wasted_secs,
                    infra_failures: am.infra_failures,
                    task_failures: am.task_failures,
                    speculative_attempts: am.speculative_attempts,
                }
            })
            .collect()
    }

    /// The error message of workflow `wf`, if it failed.
    pub fn error_of(&self, wf: usize) -> Option<&str> {
        self.ams[wf].error.as_deref()
    }

    /// The (possibly incomplete) provenance of a running workflow — like
    /// Chiron, Hi-WAY is one of the few systems where "a workflow's
    /// (incomplete) provenance data can be queried during execution of
    /// that same workflow" (§2.2, §3.5). Combine with
    /// [`Runtime::run_until`] to interrogate a paused run.
    pub fn provenance(&self, wf: usize) -> &ProvenanceManager {
        &self.ams[wf].prov
    }

    /// How many completed invocations workflow `wf` satisfied from the
    /// warm provenance store instead of executing (resume runs only).
    pub fn memo_hits(&self, wf: usize) -> u64 {
        self.ams[wf].memo_hits
    }

    /// Execution seconds the warm store saved workflow `wf` (the sum of
    /// the original makespans of all memo-satisfied invocations).
    pub fn memo_saved_secs(&self, wf: usize) -> f64 {
        self.ams[wf].memo_saved_secs
    }

    /// Progress counters of a workflow: `(done, total_known)` tasks.
    pub fn progress(&self, wf: usize) -> (usize, usize) {
        let am = &self.ams[wf];
        let done = am
            .tasks
            .values()
            .filter(|t| t.state == TaskState::Done)
            .count();
        (done, am.tasks.len())
    }

    /// Fails a node mid-run: kills its containers and re-tries the tasks
    /// that were running there. The caller decides whether to trigger
    /// HDFS re-replication afterwards.
    pub fn fail_node(&mut self, node: NodeId) {
        let killed = self.cluster.fail_node(node);
        for container in killed {
            if let Some((wf, task, attempt)) = self.containers.remove(&container.id) {
                self.handle_attempt_failure(
                    wf,
                    task,
                    attempt,
                    node,
                    FailureKind::Infra,
                    "node failure",
                );
            } else if let Some(am) = self
                .ams
                .iter_mut()
                .find(|am| am.am_container.map(|c| c.id) == Some(container.id))
            {
                am.error = Some(format!("AM container lost with node {}", node.0));
            }
        }
    }

    /// Brings a previously failed node back into service: its NodeManager
    /// re-registers with full capacity and its DataNode rejoins empty.
    /// Containers that died with the node stay dead; the per-workflow
    /// blacklists keep steering work away until their strikes decay.
    pub fn recover_node(&mut self, node: NodeId) {
        self.cluster.recover_node(node);
    }

    /// Kills one running worker container (YARN preemption). The attempt
    /// it hosted fails as an *infrastructure* failure — it does not count
    /// against the task's own retry budget. Returns `false` if the id is
    /// not a live worker container.
    pub fn preempt_container(&mut self, cid: ContainerId) -> bool {
        let Some((wf, task, attempt)) = self.containers.remove(&cid) else {
            return false;
        };
        let node = match self.cluster.rm.release(cid) {
            Some(c) => c.node,
            None => return false,
        };
        self.handle_attempt_failure(
            wf,
            task,
            attempt,
            node,
            FailureKind::Infra,
            "container preempted",
        );
        true
    }

    /// Live worker containers (excludes AM containers), in id order —
    /// a deterministic victim list for preemption harnesses.
    pub fn worker_containers(&self) -> Vec<ContainerId> {
        let mut ids: Vec<ContainerId> = self.containers.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    // ----- event dispatch -------------------------------------------------

    #[doc(hidden)]
    pub fn dispatch_public(&mut self, tag: Tag) {
        self.dispatch(tag)
    }

    fn dispatch(&mut self, tag: Tag) {
        match tag {
            Tag::Heartbeat { .. } => self.on_heartbeat(),
            Tag::ContainerStarted { wf, task, attempt } => {
                self.begin_stage_in(wf as usize, task, attempt)
            }
            Tag::StageIn {
                wf,
                task,
                attempt,
                file,
            } => self.on_stage_in_done(wf as usize, task, attempt, file),
            Tag::Exec { wf, task, attempt } => self.on_exec_done(wf as usize, task, attempt),
            Tag::StageOut {
                wf,
                task,
                attempt,
                file,
            } => self.on_stage_out_done(wf as usize, task, attempt, file),
            Tag::RetryTask { wf, task } => self.on_retry_due(wf as usize, task),
            Tag::Stress | Tag::Replication => {}
        }
    }

    fn on_heartbeat(&mut self) {
        self.heartbeat_armed = false;
        // Fail fast workflows whose requests can never be satisfied — an
        // ask larger than every node (or the queue's elastic ceiling)
        // would otherwise hang until stall detection guesses.
        for (app, why) in self.cluster.rm.take_infeasible() {
            if let Some(wf) = self.ams.iter().position(|am| am.app == app) {
                if self.ams[wf].active() {
                    self.fail_workflow(wf, format!("unsatisfiable container request: {why}"));
                }
            }
        }
        // Cross-queue preemption victims selected by the RM die through
        // the same infrastructure-failure path node crashes use, so AM
        // infra-retry budgets and backoff apply.
        for cid in self.cluster.rm.take_preemptions() {
            self.preempt_container(cid);
        }
        let now = self.cluster.engine.now().as_secs();
        let granted = self.cluster.rm.allocate_at(now);
        let any_granted = !granted.is_empty();
        for container in granted {
            self.route_container(container);
        }
        self.maybe_speculate();

        let any_active = self.ams.iter().any(Am::active);
        if any_active {
            // Stall detection: nothing allocated, nothing in flight, yet
            // unfinished workflows remain — the cluster can never make
            // progress (an input that will never exist, a pinned request
            // for a dead node, or an AM container that fits nowhere).
            // Tasks in retry backoff count as in flight: their timer will
            // re-request a container.
            let any_inflight = self.ams.iter().any(Am::has_inflight_tasks);
            if !any_granted && !any_inflight {
                self.stall_strikes += 1;
            } else {
                self.stall_strikes = 0;
            }
            if self.stall_strikes > 3 {
                let mut finished = Vec::new();
                for am in &mut self.ams {
                    if am.active() {
                        am.error = Some(if am.started {
                            "workflow stalled: tasks waiting on inputs that never appear"
                                .to_string()
                        } else {
                            "workflow stalled: AM container was never allocated".to_string()
                        });
                        finished.push(am.app);
                    }
                }
                for app in finished {
                    self.cluster.rm.finish_app(app);
                }
                return;
            }
            self.arm_heartbeat();
        }
    }

    fn route_container(&mut self, container: Container) {
        let wf = match self.ams.iter().position(|am| am.app == container.app) {
            Some(wf) => wf,
            None => {
                self.cluster.rm.release(container.id);
                return;
            }
        };
        if !self.ams[wf].active() {
            self.cluster.rm.release(container.id);
            return;
        }
        if !self.ams[wf].started {
            self.ams[wf].am_container = Some(container);
            self.start_am(wf);
            return;
        }
        self.charge_master_overhead_from(true, Some(container.node));
        let node = container.node;
        let now = self.cluster.engine.now().as_secs();
        // Per-workflow blacklist: hand containers on struck nodes straight
        // back, as long as some other schedulable node exists. The strikes
        // decay, so a recovered node earns its way back in.
        if self.ams[wf].node_blacklisted(node, now) {
            let alternative = self.cluster.rm.alive_nodes().into_iter().any(|n| {
                n != node
                    && self.cluster.rm.total(n).vcores > 0
                    && !self.ams[wf].node_blacklisted(n, now)
            });
            if alternative {
                self.cluster.rm.release(container.id);
                self.re_request_head(wf);
                return;
            }
        }
        // Pick a task for this worker container.
        let multi_node = self.cluster.rm.alive_nodes().len() > 1;
        let am = &mut self.ams[wf];
        let candidates: Vec<&TaskSpec> = am
            .ready_order
            .iter()
            .filter(|id| am.tasks[id].state == TaskState::Requested)
            .filter(|id| !(multi_node && am.tasks[id].avoid_node == Some(node)))
            .map(|id| &am.tasks[id].spec)
            .collect();
        let node_name = self.cluster.engine.spec().node(node).name.clone();
        let chosen = am.scheduler.select_task_with_stats(
            node,
            &node_name,
            &candidates,
            &self.cluster.hdfs,
            &am.prov,
            &self.tracer,
            now,
        );
        // Late binding: an adaptive policy may decline a poorly placed
        // container and wait for a better one (bounded per task).
        if let Some(task_id) = chosen {
            let task = &am.tasks[&task_id];
            if task.declines < 3 && am.scheduler.decline(node, &node_name, &task.spec, &am.prov) {
                am.tasks.get_mut(&task_id).expect("known").declines += 1;
                let resource = container.resource;
                self.cluster.rm.release(container.id);
                let am = &mut self.ams[wf];
                let req = am
                    .scheduler
                    .container_request(&am.tasks[&task_id].spec, resource);
                self.cluster.rm.request(am.app, req);
                return;
            }
        }
        match chosen {
            Some(task_id) => self.launch_attempt(wf, container, task_id, false),
            None => {
                // No primary task fits this container: maybe a straggler's
                // speculative duplicate can use it.
                if self.try_launch_speculative(wf, container) {
                    return;
                }
                // Otherwise hand it back and re-ask so the request count
                // matches the ready tasks again.
                self.cluster.rm.release(container.id);
                self.re_request_head(wf);
            }
        }
    }

    /// Issues a fresh container request for the head Requested task (used
    /// after handing a container back).
    fn re_request_head(&mut self, wf: usize) {
        let am = &self.ams[wf];
        let tid = am
            .ready_order
            .iter()
            .find(|id| am.tasks[id].state == TaskState::Requested)
            .copied();
        if let Some(tid) = tid {
            let resource = {
                let spec = &self.ams[wf].tasks[&tid].spec;
                self.container_resource_for(wf, spec)
            };
            let am = &mut self.ams[wf];
            let req = am
                .scheduler
                .container_request(&am.tasks[&tid].spec, resource);
            self.cluster.rm.request(am.app, req);
        }
    }

    /// Starts one attempt of `task_id` in `container`. Primary attempts
    /// consume the task's slot in `ready_order`; speculative ones run
    /// alongside the existing attempt.
    fn launch_attempt(
        &mut self,
        wf: usize,
        container: Container,
        task_id: TaskId,
        speculative: bool,
    ) {
        let now = self.cluster.engine.now().as_secs();
        let startup = self.ams[wf].config.container_startup_secs;
        let am = &mut self.ams[wf];
        let task = am.tasks.get_mut(&task_id).expect("known task");
        task.attempts += 1;
        let attempt = task.next_attempt;
        task.next_attempt += 1;
        task.active
            .insert(attempt, Attempt::new(container, now, speculative));
        if speculative {
            am.speculative_attempts += 1;
        } else {
            task.state = TaskState::Active;
            task.t_start = now;
            am.ready_order.retain(|id| *id != task_id);
        }
        self.containers.insert(container.id, (wf, task_id, attempt));
        if self.tracer.is_enabled() {
            self.tracer.instant(
                self.node_tracks[container.node.index()],
                &format!("attempt.launch:{}", self.ams[wf].tasks[&task_id].spec.name),
                "driver",
                now,
                &[
                    ("task", task_id.0.to_string()),
                    ("attempt", attempt.to_string()),
                    ("container", container.id.0.to_string()),
                    ("speculative", speculative.to_string()),
                ],
            );
            self.tracer.inc("driver.attempts_launched", 1);
            if speculative {
                self.tracer.inc("driver.speculative_attempts", 1);
            }
        }
        self.cluster.engine.set_timer_after(
            startup,
            Tag::ContainerStarted {
                wf: wf as u32,
                task: task_id,
                attempt,
            },
        );
    }

    /// Tries to use an unmatched container for a pending speculative
    /// duplicate; the duplicate must land on a different node than the
    /// straggling attempt.
    fn try_launch_speculative(&mut self, wf: usize, container: Container) -> bool {
        if !self.ams[wf].config.speculative_execution {
            return false;
        }
        let mut launch: Option<TaskId> = None;
        {
            let am = &mut self.ams[wf];
            let tasks = &am.tasks;
            let mut stale: Vec<usize> = Vec::new();
            for (i, tid) in am.spec_pending.iter().enumerate() {
                let eligible = tasks.get(tid).is_some_and(|t| {
                    t.state == TaskState::Active && t.speculating && t.active.len() == 1
                });
                if !eligible {
                    stale.push(i);
                    continue;
                }
                let primary_node = tasks[tid].active.values().next().map(|a| a.container.node);
                if primary_node == Some(container.node) {
                    continue; // same node as the straggler: pointless copy
                }
                launch = Some(*tid);
                stale.push(i);
                break;
            }
            for i in stale.into_iter().rev() {
                am.spec_pending.remove(i);
            }
        }
        match launch {
            Some(tid) => {
                self.launch_attempt(wf, container, tid, true);
                true
            }
            None => false,
        }
    }

    /// Scans for stragglers and requests duplicate containers for them —
    /// the speculative-execution heartbeat hook.
    fn maybe_speculate(&mut self) {
        let now = self.cluster.engine.now().as_secs();
        for wf in 0..self.ams.len() {
            if !self.ams[wf].active() || !self.ams[wf].config.speculative_execution {
                continue;
            }
            let factor = self.ams[wf].config.speculation_factor;
            let min_secs = self.ams[wf].config.speculation_min_secs;
            let mut to_speculate: Vec<(TaskId, Resource)> = Vec::new();
            {
                let am = &self.ams[wf];
                for (tid, task) in &am.tasks {
                    if task.state != TaskState::Active || task.speculating || task.active.len() != 1
                    {
                        continue;
                    }
                    let attempt = task.active.values().next().expect("len checked");
                    if attempt.phase != AttemptPhase::Running {
                        continue;
                    }
                    let elapsed = now - attempt.t_exec_start;
                    if elapsed < min_secs {
                        continue;
                    }
                    match am.prov.average_runtime(&task.spec.name) {
                        Some(est) if est > 0.0 && elapsed > factor * est => {
                            to_speculate.push((*tid, Resource::ZERO));
                        }
                        _ => {}
                    }
                }
            }
            for (tid, _) in to_speculate {
                let resource = {
                    let spec = &self.ams[wf].tasks[&tid].spec;
                    self.container_resource_for(wf, spec)
                };
                let am = &mut self.ams[wf];
                am.tasks.get_mut(&tid).expect("known").speculating = true;
                am.spec_pending.push(tid);
                self.cluster
                    .rm
                    .request(am.app, ContainerRequest::anywhere(resource));
            }
        }
    }

    fn start_am(&mut self, wf: usize) {
        let am = &mut self.ams[wf];
        am.started = true;
        if am.config.scheduler.is_static() && !am.source.is_static() {
            am.error = Some(format!(
                "static scheduling policy '{}' cannot run iterative language '{}'",
                am.config.scheduler.name(),
                am.source.language()
            ));
            return;
        }
        match am.source.initial_tasks() {
            Ok(tasks) => {
                // Static policies plan over the full (static) task graph —
                // but only over nodes that can actually host a worker
                // container (dedicated master nodes advertise no capacity;
                // the AM's own node is already occupied by the AM).
                if am.config.scheduler.is_static() {
                    let resource = am.config.container_resource;
                    let nodes: Vec<_> = self
                        .cluster
                        .rm
                        .alive_nodes()
                        .into_iter()
                        .filter(|n| self.cluster.rm.available(*n).fits(&resource))
                        .collect();
                    if nodes.is_empty() {
                        am.error = Some(
                            "no node can host a worker container; static planning impossible"
                                .to_string(),
                        );
                        return;
                    }
                    let names: Vec<String> = self
                        .cluster
                        .engine
                        .spec()
                        .nodes
                        .iter()
                        .map(|n| n.name.clone())
                        .collect();
                    let now = self.cluster.engine.now().as_secs();
                    am.scheduler
                        .plan(&tasks, &nodes, &names, &am.prov, &self.tracer, now);
                    am.planned = true;
                }
                self.register_tasks(wf, tasks);
                self.check_ready(wf);
                self.maybe_finish(wf);
            }
            Err(e) => {
                am.error = Some(e.to_string());
            }
        }
    }

    fn register_tasks(&mut self, wf: usize, tasks: Vec<TaskSpec>) {
        let am = &mut self.ams[wf];
        for spec in tasks {
            let id = spec.id;
            assert!(
                !am.tasks.contains_key(&id),
                "front-end emitted duplicate task {id:?}"
            );
            am.tasks.insert(id, TaskRun::new(spec));
        }
    }

    /// The container resource for a task: the AM-wide uniform size, or —
    /// in tailored mode (§5 future work) — the task's own footprint,
    /// clamped so it fits the largest node.
    fn container_resource_for(&self, wf: usize, task: &TaskSpec) -> Resource {
        let config = &self.ams[wf].config;
        if !config.tailored_containers {
            return config.container_resource;
        }
        let (max_vcores, max_mem) = self
            .cluster
            .rm
            .alive_nodes()
            .into_iter()
            .map(|n| self.cluster.rm.total(n))
            .fold((1u32, 512u64), |(v, m), r| {
                (v.max(r.vcores), m.max(r.memory_mb))
            });
        Resource::new(
            task.cost.threads.clamp(1, max_vcores),
            task.cost.memory_mb.clamp(256, max_mem),
        )
    }

    /// Moves Waiting tasks whose inputs are all available to Requested.
    fn check_ready(&mut self, wf: usize) {
        let now = self.cluster.engine.now().as_secs();
        let ready: Vec<TaskId> = {
            let am = &self.ams[wf];
            am.tasks
                .iter()
                .filter(|(_, t)| t.state == TaskState::Waiting)
                .filter(|(_, t)| {
                    t.spec
                        .inputs
                        .iter()
                        .all(|p| self.cluster.input_available(p))
                })
                .map(|(id, _)| *id)
                .collect()
        };
        for id in ready {
            // A nested check_ready (via a memo completion's discovery
            // cascade) may have handled this task already.
            if self.ams[wf].tasks[&id].state != TaskState::Waiting {
                continue;
            }
            // Resume path: a committed invocation with this signature and
            // these input digests never reaches a scheduler — it is
            // satisfied from the warm provenance store on the spot.
            if self.ams[wf].config.resume {
                if let Some((key, hit)) = self.memo_lookup(wf, id) {
                    self.complete_from_memo(wf, id, &key, hit);
                    continue;
                }
            }
            let resource = {
                let spec = &self.ams[wf].tasks[&id].spec;
                self.container_resource_for(wf, spec)
            };
            let am = &mut self.ams[wf];
            let task = am.tasks.get_mut(&id).expect("listed");
            task.state = TaskState::Requested;
            task.t_ready = now;
            am.ready_order.push(id);
            let req = am.scheduler.container_request(&task.spec, resource);
            self.cluster.rm.request(am.app, req);
        }
    }

    /// The memo key of a task, from its signature and the canonical
    /// digests of its currently staged inputs. `None` when any input's
    /// digest is unavailable (shouldn't happen for a ready task) — the
    /// task then simply executes normally.
    fn memo_key_for(&self, wf: usize, task_id: TaskId) -> Option<String> {
        let spec = &self.ams[wf].tasks.get(&task_id)?.spec;
        let mut digests = Vec::with_capacity(spec.inputs.len());
        for path in &spec.inputs {
            let digest = match self.cluster.external_file(path) {
                // External inputs are not in HDFS; digest their stable
                // identity the same way HDFS digests its files.
                Some(ext) => {
                    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                    for &b in path.as_bytes().iter().chain(ext.size.to_le_bytes().iter()) {
                        h ^= b as u64;
                        h = h.wrapping_mul(0x100_0000_01b3);
                    }
                    h
                }
                None => self.cluster.hdfs.content_digest(path).ok()?,
            };
            digests.push(digest);
        }
        Some(memo_key(&spec.name, &spec.command, &digests))
    }

    /// Looks a ready task up in the memo store. A hit must also promise
    /// exactly the outputs the current spec declares — a changed workflow
    /// definition falls back to real execution.
    fn memo_lookup(&self, wf: usize, task_id: TaskId) -> Option<(String, MemoHit)> {
        let memo = self.ams[wf].memo.as_ref()?;
        let key = self.memo_key_for(wf, task_id)?;
        let hit = memo.lookup(&key)?;
        let spec = &self.ams[wf].tasks[&task_id].spec;
        let declared: Vec<(String, u64)> = spec
            .outputs
            .iter()
            .map(|o| (o.path.clone(), o.size))
            .collect();
        if hit.outputs != declared {
            return None;
        }
        Some((key, hit))
    }

    /// Satisfies a task from the warm store: materialize its recorded
    /// outputs in HDFS (free, like pre-staging — the data provably
    /// existed), mark it done, emit a `memo:hit` instant plus an audit
    /// row instead of execute phases, and run the normal completion tail
    /// (iterative discovery, readiness cascade, finish check).
    fn complete_from_memo(&mut self, wf: usize, task_id: TaskId, key: &str, hit: MemoHit) {
        let now = self.cluster.engine.now().as_secs();
        for (path, size) in &hit.outputs {
            self.cluster.discard_uncommitted(path);
            if !self.cluster.hdfs.exists(path) {
                self.cluster.prestage(path, *size);
            }
        }
        let am = &mut self.ams[wf];
        am.memo_hits += 1;
        am.memo_saved_secs += hit.saved_secs;
        let task = am.tasks.get_mut(&task_id).expect("known task");
        task.state = TaskState::Done;
        task.t_ready = now;
        task.t_start = now;
        task.t_end = now;
        let name = task.spec.name.clone();
        am.reports.push(TaskReport {
            id: task_id,
            name: name.clone(),
            node: format!("memo:{}", hit.node),
            t_ready: now,
            t_start: now,
            t_end: now,
            attempts: 0,
            localize_secs: 0.0,
            commit_secs: 0.0,
        });
        if self.tracer.is_enabled() {
            let track = self.node_tracks.first().copied().unwrap_or_else(|| {
                // Tracer enabled but set_tracer never ran: intern a track.
                self.tracer.track("memo")
            });
            self.tracer.instant(
                track,
                "memo:hit",
                "memo",
                now,
                &[
                    ("task", task_id.0.to_string()),
                    ("name", name.clone()),
                    ("key", key.to_string()),
                    ("saved_secs", format!("{:.6}", hit.saved_secs)),
                ],
            );
            self.tracer.inc("driver.memo_hits", 1);
            self.tracer
                .observe("driver.memo_saved_secs", hit.saved_secs);
            self.tracer.audit(hiway_obs::Decision {
                t: now,
                policy: "memo",
                kind: hiway_obs::DecisionKind::Memo,
                node: 0,
                node_name: format!("memo:{}", hit.node),
                candidates: Vec::new(),
                winner: Some(task_id.0),
                reason: format!(
                    "invocation {name} satisfied from warm store (key {key}, saved {:.1}s)",
                    hit.saved_secs
                ),
            });
        }
        // Completion tail, same as finish_task's.
        match self.ams[wf].source.on_task_completed(task_id) {
            Ok(new_tasks) => self.register_tasks(wf, new_tasks),
            Err(e) => {
                self.fail_workflow(wf, e.to_string());
                return;
            }
        }
        self.check_ready(wf);
        self.maybe_finish(wf);
    }

    // ----- worker container lifecycle --------------------------------------

    fn begin_stage_in(&mut self, wf: usize, task_id: TaskId, attempt: u32) {
        let peer = self.ams[wf]
            .tasks
            .get(&task_id)
            .and_then(|t| t.active.get(&attempt))
            .map(|a| a.container.node);
        if peer.is_none() {
            return; // attempt was cancelled before its container came up
        }
        self.charge_master_overhead_from(false, peer);
        let (node, inputs) = {
            let task = self.ams[wf].tasks.get_mut(&task_id).expect("known task");
            let att = task.active.get_mut(&attempt).expect("checked above");
            att.phase = AttemptPhase::StageIn;
            (att.container.node, task.spec.inputs.clone())
        };
        let now = self.cluster.engine.now();
        let mut instantly_done: Vec<u32> = Vec::new();
        {
            let task = self.ams[wf].tasks.get_mut(&task_id).expect("known task");
            let att = task.active.get_mut(&attempt).expect("checked above");
            att.files_remaining = inputs.len();
        }
        for (fi, path) in inputs.iter().enumerate() {
            let fi = fi as u32;
            let tag = Tag::StageIn {
                wf: wf as u32,
                task: task_id,
                attempt,
                file: fi,
            };
            let acts: Vec<ActivityId> = if let Some(ext) = self.cluster.external_file(path) {
                if ext.size == 0 {
                    Vec::new()
                } else {
                    vec![self.cluster.engine.start(
                        Activity::Flow {
                            src: Endpoint::External(ext.service),
                            dst: Endpoint::Node(node),
                            src_disk: false,
                            dst_disk: true,
                        },
                        ext.size as f64,
                        tag,
                    )]
                }
            } else {
                match self.cluster.hdfs.read_plan(path, node) {
                    Ok(plan) => hdfs_exec::start_read(&mut self.cluster.engine, &plan, tag),
                    Err(e) => {
                        // Replica loss mid-run is an infrastructure fault:
                        // retry (re-replication may restore the data)
                        // rather than failing the whole workflow.
                        let cid = {
                            let task = self.ams[wf].tasks.get_mut(&task_id).expect("known task");
                            task.active.get(&attempt).expect("checked").container.id
                        };
                        self.containers.remove(&cid);
                        self.cluster.rm.release(cid);
                        self.handle_attempt_failure(
                            wf,
                            task_id,
                            attempt,
                            node,
                            FailureKind::Infra,
                            &format!("stage-in of '{path}' failed: {e}"),
                        );
                        return;
                    }
                }
            };
            let task = self.ams[wf].tasks.get_mut(&task_id).expect("known task");
            let att = task.active.get_mut(&attempt).expect("checked above");
            att.group_started.insert(fi, now);
            if acts.is_empty() {
                instantly_done.push(fi);
            } else {
                att.group_remaining.insert(fi, acts.len());
                att.inflight.extend(acts);
            }
        }
        for fi in instantly_done {
            self.on_stage_in_done(wf, task_id, attempt, fi);
        }
        // Zero-input tasks go straight to execution.
        if inputs.is_empty() {
            self.begin_exec(wf, task_id, attempt);
        }
    }

    fn on_stage_in_done(&mut self, wf: usize, task_id: TaskId, attempt: u32, file: u32) {
        let now = self.cluster.engine.now();
        let finished_file = {
            let att = match self.ams[wf]
                .tasks
                .get_mut(&task_id)
                .and_then(|t| t.active.get_mut(&attempt))
            {
                Some(a) if a.phase == AttemptPhase::StageIn => a,
                _ => return, // stale event after failure/cancel
            };
            match att.group_remaining.get_mut(&file) {
                Some(rem) if *rem > 1 => {
                    *rem -= 1;
                    false
                }
                _ => {
                    att.group_remaining.remove(&file);
                    true
                }
            }
        };
        if !finished_file {
            return;
        }
        // Record the file-level provenance event.
        let (path, size, started) = {
            let task = &self.ams[wf].tasks[&task_id];
            let att = &task.active[&attempt];
            let path = task.spec.inputs[file as usize].clone();
            let size = self
                .cluster
                .external_file(&path)
                .map(|e| e.size)
                .or_else(|| self.cluster.hdfs.len(&path).ok())
                .unwrap_or(0);
            (path, size, att.group_started[&file])
        };
        self.ams[wf].prov.record_file(FileEvent {
            path,
            size,
            task: task_id.0,
            direction: "in".into(),
            transfer_seconds: now.since(started),
        });
        let task = self.ams[wf].tasks.get_mut(&task_id).expect("known task");
        let att = task.active.get_mut(&attempt).expect("checked above");
        att.files_remaining -= 1;
        if att.files_remaining == 0 {
            self.begin_exec(wf, task_id, attempt);
        }
    }

    fn begin_exec(&mut self, wf: usize, task_id: TaskId, attempt: u32) {
        let now = self.cluster.engine.now().as_secs();
        let am = &mut self.ams[wf];
        let task = am.tasks.get_mut(&task_id).expect("known task");
        let att = task.active.get_mut(&attempt).expect("attempt live");
        att.phase = AttemptPhase::Running;
        att.inflight.clear();
        att.files_remaining = 1;
        att.t_exec_start = now;
        att.scratch_done = task.spec.cost.scratch_bytes == 0;
        let container = att.container;
        let node_cores = self.cluster.engine.spec().node(container.node).cores;
        let cap = if am.config.multithread_full_node {
            node_cores
        } else {
            container.resource.vcores
        };
        let threads = task.spec.cost.threads.min(cap.max(1)).max(1) as f64;
        let act = self.cluster.engine.start(
            Activity::Compute {
                node: container.node,
                threads,
            },
            task.spec.cost.cpu_seconds,
            Tag::Exec {
                wf: wf as u32,
                task: task_id,
                attempt,
            },
        );
        task.active
            .get_mut(&attempt)
            .expect("attempt live")
            .inflight
            .insert(act);
    }

    fn on_exec_done(&mut self, wf: usize, task_id: TaskId, attempt: u32) {
        let scratch_pending = {
            let att = match self.ams[wf]
                .tasks
                .get_mut(&task_id)
                .and_then(|t| t.active.get_mut(&attempt))
            {
                Some(a) if a.phase == AttemptPhase::Running => a,
                _ => return,
            };
            att.files_remaining = att.files_remaining.saturating_sub(1);
            if att.files_remaining > 0 {
                return; // more execution-phase activities outstanding
            }
            att.inflight.clear();
            !att.scratch_done
        };
        if scratch_pending {
            // Working-directory I/O: the tool writes its temporary files
            // and reads them back — on the node's *local* disk under
            // Hi-WAY (cf. Figure 8's analysis).
            let task = self.ams[wf].tasks.get_mut(&task_id).expect("known");
            let att = task.active.get_mut(&attempt).expect("live");
            att.scratch_done = true;
            let node = att.container.node;
            let bytes = task.spec.cost.scratch_bytes as f64;
            let tag = Tag::Exec {
                wf: wf as u32,
                task: task_id,
                attempt,
            };
            let w = self
                .cluster
                .engine
                .start(Activity::DiskWrite { node }, bytes, tag.clone());
            let r = self
                .cluster
                .engine
                .start(Activity::DiskRead { node }, bytes, tag);
            let att = self.ams[wf]
                .tasks
                .get_mut(&task_id)
                .expect("known")
                .active
                .get_mut(&attempt)
                .expect("live");
            att.files_remaining = 2;
            att.inflight.insert(w);
            att.inflight.insert(r);
            return;
        }
        let now = self.cluster.engine.now().as_secs();
        // Speculation race resolved: this attempt wins, twins are cancelled.
        self.cancel_other_attempts(wf, task_id, attempt);
        {
            let task = self.ams[wf].tasks.get_mut(&task_id).expect("known");
            task.t_exec_end = now;
            task.t_start = task.active[&attempt].t_start;
            task.speculating = false;
        }

        // Simulated tool crash?
        let fail_prob = self.ams[wf].config.task_failure_prob;
        if fail_prob > 0.0 && self.ams[wf].rng.gen_bool(fail_prob.clamp(0.0, 1.0)) {
            let container = self.ams[wf].tasks[&task_id].active[&attempt].container;
            self.containers.remove(&container.id);
            self.cluster.rm.release(container.id);
            self.handle_attempt_failure(
                wf,
                task_id,
                attempt,
                container.node,
                FailureKind::Task,
                "simulated tool failure",
            );
            return;
        }
        self.begin_stage_out(wf, task_id, attempt);
    }

    /// Cancels every active attempt of the task except `winner` — the
    /// losers of a speculation race. Their container time is wasted but
    /// the cancellation is not a failure: no strikes, no budgets.
    fn cancel_other_attempts(&mut self, wf: usize, task_id: TaskId, winner: u32) {
        let losers: Vec<u32> = self.ams[wf].tasks[&task_id]
            .active
            .keys()
            .filter(|a| **a != winner)
            .copied()
            .collect();
        let now = self.cluster.engine.now().as_secs();
        for aid in losers {
            let att = self.ams[wf]
                .tasks
                .get_mut(&task_id)
                .expect("known")
                .active
                .remove(&aid)
                .expect("listed");
            for act in att.inflight {
                self.cluster.engine.cancel(act);
            }
            self.containers.remove(&att.container.id);
            self.cluster.rm.release(att.container.id);
            let wasted = (now - att.t_start).max(0.0);
            let node_name = self.cluster.node_name(att.container.node).to_string();
            // Either twin can lose the race: the duplicate overtaking the
            // straggler is the expected case, the other direction happens
            // when the original recovers.
            let outcome = if att.speculative {
                "speculative-loser"
            } else {
                "primary-loser"
            };
            let am = &mut self.ams[wf];
            am.wasted_secs += wasted;
            let name = am.tasks[&task_id].spec.name.clone();
            am.prov
                .record_attempt(task_id.0, &name, &node_name, outcome, wasted);
            if self.tracer.is_enabled() {
                self.tracer.instant(
                    self.node_tracks[att.container.node.index()],
                    &format!("attempt.cancelled:{name}"),
                    "driver",
                    now,
                    &[
                        ("task", task_id.0.to_string()),
                        ("attempt", aid.to_string()),
                        ("outcome", outcome.to_string()),
                    ],
                );
                self.tracer.inc("driver.speculation_losers", 1);
                self.tracer.observe("driver.wasted_secs", wasted);
            }
        }
    }

    fn begin_stage_out(&mut self, wf: usize, task_id: TaskId, attempt: u32) {
        let (node, outputs) = {
            let task = self.ams[wf].tasks.get_mut(&task_id).expect("known task");
            let att = task.active.get_mut(&attempt).expect("live");
            att.phase = AttemptPhase::StageOut;
            (att.container.node, task.spec.outputs.clone())
        };
        let now = self.cluster.engine.now();
        {
            let task = self.ams[wf].tasks.get_mut(&task_id).expect("known task");
            let att = task.active.get_mut(&attempt).expect("live");
            att.files_remaining = outputs.len();
        }
        if outputs.is_empty() {
            self.finish_task(wf, task_id, attempt);
            return;
        }
        let mut instantly_done: Vec<u32> = Vec::new();
        for (oi, out) in outputs.iter().enumerate() {
            let oi = oi as u32;
            self.charge_master_overhead(false);
            // A previous attempt may have died mid-stage-out, leaving a
            // registered-but-uncommitted file behind; drop it so the
            // retry's create succeeds.
            self.cluster.discard_uncommitted(&out.path);
            let plan = match self.cluster.hdfs.create(&out.path, out.size, node) {
                Ok(plan) => plan,
                Err(e) => {
                    let cid = self.ams[wf].tasks[&task_id].active[&attempt].container.id;
                    self.containers.remove(&cid);
                    self.cluster.rm.release(cid);
                    self.handle_attempt_failure(
                        wf,
                        task_id,
                        attempt,
                        node,
                        FailureKind::Infra,
                        &format!("stage-out of '{}' failed: {e}", out.path),
                    );
                    return;
                }
            };
            let tag = Tag::StageOut {
                wf: wf as u32,
                task: task_id,
                attempt,
                file: oi,
            };
            let acts = hdfs_exec::start_write(&mut self.cluster.engine, &plan, tag);
            let task = self.ams[wf].tasks.get_mut(&task_id).expect("known task");
            let att = task.active.get_mut(&attempt).expect("live");
            att.group_started.insert(oi, now);
            if acts.is_empty() {
                instantly_done.push(oi);
            } else {
                att.group_remaining.insert(oi, acts.len());
                att.inflight.extend(acts);
            }
        }
        for oi in instantly_done {
            self.on_stage_out_done(wf, task_id, attempt, oi);
        }
    }

    fn on_stage_out_done(&mut self, wf: usize, task_id: TaskId, attempt: u32, file: u32) {
        let now = self.cluster.engine.now();
        let finished_file = {
            let att = match self.ams[wf]
                .tasks
                .get_mut(&task_id)
                .and_then(|t| t.active.get_mut(&attempt))
            {
                Some(a) if a.phase == AttemptPhase::StageOut => a,
                _ => return,
            };
            match att.group_remaining.get_mut(&file) {
                Some(rem) if *rem > 1 => {
                    *rem -= 1;
                    false
                }
                _ => {
                    att.group_remaining.remove(&file);
                    true
                }
            }
        };
        if !finished_file {
            return;
        }
        let (path, size, started) = {
            let task = &self.ams[wf].tasks[&task_id];
            let att = &task.active[&attempt];
            let out = &task.spec.outputs[file as usize];
            (out.path.clone(), out.size, att.group_started[&file])
        };
        self.cluster.commit_file(&path);
        self.ams[wf].prov.record_file(FileEvent {
            path,
            size,
            task: task_id.0,
            direction: "out".into(),
            transfer_seconds: now.since(started),
        });
        let task = self.ams[wf].tasks.get_mut(&task_id).expect("known task");
        let att = task.active.get_mut(&attempt).expect("live");
        att.files_remaining -= 1;
        if att.files_remaining == 0 {
            self.finish_task(wf, task_id, attempt);
        }
    }

    fn finish_task(&mut self, wf: usize, task_id: TaskId, attempt: u32) {
        // Defensive: a twin should already have been cancelled at exec-win.
        self.cancel_other_attempts(wf, task_id, attempt);
        let now = self.cluster.engine.now().as_secs();
        let (container, event, report) = {
            let task = self.ams[wf].tasks.get_mut(&task_id).expect("known task");
            task.state = TaskState::Done;
            task.t_end = now;
            let att = task.active.remove(&attempt).expect("winner is live");
            let container = att.container;
            let node_name = self.cluster.node_name(container.node).to_string();
            let spec = &task.spec;
            let event = TaskEvent {
                id: task_id.0,
                name: spec.name.clone(),
                command: spec.command.clone(),
                inputs: spec
                    .inputs
                    .iter()
                    .map(|p| {
                        let size = self
                            .cluster
                            .external_file(p)
                            .map(|e| e.size)
                            .or_else(|| self.cluster.hdfs.len(p).ok())
                            .unwrap_or(0);
                        (p.clone(), size)
                    })
                    .collect(),
                outputs: spec
                    .outputs
                    .iter()
                    .map(|o| (o.path.clone(), o.size))
                    .collect(),
                cpu_seconds: spec.cost.cpu_seconds,
                threads: spec.cost.threads,
                memory_mb: spec.cost.memory_mb,
                node: node_name.clone(),
                t_start: task.t_start,
                t_end: now,
                attempts: task.attempts,
                stdout: format!("task {} ok", spec.name),
                stderr: String::new(),
            };
            // Phase breakdown of the winning attempt: localization covers
            // container startup plus stage-in (up to the compute start),
            // commit covers stage-out (from compute end to now).
            let localize_secs = (att.t_exec_start - att.t_start).max(0.0);
            let commit_secs = (now - task.t_exec_end).max(0.0);
            if self.tracer.is_enabled() {
                let track = self.node_tracks[container.node.index()];
                let wait = (task.t_start - task.t_ready).max(0.0);
                self.tracer.span(
                    track,
                    &spec.name,
                    "container",
                    att.t_start,
                    now,
                    &[
                        ("task", task_id.0.to_string()),
                        ("attempt", attempt.to_string()),
                        ("wait_secs", format!("{wait:.6}")),
                        ("localize_secs", format!("{localize_secs:.6}")),
                        ("commit_secs", format!("{commit_secs:.6}")),
                    ],
                );
                self.tracer.span(
                    track,
                    "phase:localize",
                    "phase",
                    att.t_start,
                    att.t_exec_start,
                    &[],
                );
                self.tracer.span(
                    track,
                    "phase:execute",
                    "phase",
                    att.t_exec_start,
                    task.t_exec_end,
                    &[],
                );
                self.tracer
                    .span(track, "phase:commit", "phase", task.t_exec_end, now, &[]);
                self.tracer.inc("driver.tasks_finished", 1);
                self.tracer.observe("driver.wait_secs", wait);
                self.tracer.observe("driver.localize_secs", localize_secs);
                self.tracer.observe("driver.commit_secs", commit_secs);
            }
            let report = TaskReport {
                id: task_id,
                name: spec.name.clone(),
                node: node_name,
                t_ready: task.t_ready,
                t_start: task.t_start,
                t_end: now,
                attempts: task.attempts,
                localize_secs,
                commit_secs,
            };
            (container, event, report)
        };
        self.containers.remove(&container.id);
        self.cluster.rm.release(container.id);
        self.ams[wf].prov.record_task(event);
        // Memoize the committed invocation: with a durable store this
        // lands in the WAL right now, so a crash immediately after the
        // output commit still leaves a resumable record.
        if self.ams[wf].memo.is_some() {
            if let Some(key) = self.memo_key_for(wf, task_id) {
                let node_name = self.cluster.node_name(container.node).to_string();
                let am = &self.ams[wf];
                let task = &am.tasks[&task_id];
                let outputs: Vec<(String, u64)> = task
                    .spec
                    .outputs
                    .iter()
                    .map(|o| (o.path.clone(), o.size))
                    .collect();
                let makespan = (task.t_end - task.t_start).max(0.0);
                am.memo.as_ref().expect("checked").record(
                    &key,
                    &task.spec.name,
                    &node_name,
                    &outputs,
                    makespan,
                );
            }
        }
        self.ams[wf].reports.push(report);
        self.charge_master_overhead(false);

        // Iterative discovery (Figure 3): the completion may reveal tasks.
        match self.ams[wf].source.on_task_completed(task_id) {
            Ok(new_tasks) => self.register_tasks(wf, new_tasks),
            Err(e) => {
                self.fail_workflow(wf, e.to_string());
                return;
            }
        }
        self.check_ready(wf);
        self.maybe_finish(wf);
    }

    /// One attempt of a task died. The failure kind decides which retry
    /// budget it burns: infrastructure losses (node crash, preemption,
    /// storage loss) are not the task's fault and have their own, larger
    /// allowance. The caller has already released the container lease (or
    /// the node failure did). Surviving speculative twins keep the task
    /// going without a retry; otherwise the task re-enters the queue after
    /// an exponential backoff.
    fn handle_attempt_failure(
        &mut self,
        wf: usize,
        task_id: TaskId,
        attempt: u32,
        node: NodeId,
        kind: FailureKind,
        why: &str,
    ) {
        let now = self.cluster.engine.now().as_secs();
        let Some(task) = self.ams[wf].tasks.get_mut(&task_id) else {
            return;
        };
        let Some(att) = task.active.remove(&attempt) else {
            return; // already cancelled or finished
        };
        for act in att.inflight {
            self.cluster.engine.cancel(act);
        }
        self.containers.remove(&att.container.id);
        let wasted = (now - att.t_start).max(0.0);
        let node_name = self.cluster.node_name(node).to_string();
        let am = &mut self.ams[wf];
        am.wasted_secs += wasted;
        let outcome = match kind {
            FailureKind::Infra => {
                am.infra_failures += 1;
                "infra-failure"
            }
            FailureKind::Task => {
                am.task_failures += 1;
                "task-failure"
            }
        };
        am.strike_node(node, now);
        let task = am.tasks.get_mut(&task_id).expect("looked up above");
        match kind {
            FailureKind::Infra => task.infra_failures += 1,
            FailureKind::Task => task.task_failures += 1,
        }
        task.avoid_node = Some(node);
        let name = task.spec.name.clone();
        am.prov
            .record_attempt(task_id.0, &name, &node_name, outcome, wasted);
        if self.tracer.is_enabled() {
            self.tracer.instant(
                self.node_tracks[node.index()],
                &format!("attempt.failed:{name}"),
                "driver",
                now,
                &[
                    ("task", task_id.0.to_string()),
                    ("attempt", attempt.to_string()),
                    ("kind", outcome.to_string()),
                    ("why", why.to_string()),
                ],
            );
            self.tracer.inc(
                match kind {
                    FailureKind::Infra => "driver.infra_failures",
                    FailureKind::Task => "driver.task_failures",
                },
                1,
            );
            self.tracer.observe("driver.wasted_secs", wasted);
        }

        let task = self.ams[wf]
            .tasks
            .get_mut(&task_id)
            .expect("looked up above");
        if !task.active.is_empty() {
            // A speculative twin is still running and carries the task.
            task.speculating = false;
            return;
        }
        let config = &self.ams[wf].config;
        let (exhausted, budget_name) = {
            let task = &self.ams[wf].tasks[&task_id];
            match kind {
                FailureKind::Task => (task.task_failures > config.task_retries, "task"),
                FailureKind::Infra => (task.infra_failures > config.infra_retries, "infra"),
            }
        };
        if exhausted {
            self.fail_workflow(
                wf,
                format!(
                    "task {task_id:?} failed too many times ({budget_name} budget; last: {why})"
                ),
            );
            return;
        }
        // Exponential backoff before the fresh container ask; YARN will
        // place the retry "on different compute nodes" thanks to the
        // avoid list and the node blacklist.
        let failures = {
            let task = &self.ams[wf].tasks[&task_id];
            (task.task_failures + task.infra_failures).max(1)
        };
        let base = self.ams[wf].config.retry_backoff_secs;
        let max = self.ams[wf].config.retry_backoff_max_secs;
        let delay = (base * 2f64.powi(failures as i32 - 1)).min(max.max(base));
        if delay > 0.0 {
            self.ams[wf].tasks.get_mut(&task_id).expect("known").state = TaskState::Backoff;
            self.cluster.engine.set_timer_after(
                delay,
                Tag::RetryTask {
                    wf: wf as u32,
                    task: task_id,
                },
            );
        } else {
            self.requeue_task(wf, task_id);
        }
    }

    /// A task's retry backoff elapsed: put it back in the ready queue with
    /// a fresh container request.
    fn on_retry_due(&mut self, wf: usize, task_id: TaskId) {
        if !self.ams[wf].active() {
            return;
        }
        let due = self.ams[wf]
            .tasks
            .get(&task_id)
            .is_some_and(|t| t.state == TaskState::Backoff);
        if !due {
            return;
        }
        self.requeue_task(wf, task_id);
        self.arm_heartbeat();
    }

    fn requeue_task(&mut self, wf: usize, task_id: TaskId) {
        let resource = {
            let spec = &self.ams[wf].tasks[&task_id].spec;
            self.container_resource_for(wf, spec)
        };
        let am = &mut self.ams[wf];
        let task = am.tasks.get_mut(&task_id).expect("known task");
        task.state = TaskState::Requested;
        am.ready_order.push(task_id);
        let req = am.scheduler.container_request(&task.spec, resource);
        self.cluster.rm.request(am.app, req);
    }

    fn fail_workflow(&mut self, wf: usize, message: String) {
        let am = &mut self.ams[wf];
        am.error = Some(message);
        // Cancel everything in flight and release the containers.
        let inflight: Vec<(ContainerId, TaskId, u32)> = self
            .containers
            .iter()
            .filter(|(_, (w, _, _))| *w == wf)
            .map(|(cid, (_, tid, aid))| (*cid, *tid, *aid))
            .collect();
        for (cid, tid, aid) in inflight {
            if let Some(task) = self.ams[wf].tasks.get_mut(&tid) {
                if let Some(att) = task.active.remove(&aid) {
                    for act in att.inflight {
                        self.cluster.engine.cancel(act);
                    }
                }
            }
            self.containers.remove(&cid);
            self.cluster.rm.release(cid);
        }
        if let Some(c) = self.ams[wf].am_container.take() {
            self.cluster.rm.release(c.id);
        }
        self.cluster.rm.finish_app(self.ams[wf].app);
    }

    fn maybe_finish(&mut self, wf: usize) {
        let am = &self.ams[wf];
        if am.done
            || !am.source.is_complete()
            || !am.tasks.values().all(|t| t.state == TaskState::Done)
        {
            return;
        }
        let now = self.cluster.engine.now().as_secs();
        let am = &mut self.ams[wf];
        am.done = true;
        am.t_finish = now;
        // Deterministic compaction point: fold the run's WAL into a
        // snapshot segment now that the workflow is complete (no-op for
        // in-memory stores). Background compaction would be unsound in
        // virtual time; end-of-run is the natural quiesce point.
        let _ = am.prov.db().compact();
        if self.tracer.is_enabled() {
            let stats = am.prov.db().stats();
            self.tracer
                .set_gauge("provdb.wal_records", stats.wal_records as f64);
            self.tracer
                .set_gauge("provdb.wal_bytes", stats.wal_bytes as f64);
            self.tracer
                .set_gauge("provdb.wal_rotations", stats.wal_rotations as f64);
            self.tracer
                .set_gauge("provdb.compactions", stats.compactions as f64);
        }
        if let Some(c) = am.am_container.take() {
            self.cluster.rm.release(c.id);
        }
        // Free the admission slot: the oldest queued submission (if any)
        // takes it on the next heartbeat.
        self.cluster.rm.finish_app(self.ams[wf].app);
    }

    fn charge_master_overhead(&mut self, hadoop_side: bool) {
        self.charge_master_overhead_from(hadoop_side, None)
    }

    fn charge_master_overhead_from(&mut self, hadoop_side: bool, peer: Option<NodeId>) {
        if let Some(mo) = self.master_overhead {
            let (node, cpu) = if hadoop_side {
                (mo.hadoop_master, mo.per_event_cpu)
            } else {
                (mo.am_master, mo.per_task_cpu)
            };
            if !self.cluster.rm.is_alive(node) {
                return;
            }
            if cpu > 0.0 {
                self.cluster.engine.start(
                    Activity::Compute { node, threads: 1.0 },
                    cpu,
                    Tag::Stress,
                );
            }
            if mo.rpc_bytes > 0 {
                if let Some(peer) = peer {
                    if peer != node {
                        self.cluster.engine.start(
                            Activity::Flow {
                                src: Endpoint::Node(peer),
                                dst: Endpoint::Node(node),
                                src_disk: false,
                                dst_disk: false,
                            },
                            mo.rpc_bytes as f64,
                            Tag::Stress,
                        );
                    }
                }
            }
            if mo.log_bytes > 0 {
                self.cluster.engine.start(
                    Activity::DiskWrite { node },
                    mo.log_bytes as f64,
                    Tag::Stress,
                );
            }
        }
    }
}
