//! The Workflow Driver and the AM runtime (paper §3.1, §3.3, Figure 3).
//!
//! A [`Runtime`] hosts one or more Hi-WAY AM instances on a shared
//! [`Cluster`] — "each workflow that is launched from a client results in
//! a separate instance of a Hi-WAY AM being spawned in its own container".
//! The runtime owns the engine poll loop; AMs are state machines reacting
//! to engine completions:
//!
//! * **Heartbeat** — the AM–RM allocation round: pending container
//!   requests are matched to free capacity and handed to the owning AM.
//! * **Worker container lifecycle** — "(i) obtaining the task's input
//!   data from HDFS, (ii) invoking the commands associated with the task,
//!   and (iii) storing any generated output data in HDFS".
//! * **Iterative discovery** — every task completion is fed back to the
//!   language front-end, which may reveal new tasks (conditionals, loops,
//!   recursion).
//! * **Fault tolerance** — failed attempts are retried in fresh containers,
//!   steered away from the failing node.

use std::collections::{BTreeMap, HashMap, HashSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hiway_hdfs::exec as hdfs_exec;
use hiway_lang::trace::{FileEvent, TaskEvent};
use hiway_lang::{TaskId, TaskSpec, WorkflowSource};
use hiway_provdb::ProvDb;
use hiway_sim::{Activity, ActivityId, Completion, Endpoint, NodeId, SimTime};
use hiway_yarn::{AppId, Container, ContainerId};

use crate::cluster::{Cluster, Tag};
use crate::config::HiwayConfig;
use crate::provenance::ProvenanceManager;
use crate::report::{TaskReport, WorkflowReport};
use crate::scheduler::{make_scheduler, Scheduler};
use hiway_yarn::Resource;

/// Per-task execution state.
#[derive(Clone, Debug, PartialEq)]
enum TaskState {
    /// Waiting for input files to be committed.
    Waiting,
    /// Dependencies met; a container request is outstanding.
    Requested,
    /// Container allocated; worker process starting up.
    Starting,
    /// Obtaining input data from HDFS / external services.
    StageIn,
    /// The black-box command is executing.
    Running,
    /// Writing outputs back to HDFS.
    StageOut,
    Done,
}

struct TaskRun {
    spec: TaskSpec,
    state: TaskState,
    attempts: u32,
    /// Node of the last failed attempt, avoided on retry when possible.
    avoid_node: Option<NodeId>,
    container: Option<Container>,
    /// Containers declined by the adaptive policy for this task so far.
    declines: u32,
    /// Remaining engine activities per phase-file group.
    group_remaining: HashMap<u32, usize>,
    group_started: HashMap<u32, SimTime>,
    /// All in-flight activity ids, for cancellation on node failure.
    inflight: HashSet<ActivityId>,
    files_remaining: usize,
    /// Whether the working-directory (scratch) I/O phase has run.
    scratch_done: bool,
    t_ready: f64,
    t_start: f64,
    t_exec_end: f64,
    t_end: f64,
}

impl TaskRun {
    fn new(spec: TaskSpec) -> TaskRun {
        TaskRun {
            spec,
            state: TaskState::Waiting,
            attempts: 0,
            avoid_node: None,
            declines: 0,
            container: None,
            group_remaining: HashMap::new(),
            group_started: HashMap::new(),
            inflight: HashSet::new(),
            files_remaining: 0,
            scratch_done: false,
            t_ready: 0.0,
            t_start: 0.0,
            t_exec_end: 0.0,
            t_end: 0.0,
        }
    }

    fn reset_phase_state(&mut self) {
        self.group_remaining.clear();
        self.group_started.clear();
        self.inflight.clear();
        self.files_remaining = 0;
        self.scratch_done = false;
    }
}

struct Am {
    app: AppId,
    source: Box<dyn WorkflowSource>,
    config: HiwayConfig,
    prov: ProvenanceManager,
    scheduler: Box<dyn Scheduler>,
    tasks: BTreeMap<TaskId, TaskRun>,
    /// Ready-but-unlaunched tasks in readiness order.
    ready_order: Vec<TaskId>,
    started: bool,
    planned: bool,
    done: bool,
    error: Option<String>,
    am_container: Option<Container>,
    t_submit: f64,
    t_finish: f64,
    rng: StdRng,
    reports: Vec<TaskReport>,
}

impl Am {
    fn active(&self) -> bool {
        !self.done && self.error.is_none()
    }

    fn has_inflight_tasks(&self) -> bool {
        self.tasks.values().any(|t| {
            matches!(
                t.state,
                TaskState::Starting | TaskState::StageIn | TaskState::Running | TaskState::StageOut
            )
        })
    }
}

/// Hosts AMs on a cluster and drives the simulation to completion.
pub struct Runtime {
    pub cluster: Cluster,
    ams: Vec<Am>,
    containers: HashMap<ContainerId, (usize, TaskId)>,
    heartbeat_armed: bool,
    heartbeat_secs: f64,
    stall_strikes: u32,
    /// Extra CPU charged to master nodes per cluster event, modelling
    /// NameNode/ResourceManager/AM bookkeeping (Figure 6's master load).
    pub master_overhead: Option<MasterOverhead>,
}

/// Models the control plane's resource use on dedicated master nodes —
/// the quantities Figure 6 monitors with `uptime`/`iostat`/`ifstat`.
#[derive(Clone, Copy, Debug)]
pub struct MasterOverhead {
    /// Node hosting YARN's RM and HDFS's NameNode.
    pub hadoop_master: NodeId,
    /// Node hosting the Hi-WAY AM container.
    pub am_master: NodeId,
    /// CPU-seconds charged to the Hadoop master per container allocation
    /// and per HDFS file operation.
    pub per_event_cpu: f64,
    /// CPU-seconds charged to the AM node per task state transition.
    pub per_task_cpu: f64,
    /// Bytes of RPC/heartbeat/log-aggregation traffic between the worker
    /// and the master per control-plane event.
    pub rpc_bytes: u64,
    /// Bytes of audit/event logs the master writes per event.
    pub log_bytes: u64,
}

impl MasterOverhead {
    /// Defaults calibrated so the Figure 6 panels land in the paper's
    /// magnitude band (master load <5 % of a 2-core node at 128 workers).
    pub fn defaults(hadoop_master: NodeId, am_master: NodeId) -> MasterOverhead {
        MasterOverhead {
            hadoop_master,
            am_master,
            per_event_cpu: 0.2,
            per_task_cpu: 0.3,
            rpc_bytes: 4 << 20,
            log_bytes: 2 << 20,
        }
    }
}

impl Runtime {
    pub fn new(cluster: Cluster) -> Runtime {
        Runtime {
            cluster,
            ams: Vec::new(),
            containers: HashMap::new(),
            heartbeat_armed: false,
            heartbeat_secs: 1.0,
            stall_strikes: 0,
            master_overhead: None,
        }
    }

    /// Submits a workflow; returns its index. The AM starts once YARN
    /// allocates its container (first heartbeat).
    pub fn submit(
        &mut self,
        source: Box<dyn WorkflowSource>,
        config: HiwayConfig,
        prov_db: ProvDb,
    ) -> usize {
        let app = self.cluster.rm.submit_app(source.name().to_string());
        self.cluster
            .rm
            .request(app, hiway_yarn::ContainerRequest::anywhere(config.am_resource));
        self.heartbeat_secs = self.heartbeat_secs.min(config.heartbeat_secs);
        let seed = config.seed ^ (self.ams.len() as u64).wrapping_mul(0x9e37_79b9);
        let scheduler = make_scheduler(config.scheduler);
        let t_submit = self.cluster.engine.now().as_secs();
        self.ams.push(Am {
            app,
            source,
            config,
            prov: ProvenanceManager::new(prov_db),
            scheduler,
            tasks: BTreeMap::new(),
            ready_order: Vec::new(),
            started: false,
            planned: false,
            done: false,
            error: None,
            am_container: None,
            t_submit,
            t_finish: 0.0,
            rng: StdRng::seed_from_u64(seed),
            reports: Vec::new(),
        });
        self.arm_heartbeat();
        self.ams.len() - 1
    }

    fn arm_heartbeat(&mut self) {
        if !self.heartbeat_armed {
            self.heartbeat_armed = true;
            self.cluster
                .engine
                .set_timer_after(self.heartbeat_secs, Tag::Heartbeat { wf: 0 });
        }
    }

    /// Runs until every submitted workflow has finished or failed, then
    /// returns the reports (in submission order).
    pub fn run_to_completion(&mut self) -> Vec<WorkflowReport> {
        while let Some(events) = self.cluster.engine.step() {
            for ev in events {
                match ev {
                    Completion::Timer { tag, .. } | Completion::Activity { tag, .. } => {
                        self.dispatch(tag)
                    }
                }
            }
            if self.ams.iter().all(|am| !am.active()) {
                break;
            }
        }
        // Anything still active at engine drain is stalled.
        for am in &mut self.ams {
            if am.active() {
                am.error = Some("workflow stalled: no runnable work left".to_string());
            }
        }
        self.reports()
    }

    /// Runs until virtual time `deadline` (or until all workflows finish,
    /// whichever is first) and returns control — the hook that lets tests
    /// and chaos harnesses inject node failures mid-run. Returns `true`
    /// while at least one workflow is still active.
    pub fn run_until(&mut self, deadline: SimTime) -> bool {
        loop {
            if self.ams.iter().all(|am| !am.active()) {
                return false;
            }
            match self.cluster.engine.peek_next_time() {
                Some(t) if t <= deadline => {
                    let events = self.cluster.engine.step().expect("peeked");
                    for ev in events {
                        match ev {
                            Completion::Timer { tag, .. } | Completion::Activity { tag, .. } => {
                                self.dispatch(tag)
                            }
                        }
                    }
                }
                _ => {
                    self.cluster.engine.advance_to(deadline.max(self.cluster.engine.now()));
                    return self.ams.iter().any(Am::active);
                }
            }
        }
    }

    /// Builds the final reports.
    pub fn reports(&mut self) -> Vec<WorkflowReport> {
        let now = self.cluster.engine.now().as_secs();
        self.ams
            .iter_mut()
            .map(|am| {
                let t_finish = if am.done { am.t_finish } else { now };
                let total = (t_finish - am.t_submit).max(0.0);
                let (trace, trace_path) = if am.done && am.config.write_trace {
                    let text = am.prov.finish_workflow(
                        am.source.name(),
                        am.source.language(),
                        total,
                    );
                    (text, Some(format!("/hiway/traces/{}.trace", am.source.name())))
                } else {
                    (String::new(), None)
                };
                WorkflowReport {
                    name: am.source.name().to_string(),
                    language: am.source.language().to_string(),
                    scheduler: am.scheduler.policy().name(),
                    t_submit: am.t_submit,
                    t_finish,
                    tasks: am.reports.clone(),
                    trace,
                    trace_path,
                }
            })
            .collect()
    }

    /// The error message of workflow `wf`, if it failed.
    pub fn error_of(&self, wf: usize) -> Option<&str> {
        self.ams[wf].error.as_deref()
    }

    /// The (possibly incomplete) provenance of a running workflow — like
    /// Chiron, Hi-WAY is one of the few systems where "a workflow's
    /// (incomplete) provenance data can be queried during execution of
    /// that same workflow" (§2.2, §3.5). Combine with
    /// [`Runtime::run_until`] to interrogate a paused run.
    pub fn provenance(&self, wf: usize) -> &ProvenanceManager {
        &self.ams[wf].prov
    }

    /// Progress counters of a workflow: `(done, total_known)` tasks.
    pub fn progress(&self, wf: usize) -> (usize, usize) {
        let am = &self.ams[wf];
        let done = am.tasks.values().filter(|t| t.state == TaskState::Done).count();
        (done, am.tasks.len())
    }

    /// Fails a node mid-run: kills its containers and re-tries the tasks
    /// that were running there. The caller decides whether to trigger
    /// HDFS re-replication afterwards.
    pub fn fail_node(&mut self, node: NodeId) {
        let killed = self.cluster.fail_node(node);
        for container in killed {
            if let Some((wf, task)) = self.containers.remove(&container.id) {
                self.handle_attempt_failure(wf, task, node, "node failure");
            } else if let Some(am) = self
                .ams
                .iter_mut()
                .find(|am| am.am_container.map(|c| c.id) == Some(container.id))
            {
                am.error = Some(format!("AM container lost with node {}", node.0));
            }
        }
    }

    // ----- event dispatch -------------------------------------------------

    #[doc(hidden)]
    pub fn dispatch_public(&mut self, tag: Tag) {
        self.dispatch(tag)
    }

    fn dispatch(&mut self, tag: Tag) {
        match tag {
            Tag::Heartbeat { .. } => self.on_heartbeat(),
            Tag::ContainerStarted { wf, task } => self.begin_stage_in(wf as usize, task),
            Tag::StageIn { wf, task, file } => self.on_stage_in_done(wf as usize, task, file),
            Tag::Exec { wf, task } => self.on_exec_done(wf as usize, task),
            Tag::StageOut { wf, task, file } => self.on_stage_out_done(wf as usize, task, file),
            Tag::Stress | Tag::Replication => {}
        }
    }

    fn on_heartbeat(&mut self) {
        self.heartbeat_armed = false;
        let granted = self.cluster.rm.allocate();
        let any_granted = !granted.is_empty();
        for container in granted {
            self.route_container(container);
        }

        let any_active = self.ams.iter().any(Am::active);
        if any_active {
            // Stall detection: nothing allocated, nothing in flight, yet
            // unfinished workflows remain — the cluster can never make
            // progress (an input that will never exist, a pinned request
            // for a dead node, or an AM container that fits nowhere).
            let any_inflight = self.ams.iter().any(Am::has_inflight_tasks);
            if !any_granted && !any_inflight {
                self.stall_strikes += 1;
            } else {
                self.stall_strikes = 0;
            }
            if self.stall_strikes > 3 {
                for am in &mut self.ams {
                    if am.active() {
                        am.error = Some(if am.started {
                            "workflow stalled: tasks waiting on inputs that never appear"
                                .to_string()
                        } else {
                            "workflow stalled: AM container was never allocated".to_string()
                        });
                    }
                }
                return;
            }
            self.arm_heartbeat();
        }
    }

    fn route_container(&mut self, container: Container) {
        let wf = match self.ams.iter().position(|am| am.app == container.app) {
            Some(wf) => wf,
            None => {
                self.cluster.rm.release(container.id);
                return;
            }
        };
        if !self.ams[wf].active() {
            self.cluster.rm.release(container.id);
            return;
        }
        if !self.ams[wf].started {
            self.ams[wf].am_container = Some(container);
            self.start_am(wf);
            return;
        }
        self.charge_master_overhead_from(true, Some(container.node));
        // Pick a task for this worker container.
        let node = container.node;
        let multi_node = self.cluster.rm.alive_nodes().len() > 1;
        let am = &mut self.ams[wf];
        let candidates: Vec<&TaskSpec> = am
            .ready_order
            .iter()
            .filter(|id| am.tasks[id].state == TaskState::Requested)
            .filter(|id| !(multi_node && am.tasks[id].avoid_node == Some(node)))
            .map(|id| &am.tasks[id].spec)
            .collect();
        let node_name = self.cluster.engine.spec().node(node).name.clone();
        let chosen = am.scheduler.select_task_with_stats(
            node,
            &node_name,
            &candidates,
            &self.cluster.hdfs,
            &am.prov,
        );
        // Late binding: an adaptive policy may decline a poorly placed
        // container and wait for a better one (bounded per task).
        if let Some(task_id) = chosen {
            let task = &am.tasks[&task_id];
            if task.declines < 3
                && am
                    .scheduler
                    .decline(node, &node_name, &task.spec, &am.prov)
            {
                am.tasks.get_mut(&task_id).expect("known").declines += 1;
                let resource = container.resource;
                self.cluster.rm.release(container.id);
                let am = &mut self.ams[wf];
                let req = am.scheduler.container_request(&am.tasks[&task_id].spec, resource);
                self.cluster.rm.request(am.app, req);
                return;
            }
        }
        match chosen {
            Some(task_id) => {
                let now = self.cluster.engine.now().as_secs();
                let task = am.tasks.get_mut(&task_id).expect("candidate exists");
                task.state = TaskState::Starting;
                task.container = Some(container);
                task.attempts += 1;
                task.t_start = now;
                am.ready_order.retain(|id| *id != task_id);
                self.containers.insert(container.id, (wf, task_id));
                let startup = self.ams[wf].config.container_startup_secs;
                self.cluster.engine.set_timer_after(
                    startup,
                    Tag::ContainerStarted { wf: wf as u32, task: task_id },
                );
            }
            None => {
                // No launchable task for this container (e.g. every
                // candidate avoids this node). Hand it back and re-ask so
                // the request count matches the ready tasks again.
                self.cluster.rm.release(container.id);
                let am = &mut self.ams[wf];
                let tid = am
                    .ready_order
                    .iter()
                    .find(|id| am.tasks[id].state == TaskState::Requested)
                    .copied();
                if let Some(tid) = tid {
                    let resource = {
                        let spec = &self.ams[wf].tasks[&tid].spec;
                        self.container_resource_for(wf, spec)
                    };
                    let am = &mut self.ams[wf];
                    let req = am.scheduler.container_request(&am.tasks[&tid].spec, resource);
                    self.cluster.rm.request(am.app, req);
                }
            }
        }
    }

    fn start_am(&mut self, wf: usize) {
        let am = &mut self.ams[wf];
        am.started = true;
        if am.config.scheduler.is_static() && !am.source.is_static() {
            am.error = Some(format!(
                "static scheduling policy '{}' cannot run iterative language '{}'",
                am.config.scheduler.name(),
                am.source.language()
            ));
            return;
        }
        match am.source.initial_tasks() {
            Ok(tasks) => {
                // Static policies plan over the full (static) task graph —
                // but only over nodes that can actually host a worker
                // container (dedicated master nodes advertise no capacity;
                // the AM's own node is already occupied by the AM).
                if am.config.scheduler.is_static() {
                    let resource = am.config.container_resource;
                    let nodes: Vec<_> = self
                        .cluster
                        .rm
                        .alive_nodes()
                        .into_iter()
                        .filter(|n| self.cluster.rm.available(*n).fits(&resource))
                        .collect();
                    if nodes.is_empty() {
                        am.error = Some(
                            "no node can host a worker container; static planning impossible"
                                .to_string(),
                        );
                        return;
                    }
                    let names: Vec<String> = self
                        .cluster
                        .engine
                        .spec()
                        .nodes
                        .iter()
                        .map(|n| n.name.clone())
                        .collect();
                    am.scheduler.plan(&tasks, &nodes, &names, &am.prov);
                    am.planned = true;
                }
                self.register_tasks(wf, tasks);
                self.check_ready(wf);
                self.maybe_finish(wf);
            }
            Err(e) => {
                am.error = Some(e.to_string());
            }
        }
    }

    fn register_tasks(&mut self, wf: usize, tasks: Vec<TaskSpec>) {
        let am = &mut self.ams[wf];
        for spec in tasks {
            let id = spec.id;
            assert!(
                !am.tasks.contains_key(&id),
                "front-end emitted duplicate task {id:?}"
            );
            am.tasks.insert(id, TaskRun::new(spec));
        }
    }

    /// The container resource for a task: the AM-wide uniform size, or —
    /// in tailored mode (§5 future work) — the task's own footprint,
    /// clamped so it fits the largest node.
    fn container_resource_for(&self, wf: usize, task: &TaskSpec) -> Resource {
        let config = &self.ams[wf].config;
        if !config.tailored_containers {
            return config.container_resource;
        }
        let (max_vcores, max_mem) = self
            .cluster
            .rm
            .alive_nodes()
            .into_iter()
            .map(|n| self.cluster.rm.total(n))
            .fold((1u32, 512u64), |(v, m), r| (v.max(r.vcores), m.max(r.memory_mb)));
        Resource::new(
            task.cost.threads.clamp(1, max_vcores),
            task.cost.memory_mb.clamp(256, max_mem),
        )
    }

    /// Moves Waiting tasks whose inputs are all available to Requested.
    fn check_ready(&mut self, wf: usize) {
        let now = self.cluster.engine.now().as_secs();
        let ready: Vec<TaskId> = {
            let am = &self.ams[wf];
            am.tasks
                .iter()
                .filter(|(_, t)| t.state == TaskState::Waiting)
                .filter(|(_, t)| {
                    t.spec
                        .inputs
                        .iter()
                        .all(|p| self.cluster.input_available(p))
                })
                .map(|(id, _)| *id)
                .collect()
        };
        for id in ready {
            let resource = {
                let spec = &self.ams[wf].tasks[&id].spec;
                self.container_resource_for(wf, spec)
            };
            let am = &mut self.ams[wf];
            let task = am.tasks.get_mut(&id).expect("listed");
            task.state = TaskState::Requested;
            task.t_ready = now;
            am.ready_order.push(id);
            let req = am.scheduler.container_request(&task.spec, resource);
            self.cluster.rm.request(am.app, req);
        }
    }

    // ----- worker container lifecycle --------------------------------------

    fn begin_stage_in(&mut self, wf: usize, task_id: TaskId) {
        let peer = self.ams[wf]
            .tasks
            .get(&task_id)
            .and_then(|t| t.container.map(|c| c.node));
        self.charge_master_overhead_from(false, peer);
        let (node, inputs) = {
            let task = self.ams[wf].tasks.get_mut(&task_id).expect("known task");
            task.state = TaskState::StageIn;
            task.reset_phase_state();
            (
                task.container.expect("container assigned").node,
                task.spec.inputs.clone(),
            )
        };
        let now = self.cluster.engine.now();
        let mut instantly_done: Vec<u32> = Vec::new();
        {
            let task = self.ams[wf].tasks.get_mut(&task_id).expect("known task");
            task.files_remaining = inputs.len();
        }
        for (fi, path) in inputs.iter().enumerate() {
            let fi = fi as u32;
            let tag = Tag::StageIn { wf: wf as u32, task: task_id, file: fi };
            let acts: Vec<ActivityId> = if let Some(ext) = self.cluster.external_file(path) {
                if ext.size == 0 {
                    Vec::new()
                } else {
                    vec![self.cluster.engine.start(
                        Activity::Flow {
                            src: Endpoint::External(ext.service),
                            dst: Endpoint::Node(node),
                            src_disk: false,
                            dst_disk: true,
                        },
                        ext.size as f64,
                        tag,
                    )]
                }
            } else {
                match self.cluster.hdfs.read_plan(path, node) {
                    Ok(plan) => hdfs_exec::start_read(&mut self.cluster.engine, &plan, tag),
                    Err(e) => {
                        self.fail_workflow(wf, format!("stage-in of '{path}' failed: {e}"));
                        return;
                    }
                }
            };
            let task = self.ams[wf].tasks.get_mut(&task_id).expect("known task");
            task.group_started.insert(fi, now);
            if acts.is_empty() {
                instantly_done.push(fi);
            } else {
                task.group_remaining.insert(fi, acts.len());
                task.inflight.extend(acts);
            }
        }
        for fi in instantly_done {
            self.on_stage_in_done(wf, task_id, fi);
        }
        // Zero-input tasks go straight to execution.
        if inputs.is_empty() {
            self.begin_exec(wf, task_id);
        }
    }

    fn on_stage_in_done(&mut self, wf: usize, task_id: TaskId, file: u32) {
        let now = self.cluster.engine.now();
        let finished_file = {
            let task = match self.ams[wf].tasks.get_mut(&task_id) {
                Some(t) if t.state == TaskState::StageIn => t,
                _ => return, // stale event after failure/cancel
            };
            match task.group_remaining.get_mut(&file) {
                Some(rem) if *rem > 1 => {
                    *rem -= 1;
                    false
                }
                _ => {
                    task.group_remaining.remove(&file);
                    true
                }
            }
        };
        if !finished_file {
            return;
        }
        // Record the file-level provenance event.
        let (path, size, started) = {
            let task = &self.ams[wf].tasks[&task_id];
            let path = task.spec.inputs[file as usize].clone();
            let size = self
                .cluster
                .external_file(&path)
                .map(|e| e.size)
                .or_else(|| self.cluster.hdfs.len(&path).ok())
                .unwrap_or(0);
            (path, size, task.group_started[&file])
        };
        self.ams[wf].prov.record_file(FileEvent {
            path,
            size,
            task: task_id.0,
            direction: "in".into(),
            transfer_seconds: now.since(started),
        });
        let task = self.ams[wf].tasks.get_mut(&task_id).expect("known task");
        task.files_remaining -= 1;
        if task.files_remaining == 0 {
            self.begin_exec(wf, task_id);
        }
    }

    fn begin_exec(&mut self, wf: usize, task_id: TaskId) {
        let am = &mut self.ams[wf];
        let task = am.tasks.get_mut(&task_id).expect("known task");
        task.state = TaskState::Running;
        task.inflight.clear();
        task.files_remaining = 1;
        task.scratch_done = task.spec.cost.scratch_bytes == 0;
        let container = task.container.expect("container assigned");
        let node_cores = self.cluster.engine.spec().node(container.node).cores;
        let cap = if am.config.multithread_full_node {
            node_cores
        } else {
            container.resource.vcores
        };
        let threads = task.spec.cost.threads.min(cap.max(1)).max(1) as f64;
        let act = self.cluster.engine.start(
            Activity::Compute { node: container.node, threads },
            task.spec.cost.cpu_seconds,
            Tag::Exec { wf: wf as u32, task: task_id },
        );
        task.inflight.insert(act);
    }

    fn on_exec_done(&mut self, wf: usize, task_id: TaskId) {
        let scratch_pending = {
            let task = match self.ams[wf].tasks.get_mut(&task_id) {
                Some(t) if t.state == TaskState::Running => t,
                _ => return,
            };
            task.files_remaining = task.files_remaining.saturating_sub(1);
            if task.files_remaining > 0 {
                return; // more execution-phase activities outstanding
            }
            task.inflight.clear();
            !task.scratch_done
        };
        if scratch_pending {
            // Working-directory I/O: the tool writes its temporary files
            // and reads them back — on the node's *local* disk under
            // Hi-WAY (cf. Figure 8's analysis).
            let task = self.ams[wf].tasks.get_mut(&task_id).expect("known");
            task.scratch_done = true;
            let node = task.container.expect("assigned").node;
            let bytes = task.spec.cost.scratch_bytes as f64;
            let tag = Tag::Exec { wf: wf as u32, task: task_id };
            let w = self.cluster.engine.start(Activity::DiskWrite { node }, bytes, tag.clone());
            let r = self.cluster.engine.start(Activity::DiskRead { node }, bytes, tag);
            let task = self.ams[wf].tasks.get_mut(&task_id).expect("known");
            task.files_remaining = 2;
            task.inflight.insert(w);
            task.inflight.insert(r);
            return;
        }
        let now = self.cluster.engine.now().as_secs();
        self.ams[wf].tasks.get_mut(&task_id).expect("known").t_exec_end = now;

        // Simulated tool crash?
        let fail_prob = self.ams[wf].config.task_failure_prob;
        if fail_prob > 0.0 && self.ams[wf].rng.gen_bool(fail_prob.clamp(0.0, 1.0)) {
            let node = self.ams[wf].tasks[&task_id]
                .container
                .expect("assigned")
                .node;
            let cid = self.ams[wf].tasks[&task_id].container.expect("assigned").id;
            self.containers.remove(&cid);
            self.cluster.rm.release(cid);
            self.handle_attempt_failure(wf, task_id, node, "simulated tool failure");
            return;
        }
        self.begin_stage_out(wf, task_id);
    }

    fn begin_stage_out(&mut self, wf: usize, task_id: TaskId) {
        let (node, outputs) = {
            let task = self.ams[wf].tasks.get_mut(&task_id).expect("known task");
            task.state = TaskState::StageOut;
            task.reset_phase_state();
            (
                task.container.expect("assigned").node,
                task.spec.outputs.clone(),
            )
        };
        let now = self.cluster.engine.now();
        {
            let task = self.ams[wf].tasks.get_mut(&task_id).expect("known task");
            task.files_remaining = outputs.len();
        }
        if outputs.is_empty() {
            self.finish_task(wf, task_id);
            return;
        }
        let mut instantly_done: Vec<u32> = Vec::new();
        for (oi, out) in outputs.iter().enumerate() {
            let oi = oi as u32;
            self.charge_master_overhead(false);
            let plan = match self.cluster.hdfs.create(&out.path, out.size, node) {
                Ok(plan) => plan,
                Err(e) => {
                    self.fail_workflow(wf, format!("stage-out of '{}' failed: {e}", out.path));
                    return;
                }
            };
            let tag = Tag::StageOut { wf: wf as u32, task: task_id, file: oi };
            let acts = hdfs_exec::start_write(&mut self.cluster.engine, &plan, tag);
            let task = self.ams[wf].tasks.get_mut(&task_id).expect("known task");
            task.group_started.insert(oi, now);
            if acts.is_empty() {
                instantly_done.push(oi);
            } else {
                task.group_remaining.insert(oi, acts.len());
                task.inflight.extend(acts);
            }
        }
        for oi in instantly_done {
            self.on_stage_out_done(wf, task_id, oi);
        }
    }

    fn on_stage_out_done(&mut self, wf: usize, task_id: TaskId, file: u32) {
        let now = self.cluster.engine.now();
        let finished_file = {
            let task = match self.ams[wf].tasks.get_mut(&task_id) {
                Some(t) if t.state == TaskState::StageOut => t,
                _ => return,
            };
            match task.group_remaining.get_mut(&file) {
                Some(rem) if *rem > 1 => {
                    *rem -= 1;
                    false
                }
                _ => {
                    task.group_remaining.remove(&file);
                    true
                }
            }
        };
        if !finished_file {
            return;
        }
        let (path, size, started) = {
            let task = &self.ams[wf].tasks[&task_id];
            let out = &task.spec.outputs[file as usize];
            (out.path.clone(), out.size, task.group_started[&file])
        };
        self.cluster.commit_file(&path);
        self.ams[wf].prov.record_file(FileEvent {
            path,
            size,
            task: task_id.0,
            direction: "out".into(),
            transfer_seconds: now.since(started),
        });
        let task = self.ams[wf].tasks.get_mut(&task_id).expect("known task");
        task.files_remaining -= 1;
        if task.files_remaining == 0 {
            self.finish_task(wf, task_id);
        }
    }

    fn finish_task(&mut self, wf: usize, task_id: TaskId) {
        let now = self.cluster.engine.now().as_secs();
        let (container, event, report) = {
            let task = self.ams[wf].tasks.get_mut(&task_id).expect("known task");
            task.state = TaskState::Done;
            task.t_end = now;
            let container = task.container.take().expect("assigned");
            let node_name = self.cluster.node_name(container.node).to_string();
            let spec = &task.spec;
            let event = TaskEvent {
                id: task_id.0,
                name: spec.name.clone(),
                command: spec.command.clone(),
                inputs: spec
                    .inputs
                    .iter()
                    .map(|p| {
                        let size = self
                            .cluster
                            .external_file(p)
                            .map(|e| e.size)
                            .or_else(|| self.cluster.hdfs.len(p).ok())
                            .unwrap_or(0);
                        (p.clone(), size)
                    })
                    .collect(),
                outputs: spec.outputs.iter().map(|o| (o.path.clone(), o.size)).collect(),
                cpu_seconds: spec.cost.cpu_seconds,
                threads: spec.cost.threads,
                memory_mb: spec.cost.memory_mb,
                node: node_name.clone(),
                t_start: task.t_start,
                t_end: now,
                attempts: task.attempts,
                stdout: format!("task {} ok", spec.name),
                stderr: String::new(),
            };
            let report = TaskReport {
                id: task_id,
                name: spec.name.clone(),
                node: node_name,
                t_ready: task.t_ready,
                t_start: task.t_start,
                t_end: now,
                attempts: task.attempts,
            };
            (container, event, report)
        };
        self.containers.remove(&container.id);
        self.cluster.rm.release(container.id);
        self.ams[wf].prov.record_task(event);
        self.ams[wf].reports.push(report);
        self.charge_master_overhead(false);

        // Iterative discovery (Figure 3): the completion may reveal tasks.
        match self.ams[wf].source.on_task_completed(task_id) {
            Ok(new_tasks) => self.register_tasks(wf, new_tasks),
            Err(e) => {
                self.fail_workflow(wf, e.to_string());
                return;
            }
        }
        self.check_ready(wf);
        self.maybe_finish(wf);
    }

    fn handle_attempt_failure(&mut self, wf: usize, task_id: TaskId, node: NodeId, why: &str) {
        let retries = self.ams[wf].config.task_retries;
        let exhausted = {
            let task = self.ams[wf].tasks.get_mut(&task_id).expect("known task");
            for act in task.inflight.drain() {
                self.cluster.engine.cancel(act);
            }
            task.container = None;
            task.avoid_node = Some(node);
            task.reset_phase_state();
            task.attempts > retries
        };
        if exhausted {
            self.fail_workflow(
                wf,
                format!("task {task_id:?} failed too many times (last: {why})"),
            );
            return;
        }
        // Back to Requested with a fresh container ask; YARN will place it
        // "on different compute nodes" thanks to the avoid list.
        let resource = {
            let spec = &self.ams[wf].tasks[&task_id].spec;
            self.container_resource_for(wf, spec)
        };
        let am = &mut self.ams[wf];
        let task = am.tasks.get_mut(&task_id).expect("known task");
        task.state = TaskState::Requested;
        am.ready_order.push(task_id);
        let req = am.scheduler.container_request(&task.spec, resource);
        self.cluster.rm.request(am.app, req);
    }

    fn fail_workflow(&mut self, wf: usize, message: String) {
        let am = &mut self.ams[wf];
        am.error = Some(message);
        // Cancel everything in flight and release the containers.
        let inflight: Vec<(ContainerId, TaskId)> = self
            .containers
            .iter()
            .filter(|(_, (w, _))| *w == wf)
            .map(|(cid, (_, tid))| (*cid, *tid))
            .collect();
        for (cid, tid) in inflight {
            if let Some(task) = self.ams[wf].tasks.get_mut(&tid) {
                for act in task.inflight.drain() {
                    self.cluster.engine.cancel(act);
                }
            }
            self.containers.remove(&cid);
            self.cluster.rm.release(cid);
        }
        if let Some(c) = self.ams[wf].am_container.take() {
            self.cluster.rm.release(c.id);
        }
    }

    fn maybe_finish(&mut self, wf: usize) {
        let am = &self.ams[wf];
        if am.done
            || !am.source.is_complete()
            || !am.tasks.values().all(|t| t.state == TaskState::Done)
        {
            return;
        }
        let now = self.cluster.engine.now().as_secs();
        let am = &mut self.ams[wf];
        am.done = true;
        am.t_finish = now;
        if let Some(c) = am.am_container.take() {
            self.cluster.rm.release(c.id);
        }
    }

    fn charge_master_overhead(&mut self, hadoop_side: bool) {
        self.charge_master_overhead_from(hadoop_side, None)
    }

    fn charge_master_overhead_from(&mut self, hadoop_side: bool, peer: Option<NodeId>) {
        if let Some(mo) = self.master_overhead {
            let (node, cpu) = if hadoop_side {
                (mo.hadoop_master, mo.per_event_cpu)
            } else {
                (mo.am_master, mo.per_task_cpu)
            };
            if !self.cluster.rm.is_alive(node) {
                return;
            }
            if cpu > 0.0 {
                self.cluster.engine.start(
                    Activity::Compute { node, threads: 1.0 },
                    cpu,
                    Tag::Stress,
                );
            }
            if mo.rpc_bytes > 0 {
                if let Some(peer) = peer {
                    if peer != node {
                        self.cluster.engine.start(
                            Activity::Flow {
                                src: Endpoint::Node(peer),
                                dst: Endpoint::Node(node),
                                src_disk: false,
                                dst_disk: false,
                            },
                            mo.rpc_bytes as f64,
                            Tag::Stress,
                        );
                    }
                }
            }
            if mo.log_bytes > 0 {
                self.cluster.engine.start(
                    Activity::DiskWrite { node },
                    mo.log_bytes as f64,
                    Tag::Stress,
                );
            }
        }
    }
}
