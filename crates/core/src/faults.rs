//! Deterministic fault injection for chaos experiments.
//!
//! A [`FaultPlan`] is a seeded, pre-computed schedule of infrastructure
//! faults — node crashes (with later recovery), container preemptions,
//! HDFS DataNode disk losses, and straggler slowdown windows — generated
//! *before* the run from a [`FaultConfig`]. The same seed always yields
//! the same plan, and a [`FaultInjector`] applies the plan against a
//! [`Runtime`] with deterministic victim selection, so an entire chaos
//! run is byte-reproducible. An empty plan (all rates zero) degenerates
//! to a plain [`Runtime::run_to_completion`] — the injector adds no
//! engine activities, timers, or rng draws of its own in that case.
//!
//! Transient *task* failures (simulated tool crashes) are not part of the
//! plan: they are the AM's own failure model, driven by
//! [`crate::config::HiwayConfig::task_failure_prob`]. [`FaultConfig`]
//! carries the matching probability so one knob describes a whole chaos
//! scenario; the experiment copies it into the AM config.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hiway_obs::{Tracer, TrackId};
use hiway_sim::{ActivityId, NodeId, SimTime};

use crate::driver::Runtime;
use crate::report::WorkflowReport;

/// Fault rates for a chaos run. All `*_per_hour` rates are Poisson
/// arrival rates: per eligible node for crashes, disk losses, and
/// straggler windows; cluster-wide for preemptions.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Seed for plan generation (victim nodes, arrival times).
    pub seed: u64,
    /// Faults are generated inside `[0, horizon_secs)` of virtual time.
    pub horizon_secs: f64,
    /// Full node crashes (NodeManager and DataNode die together).
    pub crash_rate_per_hour: f64,
    /// Seconds until a crashed node re-registers (empty disk).
    pub recovery_secs: f64,
    /// Container preemptions across the whole cluster.
    pub preempt_rate_per_hour: f64,
    /// DataNode-only disk losses: replicas on the node vanish and
    /// re-replication kicks in, but containers keep running.
    pub hdfs_loss_rate_per_hour: f64,
    /// Straggler windows: bursts of CPU contention on one node.
    pub straggler_rate_per_hour: f64,
    /// Competing CPU hogs started for the length of a straggler window.
    pub straggler_procs: u32,
    /// Length of one straggler window, seconds.
    pub straggler_secs: f64,
    /// Transient tool-crash probability to run the AMs with (applied by
    /// the experiment, not by the injector).
    pub task_failure_prob: f64,
}

impl FaultConfig {
    /// A quiet plan: no faults at all. `FaultPlan::generate` on this
    /// yields zero events, making the chaos harness bit-identical to a
    /// fault-free run.
    pub fn none(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            horizon_secs: 4.0 * 3600.0,
            crash_rate_per_hour: 0.0,
            recovery_secs: 180.0,
            preempt_rate_per_hour: 0.0,
            hdfs_loss_rate_per_hour: 0.0,
            straggler_rate_per_hour: 0.0,
            straggler_procs: 4,
            straggler_secs: 120.0,
            task_failure_prob: 0.0,
        }
    }

    /// A scenario whose event rates all scale with one `intensity` knob
    /// (events/hour at intensity 1.0 chosen so that intensity ~0.1 is a
    /// rough cluster and ~1.0 is hostile).
    pub fn with_intensity(seed: u64, intensity: f64) -> FaultConfig {
        FaultConfig {
            crash_rate_per_hour: 2.0 * intensity,
            preempt_rate_per_hour: 30.0 * intensity,
            hdfs_loss_rate_per_hour: 2.0 * intensity,
            straggler_rate_per_hour: 4.0 * intensity,
            task_failure_prob: (0.05 * intensity).min(0.9),
            ..FaultConfig::none(seed)
        }
    }
}

/// One scheduled fault (or its paired recovery).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultAction {
    /// Kill the node's NodeManager and DataNode; containers die.
    CrashNode(NodeId),
    /// The crashed node re-registers with a blank disk.
    RecoverNode(NodeId),
    /// Kill one live worker container, chosen as `pick % live-count`
    /// over the id-sorted container list at the moment of injection.
    PreemptContainer { pick: u64 },
    /// The node's DataNode disk dies; the NodeManager keeps running.
    LoseDatanode(NodeId),
    /// The lost DataNode returns with a fresh (empty) disk.
    RestoreDatanode(NodeId),
    /// Start CPU contention on the node (a slow node, not a dead one).
    StragglerStart { node: NodeId, procs: u32 },
    /// End the node's straggler window.
    StragglerEnd(NodeId),
}

/// A fault with its virtual-time trigger.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    pub at: f64,
    pub action: FaultAction,
}

/// The full, deterministic schedule of a chaos run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Events sorted by trigger time.
    pub events: Vec<FaultEvent>,
}

/// Exponential inter-arrival sample (Poisson process with `rate`/sec).
fn exp_gap(rng: &mut StdRng, rate_per_sec: f64) -> f64 {
    let u: f64 = rng.gen();
    -(1.0 - u).ln() / rate_per_sec
}

impl FaultPlan {
    /// Builds the schedule for `eligible` nodes (pass the *worker* nodes
    /// only — dedicated master nodes must not crash, or the whole run
    /// dies with them). Per-node faults are drawn on independent
    /// per-node timelines whose windows never overlap, so a node is
    /// never crashed while already down or mid-straggle; each node's
    /// sub-stream is seeded from `(seed, node)` so one node's schedule
    /// does not depend on how many draws another consumed.
    pub fn generate(config: &FaultConfig, eligible: &[NodeId]) -> FaultPlan {
        let mut events: Vec<FaultEvent> = Vec::new();
        let per_node_rate = (config.crash_rate_per_hour
            + config.hdfs_loss_rate_per_hour
            + config.straggler_rate_per_hour)
            / 3600.0;
        if per_node_rate > 0.0 {
            for &node in eligible {
                let mut rng = StdRng::seed_from_u64(
                    config.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        ^ (node.0 as u64).wrapping_mul(0xff51_afd7_ed55_8ccd),
                );
                let mut t = 0.0f64;
                loop {
                    t += exp_gap(&mut rng, per_node_rate);
                    if t >= config.horizon_secs {
                        break;
                    }
                    let draw: f64 = rng.gen::<f64>() * per_node_rate * 3600.0;
                    if draw < config.crash_rate_per_hour {
                        events.push(FaultEvent {
                            at: t,
                            action: FaultAction::CrashNode(node),
                        });
                        t += config.recovery_secs;
                        events.push(FaultEvent {
                            at: t,
                            action: FaultAction::RecoverNode(node),
                        });
                    } else if draw < config.crash_rate_per_hour + config.hdfs_loss_rate_per_hour {
                        events.push(FaultEvent {
                            at: t,
                            action: FaultAction::LoseDatanode(node),
                        });
                        t += config.recovery_secs;
                        events.push(FaultEvent {
                            at: t,
                            action: FaultAction::RestoreDatanode(node),
                        });
                    } else {
                        events.push(FaultEvent {
                            at: t,
                            action: FaultAction::StragglerStart {
                                node,
                                procs: config.straggler_procs,
                            },
                        });
                        t += config.straggler_secs;
                        events.push(FaultEvent {
                            at: t,
                            action: FaultAction::StragglerEnd(node),
                        });
                    }
                }
            }
        }
        if config.preempt_rate_per_hour > 0.0 {
            let mut rng =
                StdRng::seed_from_u64(config.seed.wrapping_mul(0xc2b2_ae3d_27d4_eb4f) ^ 0x7072);
            let rate = config.preempt_rate_per_hour / 3600.0;
            let mut t = 0.0f64;
            loop {
                t += exp_gap(&mut rng, rate);
                if t >= config.horizon_secs {
                    break;
                }
                let pick: u64 = rng.gen();
                events.push(FaultEvent {
                    at: t,
                    action: FaultAction::PreemptContainer { pick },
                });
            }
        }
        // Stable order: by time, ties broken by the per-node generation
        // order already present in the vector.
        events.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("fault times are finite"));
        FaultPlan { events }
    }
}

/// Applies a [`FaultPlan`] to a [`Runtime`], respecting safety rules
/// (never kill the last standing worker) and recording what actually
/// happened for the experiment log.
pub struct FaultInjector {
    plan: FaultPlan,
    cursor: usize,
    eligible: Vec<NodeId>,
    /// Nodes currently crashed (NodeManager down).
    down: BTreeSet<NodeId>,
    /// Running CPU-hog activities per straggling node.
    stress: BTreeMap<NodeId, Vec<ActivityId>>,
    /// `(virtual time, description)` of every fault actually injected.
    pub injected: Vec<(f64, String)>,
    /// Events skipped by safety rules (last worker, no containers, …).
    pub skipped: u32,
    /// Observability sink: injected faults land as instants on a
    /// dedicated "faults" track plus per-kind counters.
    tracer: Tracer,
    track: TrackId,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan, eligible: Vec<NodeId>) -> FaultInjector {
        FaultInjector {
            plan,
            cursor: 0,
            eligible,
            down: BTreeSet::new(),
            stress: BTreeMap::new(),
            injected: Vec::new(),
            skipped: 0,
            tracer: Tracer::disabled(),
            track: TrackId::NONE,
        }
    }

    /// Attaches an observability sink (usually the same tracer the
    /// [`Runtime`] carries). A disabled tracer keeps injection silent.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
        self.track = tracer.track("faults");
    }

    /// Records one applied fault in both the experiment log and the trace.
    fn note(&mut self, at: f64, kind: &'static str, desc: String) {
        if self.tracer.is_enabled() {
            self.tracer.instant(
                self.track,
                &format!("fault:{kind}"),
                "fault",
                at,
                &[("what", desc.clone())],
            );
            self.tracer.inc(&format!("fault.{kind}"), 1);
            self.tracer.inc("fault.injected", 1);
        }
        self.injected.push((at, desc));
    }

    /// Records a fault suppressed by a safety rule.
    fn skip(&mut self) {
        self.skipped += 1;
        self.tracer.inc("fault.skipped", 1);
    }

    /// Runs `rt` to completion, injecting the plan's events at their
    /// virtual times. Events past the workflows' finish are ignored.
    /// With an empty plan this is exactly `rt.run_to_completion()`.
    pub fn run(&mut self, rt: &mut Runtime) -> Vec<WorkflowReport> {
        while self.cursor < self.plan.events.len() {
            let ev = self.plan.events[self.cursor];
            self.cursor += 1;
            if !rt.run_until(SimTime::from_secs(ev.at)) {
                return rt.reports(); // all workflows finished (or failed)
            }
            self.apply(rt, ev);
        }
        rt.run_to_completion()
    }

    /// How many eligible workers would remain standing if one more died.
    fn standing_workers(&self) -> usize {
        self.eligible
            .iter()
            .filter(|n| !self.down.contains(n))
            .count()
    }

    fn apply(&mut self, rt: &mut Runtime, ev: FaultEvent) {
        match ev.action {
            FaultAction::CrashNode(node) => {
                if self.down.contains(&node) || self.standing_workers() <= 1 {
                    self.skip();
                    return;
                }
                // A crash also takes any straggler hogs down with it.
                if let Some(ids) = self.stress.remove(&node) {
                    for id in ids {
                        rt.cluster.engine.cancel(id);
                    }
                }
                rt.fail_node(node);
                self.down.insert(node);
                let lost = match rt.cluster.try_re_replicate() {
                    Ok(copies) => format!("{copies} block copies started"),
                    Err(e) => format!("data loss: {e}"),
                };
                self.note(
                    ev.at,
                    "crash_node",
                    format!("crash node {} ({lost})", node.0),
                );
            }
            FaultAction::RecoverNode(node) => {
                if !self.down.remove(&node) {
                    self.skip();
                    return;
                }
                rt.recover_node(node);
                // The fresh disk joins empty; refill it to the target
                // replication factor in the background.
                let _ = rt.cluster.try_re_replicate();
                self.note(ev.at, "recover_node", format!("recover node {}", node.0));
            }
            FaultAction::PreemptContainer { pick } => {
                let live = rt.worker_containers();
                if live.is_empty() {
                    self.skip();
                    return;
                }
                let victim = live[(pick % live.len() as u64) as usize];
                if rt.preempt_container(victim) {
                    self.note(
                        ev.at,
                        "preempt_container",
                        format!("preempt container {}", victim.0),
                    );
                } else {
                    self.skip();
                }
            }
            FaultAction::LoseDatanode(node) => {
                if self.down.contains(&node)
                    || !rt.cluster.hdfs.is_alive(node)
                    || rt.cluster.hdfs.alive_count() <= 1
                {
                    self.skip();
                    return;
                }
                rt.cluster
                    .hdfs
                    .fail_node(node)
                    .expect("alive was just checked");
                let lost = match rt.cluster.try_re_replicate() {
                    Ok(copies) => format!("{copies} block copies started"),
                    Err(e) => format!("data loss: {e}"),
                };
                self.note(
                    ev.at,
                    "lose_datanode",
                    format!("lose datanode {} ({lost})", node.0),
                );
            }
            FaultAction::RestoreDatanode(node) => {
                if self.down.contains(&node) || rt.cluster.hdfs.is_alive(node) {
                    self.skip();
                    return;
                }
                rt.cluster.hdfs.revive_node(node).expect("known node");
                let _ = rt.cluster.try_re_replicate();
                self.note(
                    ev.at,
                    "restore_datanode",
                    format!("restore datanode {}", node.0),
                );
            }
            FaultAction::StragglerStart { node, procs } => {
                if self.down.contains(&node) || self.stress.contains_key(&node) {
                    self.skip();
                    return;
                }
                let ids = rt.cluster.add_cpu_stress(node, procs);
                self.stress.insert(node, ids);
                self.note(
                    ev.at,
                    "straggler_start",
                    format!("straggle node {} x{procs}", node.0),
                );
            }
            FaultAction::StragglerEnd(node) => match self.stress.remove(&node) {
                Some(ids) => {
                    for id in ids {
                        rt.cluster.engine.cancel(id);
                    }
                    self.note(
                        ev.at,
                        "straggler_end",
                        format!("unstraggle node {}", node.0),
                    );
                }
                None => self.skip(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rates_generate_no_events() {
        let plan = FaultPlan::generate(&FaultConfig::none(7), &[NodeId(2), NodeId(3)]);
        assert!(plan.events.is_empty());
    }

    #[test]
    fn same_seed_same_plan() {
        let nodes: Vec<NodeId> = (2..10).map(NodeId).collect();
        let a = FaultPlan::generate(&FaultConfig::with_intensity(42, 0.5), &nodes);
        let b = FaultPlan::generate(&FaultConfig::with_intensity(42, 0.5), &nodes);
        assert_eq!(a.events, b.events);
        assert!(!a.events.is_empty());
        let c = FaultPlan::generate(&FaultConfig::with_intensity(43, 0.5), &nodes);
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn plans_are_time_sorted_and_paired() {
        let nodes: Vec<NodeId> = (2..6).map(NodeId).collect();
        let plan = FaultPlan::generate(&FaultConfig::with_intensity(1, 1.0), &nodes);
        for w in plan.events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        // Every crash has a recovery scheduled for the same node.
        let crashes = plan
            .events
            .iter()
            .filter(|e| matches!(e.action, FaultAction::CrashNode(_)))
            .count();
        let recoveries = plan
            .events
            .iter()
            .filter(|e| matches!(e.action, FaultAction::RecoverNode(_)))
            .count();
        assert_eq!(crashes, recoveries);
    }

    #[test]
    fn intensity_scales_event_count() {
        let nodes: Vec<NodeId> = (2..18).map(NodeId).collect();
        let quiet = FaultPlan::generate(&FaultConfig::with_intensity(5, 0.05), &nodes);
        let loud = FaultPlan::generate(&FaultConfig::with_intensity(5, 1.0), &nodes);
        assert!(loud.events.len() > quiet.events.len() * 4);
    }
}
