//! The Provenance Manager (paper §3.5).
//!
//! Registers events at three granularities — workflow, task, file — each
//! timestamped, and keeps them in two places: an append-only event list
//! that becomes the re-executable JSON trace file stored in HDFS, and the
//! queryable [`hiway_provdb`] document store (the MySQL/Couchbase stand-in)
//! from which the Workflow Scheduler draws its runtime estimates.
//!
//! The estimate strategy is the paper's: "the current strategy for
//! computing these runtime estimates is to always use the latest observed
//! runtime. If no runtimes have been observed yet for a particular
//! task-machine-assignment, a default runtime of zero is assumed to
//! encourage trying out new assignments."

use hiway_format::json::Json;
use hiway_lang::trace::{FileEvent, TaskEvent, TraceEvent, WorkflowEvent};
use hiway_provdb::{Aggregate, Op, ProvDb};

/// Collection names inside the provenance database.
pub const TASKS_COLLECTION: &str = "task_events";
pub const FILES_COLLECTION: &str = "file_events";
pub const WORKFLOWS_COLLECTION: &str = "workflow_events";
pub const ATTEMPTS_COLLECTION: &str = "attempt_events";

/// Per-workflow provenance recorder over a (possibly shared, long-lived)
/// provenance database. Sharing the database across runs is what feeds the
/// adaptive scheduler in the Figure 9 experiment: every prior execution
/// enriches the runtime estimates of the next.
pub struct ProvenanceManager {
    db: ProvDb,
    events: Vec<TraceEvent>,
}

impl ProvenanceManager {
    pub fn new(db: ProvDb) -> ProvenanceManager {
        // Index the hot lookup fields once; index creation is idempotent.
        db.collection(TASKS_COLLECTION).create_index("name");
        ProvenanceManager {
            db,
            events: Vec::new(),
        }
    }

    /// The shared database handle (e.g. to pass to the next workflow run).
    pub fn db(&self) -> &ProvDb {
        &self.db
    }

    /// Records a completed task execution.
    pub fn record_task(&mut self, event: TaskEvent) {
        let doc = Json::object()
            .with("name", event.name.as_str())
            .with("node", event.node.as_str())
            .with("makespan", event.makespan())
            .with("t_start", event.t_start)
            .with("t_end", event.t_end)
            .with("attempts", event.attempts)
            .with("command", event.command.as_str());
        self.db.collection(TASKS_COLLECTION).insert(doc);
        self.events.push(TraceEvent::Task(event));
    }

    /// Records the fate of one container attempt that did *not* commit the
    /// task's result — a tool crash, an infrastructure loss (node crash,
    /// preemption), or a cancelled speculative duplicate. Successful
    /// attempts are implied by the task event itself. Keeping these in the
    /// provenance store means a chaotic run's history is fully auditable
    /// while its trace file stays a re-executable workflow (§3.5): replay
    /// re-runs only the attempts that actually produced data.
    pub fn record_attempt(
        &mut self,
        task: u64,
        name: &str,
        node: &str,
        outcome: &str,
        container_secs: f64,
    ) {
        let doc = Json::object()
            .with("task", task)
            .with("name", name)
            .with("node", node)
            .with("outcome", outcome)
            .with("container_secs", container_secs);
        self.db.collection(ATTEMPTS_COLLECTION).insert(doc);
    }

    /// Number of recorded non-successful attempts with `outcome` (pass ""
    /// to count all outcomes).
    pub fn attempt_count(&self, outcome: &str) -> usize {
        let q = self.db.collection(ATTEMPTS_COLLECTION).query();
        let q = if outcome.is_empty() {
            q
        } else {
            q.filter("outcome", Op::Eq, outcome)
        };
        q.aggregate("container_secs", Aggregate::Count)
            .unwrap_or(0.0) as usize
    }

    /// Records a file staged in or out of a task's container.
    pub fn record_file(&mut self, event: FileEvent) {
        let doc = Json::object()
            .with("path", event.path.as_str())
            .with("size", event.size)
            .with("task", event.task)
            .with("direction", event.direction.as_str())
            .with("transfer_seconds", event.transfer_seconds);
        self.db.collection(FILES_COLLECTION).insert(doc);
        self.events.push(TraceEvent::File(event));
    }

    /// Closes the workflow, returning the full trace in the on-disk
    /// (JSON-lines) format — itself a valid workflow (§3.5).
    pub fn finish_workflow(&mut self, name: &str, language: &str, total_seconds: f64) -> String {
        let event = WorkflowEvent {
            name: name.to_string(),
            language: language.to_string(),
            total_seconds,
        };
        self.db.collection(WORKFLOWS_COLLECTION).insert(
            Json::object()
                .with("name", name)
                .with("language", language)
                .with("total_seconds", total_seconds),
        );
        // The workflow header leads the trace for readability.
        let mut trace = vec![TraceEvent::Workflow(event)];
        trace.append(&mut self.events);
        hiway_lang::trace::write_trace(&trace)
    }

    /// Imports the events of a previously written trace file into the
    /// statistics store — "stored as JSON objects in a trace file in HDFS,
    /// from where it can be accessed by other instances of Hi-WAY" (§3.5).
    /// Returns how many task observations were loaded.
    pub fn import_trace(&mut self, trace_text: &str) -> Result<usize, hiway_lang::LangError> {
        let events = hiway_lang::trace::parse_trace_events(trace_text)?;
        let mut loaded = 0;
        for event in events {
            match event {
                TraceEvent::Task(t) => {
                    let doc = Json::object()
                        .with("name", t.name.as_str())
                        .with("node", t.node.as_str())
                        .with("makespan", t.makespan())
                        .with("t_start", t.t_start)
                        .with("t_end", t.t_end)
                        .with("attempts", t.attempts)
                        .with("command", t.command.as_str());
                    self.db.collection(TASKS_COLLECTION).insert(doc);
                    loaded += 1;
                }
                TraceEvent::File(f) => {
                    let doc = Json::object()
                        .with("path", f.path.as_str())
                        .with("size", f.size)
                        .with("task", f.task)
                        .with("direction", f.direction.as_str())
                        .with("transfer_seconds", f.transfer_seconds);
                    self.db.collection(FILES_COLLECTION).insert(doc);
                }
                TraceEvent::Workflow(_) => {}
            }
        }
        Ok(loaded)
    }

    /// Latest observed makespan of `signature` on `node`, or `None` —
    /// which the scheduler maps to the exploration-friendly default of 0.
    pub fn latest_runtime(&self, signature: &str, node: &str) -> Option<f64> {
        self.db
            .collection(TASKS_COLLECTION)
            .query()
            .filter("name", Op::Eq, signature)
            .filter("node", Op::Eq, node)
            .last()
            .and_then(|doc| doc.get("makespan").and_then(Json::as_f64))
    }

    /// Average observed makespan of `signature` across all nodes.
    pub fn average_runtime(&self, signature: &str) -> Option<f64> {
        self.db
            .collection(TASKS_COLLECTION)
            .query()
            .filter("name", Op::Eq, signature)
            .aggregate("makespan", Aggregate::Avg)
    }

    /// Number of recorded executions of `signature` (any node).
    pub fn observation_count(&self, signature: &str) -> usize {
        self.db
            .collection(TASKS_COLLECTION)
            .query()
            .filter("name", Op::Eq, signature)
            .aggregate("makespan", Aggregate::Count)
            .unwrap_or(0.0) as usize
    }

    /// Latest recorded size of a file (§3.4 statistics source ii: "the
    /// names and sizes of the files being processed in these tasks").
    pub fn known_file_size(&self, path: &str) -> Option<u64> {
        self.db
            .collection(FILES_COLLECTION)
            .query()
            .filter("path", Op::Eq, path)
            .last()
            .and_then(|doc| doc.get("size").and_then(Json::as_u64))
    }

    /// Average observed transfer seconds per byte for stage-in traffic —
    /// available to schedulers that want to estimate data transfer times
    /// (§3.4 point iii).
    pub fn avg_transfer_secs_per_byte(&self) -> Option<f64> {
        let docs = self
            .db
            .collection(FILES_COLLECTION)
            .query()
            .filter("direction", Op::Eq, "in")
            .filter("size", Op::Gt, 0.0)
            .collect();
        if docs.is_empty() {
            return None;
        }
        let (mut secs, mut bytes) = (0.0, 0.0);
        for d in docs {
            secs += d
                .get("transfer_seconds")
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            bytes += d.get("size").and_then(Json::as_f64).unwrap_or(0.0);
        }
        if bytes > 0.0 {
            Some(secs / bytes)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task_event(name: &str, node: &str, start: f64, end: f64) -> TaskEvent {
        TaskEvent {
            id: 0,
            name: name.into(),
            command: format!("{name} ..."),
            inputs: vec![],
            outputs: vec![],
            cpu_seconds: end - start,
            threads: 1,
            memory_mb: 100,
            node: node.into(),
            t_start: start,
            t_end: end,
            attempts: 1,
            stdout: String::new(),
            stderr: String::new(),
        }
    }

    #[test]
    fn latest_runtime_is_most_recent() {
        let mut p = ProvenanceManager::new(ProvDb::new());
        p.record_task(task_event("align", "w0", 0.0, 10.0));
        p.record_task(task_event("align", "w0", 20.0, 25.0));
        p.record_task(task_event("align", "w1", 0.0, 40.0));
        assert_eq!(p.latest_runtime("align", "w0"), Some(5.0));
        assert_eq!(p.latest_runtime("align", "w1"), Some(40.0));
        assert_eq!(p.latest_runtime("align", "w9"), None);
        assert_eq!(p.latest_runtime("sort", "w0"), None);
        assert_eq!(p.observation_count("align"), 3);
    }

    #[test]
    fn estimates_survive_across_manager_instances_sharing_a_db() {
        let db = ProvDb::new();
        let mut p1 = ProvenanceManager::new(db.clone());
        p1.record_task(task_event("align", "w0", 0.0, 12.0));
        drop(p1);
        let p2 = ProvenanceManager::new(db);
        assert_eq!(p2.latest_runtime("align", "w0"), Some(12.0));
    }

    #[test]
    fn finish_produces_reexecutable_trace() {
        let mut p = ProvenanceManager::new(ProvDb::new());
        let mut e = task_event("align", "w0", 0.0, 10.0);
        e.inputs = vec![("/in".into(), 5)];
        e.outputs = vec![("/out".into(), 10)];
        p.record_task(e);
        p.record_file(FileEvent {
            path: "/in".into(),
            size: 5,
            task: 0,
            direction: "in".into(),
            transfer_seconds: 0.1,
        });
        let trace = p.finish_workflow("demo", "cuneiform", 10.5);
        let wf = hiway_lang::trace::parse_trace(&trace).unwrap();
        assert_eq!(wf.name, "demo-replay");
        assert_eq!(wf.tasks.len(), 1);
    }

    #[test]
    fn transfer_rate_estimate() {
        let mut p = ProvenanceManager::new(ProvDb::new());
        assert_eq!(p.avg_transfer_secs_per_byte(), None);
        p.record_file(FileEvent {
            path: "/a".into(),
            size: 100,
            task: 0,
            direction: "in".into(),
            transfer_seconds: 2.0,
        });
        p.record_file(FileEvent {
            path: "/b".into(),
            size: 100,
            task: 0,
            direction: "out".into(), // ignored: only stage-in counts
            transfer_seconds: 50.0,
        });
        assert_eq!(p.avg_transfer_secs_per_byte(), Some(0.02));
    }
}

#[cfg(test)]
mod statistics_source_tests {
    use super::*;
    use hiway_lang::trace::FileEvent;

    /// The three statistics sources §3.4 enumerates are all queryable.
    #[test]
    fn file_sizes_and_transfer_rates_are_recorded() {
        let mut p = ProvenanceManager::new(ProvDb::new());
        assert_eq!(p.known_file_size("/in/reads.fq"), None);
        p.record_file(FileEvent {
            path: "/in/reads.fq".into(),
            size: 1_000_000,
            task: 0,
            direction: "in".into(),
            transfer_seconds: 2.0,
        });
        assert_eq!(p.known_file_size("/in/reads.fq"), Some(1_000_000));
        assert_eq!(p.avg_transfer_secs_per_byte(), Some(2.0e-6));
        // Latest size wins when a path is re-observed.
        p.record_file(FileEvent {
            path: "/in/reads.fq".into(),
            size: 2_000_000,
            task: 1,
            direction: "in".into(),
            transfer_seconds: 4.0,
        });
        assert_eq!(p.known_file_size("/in/reads.fq"), Some(2_000_000));
    }
}
