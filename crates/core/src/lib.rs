//! # hiway-core — the Hi-WAY application master
//!
//! The conceptual heart of the reproduction: Hi-WAY is "a (surprisingly
//! thin) layer between scientific workflow specifications expressed in
//! different languages and Hadoop YARN". One AM instance runs per
//! workflow; it parses the workflow through a language front-end
//! (`hiway-lang`), asks YARN (`hiway-yarn`) for one worker container per
//! ready task, moves data through HDFS (`hiway-hdfs`), and records
//! everything it does in re-executable provenance traces.
//!
//! Modules map one-to-one onto the architecture of the paper's Figure 1:
//!
//! * [`driver`] — the **Workflow Driver**: parses the workflow, tracks
//!   data dependencies, supervises execution, and feeds completed-task
//!   events back to the front-end to discover new tasks (iterative
//!   execution model, Figure 3).
//! * [`scheduler`] — the **Workflow Scheduler**: FCFS, data-aware
//!   (default), static round-robin, and adaptive HEFT policies (§3.4).
//! * [`provenance`] — the **Provenance Manager**: workflow/task/file
//!   events, JSON trace files in HDFS, a queryable database backend, and
//!   the runtime-estimate queries the adaptive scheduler consumes (§3.5).
//! * [`cluster`] — the simulated substrate bundle (engine + HDFS + YARN
//!   RM) and the client-side setup helpers.
//! * [`config`] — AM configuration (container sizing, scheduler policy,
//!   retry limits, heartbeat).

pub mod cluster;
pub mod config;
pub mod driver;
pub mod faults;
pub mod memo;
pub mod provenance;
pub mod report;
pub mod scheduler;

pub use cluster::Cluster;
pub use config::{HiwayConfig, SchedulerPolicy};
pub use driver::Runtime;
pub use faults::{FaultConfig, FaultInjector, FaultPlan};
pub use memo::{memo_key, MemoHit, MemoStore};
pub use provenance::ProvenanceManager;
pub use report::{TaskReport, WorkflowReport};
