//! AM configuration.

use hiway_yarn::Resource;

/// Which Workflow Scheduler policy to run (paper §3.4).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchedulerPolicy {
    /// First-come-first-served queue — "most established SWfMSs employ"
    /// this; the baseline in the adaptive-scheduling experiment ("greedy").
    Fcfs,
    /// Hi-WAY's default: when a container is allocated, pick the pending
    /// task with the highest fraction of its input data already local to
    /// the container's node.
    DataAware,
    /// Static: assign tasks to nodes in turn, in equal numbers, before
    /// execution starts. Requires a static workflow language.
    RoundRobin,
    /// Static + adaptive: heterogeneous-earliest-finish-time scheduling
    /// driven by provenance runtime estimates. Requires a static language.
    Heft,
    /// Dynamic + adaptive: when a container arrives, pick the pending task
    /// whose estimated runtime on that node — latest observation, default
    /// zero — is most *favourable* relative to the task's cross-node
    /// average. Unlike HEFT it needs no pre-built schedule, so it composes
    /// with iterative workflows — the "additional (non-static) adaptive
    /// scheduling policies … in the process of being integrated" that §3.4
    /// announces.
    Adaptive,
}

impl SchedulerPolicy {
    /// Whether the policy builds its complete schedule up front — such
    /// policies cannot run iterative workflows (§3.4).
    pub fn is_static(self) -> bool {
        matches!(self, SchedulerPolicy::RoundRobin | SchedulerPolicy::Heft)
    }

    pub fn name(self) -> &'static str {
        match self {
            SchedulerPolicy::Fcfs => "fcfs",
            SchedulerPolicy::DataAware => "data-aware",
            SchedulerPolicy::RoundRobin => "round-robin",
            SchedulerPolicy::Heft => "heft",
            SchedulerPolicy::Adaptive => "adaptive",
        }
    }
}

/// Configuration of one Hi-WAY AM instance.
#[derive(Clone, Debug)]
pub struct HiwayConfig {
    /// Resources of every worker container. The paper runs identical
    /// container configurations per installation: one core / 1 GB in the
    /// Figure 4 cluster, whole-node containers elsewhere.
    pub container_resource: Resource,
    /// Resources occupied by the AM's own container.
    pub am_resource: Resource,
    pub scheduler: SchedulerPolicy,
    /// How many times a failed task is retried (on a different node when
    /// possible) before the workflow is declared failed.
    pub task_retries: u32,
    /// AM–RM heartbeat: how often allocation rounds happen, seconds.
    pub heartbeat_secs: f64,
    /// Worker container startup latency (process spawn, localization).
    pub container_startup_secs: f64,
    /// When true, a task's compute phase may use up to the *node's* cores
    /// regardless of container vcores — the paper's whole-node setup
    /// "enabling multithreading for tasks running within that container
    /// whenever possible". When false, container vcores cap the threads.
    pub multithread_full_node: bool,
    /// The paper's §5 future work, implemented: when true, each worker
    /// container is custom-tailored to its task (vcores = the task's
    /// thread count, memory = the task's peak footprint, both clamped to
    /// the largest node) instead of the uniform `container_resource`.
    /// Counters the under-utilization of one-size-fits-all containers.
    pub tailored_containers: bool,
    /// Probability that a task attempt fails (simulated tool crash), for
    /// fault-tolerance testing.
    pub task_failure_prob: f64,
    /// How many *infrastructure*-caused attempt failures (node crash,
    /// container preemption) a task absorbs before the workflow is
    /// declared failed. Infrastructure failures are not the task's fault,
    /// so this budget is separate from (and much larger than)
    /// [`HiwayConfig::task_retries`].
    pub infra_retries: u32,
    /// Base delay before a failed attempt is re-requested; doubles with
    /// every further failure of the same task (exponential backoff),
    /// capped at [`HiwayConfig::retry_backoff_max_secs`]. Zero retries
    /// immediately on the next heartbeat.
    pub retry_backoff_secs: f64,
    /// Upper bound on the exponential retry backoff.
    pub retry_backoff_max_secs: f64,
    /// A node accumulating this many attempt failures (while its earlier
    /// strikes have not yet decayed) is blacklisted for this workflow:
    /// containers granted on it are handed back rather than used.
    pub blacklist_strikes: u32,
    /// How long a node-blacklist strike takes to decay. Each new strike
    /// extends the node's window to `now + blacklist_decay_secs`.
    pub blacklist_decay_secs: f64,
    /// Speculative re-execution of stragglers: when a task's compute phase
    /// has run longer than `speculation_factor ×` its provenance-estimated
    /// runtime, a duplicate attempt is launched on a different node. The
    /// first attempt to finish its compute phase wins; the other is
    /// cancelled. Off by default (duplicates burn containers).
    pub speculative_execution: bool,
    /// Straggler threshold multiplier over the provenance mean runtime.
    pub speculation_factor: f64,
    /// Never speculate before an attempt has computed at least this long.
    pub speculation_min_secs: f64,
    /// Whether to write the provenance trace file to HDFS at the end.
    pub write_trace: bool,
    /// Seed for the AM's failure/randomness draws.
    pub seed: u64,
    /// Leaf scheduler queue to submit the workflow to. `None` targets the
    /// RM's default queue; naming a queue requires the RM to have been
    /// configured with a matching queue tree (the submission fails
    /// otherwise).
    pub queue: Option<String>,
    /// Directory of a durable provenance database (WAL + snapshot
    /// segments). `None` keeps the historical in-memory store. When set,
    /// every invocation document is on disk at commit time, so the store
    /// survives AM crashes and process restarts (§3.5's MySQL/Couchbase
    /// deployment made durable).
    pub provdb_path: Option<String>,
    /// When true, completed invocations found in the (warm, typically
    /// durable) provenance store are *memoized*: a re-submitted or
    /// crash-interrupted workflow skips every task whose signature and
    /// staged-input digests match a committed invocation document, emits a
    /// `memo:hit` span instead of execute phases, and resumes mid-DAG —
    /// the paper's re-executable traces (§2.2) across process restarts.
    pub resume: bool,
}

impl Default for HiwayConfig {
    fn default() -> HiwayConfig {
        HiwayConfig {
            container_resource: Resource::new(1, 1024),
            am_resource: Resource::new(1, 1024),
            scheduler: SchedulerPolicy::DataAware,
            task_retries: 3,
            heartbeat_secs: 1.0,
            container_startup_secs: 1.0,
            multithread_full_node: false,
            tailored_containers: false,
            task_failure_prob: 0.0,
            infra_retries: 24,
            retry_backoff_secs: 1.0,
            retry_backoff_max_secs: 64.0,
            blacklist_strikes: 2,
            blacklist_decay_secs: 120.0,
            speculative_execution: false,
            speculation_factor: 1.8,
            speculation_min_secs: 20.0,
            write_trace: true,
            seed: 0,
            queue: None,
            provdb_path: None,
            resume: false,
        }
    }
}

impl HiwayConfig {
    /// Whole-node containers with in-container multithreading — the
    /// configuration of the paper's scalability and RNA-seq experiments
    /// ("only allow execution of a single task per worker node").
    pub fn whole_node(node_cores: u32, node_memory_mb: u64) -> HiwayConfig {
        HiwayConfig {
            container_resource: Resource::new(node_cores, node_memory_mb),
            multithread_full_node: true,
            ..HiwayConfig::default()
        }
    }

    pub fn with_scheduler(mut self, scheduler: SchedulerPolicy) -> HiwayConfig {
        self.scheduler = scheduler;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> HiwayConfig {
        self.seed = seed;
        self
    }

    pub fn with_queue(mut self, queue: &str) -> HiwayConfig {
        self.queue = Some(queue.to_string());
        self
    }

    /// Backs the provenance store with a durable database at `path`.
    pub fn with_provdb_path(mut self, path: &str) -> HiwayConfig {
        self.provdb_path = Some(path.to_string());
        self
    }

    /// Enables cross-run memoization against a warm provenance store.
    pub fn with_resume(mut self, resume: bool) -> HiwayConfig {
        self.resume = resume;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_policy_classification() {
        assert!(!SchedulerPolicy::Fcfs.is_static());
        assert!(!SchedulerPolicy::DataAware.is_static());
        assert!(SchedulerPolicy::RoundRobin.is_static());
        assert!(SchedulerPolicy::Heft.is_static());
    }

    #[test]
    fn whole_node_config() {
        let c = HiwayConfig::whole_node(8, 15_000);
        assert_eq!(c.container_resource, Resource::new(8, 15_000));
        assert!(c.multithread_full_node);
        assert_eq!(c.scheduler, SchedulerPolicy::DataAware);
    }

    #[test]
    fn builder_helpers() {
        let c = HiwayConfig::default()
            .with_scheduler(SchedulerPolicy::Heft)
            .with_seed(9);
        assert_eq!(c.scheduler, SchedulerPolicy::Heft);
        assert_eq!(c.seed, 9);
        assert_eq!(c.scheduler.name(), "heft");
        assert_eq!(c.queue, None, "default targets the RM's default queue");
        let c = c.with_queue("tenant-a");
        assert_eq!(c.queue.as_deref(), Some("tenant-a"));
        assert_eq!(c.provdb_path, None, "in-memory store by default");
        assert!(!c.resume, "memoization is opt-in");
        let c = c.with_provdb_path("/tmp/provdb").with_resume(true);
        assert_eq!(c.provdb_path.as_deref(), Some("/tmp/provdb"));
        assert!(c.resume);
    }
}
