//! The Workflow Scheduler and its four policies (paper §3.4).
//!
//! The scheduler's contract with the Workflow Driver has two touch points,
//! mirroring the paper's architecture: when a task's data dependencies are
//! met the scheduler shapes the *container request* (anywhere, or pinned
//! to a node for static policies), and when YARN hands back an allocated
//! container the scheduler *selects* which ready task runs in it.
//!
//! * **FCFS** — tasks queue; the head runs in whatever container arrives.
//! * **Data-aware** (Hi-WAY's default) — "whenever a new container is
//!   allocated, the data-aware scheduler skims through all tasks pending
//!   execution, from which it selects the task with the highest fraction
//!   of input data available locally … on the compute node hosting the
//!   newly allocated container."
//! * **Round-robin** — static: tasks are assigned "in turn, and thus in
//!   equal numbers, to the available compute nodes" before execution.
//! * **HEFT** — static + adaptive: upward-rank ordering with
//!   earliest-finish-time placement, fed by the Provenance Manager's
//!   latest-observation runtime estimates (default zero for unexplored
//!   task/machine pairs, which deliberately drives exploration).

use std::collections::HashMap;

use hiway_hdfs::Hdfs;
use hiway_lang::{TaskId, TaskSpec};
use hiway_obs::{CandidateScore, Decision, DecisionKind, Tracer};
use hiway_sim::NodeId;
use hiway_yarn::{ContainerRequest, Resource};

use crate::config::SchedulerPolicy;
use crate::provenance::ProvenanceManager;

/// A Workflow Scheduler policy implementation.
pub trait Scheduler {
    /// For static policies: builds the complete task→node schedule before
    /// execution. Called once, after the (static) workflow is parsed.
    /// Dynamic policies ignore it.
    fn plan(
        &mut self,
        tasks: &[TaskSpec],
        nodes: &[NodeId],
        node_names: &[String],
        prov: &ProvenanceManager,
        tracer: &Tracer,
        now: f64,
    );

    /// Shapes the container request for a task whose dependencies are met.
    fn container_request(&self, task: &TaskSpec, resource: Resource) -> ContainerRequest;

    /// Picks which of the `candidates` (ready, unlaunched tasks, in
    /// readiness order) should run in a container on `node`.
    fn select_task(
        &mut self,
        node: NodeId,
        candidates: &[&TaskSpec],
        hdfs: &Hdfs,
    ) -> Option<TaskId>;

    /// Dynamic adaptive policies re-select with fresh statistics; the
    /// driver calls this variant (default: ignore the statistics). Every
    /// policy overrides it to write the audit log: one [`Decision`] per
    /// container, scoring each candidate in the policy's own terms.
    #[allow(clippy::too_many_arguments)]
    fn select_task_with_stats(
        &mut self,
        node: NodeId,
        node_name: &str,
        candidates: &[&TaskSpec],
        hdfs: &Hdfs,
        _prov: &ProvenanceManager,
        tracer: &Tracer,
        now: f64,
    ) -> Option<TaskId> {
        let _ = (node_name, tracer, now);
        self.select_task(node, candidates, hdfs)
    }

    /// Whether to *decline* a container on `node` for `task` and wait for
    /// a better-placed one (late binding). The driver bounds consecutive
    /// declines, so a pathological estimate cannot starve a task.
    fn decline(
        &self,
        _node: NodeId,
        _node_name: &str,
        _task: &TaskSpec,
        _prov: &ProvenanceManager,
    ) -> bool {
        false
    }

    fn policy(&self) -> SchedulerPolicy;
}

/// Instantiates the scheduler for a policy.
pub fn make_scheduler(policy: SchedulerPolicy) -> Box<dyn Scheduler> {
    match policy {
        SchedulerPolicy::Fcfs => Box::new(FcfsScheduler),
        SchedulerPolicy::DataAware => Box::new(DataAwareScheduler),
        SchedulerPolicy::RoundRobin => Box::new(StaticScheduler::new(SchedulerPolicy::RoundRobin)),
        SchedulerPolicy::Heft => Box::new(StaticScheduler::new(SchedulerPolicy::Heft)),
        SchedulerPolicy::Adaptive => Box::new(AdaptiveScheduler),
    }
}

/// First-come-first-served.
pub struct FcfsScheduler;

impl Scheduler for FcfsScheduler {
    fn plan(
        &mut self,
        _: &[TaskSpec],
        _: &[NodeId],
        _: &[String],
        _: &ProvenanceManager,
        _: &Tracer,
        _: f64,
    ) {
    }

    fn container_request(&self, _task: &TaskSpec, resource: Resource) -> ContainerRequest {
        ContainerRequest::anywhere(resource)
    }

    fn select_task(
        &mut self,
        _node: NodeId,
        candidates: &[&TaskSpec],
        _hdfs: &Hdfs,
    ) -> Option<TaskId> {
        candidates.first().map(|t| t.id)
    }

    #[allow(clippy::too_many_arguments)]
    fn select_task_with_stats(
        &mut self,
        node: NodeId,
        node_name: &str,
        candidates: &[&TaskSpec],
        hdfs: &Hdfs,
        _prov: &ProvenanceManager,
        tracer: &Tracer,
        now: f64,
    ) -> Option<TaskId> {
        let winner = self.select_task(node, candidates, hdfs);
        if tracer.is_enabled() {
            tracer.audit(Decision {
                t: now,
                policy: SchedulerPolicy::Fcfs.name(),
                kind: DecisionKind::Select,
                node: node.0,
                node_name: node_name.to_string(),
                candidates: candidates
                    .iter()
                    .enumerate()
                    .map(|(i, t)| CandidateScore {
                        task: t.id.0,
                        label: t.name.clone(),
                        score: i as f64,
                        detail: format!("queue position {i}"),
                    })
                    .collect(),
                winner: winner.map(|id| id.0),
                reason: "head of the ready queue (lowest queue position wins)".into(),
            });
        }
        winner
    }

    fn policy(&self) -> SchedulerPolicy {
        SchedulerPolicy::Fcfs
    }
}

/// Data-aware (the default).
pub struct DataAwareScheduler;

impl DataAwareScheduler {
    /// Locality fraction per candidate, in readiness order. On a dead
    /// DataNode every fraction is zero (liveness is invariant across
    /// candidates), and the tie-break degenerates to FCFS.
    fn fractions(node: NodeId, candidates: &[&TaskSpec], hdfs: &Hdfs) -> Vec<(TaskId, f64)> {
        let alive = hdfs.is_alive(node);
        candidates
            .iter()
            .map(|t| {
                let frac = if alive {
                    hdfs.locality_fraction(&t.inputs, node)
                } else {
                    0.0
                };
                (t.id, frac)
            })
            .collect()
    }

    fn pick(scored: &[(TaskId, f64)]) -> Option<TaskId> {
        scored
            .iter()
            // max_by prefers later elements on ties; iterate reversed so
            // ties resolve to the *earliest* ready task (FCFS within ties).
            .rev()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("fractions are finite"))
            .map(|(id, _)| *id)
    }
}

impl Scheduler for DataAwareScheduler {
    fn plan(
        &mut self,
        _: &[TaskSpec],
        _: &[NodeId],
        _: &[String],
        _: &ProvenanceManager,
        _: &Tracer,
        _: f64,
    ) {
    }

    fn container_request(&self, _task: &TaskSpec, resource: Resource) -> ContainerRequest {
        ContainerRequest::anywhere(resource)
    }

    fn select_task(
        &mut self,
        node: NodeId,
        candidates: &[&TaskSpec],
        hdfs: &Hdfs,
    ) -> Option<TaskId> {
        Self::pick(&Self::fractions(node, candidates, hdfs))
    }

    #[allow(clippy::too_many_arguments)]
    fn select_task_with_stats(
        &mut self,
        node: NodeId,
        node_name: &str,
        candidates: &[&TaskSpec],
        hdfs: &Hdfs,
        _prov: &ProvenanceManager,
        tracer: &Tracer,
        now: f64,
    ) -> Option<TaskId> {
        let scored = Self::fractions(node, candidates, hdfs);
        let winner = Self::pick(&scored);
        if tracer.is_enabled() {
            let alive = hdfs.is_alive(node);
            tracer.audit(Decision {
                t: now,
                policy: SchedulerPolicy::DataAware.name(),
                kind: DecisionKind::Select,
                node: node.0,
                node_name: node_name.to_string(),
                candidates: candidates
                    .iter()
                    .zip(&scored)
                    .map(|(t, (_, frac))| CandidateScore {
                        task: t.id.0,
                        label: t.name.clone(),
                        score: *frac,
                        detail: format!("locality fraction {frac:.3} on {node_name}"),
                    })
                    .collect(),
                winner: winner.map(|id| id.0),
                reason: if alive {
                    "highest fraction of input data local to the container's node \
                     (ties fall back to FCFS order)"
                        .into()
                } else {
                    "node's DataNode is down: all fractions zero, FCFS fallback".into()
                },
            });
        }
        winner
    }

    fn policy(&self) -> SchedulerPolicy {
        SchedulerPolicy::DataAware
    }
}

/// Shared machinery for the two static policies: a pre-built task→node
/// assignment, enforced through pinned container requests.
pub struct StaticScheduler {
    policy: SchedulerPolicy,
    assignment: HashMap<TaskId, NodeId>,
}

impl StaticScheduler {
    pub fn new(policy: SchedulerPolicy) -> StaticScheduler {
        debug_assert!(policy.is_static());
        StaticScheduler {
            policy,
            assignment: HashMap::new(),
        }
    }

    /// The planned node for a task (exposed for tests and diagnostics).
    pub fn assigned_node(&self, task: TaskId) -> Option<NodeId> {
        self.assignment.get(&task).copied()
    }

    fn plan_round_robin(
        &mut self,
        tasks: &[TaskSpec],
        nodes: &[NodeId],
        node_names: &[String],
        tracer: &Tracer,
        now: f64,
    ) {
        let n = nodes.len();
        let mut planned = vec![0usize; n];
        for (i, t) in tasks.iter().enumerate() {
            let slot = i % n;
            let node = nodes[slot];
            self.assignment.insert(t.id, node);
            if tracer.is_enabled() {
                tracer.audit(Decision {
                    t: now,
                    policy: SchedulerPolicy::RoundRobin.name(),
                    kind: DecisionKind::Plan,
                    node: node.0,
                    node_name: node_names[node.index()].clone(),
                    candidates: nodes
                        .iter()
                        .enumerate()
                        .map(|(ni, cand)| CandidateScore {
                            task: t.id.0,
                            label: node_names[cand.index()].clone(),
                            score: planned[ni] as f64,
                            detail: format!("{} tasks already planned here", planned[ni]),
                        })
                        .collect(),
                    winner: Some(t.id.0),
                    reason: format!("round-robin: task #{i} takes slot {slot} of {n}"),
                });
            }
            planned[slot] += 1;
        }
    }

    /// HEFT (Topcuoglu et al. 2002), with task runtimes estimated from
    /// provenance exactly as §3.4 prescribes: the latest observation per
    /// task/node pair, and "a default runtime of zero … to encourage
    /// trying out new assignments". Observed makespans already include the
    /// stage-in/out time the measured node paid, so communication costs
    /// are folded into the per-node estimates rather than modelled as
    /// separate edge weights.
    fn plan_heft(
        &mut self,
        tasks: &[TaskSpec],
        nodes: &[NodeId],
        node_names: &[String],
        prov: &ProvenanceManager,
        tracer: &Tracer,
        now: f64,
    ) {
        let n = nodes.len();
        let idx_of: HashMap<TaskId, usize> =
            tasks.iter().enumerate().map(|(i, t)| (t.id, i)).collect();

        // w[t][n]: estimated runtime of task t on node n (latest
        // observation; zero when unexplored, which drives exploration).
        let w: Vec<Vec<f64>> = tasks
            .iter()
            .map(|t| {
                nodes
                    .iter()
                    .map(|node| {
                        prov.latest_runtime(&t.name, &node_names[node.index()])
                            .unwrap_or(0.0)
                    })
                    .collect()
            })
            .collect();
        let w_avg: Vec<f64> = w
            .iter()
            .map(|row| row.iter().sum::<f64>() / n as f64)
            .collect();

        // File-mediated successor lists.
        let mut producer_of: HashMap<&str, usize> = HashMap::new();
        for (i, t) in tasks.iter().enumerate() {
            for o in &t.outputs {
                producer_of.insert(o.path.as_str(), i);
            }
        }
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); tasks.len()];
        let mut parents: Vec<Vec<usize>> = vec![Vec::new(); tasks.len()];
        for (i, t) in tasks.iter().enumerate() {
            for input in &t.inputs {
                if let Some(&p) = producer_of.get(input.as_str()) {
                    children[p].push(i);
                    parents[i].push(p);
                }
            }
        }

        // Upward ranks via reverse topological order (memoized DFS).
        let mut rank = vec![f64::NAN; tasks.len()];
        fn upward(i: usize, rank: &mut Vec<f64>, children: &[Vec<usize>], w_avg: &[f64]) -> f64 {
            if !rank[i].is_nan() {
                return rank[i];
            }
            let best_child = children[i]
                .iter()
                .map(|&c| upward(c, rank, children, w_avg))
                .fold(0.0, f64::max);
            rank[i] = w_avg[i] + best_child;
            rank[i]
        }
        for i in 0..tasks.len() {
            upward(i, &mut rank, &children, &w_avg);
        }

        // Decreasing rank; ties broken by task id for determinism.
        let mut order: Vec<usize> = (0..tasks.len()).collect();
        order.sort_by(|&a, &b| {
            rank[b]
                .partial_cmp(&rank[a])
                .expect("ranks are finite")
                .then(tasks[a].id.cmp(&tasks[b].id))
        });

        // Earliest-finish-time placement. With all-zero estimates every
        // node looks identical; breaking ties by the node with the fewest
        // assigned tasks keeps the exploration spread the paper's
        // default-zero strategy is designed to produce.
        let mut node_ready = vec![0.0f64; n];
        let mut node_load = vec![0usize; n];
        let mut finish = vec![0.0f64; tasks.len()];
        for &ti in &order {
            let data_ready = parents[ti].iter().map(|&p| finish[p]).fold(0.0, f64::max);
            let mut best: Option<(usize, f64)> = None;
            let mut audit = tracer.is_enabled().then(Vec::new);
            for ni in 0..n {
                let eft = node_ready[ni].max(data_ready) + w[ti][ni];
                if let Some(cands) = audit.as_mut() {
                    cands.push(CandidateScore {
                        task: tasks[ti].id.0,
                        label: node_names[nodes[ni].index()].clone(),
                        score: eft,
                        detail: format!(
                            "EFT {:.3}s = max(node ready {:.3}, data ready {:.3}) + est {:.3}",
                            eft, node_ready[ni], data_ready, w[ti][ni]
                        ),
                    });
                }
                let better = match best {
                    None => true,
                    Some((bni, beft)) => {
                        eft < beft - 1e-12
                            || ((eft - beft).abs() <= 1e-12 && node_load[ni] < node_load[bni])
                    }
                };
                if better {
                    best = Some((ni, eft));
                }
            }
            let (ni, eft) = best.expect("at least one node");
            self.assignment.insert(tasks[ti].id, nodes[ni]);
            if let Some(cands) = audit {
                tracer.audit(Decision {
                    t: now,
                    policy: SchedulerPolicy::Heft.name(),
                    kind: DecisionKind::Plan,
                    node: nodes[ni].0,
                    node_name: node_names[nodes[ni].index()].clone(),
                    candidates: cands,
                    winner: Some(tasks[ti].id.0),
                    reason: format!(
                        "earliest finish time (upward rank {:.3}; load breaks EFT ties)",
                        rank[ti]
                    ),
                });
            }
            node_ready[ni] = eft;
            node_load[ni] += 1;
            finish[ti] = eft;
        }
        let _ = idx_of;
    }
}

impl Scheduler for StaticScheduler {
    fn plan(
        &mut self,
        tasks: &[TaskSpec],
        nodes: &[NodeId],
        node_names: &[String],
        prov: &ProvenanceManager,
        tracer: &Tracer,
        now: f64,
    ) {
        assert!(!nodes.is_empty(), "cannot plan on an empty cluster");
        match self.policy {
            SchedulerPolicy::RoundRobin => {
                self.plan_round_robin(tasks, nodes, node_names, tracer, now)
            }
            SchedulerPolicy::Heft => self.plan_heft(tasks, nodes, node_names, prov, tracer, now),
            _ => unreachable!("dynamic policy in StaticScheduler"),
        }
    }

    fn container_request(&self, task: &TaskSpec, resource: Resource) -> ContainerRequest {
        match self.assignment.get(&task.id) {
            Some(&node) => ContainerRequest::pinned(resource, node),
            // A task outside the plan (shouldn't happen for static
            // languages) falls back to anywhere.
            None => ContainerRequest::anywhere(resource),
        }
    }

    fn select_task(
        &mut self,
        node: NodeId,
        candidates: &[&TaskSpec],
        _hdfs: &Hdfs,
    ) -> Option<TaskId> {
        candidates
            .iter()
            .find(|t| self.assignment.get(&t.id) == Some(&node))
            .or_else(|| {
                candidates
                    .iter()
                    .find(|t| !self.assignment.contains_key(&t.id))
            })
            .map(|t| t.id)
    }

    #[allow(clippy::too_many_arguments)]
    fn select_task_with_stats(
        &mut self,
        node: NodeId,
        node_name: &str,
        candidates: &[&TaskSpec],
        hdfs: &Hdfs,
        _prov: &ProvenanceManager,
        tracer: &Tracer,
        now: f64,
    ) -> Option<TaskId> {
        let winner = self.select_task(node, candidates, hdfs);
        if tracer.is_enabled() {
            tracer.audit(Decision {
                t: now,
                policy: self.policy.name(),
                kind: DecisionKind::Select,
                node: node.0,
                node_name: node_name.to_string(),
                candidates: candidates
                    .iter()
                    .map(|t| {
                        let (score, detail) = match self.assignment.get(&t.id) {
                            Some(&a) if a == node => (1.0, format!("planned for {node_name}")),
                            Some(&a) => (0.0, format!("planned for node {}", a.0)),
                            None => (0.5, "outside the static plan".into()),
                        };
                        CandidateScore {
                            task: t.id.0,
                            label: t.name.clone(),
                            score,
                            detail,
                        }
                    })
                    .collect(),
                winner: winner.map(|id| id.0),
                reason: "static plan confirmation: the task pre-assigned to this node \
                         (unplanned tasks fill spare containers)"
                    .into(),
            });
        }
        winner
    }

    fn policy(&self) -> SchedulerPolicy {
        self.policy
    }
}

/// Dynamic adaptive scheduling: no pre-built schedule (so iterative
/// workflows are fine), but container-arrival-time selection is driven by
/// the Provenance Manager's runtime estimates. For a container on node
/// `n`, each candidate is scored by `latest(sig, n) / avg over observed
/// nodes` — prefer the task for which this node is relatively fastest;
/// unobserved task/node pairs score 0 (the paper's exploration-friendly
/// zero default). Ties fall back to data-aware locality.
#[derive(Default)]
pub struct AdaptiveScheduler;

impl Scheduler for AdaptiveScheduler {
    fn plan(
        &mut self,
        _: &[TaskSpec],
        _: &[NodeId],
        _: &[String],
        _: &ProvenanceManager,
        _: &Tracer,
        _: f64,
    ) {
    }

    fn container_request(&self, _task: &TaskSpec, resource: Resource) -> ContainerRequest {
        ContainerRequest::anywhere(resource)
    }

    fn select_task(
        &mut self,
        _node: NodeId,
        candidates: &[&TaskSpec],
        _hdfs: &Hdfs,
    ) -> Option<TaskId> {
        candidates.first().map(|t| t.id)
    }

    #[allow(clippy::too_many_arguments)]
    fn select_task_with_stats(
        &mut self,
        node: NodeId,
        node_name: &str,
        candidates: &[&TaskSpec],
        hdfs: &Hdfs,
        prov: &ProvenanceManager,
        tracer: &Tracer,
        now: f64,
    ) -> Option<TaskId> {
        // Relative fitness of running `t` here: how does this node's
        // latest observation compare to the estimate of placing the task
        // "somewhere typical"? Lower is better; 0 (unobserved) explores.
        let score = |t: &TaskSpec| -> f64 {
            let here = prov.latest_runtime(&t.name, node_name).unwrap_or(0.0);
            if here == 0.0 {
                return 0.0; // unexplored: try it
            }
            let avg = prov.average_runtime(&t.name).unwrap_or(here);
            if avg <= 0.0 {
                0.0
            } else {
                here / avg
            }
        };
        // Hoisted liveness check: locality on a dead node is uniformly
        // zero, so skip the per-candidate block scans entirely.
        let node_alive = hdfs.is_alive(node);
        let scored: Vec<(TaskId, f64, f64)> = candidates
            .iter()
            .map(|t| {
                (
                    t.id,
                    score(t),
                    // Locality as the tie-breaker.
                    if node_alive {
                        -hdfs.locality_fraction(&t.inputs, node)
                    } else {
                        0.0
                    },
                )
            })
            .collect();
        let winner = scored
            .iter()
            // Earliest-ready wins remaining ties (stable min by rev+min_by).
            .rev()
            .min_by(|(_, s1, l1), (_, s2, l2)| {
                s1.partial_cmp(s2)
                    .expect("scores are finite")
                    .then(l1.partial_cmp(l2).expect("fractions are finite"))
            })
            .map(|(id, _, _)| *id);
        if tracer.is_enabled() {
            tracer.audit(Decision {
                t: now,
                policy: SchedulerPolicy::Adaptive.name(),
                kind: DecisionKind::Select,
                node: node.0,
                node_name: node_name.to_string(),
                candidates: candidates
                    .iter()
                    .zip(&scored)
                    .map(|(t, (_, fitness, neg_local))| CandidateScore {
                        task: t.id.0,
                        label: t.name.clone(),
                        score: *fitness,
                        detail: format!(
                            "relative fitness {:.3} (latest here / cross-node avg; \
                             0 = unexplored), locality {:.3}",
                            fitness, -neg_local
                        ),
                    })
                    .collect(),
                winner: winner.map(|id| id.0),
                reason: "lowest relative fitness wins (ties: higher locality, then \
                         FCFS order)"
                    .into(),
            });
        }
        winner
    }

    fn decline(
        &self,
        _node: NodeId,
        node_name: &str,
        task: &TaskSpec,
        prov: &ProvenanceManager,
    ) -> bool {
        // Decline when this node is known to run the signature much
        // slower than its cross-node average — wait for a faster host.
        match (
            prov.latest_runtime(&task.name, node_name),
            prov.average_runtime(&task.name),
        ) {
            (Some(here), Some(avg)) if avg > 0.0 => here > avg * 1.5,
            _ => false, // unexplored: accept (and learn)
        }
    }

    fn policy(&self) -> SchedulerPolicy {
        SchedulerPolicy::Adaptive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiway_lang::{OutputSpec, TaskCost};
    use hiway_provdb::ProvDb;

    fn task(id: u64, name: &str, inputs: &[&str], outputs: &[&str]) -> TaskSpec {
        TaskSpec {
            id: TaskId(id),
            name: name.into(),
            command: name.into(),
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            outputs: outputs
                .iter()
                .map(|s| OutputSpec {
                    path: s.to_string(),
                    size: 10,
                })
                .collect(),
            cost: TaskCost::default(),
        }
    }

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("w{i}")).collect()
    }

    fn record(prov: &mut ProvenanceManager, name: &str, node: &str, makespan: f64) {
        prov.record_task(hiway_lang::trace::TaskEvent {
            id: 0,
            name: name.into(),
            command: name.into(),
            inputs: vec![],
            outputs: vec![],
            cpu_seconds: makespan,
            threads: 1,
            memory_mb: 1,
            node: node.into(),
            t_start: 0.0,
            t_end: makespan,
            attempts: 1,
            stdout: String::new(),
            stderr: String::new(),
        });
    }

    #[test]
    fn fcfs_selects_queue_head() {
        let mut s = FcfsScheduler;
        let (a, b) = (task(0, "a", &[], &[]), task(1, "b", &[], &[]));
        let hdfs = Hdfs::new(2, Default::default(), 0);
        assert_eq!(s.select_task(NodeId(0), &[&a, &b], &hdfs), Some(TaskId(0)));
        assert_eq!(s.select_task(NodeId(0), &[], &hdfs), None);
        let req = s.container_request(&a, Resource::new(1, 100));
        assert!(req.preference.is_none());
    }

    #[test]
    fn data_aware_prefers_local_input() {
        // Replication 1 keeps each file on exactly its writer's node, so
        // the locality fractions are unambiguous.
        let config = hiway_hdfs::HdfsConfig {
            replication: 1,
            ..Default::default()
        };
        let mut hdfs = Hdfs::new(4, config, 3);
        hdfs.create("/big0", 100 << 20, NodeId(0)).unwrap();
        hdfs.create("/big2", 100 << 20, NodeId(2)).unwrap();
        let t0 = task(0, "t", &["/big0"], &["/o0"]);
        let t2 = task(1, "t", &["/big2"], &["/o2"]);
        let mut s = DataAwareScheduler;
        // Container on node 2: the task whose input lives there wins even
        // though t0 is ahead in the queue.
        assert_eq!(
            s.select_task(NodeId(2), &[&t0, &t2], &hdfs),
            Some(TaskId(1))
        );
        assert_eq!(
            s.select_task(NodeId(0), &[&t0, &t2], &hdfs),
            Some(TaskId(0))
        );
    }

    #[test]
    fn data_aware_ties_fall_back_to_fcfs_order() {
        let hdfs = Hdfs::new(2, Default::default(), 3);
        let a = task(0, "a", &["/nowhere"], &[]);
        let b = task(1, "b", &["/nowhere"], &[]);
        let mut s = DataAwareScheduler;
        assert_eq!(s.select_task(NodeId(0), &[&a, &b], &hdfs), Some(TaskId(0)));
    }

    #[test]
    fn round_robin_spreads_equally() {
        let mut s = StaticScheduler::new(SchedulerPolicy::RoundRobin);
        let tasks: Vec<TaskSpec> = (0..6).map(|i| task(i, "t", &[], &[])).collect();
        let nodes = vec![NodeId(0), NodeId(1), NodeId(2)];
        let prov = ProvenanceManager::new(ProvDb::new());
        s.plan(&tasks, &nodes, &names(3), &prov, &Tracer::disabled(), 0.0);
        let mut counts = [0usize; 3];
        for t in &tasks {
            counts[s.assigned_node(t.id).unwrap().index()] += 1;
        }
        assert_eq!(counts, [2, 2, 2]);
        // Requests are pinned; selection honours the assignment.
        let req = s.container_request(&tasks[4], Resource::new(1, 100));
        assert_eq!(req.preference, Some(NodeId(1)));
        assert!(!req.relax_locality);
        let hdfs = Hdfs::new(3, Default::default(), 0);
        let refs: Vec<&TaskSpec> = tasks.iter().collect();
        assert_eq!(s.select_task(NodeId(1), &refs, &hdfs), Some(TaskId(1)));
    }

    #[test]
    fn heft_without_provenance_spreads_by_load() {
        let mut s = StaticScheduler::new(SchedulerPolicy::Heft);
        let tasks: Vec<TaskSpec> = (0..4).map(|i| task(i, "t", &[], &[])).collect();
        let nodes = vec![NodeId(0), NodeId(1)];
        let prov = ProvenanceManager::new(ProvDb::new());
        s.plan(&tasks, &nodes, &names(2), &prov, &Tracer::disabled(), 0.0);
        let mut counts = [0usize; 2];
        for t in &tasks {
            counts[s.assigned_node(t.id).unwrap().index()] += 1;
        }
        // All-zero estimates: load tie-breaking spreads tasks evenly.
        assert_eq!(counts, [2, 2]);
    }

    #[test]
    fn heft_avoids_known_slow_node() {
        let mut prov = ProvenanceManager::new(ProvDb::new());
        // Node w1 is 10x slower for this signature.
        record(&mut prov, "t", "w0", 10.0);
        record(&mut prov, "t", "w1", 100.0);
        let mut s = StaticScheduler::new(SchedulerPolicy::Heft);
        let tasks: Vec<TaskSpec> = (0..4).map(|i| task(i, "t", &[], &[])).collect();
        let nodes = vec![NodeId(0), NodeId(1)];
        s.plan(&tasks, &nodes, &names(2), &prov, &Tracer::disabled(), 0.0);
        // EFTs: placing everything on w0 serially (10,20,30,40) beats
        // w1's 100 each time.
        for t in &tasks {
            assert_eq!(s.assigned_node(t.id), Some(NodeId(0)));
        }
    }

    #[test]
    fn fcfs_audit_matches_placement() {
        let tracer = Tracer::enabled();
        let mut s = FcfsScheduler;
        let (a, b) = (task(0, "a", &[], &[]), task(1, "b", &[], &[]));
        let hdfs = Hdfs::new(2, Default::default(), 0);
        let prov = ProvenanceManager::new(ProvDb::new());
        let picked =
            s.select_task_with_stats(NodeId(1), "w1", &[&a, &b], &hdfs, &prov, &tracer, 7.5);
        assert_eq!(picked, Some(TaskId(0)));
        tracer.with_decisions(|ds| {
            assert_eq!(ds.len(), 1);
            let d = &ds[0];
            assert_eq!(d.policy, "fcfs");
            assert_eq!(d.kind, DecisionKind::Select);
            assert_eq!(d.t, 7.5);
            assert_eq!((d.node, d.node_name.as_str()), (1, "w1"));
            assert_eq!(d.winner, Some(0));
            // Scores are queue positions; the winner holds position 0.
            assert_eq!(d.candidates.len(), 2);
            assert_eq!(d.winning_candidate().unwrap().score, 0.0);
            assert_eq!(d.candidates[1].score, 1.0);
        });
    }

    #[test]
    fn data_aware_audit_matches_placement() {
        let config = hiway_hdfs::HdfsConfig {
            replication: 1,
            ..Default::default()
        };
        let mut hdfs = Hdfs::new(4, config, 3);
        hdfs.create("/big0", 100 << 20, NodeId(0)).unwrap();
        hdfs.create("/big2", 100 << 20, NodeId(2)).unwrap();
        let t0 = task(0, "t", &["/big0"], &["/o0"]);
        let t2 = task(1, "t", &["/big2"], &["/o2"]);
        let tracer = Tracer::enabled();
        let prov = ProvenanceManager::new(ProvDb::new());
        let mut s = DataAwareScheduler;
        let picked =
            s.select_task_with_stats(NodeId(2), "w2", &[&t0, &t2], &hdfs, &prov, &tracer, 1.0);
        assert_eq!(picked, Some(TaskId(1)));
        tracer.with_decisions(|ds| {
            let d = &ds[0];
            assert_eq!(d.policy, "data-aware");
            assert_eq!(d.winner, Some(1));
            // The logged fractions explain the pick: the winner's locality
            // strictly exceeds every rival's.
            let win = d.winning_candidate().unwrap().score;
            assert_eq!(win, 1.0);
            for c in d.candidates.iter().filter(|c| c.task != 1) {
                assert!(c.score < win, "{} !< {}", c.score, win);
            }
        });
    }

    #[test]
    fn round_robin_plan_audit_matches_assignment() {
        let tracer = Tracer::enabled();
        let mut s = StaticScheduler::new(SchedulerPolicy::RoundRobin);
        let tasks: Vec<TaskSpec> = (0..6).map(|i| task(i, "t", &[], &[])).collect();
        let nodes = vec![NodeId(0), NodeId(1), NodeId(2)];
        let prov = ProvenanceManager::new(ProvDb::new());
        s.plan(&tasks, &nodes, &names(3), &prov, &tracer, 0.0);
        tracer.with_decisions(|ds| {
            assert_eq!(ds.len(), 6, "one plan decision per task");
            for (i, d) in ds.iter().enumerate() {
                assert_eq!(d.policy, "round-robin");
                assert_eq!(d.kind, DecisionKind::Plan);
                assert_eq!(d.winner, Some(i as u64));
                // The audited node is the node actually assigned.
                let assigned = s.assigned_node(TaskId(i as u64)).unwrap();
                assert_eq!(d.node, assigned.0);
                assert_eq!(d.candidates.len(), 3, "all nodes scored");
            }
        });
    }

    #[test]
    fn heft_plan_audit_matches_assignment() {
        let mut prov = ProvenanceManager::new(ProvDb::new());
        record(&mut prov, "t", "w0", 10.0);
        record(&mut prov, "t", "w1", 100.0);
        let tracer = Tracer::enabled();
        let mut s = StaticScheduler::new(SchedulerPolicy::Heft);
        let tasks: Vec<TaskSpec> = (0..4).map(|i| task(i, "t", &[], &[])).collect();
        let nodes = vec![NodeId(0), NodeId(1)];
        s.plan(&tasks, &nodes, &names(2), &prov, &tracer, 0.0);
        tracer.with_decisions(|ds| {
            assert_eq!(ds.len(), 4);
            for d in ds {
                assert_eq!(d.policy, "heft");
                assert_eq!(d.kind, DecisionKind::Plan);
                let winner = d.winner.unwrap();
                // Audit agrees with the actual plan...
                assert_eq!(d.node, s.assigned_node(TaskId(winner)).unwrap().0);
                // ...and the chosen node has the minimum logged EFT.
                let chosen = d
                    .candidates
                    .iter()
                    .find(|c| c.label == d.node_name)
                    .expect("winner node is scored");
                for c in &d.candidates {
                    assert!(chosen.score <= c.score + 1e-12);
                }
            }
        });
    }

    #[test]
    fn static_select_confirmation_is_audited() {
        let tracer = Tracer::enabled();
        let mut s = StaticScheduler::new(SchedulerPolicy::RoundRobin);
        let tasks: Vec<TaskSpec> = (0..2).map(|i| task(i, "t", &[], &[])).collect();
        let nodes = vec![NodeId(0), NodeId(1)];
        let prov = ProvenanceManager::new(ProvDb::new());
        s.plan(&tasks, &nodes, &names(2), &prov, &Tracer::disabled(), 0.0);
        let hdfs = Hdfs::new(2, Default::default(), 0);
        let refs: Vec<&TaskSpec> = tasks.iter().collect();
        let picked = s.select_task_with_stats(NodeId(1), "w1", &refs, &hdfs, &prov, &tracer, 3.0);
        assert_eq!(picked, Some(TaskId(1)));
        tracer.with_decisions(|ds| {
            let d = &ds[0];
            assert_eq!(d.kind, DecisionKind::Select);
            assert_eq!(d.winner, Some(1));
            // Planned-here candidates score 1, elsewhere 0.
            assert_eq!(d.winning_candidate().unwrap().score, 1.0);
            assert_eq!(
                d.candidates.iter().find(|c| c.task == 0).unwrap().score,
                0.0
            );
        });
    }

    #[test]
    fn adaptive_audit_matches_placement() {
        let mut prov = ProvenanceManager::new(ProvDb::new());
        // "slow" is 3x worse on w0 than its average; "fast" is better
        // than average here — the adaptive policy must prefer "fast".
        record(&mut prov, "slow", "w0", 300.0);
        record(&mut prov, "slow", "w1", 100.0);
        record(&mut prov, "fast", "w0", 50.0);
        record(&mut prov, "fast", "w1", 100.0);
        let hdfs = Hdfs::new(2, Default::default(), 0);
        let slow = task(0, "slow", &[], &[]);
        let fast = task(1, "fast", &[], &[]);
        let tracer = Tracer::enabled();
        let mut s = AdaptiveScheduler;
        let picked =
            s.select_task_with_stats(NodeId(0), "w0", &[&slow, &fast], &hdfs, &prov, &tracer, 2.0);
        assert_eq!(picked, Some(TaskId(1)));
        tracer.with_decisions(|ds| {
            let d = &ds[0];
            assert_eq!(d.policy, "adaptive");
            assert_eq!(d.winner, Some(1));
            // Lower relative fitness wins; the log shows exactly that.
            let win = d.winning_candidate().unwrap().score;
            let lose = d.candidates.iter().find(|c| c.task == 0).unwrap().score;
            assert!(win < lose, "{win} !< {lose}");
        });
    }

    #[test]
    fn disabled_tracer_logs_no_decisions() {
        let tracer = Tracer::disabled();
        let mut s = FcfsScheduler;
        let a = task(0, "a", &[], &[]);
        let hdfs = Hdfs::new(1, Default::default(), 0);
        let prov = ProvenanceManager::new(ProvDb::new());
        s.select_task_with_stats(NodeId(0), "w0", &[&a], &hdfs, &prov, &tracer, 0.0);
        assert_eq!(tracer.decision_count(), 0);
    }

    #[test]
    fn heft_ranks_respect_the_critical_path() {
        let mut prov = ProvenanceManager::new(ProvDb::new());
        record(&mut prov, "long", "w0", 100.0);
        record(&mut prov, "long", "w1", 100.0);
        record(&mut prov, "short", "w0", 1.0);
        record(&mut prov, "short", "w1", 1.0);
        record(&mut prov, "sink", "w0", 1.0);
        record(&mut prov, "sink", "w1", 1.0);
        // long -> sink, short independent. The critical chain should be
        // placed first and not displaced by the short task.
        let tasks = vec![
            task(0, "short", &[], &[]),
            task(1, "long", &[], &["/mid"]),
            task(2, "sink", &["/mid"], &[]),
        ];
        let nodes = vec![NodeId(0), NodeId(1)];
        let mut s = StaticScheduler::new(SchedulerPolicy::Heft);
        s.plan(&tasks, &nodes, &names(2), &prov, &Tracer::disabled(), 0.0);
        // `long` has the highest upward rank (101) and is placed first on
        // an empty node; `short` lands on the other node.
        let long_node = s.assigned_node(TaskId(1)).unwrap();
        let short_node = s.assigned_node(TaskId(0)).unwrap();
        assert_ne!(long_node, short_node);
    }
}
