//! The simulated substrate bundle a Hi-WAY deployment runs on: the
//! discrete-event engine, the HDFS NameNode, and the YARN RM, plus the
//! client-side helpers that stand in for setup-time data staging.

use std::collections::{HashMap, HashSet};

use hiway_hdfs::{Hdfs, HdfsConfig};
use hiway_lang::TaskId;
use hiway_sim::stress;
use hiway_sim::{ActivityId, ClusterSpec, Engine, ExternalId, NodeId};
use hiway_yarn::{Container, ResourceManager, RmConfig};

/// Completion tags flowing through the engine. `wf` is the AM index
/// within the [`crate::driver::Runtime`].
#[derive(Clone, Debug, PartialEq)]
pub enum Tag {
    /// AM–RM heartbeat timer.
    Heartbeat { wf: u32 },
    /// Worker container finished starting up (localization done).
    ContainerStarted { wf: u32, task: TaskId, attempt: u32 },
    /// One stage-in transfer (input file `file` of the attempt) finished.
    StageIn {
        wf: u32,
        task: TaskId,
        attempt: u32,
        file: u32,
    },
    /// The attempt's compute phase finished.
    Exec { wf: u32, task: TaskId, attempt: u32 },
    /// One stage-out transfer finished.
    StageOut {
        wf: u32,
        task: TaskId,
        attempt: u32,
        file: u32,
    },
    /// A failed task's exponential-backoff delay elapsed; re-request a
    /// container for it.
    RetryTask { wf: u32, task: TaskId },
    /// Background load — never completes, only cancelled.
    Stress,
    /// HDFS re-replication traffic.
    Replication,
}

/// A registered external input (e.g. a file in an S3 bucket), fetched over
/// the network *during* workflow execution rather than pre-staged in HDFS.
#[derive(Clone, Copy, Debug)]
pub struct ExternalFile {
    pub service: ExternalId,
    pub size: u64,
}

/// The full simulated deployment.
pub struct Cluster {
    pub engine: Engine<Tag>,
    pub hdfs: Hdfs,
    pub rm: ResourceManager,
    /// External files addressable by path (e.g. `s3://1kg/sample0.fq`).
    externals: HashMap<String, ExternalFile>,
    /// Files whose contents are fully written — tasks may only consume
    /// committed files (an HDFS `create` registers the path in the
    /// namespace before the replica pipeline finishes streaming).
    committed: HashSet<String>,
    /// Round-robin writer for setup-time staging, to spread first replicas.
    stage_cursor: usize,
}

impl Cluster {
    pub fn new(spec: ClusterSpec, seed: u64) -> Cluster {
        Cluster::with_hdfs_config(spec, HdfsConfig::default(), seed)
    }

    /// Like [`Cluster::new`] but with explicit HDFS settings (block size,
    /// replication factor — deployments tune `dfs.replication` down for
    /// bulky intermediate data).
    pub fn with_hdfs_config(spec: ClusterSpec, config: HdfsConfig, seed: u64) -> Cluster {
        let n = spec.nodes.len();
        let rm = ResourceManager::new(&spec, RmConfig::default());
        let hdfs = Hdfs::new(n, config, seed ^ 0x5f5f);
        Cluster {
            engine: Engine::new(spec),
            hdfs,
            rm,
            externals: HashMap::new(),
            committed: HashSet::new(),
            stage_cursor: 0,
        }
    }

    pub fn node_count(&self) -> usize {
        self.engine.spec().nodes.len()
    }

    pub fn node_name(&self, node: NodeId) -> &str {
        &self.engine.spec().node(node).name
    }

    /// Registers `path` in HDFS without simulated cost — the equivalent of
    /// Karamel/Chef staging input data before the experiment starts
    /// (paper §3.6). Replicas spread round-robin across DataNodes.
    pub fn prestage(&mut self, path: &str, size: u64) {
        let writer = NodeId((self.stage_cursor % self.node_count().max(1)) as u32);
        self.stage_cursor += 1;
        // The write plan is intentionally dropped: setup-time staging is
        // free; only the resulting block placement matters.
        self.hdfs
            .create(path, size, writer)
            .expect("prestage of a fresh path");
        self.committed.insert(path.to_string());
    }

    /// Marks a file's contents as fully present in HDFS (stage-out done).
    pub fn commit_file(&mut self, path: &str) {
        debug_assert!(self.hdfs.exists(path), "committing unregistered file");
        self.committed.insert(path.to_string());
    }

    /// Drops `path` from the HDFS namespace if a previous (failed) attempt
    /// registered it but never finished writing — clearing the way for a
    /// retry's `create`. Committed files are left untouched.
    pub fn discard_uncommitted(&mut self, path: &str) {
        if self.hdfs.exists(path) && !self.committed.contains(path) {
            self.hdfs.delete(path).expect("exists was just checked");
        }
    }

    /// Registers a file served by an external service (fetched during
    /// execution — the paper's second scalability experiment obtains reads
    /// "during workflow execution from the Amazon S3 bucket").
    pub fn register_external_file(&mut self, path: &str, service: ExternalId, size: u64) {
        self.externals
            .insert(path.to_string(), ExternalFile { service, size });
    }

    pub fn external_file(&self, path: &str) -> Option<ExternalFile> {
        self.externals.get(path).copied()
    }

    /// Whether `path` is readable by a task: fully written to HDFS, or
    /// served by an external service.
    pub fn input_available(&self, path: &str) -> bool {
        self.committed.contains(path) || self.externals.contains_key(path)
    }

    /// Starts `procs` CPU hogs on `node` (cf. the Linux `stress` tool).
    pub fn add_cpu_stress(&mut self, node: NodeId, procs: u32) -> Vec<ActivityId> {
        stress::cpu_stress(&mut self.engine, node, procs, Tag::Stress)
    }

    /// Starts `procs` disk-writer hogs on `node`.
    pub fn add_disk_stress(&mut self, node: NodeId, procs: u32) -> Vec<ActivityId> {
        stress::disk_stress(&mut self.engine, node, procs, Tag::Stress)
    }

    /// Fails a node across all subsystems; returns the killed containers
    /// so the owning AMs can re-try their tasks.
    pub fn fail_node(&mut self, node: NodeId) -> Vec<Container> {
        self.hdfs.fail_node(node).expect("known node");
        self.rm.fail_node(node)
    }

    /// Brings a failed node back: the NodeManager re-registers with full
    /// (empty) capacity and the DataNode rejoins with a blank disk (its
    /// old replicas are gone — HDFS re-replication repopulates it over
    /// time). Containers that died with the node stay dead.
    pub fn recover_node(&mut self, node: NodeId) {
        self.rm.revive_node(node);
        self.hdfs.revive_node(node).expect("known node");
    }

    /// Restores the replication factor after failures, running the copy
    /// traffic through the engine (tagged [`Tag::Replication`]).
    pub fn re_replicate(&mut self) -> usize {
        self.try_re_replicate().expect("no data loss")
    }

    /// Like [`Cluster::re_replicate`] but surfaces unrecoverable data loss
    /// (every replica of some block gone) instead of panicking — chaos
    /// schedules can legitimately destroy all copies of a file.
    pub fn try_re_replicate(&mut self) -> Result<usize, hiway_hdfs::HdfsError> {
        let copies = self.hdfs.re_replicate()?;
        let ids = hiway_hdfs::exec::start_copies(&mut self.engine, &copies, Tag::Replication);
        Ok(ids.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiway_sim::{ExternalSpec, NodeSpec};

    fn cluster(n: usize) -> Cluster {
        let spec = ClusterSpec::homogeneous(n, "w", &NodeSpec::m3_large("p"));
        Cluster::new(spec, 1)
    }

    #[test]
    fn prestage_registers_and_spreads() {
        let mut c = cluster(4);
        for i in 0..4 {
            c.prestage(&format!("/in/f{i}"), 64 << 20);
        }
        assert!(c.hdfs.exists("/in/f0"));
        assert!(c.input_available("/in/f3"));
        // First replicas went to four different nodes.
        let firsts: std::collections::HashSet<u32> = (0..4)
            .map(|i| c.hdfs.status(&format!("/in/f{i}")).unwrap().blocks[0].replicas[0].0)
            .collect();
        assert_eq!(firsts.len(), 4);
    }

    #[test]
    fn external_files_are_available_without_hdfs() {
        let mut spec = ClusterSpec::homogeneous(1, "w", &NodeSpec::m3_large("p"));
        let s3 = spec.add_external(ExternalSpec::s3());
        let mut c = Cluster::new(spec, 2);
        c.register_external_file("s3://bucket/reads.fq", s3, 1 << 30);
        assert!(c.input_available("s3://bucket/reads.fq"));
        assert!(!c.hdfs.exists("s3://bucket/reads.fq"));
        assert_eq!(
            c.external_file("s3://bucket/reads.fq").unwrap().size,
            1 << 30
        );
        assert!(!c.input_available("/missing"));
    }

    #[test]
    fn fail_node_hits_hdfs_and_rm() {
        let mut c = cluster(3);
        c.prestage("/a", 10);
        let killed = c.fail_node(NodeId(0));
        assert!(killed.is_empty(), "no containers were running");
        assert!(!c.hdfs.is_alive(NodeId(0)));
        assert!(!c.rm.is_alive(NodeId(0)));
        let copies = c.re_replicate();
        // /a may or may not have had a replica on node 0; both fine, but
        // the call must leave the namespace fully replicated.
        let st = c.hdfs.status("/a").unwrap();
        assert_eq!(st.blocks[0].replicas.len(), 2, "2 alive nodes remain");
        let _ = copies;
    }
}
