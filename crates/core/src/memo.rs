//! Cross-run memoization of completed invocations ("smart rerun").
//!
//! The paper's provenance traces are *re-executable* (§2.2, §3.5); the
//! provenance literature calls the payoff "smart rerun": skip work whose
//! result the store already holds. This module keys every committed
//! invocation by
//!
//! ```text
//! memo key = hash(task signature ‖ canonical digests of staged inputs)
//! ```
//!
//! where the signature is the task name plus its command (what would
//! execute) and the input digests come from
//! [`hiway_hdfs::Hdfs::content_digest`] (placement-independent, stable
//! across processes and runs). A re-submitted or crash-interrupted
//! workflow running with [`crate::HiwayConfig::with_resume`] against a
//! warm store looks each ready task up here first: on a hit the driver
//! materializes the recorded outputs, emits a `memo:hit` span instead of
//! execute phases, and moves on — resuming mid-DAG without re-executing
//! anything the store already witnessed.

use hiway_format::json::Json;
use hiway_provdb::{Op, ProvDb};

/// Collection holding one document per committed invocation.
pub const MEMO_COLLECTION: &str = "memo_invocations";

/// FNV-1a 64 over a byte stream — the same digest family the simulated
/// HDFS uses, so keys are stable across processes.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The memo key of an invocation: task signature (name + command — what
/// would run) combined with the canonical digests of its staged inputs,
/// in input-declaration order. Rendered as fixed-width hex so it is a
/// clean indexable string.
pub fn memo_key(name: &str, command: &str, input_digests: &[u64]) -> String {
    let bytes = name
        .as_bytes()
        .iter()
        .copied()
        .chain([0x1f]) // unit separator: "ab"+"c" must differ from "a"+"bc"
        .chain(command.as_bytes().iter().copied())
        .chain(
            input_digests
                .iter()
                .flat_map(|d| d.to_le_bytes().into_iter()),
        );
    format!("{:016x}", fnv1a(bytes))
}

/// A committed invocation recalled from the store.
#[derive(Clone, Debug, PartialEq)]
pub struct MemoHit {
    /// Outputs the invocation committed, `(path, size)` in declaration
    /// order — what the driver materializes instead of executing.
    pub outputs: Vec<(String, u64)>,
    /// Node the original execution ran on (audit detail only).
    pub node: String,
    /// The original execution's makespan — the seconds the hit saves.
    pub saved_secs: f64,
}

/// The memo layer over a (typically durable) provenance database.
pub struct MemoStore {
    db: ProvDb,
}

impl MemoStore {
    pub fn new(db: ProvDb) -> MemoStore {
        db.collection(MEMO_COLLECTION).create_index("key");
        MemoStore { db }
    }

    /// Records a committed invocation. Durable databases have the
    /// document in the WAL before this returns — an AM crash any time
    /// after the output commit leaves a resumable store.
    pub fn record(
        &self,
        key: &str,
        name: &str,
        node: &str,
        outputs: &[(String, u64)],
        makespan: f64,
    ) {
        let outs = Json::Array(
            outputs
                .iter()
                .map(|(path, size)| {
                    Json::object()
                        .with("path", path.as_str())
                        .with("size", *size)
                })
                .collect(),
        );
        let doc = Json::object()
            .with("key", key)
            .with("name", name)
            .with("node", node)
            .with("makespan", makespan)
            .with("outputs", outs);
        self.db.collection(MEMO_COLLECTION).insert(doc);
    }

    /// Latest committed invocation under `key`, if any (indexed lookup).
    pub fn lookup(&self, key: &str) -> Option<MemoHit> {
        let doc = self
            .db
            .collection(MEMO_COLLECTION)
            .query()
            .filter("key", Op::Eq, key)
            .last()?;
        let outputs = match doc.get("outputs") {
            Some(Json::Array(items)) => items
                .iter()
                .map(|o| {
                    Some((
                        o.get("path")?.as_str()?.to_string(),
                        o.get("size")?.as_u64()?,
                    ))
                })
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        Some(MemoHit {
            outputs,
            node: doc.get("node")?.as_str()?.to_string(),
            saved_secs: doc.get("makespan").and_then(Json::as_f64).unwrap_or(0.0),
        })
    }

    /// Number of memoized invocations in the store.
    pub fn len(&self) -> usize {
        self.db.collection(MEMO_COLLECTION).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_is_sensitive_to_signature_and_digests() {
        let base = memo_key("align", "bwa mem ref.fa", &[1, 2]);
        assert_eq!(base, memo_key("align", "bwa mem ref.fa", &[1, 2]));
        assert_ne!(base, memo_key("align", "bwa mem ref.fa", &[2, 1]));
        assert_ne!(base, memo_key("align", "bwa mem ref.fa", &[1]));
        assert_ne!(base, memo_key("align", "bwa mem alt.fa", &[1, 2]));
        assert_ne!(base, memo_key("sort", "bwa mem ref.fa", &[1, 2]));
        // Name/command boundary is unambiguous.
        assert_ne!(memo_key("ab", "c", &[]), memo_key("a", "bc", &[]));
        assert_eq!(base.len(), 16, "fixed-width hex");
    }

    #[test]
    fn record_then_lookup_round_trips() {
        let store = MemoStore::new(ProvDb::new());
        assert!(store.is_empty());
        let key = memo_key("align", "cmd", &[7]);
        assert_eq!(store.lookup(&key), None);
        store.record(
            &key,
            "align",
            "worker-1",
            &[("/out/a.bam".to_string(), 1024)],
            12.5,
        );
        let hit = store.lookup(&key).expect("recorded");
        assert_eq!(hit.outputs, vec![("/out/a.bam".to_string(), 1024)]);
        assert_eq!(hit.node, "worker-1");
        assert_eq!(hit.saved_secs, 12.5);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn latest_record_wins_and_survives_a_shared_db() {
        let db = ProvDb::new();
        let a = MemoStore::new(db.clone());
        let key = memo_key("t", "c", &[]);
        a.record(&key, "t", "n0", &[("/x".to_string(), 1)], 1.0);
        a.record(&key, "t", "n1", &[("/x".to_string(), 2)], 2.0);
        drop(a);
        let b = MemoStore::new(db); // fresh handle, same store
        let hit = b.lookup(&key).expect("still there");
        assert_eq!(hit.node, "n1", "latest observation wins");
        assert_eq!(hit.outputs[0].1, 2);
    }
}
