//! Pegasus DAX front-end (paper §3.2).
//!
//! DAX is Pegasus' XML workflow description: a *static* format in which
//! "every task to be invoked and every file to be processed or produced"
//! is spelled out explicitly. Dependencies are derivable from `<uses>`
//! file links; DAX additionally allows explicit `<child>`/`<parent>`
//! control edges, which this parser honours by injecting zero-byte
//! control files when no data dependency already covers the edge.
//!
//! Because real tools' resource needs are not part of standard DAX, this
//! reproduction reads them from `runtime` (reference CPU-seconds),
//! `threads`, and `memory` (MB) attributes on `<job>` — the same
//! information Pegasus carries in profile elements — and file sizes from
//! the `size` attribute of `<uses>` (also present in Pegasus' generator
//! output).
//!
//! ```xml
//! <adag name="montage">
//!   <job id="ID1" name="mProjectPP" runtime="90" threads="1" memory="1024">
//!     <uses file="in/raw_1.fits" link="input" size="4200000"/>
//!     <uses file="work/proj_1.fits" link="output" size="4400000"/>
//!   </job>
//!   <child ref="ID2"><parent ref="ID1"/></child>
//! </adag>
//! ```

use std::collections::HashMap;

use hiway_format::xml::{local_name, XmlElement};

use crate::ir::{LangError, OutputSpec, StaticWorkflow, TaskCost, TaskId, TaskSpec};

/// Parses a DAX document into a static workflow.
pub fn parse_dax(src: &str) -> Result<StaticWorkflow, LangError> {
    let root =
        XmlElement::parse(src).map_err(|e| LangError::new("dax", format!("malformed XML: {e}")))?;
    if local_name(&root.name) != "adag" {
        return Err(LangError::new(
            "dax",
            format!("expected <adag> root, found <{}>", root.name),
        ));
    }
    let wf_name = root.attr("name").unwrap_or("dax-workflow").to_string();

    let mut tasks = Vec::new();
    let mut id_by_label: HashMap<String, usize> = HashMap::new();

    for (seq, job) in root.children_named("job").enumerate() {
        let label = job
            .require_attr("id")
            .map_err(|e| LangError::new("dax", e.message))?
            .to_string();
        let tool = job
            .require_attr("name")
            .map_err(|e| LangError::new("dax", e.message))?
            .to_string();
        let runtime: f64 = parse_attr(job, "runtime", 1.0)?;
        let threads: u32 = parse_attr(job, "threads", 1.0)? as u32;
        let memory: u64 = parse_attr(job, "memory", 512.0)? as u64;
        let scratch: u64 = parse_attr(job, "scratch", 0.0)? as u64;

        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        for uses in job.children_named("uses") {
            let file = uses
                .require_attr("file")
                .map_err(|e| LangError::new("dax", e.message))?
                .to_string();
            let size: u64 = parse_attr(uses, "size", 0.0)? as u64;
            match uses.attr("link") {
                Some("input") => inputs.push(file),
                Some("output") => outputs.push(OutputSpec { path: file, size }),
                other => {
                    return Err(LangError::new(
                        "dax",
                        format!("<uses file=\"{file}\"> has invalid link {other:?}"),
                    ))
                }
            }
        }

        let argument = job
            .child_named("argument")
            .map(|a| a.text.clone())
            .unwrap_or_default();

        if id_by_label.insert(label.clone(), seq).is_some() {
            return Err(LangError::new("dax", format!("duplicate job id '{label}'")));
        }
        tasks.push(TaskSpec {
            id: TaskId(seq as u64),
            name: tool.clone(),
            command: format!("{tool} {argument}").trim().to_string(),
            inputs,
            outputs,
            cost: TaskCost::new(runtime, threads.max(1), memory).with_scratch(scratch),
        });
    }

    // Explicit control edges: <child ref="X"><parent ref="Y"/>...</child>.
    for child in root.children_named("child") {
        let child_label = child
            .require_attr("ref")
            .map_err(|e| LangError::new("dax", e.message))?;
        let &child_idx = id_by_label.get(child_label).ok_or_else(|| {
            LangError::new("dax", format!("<child ref=\"{child_label}\"> unknown"))
        })?;
        for parent in child.children_named("parent") {
            let parent_label = parent
                .require_attr("ref")
                .map_err(|e| LangError::new("dax", e.message))?;
            let &parent_idx = id_by_label.get(parent_label).ok_or_else(|| {
                LangError::new("dax", format!("<parent ref=\"{parent_label}\"> unknown"))
            })?;
            if parent_idx == child_idx {
                return Err(LangError::new(
                    "dax",
                    format!("job '{child_label}' cannot depend on itself"),
                ));
            }
            // Skip when a data dependency already orders the pair.
            let covered = tasks[parent_idx]
                .outputs
                .iter()
                .any(|o| tasks[child_idx].inputs.contains(&o.path));
            if !covered {
                let ctl = format!("/.ctl/{parent_label}__{child_label}");
                tasks[parent_idx].outputs.push(OutputSpec {
                    path: ctl.clone(),
                    size: 0,
                });
                tasks[child_idx].inputs.push(ctl);
            }
        }
    }

    let wf = StaticWorkflow::new(wf_name, "dax", tasks);
    wf.validate()?;
    Ok(wf)
}

fn parse_attr(el: &XmlElement, name: &str, default: f64) -> Result<f64, LangError> {
    match el.attr(name) {
        None => Ok(default),
        Some(text) => text.parse::<f64>().map_err(|_| {
            LangError::new(
                "dax",
                format!(
                    "attribute {name}=\"{text}\" on <{}> is not a number",
                    el.name
                ),
            )
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::WorkflowSource;

    const SMALL_DAX: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
        <adag name="diamond">
          <job id="A" name="preprocess" runtime="10" threads="2" memory="1000">
            <argument>-i raw.dat</argument>
            <uses file="raw.dat" link="input" size="1000"/>
            <uses file="a.dat" link="output" size="500"/>
          </job>
          <job id="B" name="analyze" runtime="20">
            <uses file="a.dat" link="input" size="500"/>
            <uses file="b.dat" link="output" size="200"/>
          </job>
          <job id="C" name="analyze">
            <uses file="a.dat" link="input" size="500"/>
            <uses file="c.dat" link="output" size="200"/>
          </job>
          <job id="D" name="combine">
            <uses file="b.dat" link="input" size="200"/>
            <uses file="c.dat" link="input" size="200"/>
            <uses file="d.dat" link="output" size="100"/>
          </job>
          <child ref="D"><parent ref="B"/><parent ref="C"/></child>
        </adag>"#;

    #[test]
    fn parses_diamond() {
        let wf = parse_dax(SMALL_DAX).unwrap();
        assert_eq!(wf.name, "diamond");
        assert_eq!(wf.tasks.len(), 4);
        assert_eq!(wf.tasks[0].name, "preprocess");
        assert_eq!(wf.tasks[0].command, "preprocess -i raw.dat");
        assert_eq!(wf.tasks[0].cost.threads, 2);
        assert_eq!(wf.tasks[0].cost.cpu_seconds, 10.0);
        assert_eq!(wf.tasks[1].cost.cpu_seconds, 20.0);
        assert_eq!(wf.external_inputs(), vec!["raw.dat".to_string()]);
    }

    #[test]
    fn redundant_control_edges_not_duplicated() {
        let wf = parse_dax(SMALL_DAX).unwrap();
        // B→D and C→D are already covered by files b.dat/c.dat: no /.ctl.
        for t in &wf.tasks {
            assert!(t.outputs.iter().all(|o| !o.path.starts_with("/.ctl/")));
        }
    }

    #[test]
    fn pure_control_edge_injects_control_file() {
        let dax = r#"<adag name="x">
            <job id="A" name="first"><uses file="a" link="output" size="1"/></job>
            <job id="B" name="second"><uses file="b" link="output" size="1"/></job>
            <child ref="B"><parent ref="A"/></child>
        </adag>"#;
        let wf = parse_dax(dax).unwrap();
        assert!(wf.tasks[0].outputs.iter().any(|o| o.path == "/.ctl/A__B"));
        assert!(wf.tasks[1].inputs.contains(&"/.ctl/A__B".to_string()));
    }

    #[test]
    fn is_a_static_workflow_source() {
        let mut wf = parse_dax(SMALL_DAX).unwrap();
        assert!(wf.is_static());
        assert_eq!(wf.language(), "dax");
        let tasks = wf.initial_tasks().unwrap();
        assert_eq!(tasks.len(), 4);
    }

    #[test]
    fn rejects_bad_documents() {
        assert!(parse_dax("<dag/>").is_err());
        assert!(
            parse_dax("<adag><job name=\"x\"/></adag>").is_err(),
            "missing id"
        );
        assert!(parse_dax("<adag><job id=\"a\" name=\"x\" runtime=\"soon\"/></adag>").is_err());
        assert!(parse_dax(
            r#"<adag><job id="a" name="x"><uses file="f" link="sideways"/></job></adag>"#
        )
        .is_err());
        assert!(parse_dax(r#"<adag><child ref="nope"/></adag>"#).is_err());
        // Duplicate job ids.
        assert!(parse_dax(r#"<adag><job id="a" name="x"/><job id="a" name="y"/></adag>"#).is_err());
    }

    #[test]
    fn rejects_cyclic_dax() {
        let dax = r#"<adag name="cycle">
            <job id="A" name="a"><uses file="x" link="input"/><uses file="y" link="output" size="1"/></job>
            <job id="B" name="b"><uses file="y" link="input"/><uses file="x" link="output" size="1"/></job>
        </adag>"#;
        assert!(parse_dax(dax).is_err());
    }
}
