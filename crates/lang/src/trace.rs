//! Provenance traces as a workflow language (paper §3.5).
//!
//! Hi-WAY's Provenance Manager writes one JSON object per line into a
//! trace file in HDFS: workflow-level events (name, total runtime),
//! task-level events (command, makespan, host node, attempts), and
//! file-level events (size, transfer time). "Since this trace file holds
//! information about all of a workflow's tasks and data dependencies, it
//! can be interpreted as a workflow itself" — this module defines the
//! event model (shared with `hiway-core`'s Provenance Manager, which
//! produces it) and the parser that turns a trace back into an executable
//! [`StaticWorkflow`].

use hiway_format::json::Json;

use crate::ir::{LangError, OutputSpec, StaticWorkflow, TaskCost, TaskId, TaskSpec};

/// One recorded file movement.
#[derive(Clone, Debug, PartialEq)]
pub struct FileEvent {
    pub path: String,
    pub size: u64,
    pub task: u64,
    /// `"in"` (HDFS → container) or `"out"` (container → HDFS).
    pub direction: String,
    /// Seconds spent moving the file between HDFS and local storage.
    pub transfer_seconds: f64,
}

/// One recorded task execution.
#[derive(Clone, Debug, PartialEq)]
pub struct TaskEvent {
    pub id: u64,
    pub name: String,
    pub command: String,
    pub inputs: Vec<(String, u64)>,
    pub outputs: Vec<(String, u64)>,
    pub cpu_seconds: f64,
    pub threads: u32,
    pub memory_mb: u64,
    /// Node that executed the (successful) attempt.
    pub node: String,
    pub t_start: f64,
    pub t_end: f64,
    pub attempts: u32,
    pub stdout: String,
    pub stderr: String,
}

impl TaskEvent {
    /// Observed wall-clock makespan.
    pub fn makespan(&self) -> f64 {
        (self.t_end - self.t_start).max(0.0)
    }
}

/// Workflow-level header/footer event.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkflowEvent {
    pub name: String,
    pub language: String,
    pub total_seconds: f64,
}

/// A line in a Hi-WAY trace.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    Workflow(WorkflowEvent),
    Task(TaskEvent),
    File(FileEvent),
}

impl TraceEvent {
    /// Serializes to the canonical single-line JSON representation.
    pub fn to_json(&self) -> Json {
        match self {
            TraceEvent::Workflow(w) => Json::object()
                .with("type", "workflow")
                .with("name", w.name.as_str())
                .with("language", w.language.as_str())
                .with("total_seconds", w.total_seconds),
            TraceEvent::Task(t) => {
                let files = |pairs: &[(String, u64)]| {
                    Json::Array(
                        pairs
                            .iter()
                            .map(|(p, s)| Json::object().with("path", p.as_str()).with("size", *s))
                            .collect(),
                    )
                };
                Json::object()
                    .with("type", "task")
                    .with("id", t.id)
                    .with("name", t.name.as_str())
                    .with("command", t.command.as_str())
                    .with("inputs", files(&t.inputs))
                    .with("outputs", files(&t.outputs))
                    .with("cpu_seconds", t.cpu_seconds)
                    .with("threads", t.threads)
                    .with("memory_mb", t.memory_mb)
                    .with("node", t.node.as_str())
                    .with("t_start", t.t_start)
                    .with("t_end", t.t_end)
                    .with("attempts", t.attempts)
                    .with("stdout", t.stdout.as_str())
                    .with("stderr", t.stderr.as_str())
            }
            TraceEvent::File(f) => Json::object()
                .with("type", "file")
                .with("path", f.path.as_str())
                .with("size", f.size)
                .with("task", f.task)
                .with("direction", f.direction.as_str())
                .with("transfer_seconds", f.transfer_seconds),
        }
    }

    /// Parses one trace line.
    pub fn from_json(value: &Json) -> Result<TraceEvent, LangError> {
        let err = |msg: &str| LangError::new("trace", msg.to_string());
        let ty = value
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| err("event without 'type'"))?;
        let str_field = |k: &str| {
            value
                .get(k)
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string()
        };
        let num_field = |k: &str| value.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        match ty {
            "workflow" => Ok(TraceEvent::Workflow(WorkflowEvent {
                name: str_field("name"),
                language: str_field("language"),
                total_seconds: num_field("total_seconds"),
            })),
            "file" => Ok(TraceEvent::File(FileEvent {
                path: str_field("path"),
                size: num_field("size") as u64,
                task: num_field("task") as u64,
                direction: str_field("direction"),
                transfer_seconds: num_field("transfer_seconds"),
            })),
            "task" => {
                let files = |k: &str| -> Result<Vec<(String, u64)>, LangError> {
                    value
                        .get(k)
                        .and_then(Json::as_array)
                        .unwrap_or(&[])
                        .iter()
                        .map(|f| {
                            let path = f
                                .get("path")
                                .and_then(Json::as_str)
                                .ok_or_else(|| err("file entry without path"))?
                                .to_string();
                            let size = f.get("size").and_then(Json::as_u64).unwrap_or(0);
                            Ok((path, size))
                        })
                        .collect()
                };
                Ok(TraceEvent::Task(TaskEvent {
                    id: value
                        .get("id")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| err("task event without id"))?,
                    name: str_field("name"),
                    command: str_field("command"),
                    inputs: files("inputs")?,
                    outputs: files("outputs")?,
                    cpu_seconds: num_field("cpu_seconds"),
                    threads: num_field("threads") as u32,
                    memory_mb: num_field("memory_mb") as u64,
                    node: str_field("node"),
                    t_start: num_field("t_start"),
                    t_end: num_field("t_end"),
                    attempts: num_field("attempts") as u32,
                    stdout: str_field("stdout"),
                    stderr: str_field("stderr"),
                }))
            }
            other => Err(err(&format!("unknown event type '{other}'"))),
        }
    }
}

/// Serializes a trace to the on-disk (JSON-lines) format.
pub fn write_trace(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_json().to_compact());
        out.push('\n');
    }
    out
}

/// Parses a trace file's content into events.
pub fn parse_trace_events(src: &str) -> Result<Vec<TraceEvent>, LangError> {
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(|line| {
            let v = Json::parse(line)
                .map_err(|e| LangError::new("trace", format!("bad trace line: {e}")))?;
            TraceEvent::from_json(&v)
        })
        .collect()
}

/// Re-interprets a trace as an executable workflow: the fourth supported
/// language. Task costs and file sizes come from the recorded run; the
/// node assignments do *not* carry over ("albeit not necessarily on the
/// same compute nodes").
pub fn parse_trace(src: &str) -> Result<StaticWorkflow, LangError> {
    let events = parse_trace_events(src)?;
    let mut name = "trace-workflow".to_string();
    let mut tasks = Vec::new();
    for e in events {
        match e {
            TraceEvent::Workflow(w) => name = w.name,
            TraceEvent::Task(t) => tasks.push(TaskSpec {
                id: TaskId(t.id),
                name: t.name,
                command: t.command,
                inputs: t.inputs.into_iter().map(|(p, _)| p).collect(),
                outputs: t
                    .outputs
                    .into_iter()
                    .map(|(path, size)| OutputSpec { path, size })
                    .collect(),
                cost: TaskCost::new(t.cpu_seconds, t.threads.max(1), t.memory_mb),
            }),
            TraceEvent::File(_) => {}
        }
    }
    if tasks.is_empty() {
        return Err(LangError::new("trace", "trace contains no task events"));
    }
    let wf = StaticWorkflow::new(format!("{name}-replay"), "trace", tasks);
    wf.validate()?;
    Ok(wf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::WorkflowSource;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Workflow(WorkflowEvent {
                name: "snv".into(),
                language: "cuneiform".into(),
                total_seconds: 120.5,
            }),
            TraceEvent::Task(TaskEvent {
                id: 0,
                name: "bowtie2".into(),
                command: "bowtie2 -x ref reads.fq".into(),
                inputs: vec![("/in/reads.fq".into(), 1000), ("/in/ref.fa".into(), 5000)],
                outputs: vec![("/work/aln.sam".into(), 2000)],
                cpu_seconds: 60.0,
                threads: 8,
                memory_mb: 4000,
                node: "worker-3".into(),
                t_start: 1.0,
                t_end: 31.0,
                attempts: 1,
                stdout: "aligned 100%".into(),
                stderr: String::new(),
            }),
            TraceEvent::File(FileEvent {
                path: "/in/reads.fq".into(),
                size: 1000,
                task: 0,
                direction: "in".into(),
                transfer_seconds: 0.25,
            }),
            TraceEvent::Task(TaskEvent {
                id: 1,
                name: "varscan".into(),
                command: "varscan /work/aln.sam".into(),
                inputs: vec![("/work/aln.sam".into(), 2000)],
                outputs: vec![("/out/vars.vcf".into(), 100)],
                cpu_seconds: 20.0,
                threads: 1,
                memory_mb: 2000,
                node: "worker-1".into(),
                t_start: 32.0,
                t_end: 52.0,
                attempts: 2,
                stdout: String::new(),
                stderr: "warning: low coverage".into(),
            }),
        ]
    }

    #[test]
    fn events_round_trip_through_json_lines() {
        let events = sample_events();
        let text = write_trace(&events);
        assert_eq!(text.lines().count(), 4);
        let parsed = parse_trace_events(&text).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn trace_is_an_executable_workflow() {
        let text = write_trace(&sample_events());
        let mut wf = parse_trace(&text).unwrap();
        assert_eq!(wf.name, "snv-replay");
        assert_eq!(wf.language(), "trace");
        assert!(wf.is_static());
        let tasks = wf.initial_tasks().unwrap();
        assert_eq!(tasks.len(), 2);
        assert_eq!(tasks[0].cost.cpu_seconds, 60.0);
        assert_eq!(tasks[1].inputs, vec!["/work/aln.sam".to_string()]);
        // Replay needs the original external inputs, not intermediates.
        assert_eq!(
            wf.required_inputs(),
            vec!["/in/reads.fq".to_string(), "/in/ref.fa".to_string()]
        );
    }

    #[test]
    fn makespan_is_clamped_non_negative() {
        let mut t = match &sample_events()[1] {
            TraceEvent::Task(t) => t.clone(),
            _ => unreachable!(),
        };
        assert_eq!(t.makespan(), 30.0);
        t.t_end = 0.0;
        assert_eq!(t.makespan(), 0.0);
    }

    #[test]
    fn rejects_garbage_traces() {
        assert!(parse_trace("not json").is_err());
        assert!(parse_trace("{\"type\":\"mystery\"}").is_err());
        assert!(parse_trace("").is_err(), "no task events");
        assert!(
            parse_trace_events("{\"type\":\"task\"}").is_err(),
            "task without id"
        );
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = format!("\n{}\n\n", write_trace(&sample_events()));
        assert_eq!(parse_trace_events(&text).unwrap().len(), 4);
    }
}
