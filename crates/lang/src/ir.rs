//! The black-box intermediate representation shared by all front-ends.
//!
//! A scientific workflow, in Hi-WAY's model, is a set of *tasks* — opaque
//! command invocations — connected only through the files they consume and
//! produce. The engine never inspects file contents or command semantics;
//! it only needs (a) the data dependencies, to order execution, and (b) a
//! resource footprint per task, which in the original system is realized by
//! actually running the tool and here parameterizes the simulated
//! execution.

use std::fmt;

/// Identifier of a task within one workflow execution. Front-ends assign
/// them densely from zero in discovery order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TaskId(pub u64);

/// A file a task will produce, with the size the simulated tool will emit.
/// (The real Hi-WAY learns sizes when the tool exits; the simulator must
/// know them up front to pace the stage-out transfers.)
#[derive(Clone, Debug, PartialEq)]
pub struct OutputSpec {
    pub path: String,
    pub size: u64,
}

/// The resource footprint of one black-box task.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaskCost {
    /// Total CPU work in reference CPU-seconds.
    pub cpu_seconds: f64,
    /// Maximum threads the tool can exploit (Bowtie 2 and TopHat 2 are
    /// heavily multi-threaded; ANNOVAR is single-threaded).
    pub threads: u32,
    /// Peak resident memory in MB — drives container sizing decisions in
    /// memory-constrained experiments (§4.2 runs one task per node).
    pub memory_mb: u64,
    /// Temporary working-directory bytes the tool writes and reads back
    /// during execution (TopHat 2's intermediate files are the canonical
    /// example). On Hi-WAY this traffic hits the node's local disk; on a
    /// system whose working directory lives on a shared network volume
    /// (Galaxy CloudMan's EBS) it crosses the network — the mechanism the
    /// paper credits for Figure 8's performance gap.
    pub scratch_bytes: u64,
}

impl TaskCost {
    pub fn new(cpu_seconds: f64, threads: u32, memory_mb: u64) -> TaskCost {
        TaskCost {
            cpu_seconds,
            threads,
            memory_mb,
            scratch_bytes: 0,
        }
    }

    /// Adds working-directory I/O to the footprint.
    pub fn with_scratch(mut self, scratch_bytes: u64) -> TaskCost {
        self.scratch_bytes = scratch_bytes;
        self
    }
}

impl Default for TaskCost {
    fn default() -> TaskCost {
        TaskCost {
            cpu_seconds: 1.0,
            threads: 1,
            memory_mb: 512,
            scratch_bytes: 0,
        }
    }
}

/// One ready-to-schedule black-box task.
#[derive(Clone, Debug, PartialEq)]
pub struct TaskSpec {
    pub id: TaskId,
    /// Tool signature ("invoking the same tools", §3.4) — the key under
    /// which the Provenance Manager aggregates runtime statistics.
    pub name: String,
    /// The opaque command line, recorded in provenance traces.
    pub command: String,
    /// HDFS paths this task reads. Must exist before the task can launch.
    pub inputs: Vec<String>,
    /// Files this task will write to HDFS.
    pub outputs: Vec<OutputSpec>,
    pub cost: TaskCost,
}

impl TaskSpec {
    /// Paths of all declared outputs.
    pub fn output_paths(&self) -> Vec<String> {
        self.outputs.iter().map(|o| o.path.clone()).collect()
    }
}

/// Error type shared by all front-ends.
#[derive(Clone, Debug)]
pub struct LangError {
    pub language: &'static str,
    pub message: String,
}

impl LangError {
    pub fn new(language: &'static str, message: impl Into<String>) -> LangError {
        LangError {
            language,
            message: message.into(),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} workflow error: {}", self.language, self.message)
    }
}

impl std::error::Error for LangError {}

/// The interface between a workflow language and the Workflow Driver
/// (paper Figure 3). Parsing yields the initially inferable tasks; each
/// task completion may reveal further tasks (iterative languages) or
/// nothing new (static ones).
pub trait WorkflowSource {
    /// Workflow name, for provenance.
    fn name(&self) -> &str;

    /// The language this workflow was written in, for provenance.
    fn language(&self) -> &'static str;

    /// Tasks inferable by parsing alone. Called exactly once, first.
    fn initial_tasks(&mut self) -> Result<Vec<TaskSpec>, LangError>;

    /// Reports a completed task; returns any newly discovered tasks.
    /// Static languages return an empty vector.
    fn on_task_completed(&mut self, task: TaskId) -> Result<Vec<TaskSpec>, LangError>;

    /// Whether the full invocation graph is known after parsing. Static
    /// schedulers (round-robin, HEFT) require this (§3.4: they "can not be
    /// used in conjunction with workflow languages that allow iterative
    /// workflows").
    fn is_static(&self) -> bool;

    /// Workflow input files that must be present in HDFS before execution.
    fn required_inputs(&self) -> Vec<String>;

    /// True once the workflow has *revealed* all of its tasks — for static
    /// languages right after parsing, for iterative front-ends once the
    /// result expression is fully evaluated. It does **not** imply the
    /// tasks have finished executing; the Workflow Driver combines this
    /// with its own all-tasks-done check to detect workflow termination.
    fn is_complete(&self) -> bool;
}

/// A fully materialized (static) workflow: the common backbone of the DAX,
/// Galaxy, and trace front-ends.
#[derive(Clone, Debug, Default)]
pub struct StaticWorkflow {
    pub name: String,
    pub language: &'static str,
    pub tasks: Vec<TaskSpec>,
    emitted: bool,
    completed: u64,
}

impl StaticWorkflow {
    pub fn new(name: impl Into<String>, language: &'static str, tasks: Vec<TaskSpec>) -> Self {
        StaticWorkflow {
            name: name.into(),
            language,
            tasks,
            emitted: false,
            completed: 0,
        }
    }

    /// Files consumed by some task but produced by none — the workflow's
    /// external inputs.
    pub fn external_inputs(&self) -> Vec<String> {
        let produced: std::collections::HashSet<&str> = self
            .tasks
            .iter()
            .flat_map(|t| t.outputs.iter().map(|o| o.path.as_str()))
            .collect();
        let mut inputs: Vec<String> = self
            .tasks
            .iter()
            .flat_map(|t| t.inputs.iter())
            .filter(|p| !produced.contains(p.as_str()))
            .cloned()
            .collect();
        inputs.sort();
        inputs.dedup();
        inputs
    }

    /// Renders the task graph as Graphviz DOT, tasks as boxes and
    /// file-mediated dependencies as edges labelled with the file path —
    /// handy for eyeballing generated workflows (`dot -Tsvg`).
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph workflow {\n  rankdir=LR;\n  node [shape=box];\n");
        let mut producers: std::collections::HashMap<&str, TaskId> =
            std::collections::HashMap::new();
        for t in &self.tasks {
            out.push_str(&format!(
                "  t{} [label=\"{}\\n#{}\"];\n",
                t.id.0,
                t.name.replace('"', "'"),
                t.id.0
            ));
            for o in &t.outputs {
                producers.insert(o.path.as_str(), t.id);
            }
        }
        for t in &self.tasks {
            for input in &t.inputs {
                match producers.get(input.as_str()) {
                    Some(p) => out.push_str(&format!(
                        "  t{} -> t{} [label=\"{}\"];\n",
                        p.0,
                        t.id.0,
                        input.replace('"', "'")
                    )),
                    None => {
                        // External input: a distinct ellipse node.
                        let key = format!("in_{:x}", fxhash(input));
                        out.push_str(&format!(
                            "  {key} [label=\"{}\", shape=ellipse];\n  {key} -> t{};\n",
                            input.replace('"', "'"),
                            t.id.0
                        ));
                    }
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// Validates that the task graph is acyclic and well-formed (no two
    /// tasks produce the same file, ids are unique).
    pub fn validate(&self) -> Result<(), LangError> {
        let mut producers: std::collections::HashMap<&str, TaskId> =
            std::collections::HashMap::new();
        let mut ids = std::collections::HashSet::new();
        for t in &self.tasks {
            if !ids.insert(t.id) {
                return Err(LangError::new(
                    self.language,
                    format!("duplicate task id {:?}", t.id),
                ));
            }
            for o in &t.outputs {
                if let Some(prev) = producers.insert(o.path.as_str(), t.id) {
                    return Err(LangError::new(
                        self.language,
                        format!(
                            "file '{}' produced by both {:?} and {:?}",
                            o.path, prev, t.id
                        ),
                    ));
                }
            }
        }
        // Kahn's algorithm over file-mediated dependencies detects cycles.
        let mut indeg: std::collections::HashMap<TaskId, usize> = std::collections::HashMap::new();
        let mut dependents: std::collections::HashMap<TaskId, Vec<TaskId>> =
            std::collections::HashMap::new();
        for t in &self.tasks {
            let mut deg = 0;
            for input in &t.inputs {
                if let Some(&producer) = producers.get(input.as_str()) {
                    if producer != t.id {
                        deg += 1;
                        dependents.entry(producer).or_default().push(t.id);
                    } else {
                        return Err(LangError::new(
                            self.language,
                            format!("task {:?} consumes its own output '{input}'", t.id),
                        ));
                    }
                }
            }
            indeg.insert(t.id, deg);
        }
        let mut queue: Vec<TaskId> = indeg
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(id, _)| *id)
            .collect();
        let mut seen = 0usize;
        while let Some(id) = queue.pop() {
            seen += 1;
            if let Some(deps) = dependents.get(&id) {
                for d in deps.clone() {
                    let e = indeg.get_mut(&d).expect("known task");
                    *e -= 1;
                    if *e == 0 {
                        queue.push(d);
                    }
                }
            }
        }
        if seen != self.tasks.len() {
            return Err(LangError::new(
                self.language,
                "workflow graph contains a cycle",
            ));
        }
        Ok(())
    }
}

/// Tiny stable string hash for DOT node names.
fn fxhash(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    })
}

impl WorkflowSource for StaticWorkflow {
    fn name(&self) -> &str {
        &self.name
    }

    fn language(&self) -> &'static str {
        self.language
    }

    fn initial_tasks(&mut self) -> Result<Vec<TaskSpec>, LangError> {
        assert!(!self.emitted, "initial_tasks called twice");
        self.emitted = true;
        self.validate()?;
        Ok(self.tasks.clone())
    }

    fn on_task_completed(&mut self, _task: TaskId) -> Result<Vec<TaskSpec>, LangError> {
        self.completed += 1;
        Ok(Vec::new())
    }

    fn is_static(&self) -> bool {
        true
    }

    fn required_inputs(&self) -> Vec<String> {
        self.external_inputs()
    }

    fn is_complete(&self) -> bool {
        self.emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(id: u64, name: &str, inputs: &[&str], outputs: &[&str]) -> TaskSpec {
        TaskSpec {
            id: TaskId(id),
            name: name.into(),
            command: format!("{name} ..."),
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            outputs: outputs
                .iter()
                .map(|s| OutputSpec {
                    path: s.to_string(),
                    size: 100,
                })
                .collect(),
            cost: TaskCost::default(),
        }
    }

    #[test]
    fn external_inputs_are_unproduced_files() {
        let wf = StaticWorkflow::new(
            "t",
            "test",
            vec![
                task(0, "a", &["/in1", "/in2"], &["/mid"]),
                task(1, "b", &["/mid", "/in2"], &["/out"]),
            ],
        );
        assert_eq!(
            wf.external_inputs(),
            vec!["/in1".to_string(), "/in2".to_string()]
        );
    }

    #[test]
    fn validate_accepts_dag() {
        let wf = StaticWorkflow::new(
            "t",
            "test",
            vec![
                task(0, "a", &["/in"], &["/m1"]),
                task(1, "b", &["/m1"], &["/m2"]),
                task(2, "c", &["/m1", "/m2"], &["/out"]),
            ],
        );
        assert!(wf.validate().is_ok());
    }

    #[test]
    fn validate_rejects_cycle() {
        let wf = StaticWorkflow::new(
            "t",
            "test",
            vec![
                task(0, "a", &["/y"], &["/x"]),
                task(1, "b", &["/x"], &["/y"]),
            ],
        );
        assert!(wf.validate().is_err());
    }

    #[test]
    fn validate_rejects_duplicate_producer() {
        let wf = StaticWorkflow::new(
            "t",
            "test",
            vec![task(0, "a", &[], &["/x"]), task(1, "b", &[], &["/x"])],
        );
        assert!(wf.validate().is_err());
    }

    #[test]
    fn validate_rejects_self_loop() {
        let wf = StaticWorkflow::new("t", "test", vec![task(0, "a", &["/x"], &["/x"])]);
        assert!(wf.validate().is_err());
    }

    #[test]
    fn workflow_source_protocol() {
        let mut wf = StaticWorkflow::new("t", "test", vec![task(0, "a", &["/in"], &["/out"])]);
        assert!(wf.is_static());
        assert!(!wf.is_complete());
        let tasks = wf.initial_tasks().unwrap();
        assert_eq!(tasks.len(), 1);
        assert!(
            wf.is_complete(),
            "static workflows are fully revealed by parsing"
        );
        assert!(wf.on_task_completed(TaskId(0)).unwrap().is_empty());
        assert_eq!(wf.required_inputs(), vec!["/in".to_string()]);
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;

    #[test]
    fn dot_export_lists_tasks_edges_and_external_inputs() {
        let wf = StaticWorkflow::new(
            "d",
            "test",
            vec![
                TaskSpec {
                    id: TaskId(0),
                    name: "align".into(),
                    command: "align".into(),
                    inputs: vec!["/in/reads.fq".into()],
                    outputs: vec![OutputSpec {
                        path: "/w/aln.bam".into(),
                        size: 1,
                    }],
                    cost: TaskCost::default(),
                },
                TaskSpec {
                    id: TaskId(1),
                    name: "call".into(),
                    command: "call".into(),
                    inputs: vec!["/w/aln.bam".into()],
                    outputs: vec![OutputSpec {
                        path: "/out/vars.vcf".into(),
                        size: 1,
                    }],
                    cost: TaskCost::default(),
                },
            ],
        );
        let dot = wf.to_dot();
        assert!(dot.starts_with("digraph workflow {"));
        assert!(dot.contains("t0 [label=\"align"), "{dot}");
        assert!(dot.contains("t0 -> t1 [label=\"/w/aln.bam\"]"), "{dot}");
        assert!(dot.contains("shape=ellipse"), "external input node: {dot}");
        assert!(dot.trim_end().ends_with('}'));
    }
}
