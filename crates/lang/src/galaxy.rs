//! Galaxy workflow front-end (paper §3.2).
//!
//! Galaxy workflows are assembled in a web GUI and exported as `.ga` JSON
//! documents: a `steps` object mapping step ids to either *data inputs*
//! (placeholders bound at submission time — "input ports serve as
//! placeholders for the input files, which are resolved interactively when
//! the workflow is committed for execution") or *tool* steps wired
//! together through `input_connections`.
//!
//! `.ga` files carry no resource information — Galaxy runs tools on
//! whatever its job runner provides — so the caller supplies a
//! [`ToolProfiles`] registry mapping tool ids to cost models and output
//! size factors, mirroring how the real Hi-WAY relies on the tools being
//! installed and benchmarked on the cluster.

use std::collections::HashMap;

use hiway_format::json::Json;

use crate::ir::{LangError, OutputSpec, StaticWorkflow, TaskCost, TaskId, TaskSpec};

/// Cost model for one Galaxy tool.
#[derive(Clone, Copy, Debug)]
pub struct ToolProfile {
    /// Fixed CPU-seconds per invocation.
    pub cpu_fixed: f64,
    /// CPU-seconds per input byte.
    pub cpu_per_byte: f64,
    pub threads: u32,
    pub memory_mb: u64,
    /// Output bytes per input byte (spread evenly over declared outputs).
    pub output_factor: f64,
    /// Working-directory bytes per input byte (temporary files written
    /// and re-read during execution — TopHat 2 is notorious for these).
    pub scratch_factor: f64,
}

impl Default for ToolProfile {
    fn default() -> ToolProfile {
        ToolProfile {
            cpu_fixed: 10.0,
            cpu_per_byte: 0.0,
            threads: 1,
            memory_mb: 1024,
            output_factor: 1.0,
            scratch_factor: 0.0,
        }
    }
}

/// Registry of tool profiles, keyed by tool id substring match (Galaxy
/// tool ids are long toolshed URLs; `bowtie2` should match
/// `toolshed.g2.bx.psu.edu/repos/devteam/bowtie2/bowtie2/2.2.6`).
#[derive(Clone, Debug, Default)]
pub struct ToolProfiles {
    profiles: Vec<(String, ToolProfile)>,
    pub fallback: ToolProfile,
}

impl ToolProfiles {
    pub fn insert(&mut self, tool_key: impl Into<String>, profile: ToolProfile) {
        self.profiles.push((tool_key.into(), profile));
    }

    pub fn lookup(&self, tool_id: &str) -> ToolProfile {
        self.profiles
            .iter()
            .find(|(key, _)| tool_id.contains(key.as_str()))
            .map(|(_, p)| *p)
            .unwrap_or(self.fallback)
    }
}

/// A bound workflow input: HDFS path and size.
#[derive(Clone, Debug)]
pub struct BoundInput {
    pub path: String,
    pub size: u64,
}

/// Parses an exported Galaxy workflow.
///
/// * `inputs` binds each data-input step — by its `label`, its first
///   input's `name`, or its stringified step id — to a staged HDFS file.
/// * `profiles` supplies per-tool cost models.
pub fn parse_galaxy(
    src: &str,
    inputs: &HashMap<String, BoundInput>,
    profiles: &ToolProfiles,
) -> Result<StaticWorkflow, LangError> {
    let doc = Json::parse(src).map_err(|e| LangError::new("galaxy", format!("bad JSON: {e}")))?;
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .unwrap_or("galaxy-workflow")
        .to_string();
    let steps = doc
        .get("steps")
        .and_then(Json::as_object)
        .ok_or_else(|| LangError::new("galaxy", "missing 'steps' object"))?;

    // First pass: map step id → produced files (per output name).
    struct StepInfo {
        outputs: HashMap<String, (String, u64)>, // output name → (path, size placeholder)
    }
    let mut parsed: Vec<(u64, &Json)> = Vec::new();
    for (key, step) in steps {
        let id = step
            .get("id")
            .and_then(Json::as_u64)
            .or_else(|| key.parse().ok())
            .ok_or_else(|| LangError::new("galaxy", format!("step '{key}' has no id")))?;
        parsed.push((id, step));
    }
    parsed.sort_by_key(|(id, _)| *id);

    let mut produced: HashMap<u64, StepInfo> = HashMap::new();
    let mut tasks = Vec::new();

    // Resolve data inputs and compute sizes in step-id order; tool outputs
    // need their input sizes, and Galaxy guarantees connections point to
    // earlier steps only (we validate via StaticWorkflow::validate).
    for &(id, step) in &parsed {
        let step_type = step.get("type").and_then(Json::as_str).unwrap_or("tool");
        if step_type == "data_input" || step_type == "data_collection_input" {
            let label = step
                .get("label")
                .and_then(Json::as_str)
                .map(str::to_string)
                .or_else(|| {
                    step.get("inputs")
                        .and_then(Json::as_array)
                        .and_then(|a| a.first())
                        .and_then(|i| i.get("name"))
                        .and_then(Json::as_str)
                        .map(str::to_string)
                })
                .unwrap_or_else(|| id.to_string());
            let bound = inputs
                .get(&label)
                .or_else(|| inputs.get(&id.to_string()))
                .ok_or_else(|| {
                    LangError::new(
                        "galaxy",
                        format!("input port '{label}' (step {id}) not bound to a file"),
                    )
                })?;
            let mut outputs = HashMap::new();
            outputs.insert("output".to_string(), (bound.path.clone(), bound.size));
            produced.insert(id, StepInfo { outputs });
            continue;
        }

        // A tool step.
        let tool_id = step
            .get("tool_id")
            .and_then(Json::as_str)
            .unwrap_or("unknown-tool")
            .to_string();
        let tool_name = tool_id
            .rsplit('/')
            .nth(1)
            .filter(|s| !s.is_empty())
            .unwrap_or(tool_id.as_str())
            .to_string();
        let profile = profiles.lookup(&tool_id);

        // Inputs from connections.
        let mut input_files: Vec<(String, u64)> = Vec::new();
        if let Some(conns) = step.get("input_connections").and_then(Json::as_object) {
            for (_port, conn) in conns {
                // A connection is an object or an array of objects.
                let conn_list: Vec<&Json> = match conn {
                    Json::Array(items) => items.iter().collect(),
                    single => vec![single],
                };
                for c in conn_list {
                    let src_id = c.get("id").and_then(Json::as_u64).ok_or_else(|| {
                        LangError::new("galaxy", format!("step {id}: connection without id"))
                    })?;
                    let out_name = c
                        .get("output_name")
                        .and_then(Json::as_str)
                        .unwrap_or("output");
                    let info = produced.get(&src_id).ok_or_else(|| {
                        LangError::new(
                            "galaxy",
                            format!("step {id} references missing/later step {src_id}"),
                        )
                    })?;
                    // Tolerate port-name drift across Galaxy versions by
                    // falling back to the step's first output.
                    let file = info
                        .outputs
                        .get(out_name)
                        .or_else(|| info.outputs.values().next());
                    let (path, size) = file.ok_or_else(|| {
                        LangError::new(
                            "galaxy",
                            format!("step {src_id} has no output '{out_name}'"),
                        )
                    })?;
                    input_files.push((path.clone(), *size));
                }
            }
        }

        let total_in: u64 = input_files.iter().map(|(_, s)| *s).sum();

        // Declared outputs.
        let out_decls: Vec<(String, String)> = step
            .get("outputs")
            .and_then(Json::as_array)
            .map(|outs| {
                outs.iter()
                    .map(|o| {
                        let oname = o
                            .get("name")
                            .and_then(Json::as_str)
                            .unwrap_or("output")
                            .to_string();
                        let ext = o
                            .get("type")
                            .and_then(Json::as_str)
                            .unwrap_or("dat")
                            .to_string();
                        (oname, ext)
                    })
                    .collect()
            })
            .unwrap_or_else(|| vec![("output".to_string(), "dat".to_string())]);
        let per_output = ((total_in as f64 * profile.output_factor) / out_decls.len().max(1) as f64)
            .max(1.0) as u64;

        let mut outputs = Vec::new();
        let mut info = StepInfo {
            outputs: HashMap::new(),
        };
        for (oname, ext) in &out_decls {
            let path = format!("/galaxy/{name}/step{id}_{oname}.{ext}");
            outputs.push(OutputSpec {
                path: path.clone(),
                size: per_output,
            });
            info.outputs.insert(oname.clone(), (path, per_output));
        }
        produced.insert(id, info);

        tasks.push(TaskSpec {
            id: TaskId(id),
            name: tool_name.clone(),
            command: format!("galaxy-tool {tool_id}"),
            inputs: input_files.into_iter().map(|(p, _)| p).collect(),
            outputs,
            cost: TaskCost::new(
                profile.cpu_fixed + profile.cpu_per_byte * total_in as f64,
                profile.threads,
                profile.memory_mb,
            )
            .with_scratch((total_in as f64 * profile.scratch_factor) as u64),
        });
    }

    let wf = StaticWorkflow::new(name, "galaxy", tasks);
    wf.validate()?;
    Ok(wf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ga() -> &'static str {
        r#"{
          "a_galaxy_workflow": "true",
          "name": "mini-rnaseq",
          "steps": {
            "0": {"id": 0, "type": "data_input", "label": "reads",
                  "inputs": [{"name": "reads"}], "input_connections": {}, "outputs": []},
            "1": {"id": 1, "type": "data_input", "label": "genome",
                  "inputs": [{"name": "genome"}], "input_connections": {}, "outputs": []},
            "2": {"id": 2, "type": "tool",
                  "tool_id": "toolshed.g2.bx.psu.edu/repos/devteam/tophat2/tophat2/2.1.0",
                  "input_connections": {
                    "input1": {"id": 0, "output_name": "output"},
                    "reference": {"id": 1, "output_name": "output"}},
                  "outputs": [{"name": "accepted_hits", "type": "bam"}]},
            "3": {"id": 3, "type": "tool",
                  "tool_id": "toolshed.g2.bx.psu.edu/repos/devteam/cufflinks/cufflinks/2.2.1",
                  "input_connections": {
                    "input": {"id": 2, "output_name": "accepted_hits"}},
                  "outputs": [{"name": "transcripts", "type": "gtf"},
                               {"name": "genes", "type": "tab"}]}
          }
        }"#
    }

    fn bindings() -> HashMap<String, BoundInput> {
        let mut m = HashMap::new();
        m.insert(
            "reads".into(),
            BoundInput {
                path: "/in/reads.fq".into(),
                size: 1000,
            },
        );
        m.insert(
            "genome".into(),
            BoundInput {
                path: "/in/genome.fa".into(),
                size: 5000,
            },
        );
        m
    }

    #[test]
    fn parses_tool_steps_with_connections() {
        let mut profiles = ToolProfiles::default();
        profiles.insert(
            "tophat2",
            ToolProfile {
                cpu_fixed: 100.0,
                cpu_per_byte: 0.01,
                threads: 8,
                memory_mb: 8000,
                output_factor: 0.5,
                scratch_factor: 0.0,
            },
        );
        let wf = parse_galaxy(sample_ga(), &bindings(), &profiles).unwrap();
        assert_eq!(wf.name, "mini-rnaseq");
        assert_eq!(wf.tasks.len(), 2, "data inputs are not tasks");

        let tophat = &wf.tasks[0];
        assert_eq!(tophat.name, "tophat2");
        assert_eq!(tophat.inputs.len(), 2);
        assert!(
            (tophat.cost.cpu_seconds - 160.0).abs() < 1e-9,
            "100 + 0.01*6000"
        );
        assert_eq!(tophat.cost.threads, 8);
        assert_eq!(tophat.outputs[0].size, 3000, "0.5 * 6000 bytes");

        let cufflinks = &wf.tasks[1];
        assert_eq!(cufflinks.name, "cufflinks");
        assert_eq!(cufflinks.inputs, vec![tophat.outputs[0].path.clone()]);
        assert_eq!(cufflinks.outputs.len(), 2);
    }

    #[test]
    fn external_inputs_are_the_bound_files() {
        let wf = parse_galaxy(sample_ga(), &bindings(), &ToolProfiles::default()).unwrap();
        assert_eq!(
            wf.external_inputs(),
            vec!["/in/genome.fa".to_string(), "/in/reads.fq".to_string()]
        );
    }

    #[test]
    fn unbound_input_port_is_an_error() {
        let err = parse_galaxy(sample_ga(), &HashMap::new(), &ToolProfiles::default()).unwrap_err();
        assert!(err.message.contains("not bound"), "{}", err.message);
    }

    #[test]
    fn profile_substring_matching() {
        let mut profiles = ToolProfiles::default();
        profiles.insert(
            "bowtie2",
            ToolProfile {
                threads: 16,
                ..ToolProfile::default()
            },
        );
        assert_eq!(
            profiles
                .lookup("toolshed.g2.bx.psu.edu/repos/devteam/bowtie2/bowtie2/2.2.6")
                .threads,
            16
        );
        assert_eq!(profiles.lookup("something-else").threads, 1);
    }

    #[test]
    fn rejects_connection_to_missing_step() {
        let ga = r#"{"name": "x", "steps": {
            "0": {"id": 0, "type": "tool", "tool_id": "t",
                  "input_connections": {"in": {"id": 9, "output_name": "output"}},
                  "outputs": [{"name": "o", "type": "dat"}]}}}"#;
        assert!(parse_galaxy(ga, &HashMap::new(), &ToolProfiles::default()).is_err());
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(parse_galaxy("{", &HashMap::new(), &ToolProfiles::default()).is_err());
        assert!(parse_galaxy("{}", &HashMap::new(), &ToolProfiles::default()).is_err());
    }
}
