//! A Cuneiform-style functional workflow DSL.
//!
//! Cuneiform (Brandt, Bux, Leser — EDBT/ICDT workshops 2015) is the
//! "native" language of the Hi-WAY stack: a minimal functional language
//! whose only effectful operation is applying a *task* — a black-box tool
//! invocation — to values. Its hallmarks, all reproduced here:
//!
//! * **black-box tasks** declared with `deftask`, carrying opaque commands
//!   and declared outputs;
//! * **element-wise application**: applying a task to lists yields one
//!   task instance per element (scalars broadcast), which is how highly
//!   parallel pipelines are written without explicit loops;
//! * **data-dependent control flow**: `if`/`then`/`else` over values that
//!   may only become known when a task completes (`val(x)` reads the exit
//!   value of the task that produced `x`);
//! * **recursion** through user functions (`defun`), enabling unbounded
//!   iteration such as the k-means refinement loop from the paper §3.3.
//!
//! The evaluator discovers tasks incrementally: evaluation proceeds until
//! it *blocks* on a not-yet-completed task, at which point every task whose
//! arguments are fully known has been submitted. Each completion re-runs
//! the (memoized) evaluation, possibly unblocking conditionals and
//! revealing new tasks — exactly the execution model of the paper's
//! Figure 3.
//!
//! # Example
//!
//! ```
//! use hiway_lang::cuneiform::CuneiformWorkflow;
//! use hiway_lang::ir::WorkflowSource;
//!
//! let src = r#"
//!     deftask align( out("aln_{0}.sam", mul(insize(reads), 2)) : reads ref )
//!         cpu mul(insize(reads), 0.000001) threads 8 mem 4000;
//!     let ref = file("/data/genome.fa", 3000000);
//!     let samples = [file("/data/s0.fq", 1000000), file("/data/s1.fq", 1200000)];
//!     target align(samples, ref);
//! "#;
//! let mut wf = CuneiformWorkflow::parse("demo", src, 7).unwrap();
//! let tasks = wf.initial_tasks().unwrap();
//! assert_eq!(tasks.len(), 2); // one aligner per sample
//! ```

pub mod ast;
pub mod eval;
pub mod lexer;
pub mod parser;

pub use eval::CuneiformWorkflow;
