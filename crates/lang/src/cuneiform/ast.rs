//! Abstract syntax of the Cuneiform-style DSL.

/// An expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    Num(f64),
    Str(String),
    Var(String),
    List(Vec<Expr>),
    /// Application of a builtin, a `deftask`, or a `defun`.
    Call {
        name: String,
        args: Vec<Expr>,
    },
    If {
        cond: Box<Expr>,
        then: Box<Expr>,
        otherwise: Box<Expr>,
    },
    /// `let x = e; body` inside an expression (function bodies).
    LetIn {
        name: String,
        value: Box<Expr>,
        body: Box<Expr>,
    },
}

/// One declared output of a task: a path template and a size expression.
/// Templates substitute `{0}`, `{1}`, … with the rendering of the
/// corresponding argument, which keeps paths unique across instances.
#[derive(Clone, Debug, PartialEq)]
pub struct OutputDecl {
    pub template: String,
    pub size: Expr,
}

/// A task parameter. An *aggregate* parameter (written `[name]`) consumes
/// a whole list as one value instead of triggering element-wise mapping —
/// Cuneiform's aggregate/reduce semantics (e.g. a variant caller that
/// reads all of a sample's sorted alignments at once).
#[derive(Clone, Debug, PartialEq)]
pub struct Param {
    pub name: String,
    pub aggregate: bool,
}

/// A black-box task definition.
#[derive(Clone, Debug, PartialEq)]
pub struct TaskDef {
    pub name: String,
    pub outputs: Vec<OutputDecl>,
    pub params: Vec<Param>,
    /// CPU work in reference CPU-seconds; may reference `insize(param)`.
    pub cpu: Expr,
    pub threads: u32,
    pub memory_mb: u64,
    /// Working-directory bytes written and re-read during execution; may
    /// reference `insize(param)`.
    pub scratch: Option<Expr>,
    /// Exit-value expression, evaluated by the *simulated tool* when the
    /// task completes, readable in the workflow via `val(...)`. Stands in
    /// for the tool writing a value the workflow branches on.
    pub yields: Option<Expr>,
}

/// A user function (possibly recursive).
#[derive(Clone, Debug, PartialEq)]
pub struct FunDef {
    pub name: String,
    pub params: Vec<String>,
    pub body: Expr,
}

/// A top-level item.
#[derive(Clone, Debug, PartialEq)]
pub enum Item {
    Deftask(TaskDef),
    Defun(FunDef),
    Let {
        name: String,
        value: Expr,
    },
    /// The workflow's result expression. At most one; defaults to the last
    /// `let` binding when omitted.
    Target(Expr),
}

/// A parsed program.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    pub items: Vec<Item>,
}

impl Program {
    /// The effective target expression (explicit `target` or the last
    /// `let` binding's variable).
    pub fn target(&self) -> Option<Expr> {
        let explicit = self.items.iter().rev().find_map(|i| match i {
            Item::Target(e) => Some(e.clone()),
            _ => None,
        });
        explicit.or_else(|| {
            self.items.iter().rev().find_map(|i| match i {
                Item::Let { name, .. } => Some(Expr::Var(name.clone())),
                _ => None,
            })
        })
    }
}
