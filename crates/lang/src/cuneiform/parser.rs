//! Recursive-descent parser for the Cuneiform-style DSL.
//!
//! Grammar (keywords are contextual identifiers):
//!
//! ```text
//! program  := item*
//! item     := deftask | defun | let | target
//! deftask  := "deftask" IDENT "(" outdecl ("," outdecl)* ":" IDENT* ")" attr* ";"
//! outdecl  := "out" "(" STRING "," expr ")"
//! attr     := "cpu" expr | "threads" NUM | "mem" NUM | "scratch" expr
//!           | "yield" expr
//! defun    := "defun" IDENT "(" IDENT ("," IDENT)* ")" "=" expr ";"
//! let      := "let" IDENT "=" expr ";"
//! target   := "target" expr ";"
//! expr     := "if" expr "then" expr "else" expr
//!           | "let" IDENT "=" expr ";" expr
//!           | postfix
//! postfix  := primary ( "(" (expr ("," expr)*)? ")" )?
//! primary  := STRING | NUM | IDENT | "[" (expr ("," expr)*)? "]" | "(" expr ")"
//! ```

use crate::ir::LangError;

use super::ast::{Expr, FunDef, Item, OutputDecl, Param, Program, TaskDef};
use super::lexer::{tokenize, Token, TokenKind};

/// Parses a complete program.
pub fn parse_program(src: &str) -> Result<Program, LangError> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut items = Vec::new();
    while !p.at_eof() {
        items.push(p.item()?);
    }
    Ok(Program { items })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn err(&self, msg: impl Into<String>) -> LangError {
        let line = self.tokens[self.pos.min(self.tokens.len() - 1)].line;
        LangError::new("cuneiform", format!("line {line}: {}", msg.into()))
    }

    /// Error attributed to the token just consumed (for post-`bump` paths).
    fn err_prev(&self, msg: impl Into<String>) -> LangError {
        let line = self.tokens[self.pos.saturating_sub(1)].line;
        LangError::new("cuneiform", format!("line {line}: {}", msg.into()))
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if !matches!(t, TokenKind::Eof) {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), LangError> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, LangError> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.err_prev(format!("expected {what}, found {other:?}"))),
        }
    }

    /// Peeks whether the next token is the contextual keyword `kw`.
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn item(&mut self) -> Result<Item, LangError> {
        if self.eat_keyword("deftask") {
            return self.deftask();
        }
        if self.eat_keyword("defun") {
            return self.defun();
        }
        if self.eat_keyword("let") {
            let name = self.ident("binding name")?;
            self.expect(&TokenKind::Equals, "'='")?;
            let value = self.expr()?;
            self.expect(&TokenKind::Semi, "';'")?;
            return Ok(Item::Let { name, value });
        }
        if self.eat_keyword("target") {
            let e = self.expr()?;
            self.expect(&TokenKind::Semi, "';'")?;
            return Ok(Item::Target(e));
        }
        Err(self.err(format!(
            "expected 'deftask', 'defun', 'let', or 'target', found {:?}",
            self.peek()
        )))
    }

    fn deftask(&mut self) -> Result<Item, LangError> {
        let name = self.ident("task name")?;
        self.expect(&TokenKind::LParen, "'('")?;
        let mut outputs = Vec::new();
        loop {
            if !self.eat_keyword("out") {
                return Err(self.err("expected 'out(...)' output declaration"));
            }
            self.expect(&TokenKind::LParen, "'('")?;
            let template = match self.bump() {
                TokenKind::Str(s) => s,
                other => {
                    return Err(
                        self.err(format!("expected output template string, found {other:?}"))
                    )
                }
            };
            self.expect(&TokenKind::Comma, "','")?;
            let size = self.expr()?;
            self.expect(&TokenKind::RParen, "')'")?;
            outputs.push(OutputDecl { template, size });
            if !matches!(self.peek(), TokenKind::Comma) {
                break;
            }
            self.bump();
        }
        self.expect(&TokenKind::Colon, "':' between outputs and parameters")?;
        let mut params = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Ident(_) => params.push(Param {
                    name: self.ident("parameter")?,
                    aggregate: false,
                }),
                TokenKind::LBracket => {
                    self.bump();
                    let name = self.ident("aggregate parameter")?;
                    self.expect(&TokenKind::RBracket, "']'")?;
                    params.push(Param {
                        name,
                        aggregate: true,
                    });
                }
                _ => break,
            }
        }
        self.expect(&TokenKind::RParen, "')'")?;

        let mut cpu = Expr::Num(1.0);
        let mut threads = 1u32;
        let mut memory_mb = 512u64;
        let mut scratch = None;
        let mut yields = None;
        loop {
            if self.eat_keyword("cpu") {
                cpu = self.expr()?;
            } else if self.eat_keyword("threads") {
                threads = self.number()? as u32;
            } else if self.eat_keyword("mem") {
                memory_mb = self.number()? as u64;
            } else if self.eat_keyword("scratch") {
                scratch = Some(self.expr()?);
            } else if self.eat_keyword("yield") {
                yields = Some(self.expr()?);
            } else {
                break;
            }
        }
        self.expect(&TokenKind::Semi, "';'")?;
        Ok(Item::Deftask(TaskDef {
            name,
            outputs,
            params,
            cpu,
            threads,
            memory_mb,
            scratch,
            yields,
        }))
    }

    fn number(&mut self) -> Result<f64, LangError> {
        match self.bump() {
            TokenKind::Num(n) => Ok(n),
            other => Err(self.err_prev(format!("expected a number, found {other:?}"))),
        }
    }

    fn defun(&mut self) -> Result<Item, LangError> {
        let name = self.ident("function name")?;
        self.expect(&TokenKind::LParen, "'('")?;
        let mut params = Vec::new();
        if !matches!(self.peek(), TokenKind::RParen) {
            loop {
                params.push(self.ident("parameter")?);
                if matches!(self.peek(), TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen, "')'")?;
        self.expect(&TokenKind::Equals, "'='")?;
        let body = self.expr()?;
        self.expect(&TokenKind::Semi, "';'")?;
        Ok(Item::Defun(FunDef { name, params, body }))
    }

    fn expr(&mut self) -> Result<Expr, LangError> {
        if self.eat_keyword("if") {
            let cond = self.expr()?;
            if !self.eat_keyword("then") {
                return Err(self.err("expected 'then'"));
            }
            let then = self.expr()?;
            if !self.eat_keyword("else") {
                return Err(self.err("expected 'else'"));
            }
            let otherwise = self.expr()?;
            return Ok(Expr::If {
                cond: Box::new(cond),
                then: Box::new(then),
                otherwise: Box::new(otherwise),
            });
        }
        if self.at_keyword("let") {
            // let-in: "let x = e; body"
            self.bump();
            let name = self.ident("binding name")?;
            self.expect(&TokenKind::Equals, "'='")?;
            let value = self.expr()?;
            self.expect(&TokenKind::Semi, "';'")?;
            let body = self.expr()?;
            return Ok(Expr::LetIn {
                name,
                value: Box::new(value),
                body: Box::new(body),
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, LangError> {
        let primary = self.primary()?;
        if matches!(self.peek(), TokenKind::LParen) {
            let name = match primary {
                Expr::Var(name) => name,
                other => return Err(self.err(format!("cannot call {other:?}"))),
            };
            self.bump();
            let mut args = Vec::new();
            if !matches!(self.peek(), TokenKind::RParen) {
                loop {
                    args.push(self.expr()?);
                    if matches!(self.peek(), TokenKind::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen, "')'")?;
            return Ok(Expr::Call { name, args });
        }
        Ok(primary)
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        match self.bump() {
            TokenKind::Num(n) => Ok(Expr::Num(n)),
            TokenKind::Str(s) => Ok(Expr::Str(s)),
            TokenKind::Ident(name) => Ok(Expr::Var(name)),
            TokenKind::LBracket => {
                let mut items = Vec::new();
                if !matches!(self.peek(), TokenKind::RBracket) {
                    loop {
                        items.push(self.expr()?);
                        if matches!(self.peek(), TokenKind::Comma) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RBracket, "']'")?;
                Ok(Expr::List(items))
            }
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                Ok(e)
            }
            other => Err(self.err_prev(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_deftask() {
        let p = parse_program(
            r#"deftask align( out("a_{1}.sam", mul(insize(r), 2)) : r ref )
                 cpu 100 threads 8 mem 4000 yield 1;"#,
        )
        .unwrap();
        assert_eq!(p.items.len(), 1);
        match &p.items[0] {
            Item::Deftask(t) => {
                assert_eq!(t.name, "align");
                let names: Vec<&str> = t.params.iter().map(|p| p.name.as_str()).collect();
                assert_eq!(names, vec!["r", "ref"]);
                assert!(t.params.iter().all(|p| !p.aggregate));
                assert_eq!(t.threads, 8);
                assert_eq!(t.memory_mb, 4000);
                assert!(t.yields.is_some());
                assert_eq!(t.outputs.len(), 1);
                assert_eq!(t.outputs[0].template, "a_{1}.sam");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_let_list_and_call() {
        let p = parse_program(r#"let xs = [f("a"), f("b")]; target g(xs, 3);"#).unwrap();
        assert_eq!(p.items.len(), 2);
        assert!(
            matches!(&p.items[1], Item::Target(Expr::Call { name, args })
            if name == "g" && args.len() == 2)
        );
    }

    #[test]
    fn parse_if_and_letin() {
        let p = parse_program(
            r#"defun iter(x, i) = let y = step(x, i); if lt(val(y), 10) then iter(y, val(y)) else y;"#,
        )
        .unwrap();
        match &p.items[0] {
            Item::Defun(f) => {
                assert_eq!(f.params, vec!["x", "i"]);
                assert!(matches!(&f.body, Expr::LetIn { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn target_defaults_to_last_let() {
        let p = parse_program("let a = 1; let b = 2;").unwrap();
        assert_eq!(p.target(), Some(Expr::Var("b".into())));
        let p2 = parse_program("let a = 1; target a;").unwrap();
        assert_eq!(p2.target(), Some(Expr::Var("a".into())));
        let p3 = parse_program("deftask t(out(\"x\",1):);").unwrap();
        assert_eq!(p3.target(), None);
    }

    #[test]
    fn parse_errors_have_line_numbers() {
        let err = parse_program("let x = ;\n").unwrap_err();
        assert!(err.message.contains("line 1"), "{}", err.message);
        let err = parse_program("let a = 1;\nbogus b;").unwrap_err();
        assert!(err.message.contains("line 2"), "{}", err.message);
    }

    #[test]
    fn deftask_without_params_or_attrs() {
        let p = parse_program(r#"deftask gen( out("seed.dat", 100) : );"#).unwrap();
        match &p.items[0] {
            Item::Deftask(t) => {
                assert!(t.params.is_empty());
                assert_eq!(t.threads, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nested_parens() {
        let p = parse_program("target add((1), mul(2, 3));").unwrap();
        assert!(matches!(&p.items[0], Item::Target(Expr::Call { .. })));
    }
}
