//! Incremental, memoizing evaluator for the Cuneiform-style DSL.
//!
//! ## Execution model (paper Figure 3)
//!
//! Applying a task submits it (once — applications are memoized on the
//! rendered argument tuple) and immediately returns its declared output
//! files as *promises*: downstream tasks can be discovered right away, and
//! the Workflow Driver withholds their launch until the producing files
//! actually exist in HDFS. Evaluation only *blocks* on `val(x)` — reading
//! the exit value of the task that produced `x` — and therefore on any
//! `if` whose condition depends on such a value. Each task completion
//! re-runs evaluation from the root; memoization makes the re-run cheap
//! and idempotent, and whatever new applications become reachable are the
//! "newly discovered tasks" handed to the scheduler.
//!
//! ## Simulated tool semantics
//!
//! A real tool writes results the workflow may branch on. Here the
//! `deftask ... yield <expr>` clause plays that role: the expression is
//! evaluated over the task's arguments when the task completes (plus
//! `prob(p)`, a deterministic pseudo-random draw seeded by the workflow
//! seed and the task identity, standing in for data-dependent outcomes).

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::{Hash, Hasher};

use crate::ir::{LangError, OutputSpec, TaskCost, TaskId, TaskSpec, WorkflowSource};

use super::ast::{Expr, FunDef, Item, Program, TaskDef};
use super::parser::parse_program;

/// A runtime value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Num(f64),
    Str(String),
    List(Vec<Value>),
    File {
        path: String,
        size: u64,
        /// The task that will produce this file; `None` for workflow inputs.
        producer: Option<TaskId>,
    },
}

impl Value {
    /// Canonical rendering, used for memo keys and path templates.
    fn render(&self) -> String {
        match self {
            Value::Num(n) if n.fract() == 0.0 && n.abs() < 9.0e15 => format!("{}", *n as i64),
            Value::Num(n) => format!("{n}"),
            Value::Str(s) => s.clone(),
            Value::File { path, .. } => path.clone(),
            Value::List(items) => items
                .iter()
                .map(Value::render)
                .collect::<Vec<_>>()
                .join(","),
        }
    }

    fn truthy(&self) -> Result<bool, String> {
        match self {
            Value::Num(n) => Ok(*n != 0.0),
            other => Err(format!("expected a number in condition, got {other:?}")),
        }
    }

    fn num(&self) -> Result<f64, String> {
        match self {
            Value::Num(n) => Ok(*n),
            other => Err(format!("expected a number, got {other:?}")),
        }
    }

    /// All file paths reachable in this value (inputs of a task call).
    fn collect_files(&self, into: &mut Vec<String>) {
        match self {
            Value::File { path, .. } => into.push(path.clone()),
            Value::List(items) => {
                for v in items {
                    v.collect_files(into);
                }
            }
            _ => {}
        }
    }

    /// Total size of all files in this value, for `insize`.
    fn total_size(&self) -> u64 {
        match self {
            Value::File { size, .. } => *size,
            Value::List(items) => items.iter().map(Value::total_size).sum(),
            _ => 0,
        }
    }
}

/// Why evaluation stopped early.
enum Stop {
    /// Waiting on at least one task completion.
    Blocked,
    Error(LangError),
}

type Eval = Result<Value, Stop>;

struct TaskState {
    /// The value the application evaluates to (output file promises).
    result: Value,
    /// Simulated tool exit value, readable once `done` via `val(...)`.
    exit: Value,
    done: bool,
}

/// A parsed Cuneiform workflow with incremental evaluation state.
pub struct CuneiformWorkflow {
    name: String,
    seed: u64,
    tasks_defs: HashMap<String, TaskDef>,
    funs: HashMap<String, FunDef>,
    lets: Vec<(String, Expr)>,
    target: Expr,
    /// Memoized applications: rendered key → state.
    memo: BTreeMap<String, TaskState>,
    by_id: HashMap<TaskId, String>,
    specs: HashMap<TaskId, TaskSpec>,
    next_task: u64,
    /// Tasks discovered by the current evaluation round.
    newly: Vec<TaskSpec>,
    /// Output paths already promised, to reject template collisions.
    promised_outputs: HashMap<String, String>,
    required: BTreeSet<String>,
    complete: bool,
    /// Current evaluation recursion depth (guards against `defun`
    /// recursion that lacks a blocking `val()` guard).
    depth: usize,
}

impl CuneiformWorkflow {
    /// Parses `src` into a workflow named `name`. `seed` drives `prob(p)`
    /// draws, standing in for data-dependent tool outcomes.
    pub fn parse(name: impl Into<String>, src: &str, seed: u64) -> Result<Self, LangError> {
        let program: Program = parse_program(src)?;
        let target = program
            .target()
            .ok_or_else(|| LangError::new("cuneiform", "workflow has no target expression"))?;
        let mut tasks_defs = HashMap::new();
        let mut funs = HashMap::new();
        let mut lets = Vec::new();
        for item in program.items {
            match item {
                Item::Deftask(t) => {
                    if tasks_defs.insert(t.name.clone(), t).is_some() {
                        return Err(LangError::new("cuneiform", "duplicate deftask"));
                    }
                }
                Item::Defun(f) => {
                    if funs.insert(f.name.clone(), f).is_some() {
                        return Err(LangError::new("cuneiform", "duplicate defun"));
                    }
                }
                Item::Let { name, value } => lets.push((name, value)),
                Item::Target(_) => {}
            }
        }
        Ok(CuneiformWorkflow {
            name: name.into(),
            seed,
            tasks_defs,
            funs,
            lets,
            target,
            memo: BTreeMap::new(),
            by_id: HashMap::new(),
            specs: HashMap::new(),
            next_task: 0,
            newly: Vec::new(),
            promised_outputs: HashMap::new(),
            required: BTreeSet::new(),
            complete: false,
            depth: 0,
        })
    }

    /// Number of tasks submitted so far.
    pub fn submitted_count(&self) -> usize {
        self.memo.len()
    }

    /// The spec of a previously discovered task.
    pub fn task_spec(&self, id: TaskId) -> Option<&TaskSpec> {
        self.specs.get(&id)
    }

    /// Runs one evaluation round on a dedicated 32 MiB stack (deep `defun`
    /// recursion is legitimate up to the frame cap, and debug-build frames
    /// are fat); returns the newly discovered tasks.
    fn evaluate_round(&mut self) -> Result<Vec<TaskSpec>, LangError> {
        std::thread::scope(|scope| {
            std::thread::Builder::new()
                .name("cuneiform-eval".to_string())
                .stack_size(32 << 20)
                .spawn_scoped(scope, || self.evaluate_round_inner())
                .expect("spawn evaluation thread")
                .join()
                .expect("evaluation thread must not panic")
        })
    }

    fn evaluate_round_inner(&mut self) -> Result<Vec<TaskSpec>, LangError> {
        self.newly.clear();
        let mut env: Vec<(String, Value)> = Vec::new();
        let lets = self.lets.clone();
        let target = self.target.clone();
        let mut blocked = false;
        for (name, expr) in &lets {
            match self.eval(expr, &env) {
                Ok(v) => env.push((name.clone(), v)),
                Err(Stop::Blocked) => {
                    blocked = true;
                    break;
                }
                Err(Stop::Error(e)) => return Err(e),
            }
        }
        if !blocked {
            match self.eval(&target, &env) {
                Ok(_) => self.complete = true,
                Err(Stop::Blocked) => {}
                Err(Stop::Error(e)) => return Err(e),
            }
        }
        Ok(std::mem::take(&mut self.newly))
    }

    fn error(&self, msg: impl Into<String>) -> Stop {
        Stop::Error(LangError::new("cuneiform", msg))
    }

    fn eval(&mut self, expr: &Expr, env: &[(String, Value)]) -> Eval {
        match expr {
            Expr::Num(n) => Ok(Value::Num(*n)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::List(items) => {
                let mut out = Vec::with_capacity(items.len());
                let mut blocked = false;
                for e in items {
                    match self.eval(e, env) {
                        Ok(v) => out.push(v),
                        Err(Stop::Blocked) => blocked = true,
                        err => return err,
                    }
                }
                if blocked {
                    Err(Stop::Blocked)
                } else {
                    Ok(Value::List(out))
                }
            }
            Expr::Var(name) => env
                .iter()
                .rev()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| self.error(format!("unbound variable '{name}'"))),
            Expr::If {
                cond,
                then,
                otherwise,
            } => {
                let c = self.eval(cond, env)?;
                let c = c.truthy().map_err(|e| self.error(e))?;
                if c {
                    self.eval(then, env)
                } else {
                    self.eval(otherwise, env)
                }
            }
            Expr::LetIn { name, value, body } => {
                let v = self.eval(value, env)?;
                let mut inner = env.to_vec();
                inner.push((name.clone(), v));
                self.eval(body, &inner)
            }
            Expr::Call { name, args } => self.call(name, args, env),
        }
    }

    fn call(&mut self, name: &str, args: &[Expr], env: &[(String, Value)]) -> Eval {
        // Evaluate arguments first (blocking propagates, but evaluate all
        // of them so parallel branches keep discovering tasks).
        let mut values = Vec::with_capacity(args.len());
        let mut blocked = false;
        for a in args {
            match self.eval(a, env) {
                Ok(v) => values.push(v),
                Err(Stop::Blocked) => blocked = true,
                err => return err,
            }
        }
        if blocked {
            return Err(Stop::Blocked);
        }

        if let Some(v) = self.builtin(name, &values)? {
            return Ok(v);
        }
        if let Some(fun) = self.funs.get(name).cloned() {
            if fun.params.len() != values.len() {
                return Err(self.error(format!(
                    "function '{name}' expects {} arguments, got {}",
                    fun.params.len(),
                    values.len()
                )));
            }
            // Evaluation runs on a dedicated 32 MiB stack (see
            // evaluate_round), so 2000 DSL frames fit comfortably even in
            // debug builds; real iterative workflows block on val() every
            // round and stay in the tens of frames.
            self.depth += 1;
            if self.depth > 2_000 {
                self.depth -= 1;
                return Err(self.error(format!(
                    "recursion in '{name}' exceeded 2000 frames — unbounded \
                     recursion needs a data-dependent val() guard"
                )));
            }
            let inner: Vec<(String, Value)> = fun.params.iter().cloned().zip(values).collect();
            let result = self.eval(&fun.body, &inner);
            self.depth -= 1;
            return result;
        }
        if let Some(def) = self.tasks_defs.get(name).cloned() {
            return self.apply_task(&def, &values);
        }
        Err(self.error(format!("unknown function or task '{name}'")))
    }

    /// Builtins return `Ok(Some(v))` when `name` is one of theirs.
    fn builtin(&mut self, name: &str, args: &[Value]) -> Result<Option<Value>, Stop> {
        let arity = |n: usize| -> Result<(), Stop> {
            if args.len() != n {
                Err(self.error(format!(
                    "'{name}' expects {n} argument(s), got {}",
                    args.len()
                )))
            } else {
                Ok(())
            }
        };
        let bin_num = |f: fn(f64, f64) -> f64| -> Result<Option<Value>, Stop> {
            arity(2)?;
            let a = args[0].num().map_err(|e| self.error(e))?;
            let b = args[1].num().map_err(|e| self.error(e))?;
            Ok(Some(Value::Num(f(a, b))))
        };
        let cmp = |f: fn(f64, f64) -> bool| -> Result<Option<Value>, Stop> {
            arity(2)?;
            let a = args[0].num().map_err(|e| self.error(e))?;
            let b = args[1].num().map_err(|e| self.error(e))?;
            Ok(Some(Value::Num(if f(a, b) { 1.0 } else { 0.0 })))
        };
        match name {
            "add" => bin_num(|a, b| a + b),
            "sub" => bin_num(|a, b| a - b),
            "mul" => bin_num(|a, b| a * b),
            "div" => bin_num(|a, b| a / b),
            "min" => bin_num(f64::min),
            "max" => bin_num(f64::max),
            "lt" => cmp(|a, b| a < b),
            "le" => cmp(|a, b| a <= b),
            "gt" => cmp(|a, b| a > b),
            "ge" => cmp(|a, b| a >= b),
            "eq" => {
                arity(2)?;
                Ok(Some(Value::Num(if args[0] == args[1] { 1.0 } else { 0.0 })))
            }
            "ne" => {
                arity(2)?;
                Ok(Some(Value::Num(if args[0] != args[1] { 1.0 } else { 0.0 })))
            }
            "not" => {
                arity(1)?;
                let b = args[0].truthy().map_err(|e| self.error(e))?;
                Ok(Some(Value::Num(if b { 0.0 } else { 1.0 })))
            }
            "and" => cmp(|a, b| a != 0.0 && b != 0.0),
            "or" => cmp(|a, b| a != 0.0 || b != 0.0),
            "len" => {
                arity(1)?;
                match &args[0] {
                    Value::List(items) => Ok(Some(Value::Num(items.len() as f64))),
                    other => Err(self.error(format!("'len' expects a list, got {other:?}"))),
                }
            }
            "nth" => {
                arity(2)?;
                let idx = args[1].num().map_err(|e| self.error(e))? as usize;
                match &args[0] {
                    Value::List(items) => items.get(idx).cloned().map(Some).ok_or_else(|| {
                        self.error(format!("'nth' index {idx} out of bounds ({})", items.len()))
                    }),
                    other => Err(self.error(format!("'nth' expects a list, got {other:?}"))),
                }
            }
            "concat" => {
                arity(2)?;
                match (&args[0], &args[1]) {
                    (Value::List(a), Value::List(b)) => {
                        let mut out = a.clone();
                        out.extend(b.iter().cloned());
                        Ok(Some(Value::List(out)))
                    }
                    (Value::Str(a), Value::Str(b)) => Ok(Some(Value::Str(format!("{a}{b}")))),
                    other => Err(self.error(format!(
                        "'concat' expects two lists or strings, got {other:?}"
                    ))),
                }
            }
            "insize" => {
                arity(1)?;
                Ok(Some(Value::Num(args[0].total_size() as f64)))
            }
            "file" => {
                arity(2)?;
                let path = match &args[0] {
                    Value::Str(s) => s.clone(),
                    other => {
                        return Err(
                            self.error(format!("'file' expects a path string, got {other:?}"))
                        )
                    }
                };
                let size = args[1].num().map_err(|e| self.error(e))? as u64;
                self.required.insert(path.clone());
                Ok(Some(Value::File {
                    path,
                    size,
                    producer: None,
                }))
            }
            "val" => {
                arity(1)?;
                match &args[0] {
                    Value::File {
                        producer: Some(id), ..
                    } => {
                        let key = self
                            .by_id
                            .get(id)
                            .ok_or_else(|| self.error("internal: unknown producer"))?;
                        let state = &self.memo[key];
                        if state.done {
                            Ok(Some(state.exit.clone()))
                        } else {
                            Err(Stop::Blocked)
                        }
                    }
                    Value::File {
                        producer: None,
                        path,
                        ..
                    } => Err(self.error(format!(
                        "'val' on workflow input '{path}' (no producing task)"
                    ))),
                    other => {
                        Err(self.error(format!("'val' expects a produced file, got {other:?}")))
                    }
                }
            }
            _ => Ok(None),
        }
    }

    /// Element-wise task application: list arguments in *mapping* (plain)
    /// parameter positions zip into one instance per element, scalars
    /// broadcast, and lists bound to *aggregate* parameters (`[name]`)
    /// pass through whole.
    fn apply_task(&mut self, def: &TaskDef, args: &[Value]) -> Eval {
        if def.params.len() != args.len() {
            return Err(self.error(format!(
                "task '{}' expects {} arguments, got {}",
                def.name,
                def.params.len(),
                args.len()
            )));
        }
        let mut list_len: Option<usize> = None;
        for (param, v) in def.params.iter().zip(args) {
            if param.aggregate {
                continue;
            }
            if let Value::List(items) = v {
                match list_len {
                    None => list_len = Some(items.len()),
                    Some(l) if l == items.len() => {}
                    Some(l) => {
                        return Err(self.error(format!(
                            "task '{}' applied to lists of different lengths ({l} vs {})",
                            def.name,
                            items.len()
                        )))
                    }
                }
            }
        }
        match list_len {
            None => self.apply_task_instance(def, args),
            Some(n) => {
                let mut results = Vec::with_capacity(n);
                for i in 0..n {
                    let instance: Vec<Value> = def
                        .params
                        .iter()
                        .zip(args)
                        .map(|(param, v)| match v {
                            Value::List(items) if !param.aggregate => items[i].clone(),
                            other => other.clone(),
                        })
                        .collect();
                    results.push(self.apply_task_instance(def, &instance)?);
                }
                Ok(Value::List(results))
            }
        }
    }

    fn apply_task_instance(&mut self, def: &TaskDef, args: &[Value]) -> Eval {
        let key = format!(
            "{}({})",
            def.name,
            args.iter().map(Value::render).collect::<Vec<_>>().join(";")
        );
        if let Some(state) = self.memo.get(&key) {
            return Ok(state.result.clone());
        }

        let id = TaskId(self.next_task);
        self.next_task += 1;

        // Parameter environment for size/cpu/yield expressions.
        let penv: Vec<(String, Value)> = def
            .params
            .iter()
            .map(|p| p.name.clone())
            .zip(args.iter().cloned())
            .collect();

        // Render outputs.
        let mut outputs = Vec::with_capacity(def.outputs.len());
        for decl in &def.outputs {
            let path = render_template(&decl.template, &def.params, args);
            if let Some(owner) = self.promised_outputs.get(&path) {
                if owner != &key {
                    return Err(self.error(format!(
                        "output path collision: '{path}' produced by both {owner} and {key}"
                    )));
                }
            }
            self.promised_outputs.insert(path.clone(), key.clone());
            let size = self.eval_pure(&decl.size, &penv, &key)?;
            let size = size.num().map_err(|e| self.error(e))?.max(0.0) as u64;
            outputs.push(OutputSpec { path, size });
        }

        let cpu = self
            .eval_pure(&def.cpu, &penv, &key)?
            .num()
            .map_err(|e| self.error(e))?
            .max(0.0);

        let scratch_bytes = match &def.scratch {
            Some(e) => self
                .eval_pure(e, &penv, &key)?
                .num()
                .map_err(|err| self.error(err))?
                .max(0.0) as u64,
            None => 0,
        };

        // Simulated tool exit value (revealed at completion via val()).
        let exit = match &def.yields {
            Some(e) => self.eval_pure(e, &penv, &key)?,
            None => Value::Num(0.0),
        };

        let mut inputs = Vec::new();
        for v in args {
            v.collect_files(&mut inputs);
        }
        inputs.sort();
        inputs.dedup();

        let spec = TaskSpec {
            id,
            name: def.name.clone(),
            command: key.clone(),
            inputs,
            outputs: outputs.clone(),
            cost: TaskCost::new(cpu, def.threads, def.memory_mb).with_scratch(scratch_bytes),
        };

        let result = {
            let files: Vec<Value> = outputs
                .iter()
                .map(|o| Value::File {
                    path: o.path.clone(),
                    size: o.size,
                    producer: Some(id),
                })
                .collect();
            if files.len() == 1 {
                files.into_iter().next().expect("one output")
            } else {
                Value::List(files)
            }
        };

        self.memo.insert(
            key.clone(),
            TaskState {
                result: result.clone(),
                exit,
                done: false,
            },
        );
        self.by_id.insert(id, key);
        self.specs.insert(id, spec.clone());
        self.newly.push(spec);
        Ok(result)
    }

    /// Evaluates a pure expression (sizes, cpu, yield): only builtins and
    /// the parameter environment are in scope, plus `prob(p)`.
    fn eval_pure(&mut self, expr: &Expr, penv: &[(String, Value)], key: &str) -> Eval {
        match expr {
            Expr::Call { name, args } if name == "prob" => {
                if args.len() != 1 {
                    return Err(self.error("'prob' expects one argument"));
                }
                let p = self.eval_pure(&args[0], penv, key)?;
                let p = p.num().map_err(|e| self.error(e))?;
                let mut hasher = DefaultHasher::new();
                (self.seed, key, "prob").hash(&mut hasher);
                let draw = (hasher.finish() % 1_000_000) as f64 / 1_000_000.0;
                Ok(Value::Num(if draw < p { 1.0 } else { 0.0 }))
            }
            Expr::Call { name, args } => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval_pure(a, penv, key)?);
                }
                match self.builtin(name, &values)? {
                    Some(v) => Ok(v),
                    None => Err(self.error(format!(
                        "only builtins may appear in task attribute expressions, found '{name}'"
                    ))),
                }
            }
            Expr::If {
                cond,
                then,
                otherwise,
            } => {
                let c = self.eval_pure(cond, penv, key)?;
                if c.truthy().map_err(|e| self.error(e))? {
                    self.eval_pure(then, penv, key)
                } else {
                    self.eval_pure(otherwise, penv, key)
                }
            }
            Expr::Num(n) => Ok(Value::Num(*n)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::Var(name) => penv
                .iter()
                .rev()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| self.error(format!("unbound parameter '{name}' in task attribute"))),
            Expr::List(items) => {
                let mut out = Vec::with_capacity(items.len());
                for e in items {
                    out.push(self.eval_pure(e, penv, key)?);
                }
                Ok(Value::List(out))
            }
            Expr::LetIn { name, value, body } => {
                let v = self.eval_pure(value, penv, key)?;
                let mut inner = penv.to_vec();
                inner.push((name.clone(), v));
                self.eval_pure(body, &inner, key)
            }
        }
    }
}

/// Substitutes `{0}`, `{1}`, … and `{param}` in an output template.
fn render_template(template: &str, params: &[super::ast::Param], args: &[Value]) -> String {
    let mut out = template.to_string();
    for (i, (param, value)) in params.iter().zip(args.iter()).enumerate() {
        let rendered = sanitize(&value.render());
        out = out.replace(&format!("{{{i}}}"), &rendered);
        out = out.replace(&format!("{{{}}}", param.name), &rendered);
    }
    out
}

/// Keeps rendered values path-friendly (file arguments render as their
/// path; embedded slashes would explode the namespace).
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c == '/' || c == ',' { '_' } else { c })
        .collect()
}

impl WorkflowSource for CuneiformWorkflow {
    fn name(&self) -> &str {
        &self.name
    }

    fn language(&self) -> &'static str {
        "cuneiform"
    }

    fn initial_tasks(&mut self) -> Result<Vec<TaskSpec>, LangError> {
        self.evaluate_round()
    }

    fn on_task_completed(&mut self, task: TaskId) -> Result<Vec<TaskSpec>, LangError> {
        let key = self
            .by_id
            .get(&task)
            .ok_or_else(|| LangError::new("cuneiform", format!("unknown task {task:?}")))?
            .clone();
        self.memo.get_mut(&key).expect("keyed state").done = true;
        self.evaluate_round()
    }

    fn is_static(&self) -> bool {
        false
    }

    fn required_inputs(&self) -> Vec<String> {
        self.required.iter().cloned().collect()
    }

    fn is_complete(&self) -> bool {
        self.complete
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> CuneiformWorkflow {
        CuneiformWorkflow::parse("test", src, 42).expect("parse")
    }

    #[test]
    fn linear_pipeline_unfolds_eagerly() {
        let mut wf = parse(
            r#"
            deftask a( out("a.dat", 100) : x ) cpu 1;
            deftask b( out("b.dat", 100) : x ) cpu 1;
            let input = file("/in.dat", 50);
            target b(a(input));
            "#,
        );
        let tasks = wf.initial_tasks().unwrap();
        // Both stages discovered immediately: file promises don't block.
        assert_eq!(tasks.len(), 2);
        assert_eq!(tasks[0].name, "a");
        assert_eq!(tasks[1].name, "b");
        assert_eq!(tasks[1].inputs, vec!["a.dat".to_string()]);
        // No val()/if gating: the whole pipeline is revealed immediately.
        assert!(wf.is_complete());
        assert!(wf.on_task_completed(tasks[0].id).unwrap().is_empty());
        assert!(wf.on_task_completed(tasks[1].id).unwrap().is_empty());
        assert_eq!(wf.required_inputs(), vec!["/in.dat".to_string()]);
    }

    #[test]
    fn list_application_maps_elementwise() {
        let mut wf = parse(
            r#"
            deftask align( out("aln_{0}.sam", mul(insize(r), 2)) : r ref ) cpu 10 threads 4;
            let ref = file("/ref.fa", 1000);
            let samples = [file("/s0.fq", 100), file("/s1.fq", 200), file("/s2.fq", 300)];
            target align(samples, ref);
            "#,
        );
        let tasks = wf.initial_tasks().unwrap();
        assert_eq!(tasks.len(), 3);
        // Outputs templated per-instance; sizes follow insize(r).
        assert_eq!(tasks[0].outputs[0].path, "aln__s0.fq.sam");
        assert_eq!(tasks[0].outputs[0].size, 200);
        assert_eq!(tasks[2].outputs[0].size, 600);
        // The broadcast ref is an input of every instance.
        for t in &tasks {
            assert!(t.inputs.contains(&"/ref.fa".to_string()));
        }
        assert_eq!(tasks[0].cost.threads, 4);
    }

    #[test]
    fn mismatched_list_lengths_rejected() {
        let mut wf = parse(
            r#"
            deftask t( out("o_{0}_{1}", 1) : a b ) cpu 1;
            target t([file("/a", 1), file("/b", 1)], [file("/c", 1)]);
            "#,
        );
        assert!(wf.initial_tasks().is_err());
    }

    #[test]
    fn recursion_with_val_discovers_incrementally() {
        // The k-means shape from the paper §3.3: iterate until the tool
        // reports round >= 3.
        let mut wf = parse(
            r#"
            deftask step( out("cents_{1}.dat", 1000) : c i ) cpu 5 yield add(i, 1);
            defun iterate(c, i) =
              let next = step(c, i);
              if lt(val(next), 3) then iterate(next, val(next)) else next;
            let seed = file("/cents0.dat", 1000);
            target iterate(seed, 0);
            "#,
        );
        let t0 = wf.initial_tasks().unwrap();
        assert_eq!(t0.len(), 1, "only the first step is known");
        let t1 = wf.on_task_completed(t0[0].id).unwrap();
        assert_eq!(t1.len(), 1, "completion reveals the next iteration");
        assert!(!wf.is_complete());
        let t2 = wf.on_task_completed(t1[0].id).unwrap();
        assert_eq!(t2.len(), 1);
        let t3 = wf.on_task_completed(t2[0].id).unwrap();
        assert!(t3.is_empty(), "val(next)=3 stops the recursion");
        assert!(wf.is_complete());
        assert_eq!(wf.submitted_count(), 3);
    }

    #[test]
    fn conditional_chooses_branch_tasks_lazily() {
        let mut wf = parse(
            r#"
            deftask probe( out("p.dat", 10) : x ) cpu 1 yield 7;
            deftask big( out("big.dat", 10) : x ) cpu 100;
            deftask small( out("small.dat", 10) : x ) cpu 1;
            let input = file("/in", 5);
            let p = probe(input);
            target if gt(val(p), 5) then big(p) else small(p);
            "#,
        );
        let t0 = wf.initial_tasks().unwrap();
        assert_eq!(t0.len(), 1, "branch tasks must not be submitted yet");
        let t1 = wf.on_task_completed(t0[0].id).unwrap();
        assert_eq!(t1.len(), 1);
        assert_eq!(t1[0].name, "big", "yield 7 > 5 selects the big branch");
    }

    #[test]
    fn memoization_deduplicates_identical_applications() {
        let mut wf = parse(
            r#"
            deftask t( out("o.dat", 1) : x ) cpu 1;
            let input = file("/in", 1);
            let a = t(input);
            let b = t(input);
            target [a, b];
            "#,
        );
        let tasks = wf.initial_tasks().unwrap();
        assert_eq!(tasks.len(), 1, "same application evaluated once");
    }

    #[test]
    fn output_collision_between_distinct_tasks_rejected() {
        let mut wf = parse(
            r#"
            deftask t( out("same.dat", 1) : x ) cpu 1;
            target [t(file("/a", 1)), t(file("/b", 1))];
            "#,
        );
        let err = wf.initial_tasks().unwrap_err();
        assert!(err.message.contains("collision"), "{}", err.message);
    }

    #[test]
    fn prob_is_deterministic_per_seed() {
        let src = r#"
            deftask flip( out("f_{0}.dat", 1) : x ) cpu 1 yield prob(0.5);
            target flip(file("/in", 1));
        "#;
        let mut a = CuneiformWorkflow::parse("t", src, 1).unwrap();
        let mut b = CuneiformWorkflow::parse("t", src, 1).unwrap();
        let ta = a.initial_tasks().unwrap();
        let tb = b.initial_tasks().unwrap();
        assert_eq!(ta, tb);
    }

    #[test]
    fn arithmetic_and_list_builtins() {
        let mut wf = parse(
            r#"
            deftask t( out("o_{0}.dat", 1) : n ) cpu 1;
            let xs = [1, 2, 3];
            target t(add(mul(nth(xs, 2), 10), len(xs)));
            "#,
        );
        let tasks = wf.initial_tasks().unwrap();
        assert_eq!(tasks[0].outputs[0].path, "o_33.dat");
    }

    #[test]
    fn aggregate_parameter_consumes_whole_list() {
        let mut wf = parse(
            r#"
            deftask sort( out("sorted_{0}.bam", insize(aln)) : aln ) cpu 1;
            deftask varscan( out("vars.vcf", 100) : [alns] ) cpu insize(alns);
            let reads = [file("/r0", 100), file("/r1", 200)];
            target varscan(sort(reads));
            "#,
        );
        let tasks = wf.initial_tasks().unwrap();
        // Two sorts (mapped) + ONE varscan over both sorted files.
        assert_eq!(tasks.len(), 3);
        let varscan = tasks.iter().find(|t| t.name == "varscan").unwrap();
        assert_eq!(varscan.inputs.len(), 2);
        assert_eq!(varscan.cost.cpu_seconds, 300.0, "insize over the list");
    }

    #[test]
    fn aggregate_and_mapped_params_mix() {
        let mut wf = parse(
            r#"
            deftask merge( out("m_{0}.dat", 1) : tag [items] ) cpu 1;
            let items = [file("/a", 1), file("/b", 1)];
            target merge(["x", "y"], items);
            "#,
        );
        // `tag` maps over ["x","y"]; `items` broadcast as a whole list.
        let tasks = wf.initial_tasks().unwrap();
        assert_eq!(tasks.len(), 2);
        assert_eq!(tasks[0].outputs[0].path, "m_x.dat");
        assert_eq!(tasks[0].inputs.len(), 2);
    }

    #[test]
    fn unknown_identifier_is_an_error() {
        let mut wf = parse("target nope(1);");
        assert!(wf.initial_tasks().is_err());
    }

    #[test]
    fn val_on_workflow_input_is_an_error() {
        let mut wf = parse(r#"target val(file("/in", 1));"#);
        assert!(wf.initial_tasks().is_err());
    }

    #[test]
    fn doc_example_compiles() {
        // Mirrors the module-level doc example.
        let src = r#"
            deftask align( out("aln_{0}.sam", mul(insize(reads), 2)) : reads ref )
                cpu mul(insize(reads), 0.000001) threads 8 mem 4000;
            let ref = file("/data/genome.fa", 3000000);
            let samples = [file("/data/s0.fq", 1000000), file("/data/s1.fq", 1200000)];
            target align(samples, ref);
        "#;
        let mut wf = CuneiformWorkflow::parse("demo", src, 7).unwrap();
        let tasks = wf.initial_tasks().unwrap();
        assert_eq!(tasks.len(), 2);
        assert!((tasks[0].cost.cpu_seconds - 1.0).abs() < 1e-9);
        assert_eq!(tasks[0].cost.memory_mb, 4000);
    }
}
