//! Tokenizer for the Cuneiform-style DSL.

use crate::ir::LangError;

/// A token with its source line (for error messages).
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
}

#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    Ident(String),
    Num(f64),
    Str(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Colon,
    Semi,
    Equals,
    Eof,
}

/// Keywords are ordinary identifiers; the parser distinguishes them. This
/// keeps the lexer trivial and lets task/function names shadow nothing.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LangError> {
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let bytes = src.as_bytes();
    let mut i = 0;
    let err = |line: usize, msg: String| LangError::new("cuneiform", format!("line {line}: {msg}"));

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'%' => {
                // Comment to end of line (Cuneiform style).
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    line,
                });
                i += 1;
            }
            b')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    line,
                });
                i += 1;
            }
            b'[' => {
                tokens.push(Token {
                    kind: TokenKind::LBracket,
                    line,
                });
                i += 1;
            }
            b']' => {
                tokens.push(Token {
                    kind: TokenKind::RBracket,
                    line,
                });
                i += 1;
            }
            b',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    line,
                });
                i += 1;
            }
            b':' => {
                tokens.push(Token {
                    kind: TokenKind::Colon,
                    line,
                });
                i += 1;
            }
            b';' => {
                tokens.push(Token {
                    kind: TokenKind::Semi,
                    line,
                });
                i += 1;
            }
            b'=' => {
                tokens.push(Token {
                    kind: TokenKind::Equals,
                    line,
                });
                i += 1;
            }
            b'"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(err(line, "unterminated string".into()));
                    }
                    match bytes[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' if i + 1 < bytes.len() => {
                            let esc = bytes[i + 1];
                            s.push(match esc {
                                b'n' => '\n',
                                b't' => '\t',
                                other => other as char,
                            });
                            i += 2;
                        }
                        b'\n' => return Err(err(line, "newline in string".into())),
                        other => {
                            s.push(other as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    line,
                });
            }
            c if c.is_ascii_digit()
                || (c == b'-' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit()) =>
            {
                let start = i;
                i += 1;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && matches!(bytes[i - 1], b'e' | b'E')))
                {
                    i += 1;
                }
                let text = std::str::from_utf8(&bytes[start..i]).expect("ascii");
                let n: f64 = text
                    .parse()
                    .map_err(|_| err(line, format!("invalid number '{text}'")))?;
                tokens.push(Token {
                    kind: TokenKind::Num(n),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let text = std::str::from_utf8(&bytes[start..i])
                    .expect("ascii")
                    .to_string();
                tokens.push(Token {
                    kind: TokenKind::Ident(text),
                    line,
                });
            }
            other => {
                return Err(err(
                    line,
                    format!("unexpected character '{}'", other as char),
                ));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds(r#"let x = f("a", 1.5);"#),
            vec![
                TokenKind::Ident("let".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Equals,
                TokenKind::Ident("f".into()),
                TokenKind::LParen,
                TokenKind::Str("a".into()),
                TokenKind::Comma,
                TokenKind::Num(1.5),
                TokenKind::RParen,
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let toks = tokenize("a % comment\nb").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn negative_and_scientific_numbers() {
        assert_eq!(kinds("-3")[0], TokenKind::Num(-3.0));
        assert_eq!(kinds("2e-3")[0], TokenKind::Num(0.002));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(kinds(r#""a\"b\n""#)[0], TokenKind::Str("a\"b\n".into()));
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(tokenize("\"abc").is_err());
    }

    #[test]
    fn rejects_stray_symbol() {
        assert!(tokenize("let x = @;").is_err());
    }
}
