//! # hiway-lang — workflow languages and the black-box task IR
//!
//! Hi-WAY "sunders the tight coupling of scientific workflow languages and
//! execution engines" (paper §3.2): it has no language of its own but an
//! extensible front-end interface. This crate provides the common
//! intermediate representation — black-box tasks exchanging opaque files —
//! and the four front-ends the paper ships:
//!
//! * [`cuneiform`] — a Cuneiform-style functional workflow DSL with task
//!   definitions, lists with element-wise task application, user-defined
//!   functions, recursion, and data-dependent conditionals. This is the
//!   *iterative* language: new tasks are discovered while the workflow
//!   runs (paper §3.3 and the k-means example).
//! * [`dax`] — Pegasus' static XML workflow format (every task and file
//!   spelled out; supports static schedulers such as HEFT).
//! * [`galaxy`] — workflows exported from the Galaxy SWfMS as JSON, with
//!   input ports resolved at submission time.
//! * [`trace`] — Hi-WAY provenance traces, re-executable as workflows
//!   (paper §3.5: the trace file *is* a fourth workflow language).
//!
//! Every front-end implements [`ir::WorkflowSource`], the interface the
//! Workflow Driver in `hiway-core` consumes. Adding a language means
//! implementing that trait — exactly the extension point §3.2 describes.

pub mod cuneiform;
pub mod dax;
pub mod galaxy;
pub mod ir;
pub mod trace;

pub use ir::{LangError, OutputSpec, StaticWorkflow, TaskCost, TaskId, TaskSpec, WorkflowSource};
