//! Property tests across the language front-ends.

use proptest::prelude::*;

use hiway_lang::cuneiform::CuneiformWorkflow;
use hiway_lang::dax::parse_dax;
use hiway_lang::ir::WorkflowSource;
use hiway_lang::trace::{parse_trace, parse_trace_events, write_trace, TaskEvent, TraceEvent};

/// Generates a random fan-out/fan-in Cuneiform program.
fn cuneiform_program(stages: &[usize], file_kb: u64) -> String {
    let mut src = String::new();
    src.push_str(
        "deftask work( out(\"/w/{0}_{1}.dat\", insize(x)) : x stage )\n  cpu 1 threads 1 mem 64;\n",
    );
    src.push_str("deftask fold( out(\"/w/fold_{1}.dat\", insize(xs)) : [xs] stage ) cpu 1;\n");
    src.push_str(&format!(
        "let inputs = [{}];\n",
        (0..stages[0])
            .map(|i| format!("file(\"/in/{i}\", {})", file_kb * 1024))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    let mut prev = "inputs".to_string();
    for (si, &width) in stages.iter().enumerate() {
        if width == stages[0] && si == 0 {
            src.push_str(&format!("let s0 = work({prev}, \"s0\");\n"));
            prev = "s0".to_string();
        } else {
            // Fold to one, then no further fan-out (keeps paths unique).
            src.push_str(&format!("let s{si} = fold({prev}, \"s{si}\");\n"));
            prev = format!("s{si}");
        }
    }
    src.push_str(&format!("target {prev};\n"));
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generated Cuneiform pipelines parse, unfold deterministically, and
    /// produce valid static task graphs.
    #[test]
    fn cuneiform_unfolding_is_deterministic_and_valid(
        width in 1usize..8,
        depth in 1usize..4,
        file_kb in 1u64..512,
        seed in 0u64..100,
    ) {
        let stages: Vec<usize> = std::iter::once(width).chain((1..depth).map(|_| 1)).collect();
        let src = cuneiform_program(&stages, file_kb);
        let mut a = CuneiformWorkflow::parse("p", &src, seed).expect("parse");
        let mut b = CuneiformWorkflow::parse("p", &src, seed).expect("parse");
        let ta = a.initial_tasks().expect("unfold");
        let tb = b.initial_tasks().expect("unfold");
        prop_assert_eq!(&ta, &tb, "same seed, same tasks");
        prop_assert!(a.is_complete(), "no val/if: fully static");
        // The unfolded graph is a valid DAG.
        let wf = hiway_lang::ir::StaticWorkflow::new("p", "cuneiform", ta.clone());
        wf.validate().expect("valid DAG");
        // Task count: width work tasks + (depth-1) folds.
        prop_assert_eq!(ta.len(), width + depth.saturating_sub(1));
    }

    /// DAX documents generated from random diamond-ish shapes round-trip
    /// through the parser with the right task count.
    #[test]
    fn dax_random_fanout_parses(width in 1usize..12, runtime in 1.0f64..100.0) {
        let mut jobs = String::new();
        for i in 0..width {
            jobs.push_str(&format!(
                r#"<job id="m{i}" name="mapper" runtime="{runtime}">
                     <uses file="in.dat" link="input" size="100"/>
                     <uses file="m{i}.out" link="output" size="10"/>
                   </job>"#
            ));
        }
        let uses: String = (0..width)
            .map(|i| format!(r#"<uses file="m{i}.out" link="input" size="10"/>"#))
            .collect();
        jobs.push_str(&format!(
            r#"<job id="r" name="reducer" runtime="{runtime}">{uses}
                 <uses file="final.out" link="output" size="1"/>
               </job>"#
        ));
        let doc = format!(r#"<adag name="gen">{jobs}</adag>"#);
        let wf = parse_dax(&doc).expect("valid DAX");
        prop_assert_eq!(wf.tasks.len(), width + 1);
        prop_assert_eq!(wf.external_inputs(), vec!["in.dat".to_string()]);
        for t in &wf.tasks {
            prop_assert!((t.cost.cpu_seconds - runtime).abs() < 1e-9);
        }
    }

    /// Trace events survive serialization for arbitrary metadata strings.
    #[test]
    fn trace_round_trip_any_strings(
        name in "[\\PC&&[^\"\\\\]]{0,24}",
        node in "[a-z0-9-]{1,16}",
        stdout in "\\PC{0,48}",
        t_start in 0.0f64..1.0e6,
        makespan in 0.0f64..1.0e4,
    ) {
        let event = TraceEvent::Task(TaskEvent {
            id: 7,
            name: name.clone(),
            command: format!("{name} --arg"),
            inputs: vec![("/in".into(), 42)],
            outputs: vec![("/out".into(), 7)],
            cpu_seconds: makespan,
            threads: 3,
            memory_mb: 123,
            node,
            t_start,
            t_end: t_start + makespan,
            attempts: 2,
            stdout,
            stderr: String::new(),
        });
        let text = write_trace(std::slice::from_ref(&event));
        let parsed = parse_trace_events(&text).expect("round trip");
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(&parsed[0], &event);
    }
}

/// A trace of a linear chain replays into an identical chain.
#[test]
fn chained_trace_replays_with_same_dependencies() {
    let mut events = Vec::new();
    for i in 0..5u64 {
        events.push(TraceEvent::Task(TaskEvent {
            id: i,
            name: format!("stage{i}"),
            command: format!("tool{i}"),
            inputs: vec![(
                if i == 0 {
                    "/input".into()
                } else {
                    format!("/mid{}", i - 1)
                },
                10,
            )],
            outputs: vec![(format!("/mid{i}"), 10)],
            cpu_seconds: 1.0,
            threads: 1,
            memory_mb: 10,
            node: "w0".into(),
            t_start: i as f64,
            t_end: i as f64 + 1.0,
            attempts: 1,
            stdout: String::new(),
            stderr: String::new(),
        }));
    }
    let wf = parse_trace(&write_trace(&events)).unwrap();
    assert_eq!(wf.tasks.len(), 5);
    assert_eq!(wf.external_inputs(), vec!["/input".to_string()]);
    wf.validate().unwrap();
}

/// Unguarded infinite recursion is an error, not a stack overflow.
#[test]
fn unbounded_recursion_is_rejected() {
    let src = r#"
        defun spin(x) = spin(x);
        target spin(1);
    "#;
    let mut wf = CuneiformWorkflow::parse("loop", src, 0).unwrap();
    let err = wf.initial_tasks().unwrap_err();
    assert!(err.message.contains("recursion"), "{}", err.message);
}
