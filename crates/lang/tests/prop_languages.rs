//! Property tests across the language front-ends.

use proptest::prelude::*;

use hiway_lang::cuneiform::CuneiformWorkflow;
use hiway_lang::dax::parse_dax;
use hiway_lang::ir::WorkflowSource;
use hiway_lang::trace::{parse_trace, parse_trace_events, write_trace, TaskEvent, TraceEvent};

/// Generates a random fan-out/fan-in Cuneiform program.
fn cuneiform_program(stages: &[usize], file_kb: u64) -> String {
    let mut src = String::new();
    src.push_str(
        "deftask work( out(\"/w/{0}_{1}.dat\", insize(x)) : x stage )\n  cpu 1 threads 1 mem 64;\n",
    );
    src.push_str("deftask fold( out(\"/w/fold_{1}.dat\", insize(xs)) : [xs] stage ) cpu 1;\n");
    src.push_str(&format!(
        "let inputs = [{}];\n",
        (0..stages[0])
            .map(|i| format!("file(\"/in/{i}\", {})", file_kb * 1024))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    let mut prev = "inputs".to_string();
    for (si, &width) in stages.iter().enumerate() {
        if width == stages[0] && si == 0 {
            src.push_str(&format!("let s0 = work({prev}, \"s0\");\n"));
            prev = "s0".to_string();
        } else {
            // Fold to one, then no further fan-out (keeps paths unique).
            src.push_str(&format!("let s{si} = fold({prev}, \"s{si}\");\n"));
            prev = format!("s{si}");
        }
    }
    src.push_str(&format!("target {prev};\n"));
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generated Cuneiform pipelines parse, unfold deterministically, and
    /// produce valid static task graphs.
    #[test]
    fn cuneiform_unfolding_is_deterministic_and_valid(
        width in 1usize..8,
        depth in 1usize..4,
        file_kb in 1u64..512,
        seed in 0u64..100,
    ) {
        let stages: Vec<usize> = std::iter::once(width).chain((1..depth).map(|_| 1)).collect();
        let src = cuneiform_program(&stages, file_kb);
        let mut a = CuneiformWorkflow::parse("p", &src, seed).expect("parse");
        let mut b = CuneiformWorkflow::parse("p", &src, seed).expect("parse");
        let ta = a.initial_tasks().expect("unfold");
        let tb = b.initial_tasks().expect("unfold");
        prop_assert_eq!(&ta, &tb, "same seed, same tasks");
        prop_assert!(a.is_complete(), "no val/if: fully static");
        // The unfolded graph is a valid DAG.
        let wf = hiway_lang::ir::StaticWorkflow::new("p", "cuneiform", ta.clone());
        wf.validate().expect("valid DAG");
        // Task count: width work tasks + (depth-1) folds.
        prop_assert_eq!(ta.len(), width + depth.saturating_sub(1));
    }

    /// DAX documents generated from random diamond-ish shapes round-trip
    /// through the parser with the right task count.
    #[test]
    fn dax_random_fanout_parses(width in 1usize..12, runtime in 1.0f64..100.0) {
        let mut jobs = String::new();
        for i in 0..width {
            jobs.push_str(&format!(
                r#"<job id="m{i}" name="mapper" runtime="{runtime}">
                     <uses file="in.dat" link="input" size="100"/>
                     <uses file="m{i}.out" link="output" size="10"/>
                   </job>"#
            ));
        }
        let uses: String = (0..width)
            .map(|i| format!(r#"<uses file="m{i}.out" link="input" size="10"/>"#))
            .collect();
        jobs.push_str(&format!(
            r#"<job id="r" name="reducer" runtime="{runtime}">{uses}
                 <uses file="final.out" link="output" size="1"/>
               </job>"#
        ));
        let doc = format!(r#"<adag name="gen">{jobs}</adag>"#);
        let wf = parse_dax(&doc).expect("valid DAX");
        prop_assert_eq!(wf.tasks.len(), width + 1);
        prop_assert_eq!(wf.external_inputs(), vec!["in.dat".to_string()]);
        for t in &wf.tasks {
            prop_assert!((t.cost.cpu_seconds - runtime).abs() < 1e-9);
        }
    }

    /// Trace events survive serialization for arbitrary metadata strings.
    #[test]
    fn trace_round_trip_any_strings(
        name in "[\\PC&&[^\"\\\\]]{0,24}",
        node in "[a-z0-9-]{1,16}",
        stdout in "\\PC{0,48}",
        t_start in 0.0f64..1.0e6,
        makespan in 0.0f64..1.0e4,
    ) {
        let event = TraceEvent::Task(TaskEvent {
            id: 7,
            name: name.clone(),
            command: format!("{name} --arg"),
            inputs: vec![("/in".into(), 42)],
            outputs: vec![("/out".into(), 7)],
            cpu_seconds: makespan,
            threads: 3,
            memory_mb: 123,
            node,
            t_start,
            t_end: t_start + makespan,
            attempts: 2,
            stdout,
            stderr: String::new(),
        });
        let text = write_trace(std::slice::from_ref(&event));
        let parsed = parse_trace_events(&text).expect("round trip");
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(&parsed[0], &event);
    }
}

/// A trace of a linear chain replays into an identical chain.
#[test]
fn chained_trace_replays_with_same_dependencies() {
    let mut events = Vec::new();
    for i in 0..5u64 {
        events.push(TraceEvent::Task(TaskEvent {
            id: i,
            name: format!("stage{i}"),
            command: format!("tool{i}"),
            inputs: vec![(
                if i == 0 {
                    "/input".into()
                } else {
                    format!("/mid{}", i - 1)
                },
                10,
            )],
            outputs: vec![(format!("/mid{i}"), 10)],
            cpu_seconds: 1.0,
            threads: 1,
            memory_mb: 10,
            node: "w0".into(),
            t_start: i as f64,
            t_end: i as f64 + 1.0,
            attempts: 1,
            stdout: String::new(),
            stderr: String::new(),
        }));
    }
    let wf = parse_trace(&write_trace(&events)).unwrap();
    assert_eq!(wf.tasks.len(), 5);
    assert_eq!(wf.external_inputs(), vec!["/input".to_string()]);
    wf.validate().unwrap();
}

/// Unguarded infinite recursion is an error, not a stack overflow.
#[test]
fn unbounded_recursion_is_rejected() {
    let src = r#"
        defun spin(x) = spin(x);
        target spin(1);
    "#;
    let mut wf = CuneiformWorkflow::parse("loop", src, 0).unwrap();
    let err = wf.initial_tasks().unwrap_err();
    assert!(err.message.contains("recursion"), "{}", err.message);
}

// ---------------------------------------------------------------------------
// Parse → IR → trace-replay equivalence (§3.5: "the trace file … can be
// interpreted as a workflow itself"). A workflow parsed from any front-end,
// executed, and re-parsed from its own trace must be the same workflow:
// same tasks, same commands, same file-mediated dependency structure, same
// costs. (The trace schema carries no scratch-I/O field, so the generated
// profiles below use none.)

use std::collections::HashMap;

use hiway_lang::galaxy::{parse_galaxy, BoundInput, ToolProfile, ToolProfiles};
use hiway_lang::ir::StaticWorkflow;
use hiway_lang::trace::WorkflowEvent;

/// Synthesizes the trace a run of `wf` would write (tasks in IR order,
/// one attempt each), re-parses it, and checks structural equivalence.
fn assert_replay_equivalent(wf: &StaticWorkflow) -> Result<(), TestCaseError> {
    let size_of: HashMap<String, u64> = wf
        .tasks
        .iter()
        .flat_map(|t| t.outputs.iter().map(|o| (o.path.clone(), o.size)))
        .collect();
    let mut events = vec![TraceEvent::Workflow(WorkflowEvent {
        name: wf.name.clone(),
        language: wf.language.to_string(),
        total_seconds: wf.tasks.len() as f64,
    })];
    for (i, t) in wf.tasks.iter().enumerate() {
        events.push(TraceEvent::Task(TaskEvent {
            id: t.id.0,
            name: t.name.clone(),
            command: t.command.clone(),
            inputs: t
                .inputs
                .iter()
                .map(|p| (p.clone(), *size_of.get(p).unwrap_or(&0)))
                .collect(),
            outputs: t.outputs.iter().map(|o| (o.path.clone(), o.size)).collect(),
            cpu_seconds: t.cost.cpu_seconds,
            threads: t.cost.threads,
            memory_mb: t.cost.memory_mb,
            node: "w-0".into(),
            t_start: i as f64,
            t_end: i as f64 + 1.0,
            attempts: 1,
            stdout: String::new(),
            stderr: String::new(),
        }));
    }
    let replay = parse_trace(&write_trace(&events)).expect("trace replays");
    prop_assert_eq!(replay.tasks.len(), wf.tasks.len());
    prop_assert_eq!(replay.external_inputs(), wf.external_inputs());
    for (a, b) in wf.tasks.iter().zip(&replay.tasks) {
        prop_assert_eq!(a.id.0, b.id.0);
        prop_assert_eq!(&a.name, &b.name);
        prop_assert_eq!(&a.command, &b.command);
        prop_assert_eq!(&a.inputs, &b.inputs);
        let outs = |t: &hiway_lang::ir::TaskSpec| -> Vec<(String, u64)> {
            t.outputs.iter().map(|o| (o.path.clone(), o.size)).collect()
        };
        prop_assert_eq!(outs(a), outs(b));
        prop_assert_eq!(a.cost.cpu_seconds, b.cost.cpu_seconds);
        prop_assert_eq!(a.cost.threads, b.cost.threads);
        prop_assert_eq!(a.cost.memory_mb, b.cost.memory_mb);
    }
    Ok(())
}

/// A Galaxy `.ga` document: one data input fanning out to `width` mapper
/// tool steps, folded by a collector step.
fn galaxy_doc(width: usize) -> String {
    let mut steps = String::from(
        r#""0": {"id": 0, "type": "data_input", "label": "reads",
             "input_connections": {}, "outputs": []}"#,
    );
    for i in 1..=width {
        steps.push_str(&format!(
            r#", "{i}": {{"id": {i}, "type": "tool",
                 "tool_id": "shed/repos/dev/mapper/mapper/1.{i}",
                 "input_connections": {{"input": {{"id": 0, "output_name": "output"}}}},
                 "outputs": [{{"name": "out", "type": "dat"}}]}}"#
        ));
    }
    let conns: Vec<String> = (1..=width)
        .map(|i| format!(r#""in{i}": {{"id": {i}, "output_name": "out"}}"#))
        .collect();
    let cid = width + 1;
    steps.push_str(&format!(
        r#", "{cid}": {{"id": {cid}, "type": "tool",
             "tool_id": "shed/repos/dev/collect/collect/1.0",
             "input_connections": {{{}}},
             "outputs": [{{"name": "merged", "type": "dat"}}]}}"#,
        conns.join(", ")
    ));
    format!(r#"{{"a_galaxy_workflow": "true", "name": "gen-ga", "steps": {{{steps}}}}}"#)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// DAX documents survive the execute-and-replay loop structurally
    /// intact.
    #[test]
    fn dax_trace_replay_is_equivalent(width in 1usize..10, runtime in 1.0f64..100.0) {
        let mut jobs = String::new();
        for i in 0..width {
            jobs.push_str(&format!(
                r#"<job id="m{i}" name="mapper" runtime="{runtime}">
                     <uses file="in.dat" link="input" size="100"/>
                     <uses file="m{i}.out" link="output" size="10"/>
                   </job>"#
            ));
        }
        let uses: String = (0..width)
            .map(|i| format!(r#"<uses file="m{i}.out" link="input" size="10"/>"#))
            .collect();
        jobs.push_str(&format!(
            r#"<job id="r" name="reducer" runtime="{runtime}">{uses}
                 <uses file="final.out" link="output" size="1"/>
               </job>"#
        ));
        let wf = parse_dax(&format!(r#"<adag name="gen">{jobs}</adag>"#)).expect("valid DAX");
        prop_assert_eq!(wf.tasks.len(), width + 1);
        assert_replay_equivalent(&wf)?;
    }

    /// Galaxy workflows survive the execute-and-replay loop structurally
    /// intact, for arbitrary tool cost profiles.
    #[test]
    fn galaxy_trace_replay_is_equivalent(
        width in 1usize..8,
        input_kb in 1u64..4096,
        cpu_fixed in 1.0f64..600.0,
        threads in 1u32..16,
        memory_mb in 256u64..16_000,
    ) {
        let mut inputs = HashMap::new();
        inputs.insert(
            "reads".to_string(),
            BoundInput { path: "/in/reads.fq".to_string(), size: input_kb * 1024 },
        );
        let mut profiles = ToolProfiles::default();
        profiles.fallback = ToolProfile {
            cpu_fixed,
            cpu_per_byte: 0.0,
            threads,
            memory_mb,
            output_factor: 1.0,
            scratch_factor: 0.0,
        };
        let wf = parse_galaxy(&galaxy_doc(width), &inputs, &profiles).expect("valid .ga");
        prop_assert_eq!(wf.tasks.len(), width + 1, "data input is not a task");
        prop_assert_eq!(wf.external_inputs(), vec!["/in/reads.fq".to_string()]);
        assert_replay_equivalent(&wf)?;
    }
}
