//! The iterative k-means workflow (paper §3.3).
//!
//! "Only by means of conditional task execution and unbounded iteration
//! can this algorithm be implemented as a workflow" — the paper's own
//! showcase of why Hi-WAY's execution model supports control flow. Each
//! refinement round is a wave of parallel `assign` tasks (one per data
//! partition) followed by an `update` step that recomputes the centroids
//! and reports whether the clustering converged; the recursion continues
//! until it did. Convergence is data-dependent: here the simulated
//! `update` tool draws it with probability `convergence_prob` per round
//! (deterministically seeded), standing in for the real residual test.

/// Parameters of the k-means workflow.
#[derive(Clone, Debug)]
pub struct KmeansParams {
    /// Parallel data partitions per assignment wave.
    pub partitions: usize,
    /// Bytes per partition of input points.
    pub bytes_per_partition: u64,
    /// CPU-seconds per byte for the assignment step.
    pub assign_cpu_per_byte: f64,
    /// CPU-seconds for the centroid update step.
    pub update_cpu: f64,
    /// Probability that a round declares convergence.
    pub convergence_prob: f64,
    /// Hard cap on rounds (safety net, like a max-iterations flag).
    pub max_rounds: u32,
}

impl Default for KmeansParams {
    fn default() -> KmeansParams {
        KmeansParams {
            partitions: 8,
            bytes_per_partition: 64 << 20,
            assign_cpu_per_byte: 2.0e-7,
            update_cpu: 10.0,
            convergence_prob: 0.35,
            max_rounds: 25,
        }
    }
}

impl KmeansParams {
    /// Input partitions to stage: `(path, size)`.
    pub fn input_files(&self) -> Vec<(String, u64)> {
        (0..self.partitions)
            .map(|p| (format!("/kmeans/points_{p}.dat"), self.bytes_per_partition))
            .collect()
    }

    /// Emits the Cuneiform source.
    pub fn cuneiform_source(&self) -> String {
        let parts: Vec<String> = (0..self.partitions)
            .map(|p| {
                format!(
                    "file(\"/kmeans/points_{p}.dat\", {})",
                    self.bytes_per_partition
                )
            })
            .collect();
        format!(
            r#"% iterative k-means clustering (paper section 3.3)
deftask assign( out("/kmeans/assigned_{{2}}_{{0}}.dat", mul(insize(points), 0.05)) : points cents round )
  cpu mul(insize(points), {assign}) threads 2 mem 2000;
deftask update( out("/kmeans/cents_{{round}}.dat", 65536) : [assigned] round )
  cpu {update} threads 1 mem 1000
  yield if ge(round, {max_rounds}) then 1 else prob({conv});
defun iterate( points, cents, round ) =
  let assigned = assign(points, cents, round);
  let next = update(assigned, round);
  if val(next) then next else iterate(points, next, add(round, 1));
let points = [{parts}];
let cents0 = file("/kmeans/cents_init.dat", 65536);
target iterate(points, cents0, 1);
"#,
            assign = self.assign_cpu_per_byte,
            update = self.update_cpu,
            conv = self.convergence_prob,
            max_rounds = self.max_rounds,
            parts = parts.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiway_lang::cuneiform::CuneiformWorkflow;
    use hiway_lang::ir::WorkflowSource;

    #[test]
    fn first_round_is_one_wave_plus_update() {
        let params = KmeansParams::default();
        let mut wf = CuneiformWorkflow::parse("kmeans", &params.cuneiform_source(), 9).unwrap();
        let tasks = wf.initial_tasks().unwrap();
        // 8 assigns + 1 update; the conditional blocks further discovery.
        assert_eq!(tasks.len(), 9);
        assert!(!wf.is_complete());
        let update = tasks.iter().find(|t| t.name == "update").unwrap();
        assert_eq!(update.inputs.len(), 8);
    }

    #[test]
    fn iterates_until_convergence_and_terminates() {
        let params = KmeansParams::default();
        let mut wf = CuneiformWorkflow::parse("kmeans", &params.cuneiform_source(), 4).unwrap();
        let mut pending = wf.initial_tasks().unwrap();
        let mut executed = 0;
        let mut rounds = 0;
        while !pending.is_empty() {
            rounds += 1;
            assert!(rounds <= 40 * 9, "must converge");
            let mut newly = Vec::new();
            for t in pending.drain(..) {
                executed += 1;
                newly.extend(wf.on_task_completed(t.id).unwrap());
            }
            pending = newly;
        }
        assert!(wf.is_complete());
        // At least one full round ran; waves are 9 tasks each.
        assert!(executed >= 9);
        assert_eq!(executed % 9, 0, "whole rounds of 8 assigns + 1 update");
    }

    #[test]
    fn max_rounds_caps_the_recursion() {
        let params = KmeansParams {
            convergence_prob: 0.0, // never converges on its own
            max_rounds: 3,
            partitions: 2,
            ..Default::default()
        };
        let mut wf = CuneiformWorkflow::parse("kmeans", &params.cuneiform_source(), 1).unwrap();
        let mut pending = wf.initial_tasks().unwrap();
        let mut waves = 0;
        while !pending.is_empty() {
            waves += 1;
            assert!(waves < 100);
            let mut newly = Vec::new();
            for t in pending.drain(..) {
                newly.extend(wf.on_task_completed(t.id).unwrap());
            }
            pending = newly;
        }
        assert!(wf.is_complete());
        // Rounds 1, 2, 3 → three update outputs.
        assert_eq!(waves, 3, "terminated by the max_rounds cap");
    }
}
