//! # hiway-workloads — the paper's workloads, infrastructures, baselines
//!
//! Generators for the four real-life workflows of the evaluation
//! (Section 4), each emitted in the *language the paper ran it in* so the
//! corresponding front-end is exercised end to end:
//!
//! * [`snv`] — the single-nucleotide-variant calling workflow (genomics),
//!   written in Cuneiform; used in both scalability experiments (§4.1).
//! * [`rnaseq`] — the TRAPLINE RNA-seq workflow (bioinformatics), exported
//!   from Galaxy as `.ga` JSON; used in the performance experiment (§4.2).
//! * [`montage`] — the Montage mosaic workflow (astronomy), generated as
//!   Pegasus DAX XML; used in the adaptive-scheduling experiment (§4.3).
//! * [`kmeans`] — the iterative k-means workflow from §3.3, in Cuneiform.
//!
//! [`profiles`] builds the paper's infrastructures (the 24-node Xeon
//! cluster behind a single 1 GbE switch, EC2 m3.large / c3.2xlarge virtual
//! clusters with dedicated master nodes, S3 and EBS services), and
//! [`baseline`] implements the two comparison systems: an Apache-Tez-like
//! DAG engine (placement-agnostic) and Galaxy CloudMan (all storage on a
//! shared network-attached EBS volume).
//!
//! Task cost models are calibrated against the runtimes the paper itself
//! reports (e.g. ~340 min for one 8 GB sample on one m3.large worker in
//! Table 2); see `DESIGN.md` for the calibration table.

pub mod baseline;
pub mod kmeans;
pub mod montage;
pub mod profiles;
pub mod rnaseq;
pub mod snv;
