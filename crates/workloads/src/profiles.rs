//! The paper's computational infrastructures.
//!
//! Three setups appear in the evaluation:
//!
//! 1. **Local cluster** (§4.1, first experiment / Figure 4): 24 nodes,
//!    each with two Xeon E5-2620 processors (24 virtual cores) and 24 GB
//!    of memory, "connected via a one gigabit switch" — the switch is the
//!    scarce resource the data-aware scheduler economizes.
//! 2. **EC2 m3.large virtual clusters** (§4.1 second experiment, §4.3):
//!    1–128 workers plus two dedicated master nodes (Hadoop masters and
//!    the Hi-WAY AM), input streamed from S3.
//! 3. **EC2 c3.2xlarge clusters** (§4.2): 1–6 workers, one task per node.

use hiway_core::cluster::Cluster;
use hiway_core::driver::{MasterOverhead, Runtime};
use hiway_hdfs::HdfsConfig;
use hiway_sim::{ClusterSpec, ExternalId, ExternalSpec, NodeId, NodeSpec};
use hiway_yarn::Resource;

/// A built infrastructure, ready for workflow submission.
pub struct Deployment {
    pub runtime: Runtime,
    /// Index of the first worker node (masters precede workers).
    pub first_worker: usize,
    pub workers: usize,
    pub s3: Option<ExternalId>,
    pub ebs: Option<ExternalId>,
}

impl Deployment {
    pub fn worker_ids(&self) -> Vec<NodeId> {
        (self.first_worker..self.first_worker + self.workers)
            .map(|i| NodeId(i as u32))
            .collect()
    }
}

/// The 24-node local Xeon cluster behind one 1 GbE switch (Figure 4).
/// No dedicated masters: the paper ran Hadoop alongside the workers, and
/// every node is a DataNode.
pub fn local_cluster(nodes: usize, seed: u64) -> Deployment {
    let mut spec = ClusterSpec::homogeneous(nodes, "xeon", &NodeSpec::xeon_e5_2620("proto"));
    // One gigabit *switch*: the aggregate backplane is the constraint the
    // paper observed ("scalability beyond 96 containers was limited by
    // network bandwidth"). 1 Gbit/s ≈ 125 MB/s of shared core capacity.
    spec.switch_bps = Some(125.0e6);
    // Bulky pipeline intermediates are kept at replication 2, a common
    // Hadoop tuning on small clusters with constrained fabrics.
    let hdfs = HdfsConfig {
        replication: 3,
        ..HdfsConfig::default()
    };
    let cluster = Cluster::with_hdfs_config(spec, hdfs, seed);
    let runtime = Runtime::new(cluster);
    Deployment {
        runtime,
        first_worker: 0,
        workers: nodes,
        s3: None,
        ebs: None,
    }
}

/// An EC2 virtual cluster in the paper's §4.1/§4.3 layout: node 0 hosts
/// the Hadoop masters (NameNode + ResourceManager; never runs containers,
/// not a DataNode), node 1 is dedicated to the Hi-WAY AM container, and
/// nodes 2.. are workers. S3 is attached for streaming input.
/// EC2 instances of one type don't perform identically (noisy
/// neighbours, CPU steal) — the paper attributes its runtime variance to
/// such "external factors". A seeded ±3 % speed jitter per VM reproduces
/// that run-to-run noise.
fn speed_jitter(seed: u64, i: u64) -> f64 {
    let mut h = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(i)
        .wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 31;
    0.97 + 0.06 * ((h % 10_000) as f64 / 10_000.0)
}

pub fn ec2_cluster(workers: usize, node_type: &NodeSpec, seed: u64) -> Deployment {
    let mut spec = ClusterSpec::default();
    spec.add_node(NodeSpec {
        name: "hadoop-master".into(),
        ..node_type.clone()
    });
    spec.add_node(NodeSpec {
        name: "am-master".into(),
        ..node_type.clone()
    });
    for i in 0..workers {
        spec.add_node(NodeSpec {
            name: format!("worker-{i}"),
            speed: node_type.speed * speed_jitter(seed, i as u64),
            ..node_type.clone()
        });
    }
    let s3 = spec.add_external(ExternalSpec::s3());
    let mut cluster = Cluster::new(spec, seed);

    // The Hadoop master is not a DataNode and takes no containers.
    cluster.hdfs.fail_node(NodeId(0)).expect("node exists");
    cluster.rm.set_capacity(NodeId(0), Resource::ZERO);
    // The AM node is not a DataNode and only fits the AM container.
    cluster.hdfs.fail_node(NodeId(1)).expect("node exists");
    cluster.rm.set_capacity(NodeId(1), Resource::new(1, 2048));

    let mut runtime = Runtime::new(cluster);
    runtime.master_overhead = Some(MasterOverhead::defaults(NodeId(0), NodeId(1)));
    Deployment {
        runtime,
        first_worker: 2,
        workers,
        s3: Some(s3),
        ebs: None,
    }
}

/// The CloudMan-style cluster for the Figure 8 baseline: same worker
/// nodes, but all storage on a shared network-attached EBS volume.
pub fn cloudman_cluster(workers: usize, node_type: &NodeSpec, seed: u64) -> (Cluster, ExternalId) {
    let mut spec = ClusterSpec::default();
    for i in 0..workers {
        spec.add_node(NodeSpec {
            name: format!("worker-{i}"),
            speed: node_type.speed * speed_jitter(seed, i as u64),
            ..node_type.clone()
        });
    }
    let ebs = spec.add_external(ExternalSpec::ebs_shared());
    (Cluster::new(spec, seed), ebs)
}

/// Whole-node container configuration matching a node profile, as used in
/// the weak-scaling and RNA-seq experiments ("only allow execution of a
/// single task per worker node at any time").
pub fn whole_node_config(node_type: &NodeSpec) -> hiway_core::HiwayConfig {
    hiway_core::HiwayConfig::whole_node(node_type.cores, node_type.memory_mb.saturating_sub(500))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_cluster_has_switch_limit() {
        let d = local_cluster(24, 1);
        assert_eq!(d.runtime.cluster.node_count(), 24);
        assert_eq!(d.runtime.cluster.engine.spec().switch_bps, Some(125.0e6));
        assert_eq!(d.worker_ids().len(), 24);
    }

    #[test]
    fn ec2_cluster_reserves_masters() {
        let d = ec2_cluster(4, &NodeSpec::m3_large("p"), 2);
        let c = &d.runtime.cluster;
        assert_eq!(c.node_count(), 6);
        // Masters are not DataNodes.
        assert!(!c.hdfs.is_alive(NodeId(0)));
        assert!(!c.hdfs.is_alive(NodeId(1)));
        assert!(c.hdfs.is_alive(NodeId(2)));
        // Hadoop master accepts no containers; AM master only a small one.
        assert_eq!(c.rm.total(NodeId(0)), Resource::ZERO);
        assert_eq!(c.rm.total(NodeId(1)), Resource::new(1, 2048));
        assert_eq!(
            d.worker_ids(),
            vec![NodeId(2), NodeId(3), NodeId(4), NodeId(5)]
        );
        assert!(d.runtime.master_overhead.is_some());
    }

    #[test]
    fn cloudman_cluster_has_shared_ebs() {
        let (c, ebs) = cloudman_cluster(3, &NodeSpec::c3_2xlarge("p"), 3);
        assert_eq!(c.node_count(), 3);
        let ext = c.engine.spec().external(ebs);
        assert!(ext.via_switch);
        assert!(ext.aggregate_bps.is_finite());
    }
}
