//! A minimal DAG executor used by both baseline models.
//!
//! Deliberately simpler than the Hi-WAY AM: greedy slot scheduling in task
//! id order, no provenance, no retries, no data-aware selection. Storage
//! is pluggable: HDFS with node-local replicas (Tez) or a shared
//! network-attached volume (CloudMan's EBS).

use std::collections::{HashMap, HashSet};

use hiway_core::cluster::{Cluster, Tag};
use hiway_hdfs::exec as hdfs_exec;
use hiway_lang::ir::WorkflowSource;
use hiway_lang::{StaticWorkflow, TaskId, TaskSpec};
use hiway_sim::{Activity, Completion, Endpoint, ExternalId, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Where a baseline engine keeps workflow data.
#[derive(Clone, Copy, Debug)]
pub enum Storage {
    /// HDFS on the cluster's local disks (Tez).
    HdfsLocal,
    /// A shared network-attached volume (CloudMan's EBS).
    SharedVolume(ExternalId),
}

/// Baseline engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct BaselineConfig {
    pub storage: Storage,
    /// Concurrent tasks per node; 0 means one per core.
    pub slots_per_node: u32,
    /// Cores a task may use; 0 divides the node's cores by the slot
    /// count. The Figure 4 Tez setup uses 1 (one-core containers).
    pub slot_vcores: u32,
    /// Model map/reduce-style *shuffle edges*: intermediate data moves
    /// between stages through the network regardless of where replicas
    /// sit. This is what wrapping file-based black-box tools into a Tez
    /// DAG costs — "external tools consuming and producing file-based
    /// data need to be wrapped in order to be used in Tez" (paper §2.2) —
    /// and the traffic the data-aware scheduler avoids in Figure 4.
    pub shuffle_edges: bool,
    /// Seed for shuffle-source draws.
    pub seed: u64,
    /// Per-task startup latency in seconds.
    pub startup_secs: f64,
    /// Whether a task may use all node cores regardless of slot count.
    pub multithread_full_node: bool,
}

/// Result of a baseline run.
#[derive(Clone, Debug)]
pub struct BaselineReport {
    pub name: String,
    pub runtime_secs: f64,
    /// Node that executed each task.
    pub placements: Vec<(TaskId, NodeId)>,
}

#[derive(PartialEq)]
enum St {
    Waiting,
    Starting,
    StageIn,
    Running,
    StageOut,
    Done,
}

struct Run {
    spec: TaskSpec,
    state: St,
    node: NodeId,
    remaining: usize,
    scratch_done: bool,
}

/// Executes `workflow` to completion on `cluster`. Inputs must already be
/// present (pre-staged in HDFS, or — for [`Storage::SharedVolume`] —
/// registered as external files on the volume's service by the caller).
pub fn run_dag(
    cluster: &mut Cluster,
    mut workflow: StaticWorkflow,
    config: BaselineConfig,
) -> Result<BaselineReport, String> {
    let name = workflow.name().to_string();
    let t0 = cluster.engine.now();
    let specs = workflow.initial_tasks().map_err(|e| e.to_string())?;
    let mut tasks: HashMap<TaskId, Run> = specs
        .into_iter()
        .map(|spec| {
            (
                spec.id,
                Run {
                    spec,
                    state: St::Waiting,
                    node: NodeId(0),
                    remaining: 0,
                    scratch_done: false,
                },
            )
        })
        .collect();
    let mut order: Vec<TaskId> = tasks.keys().copied().collect();
    order.sort();

    // Volume-mode file availability (sizes of produced files are known).
    let mut on_volume: HashSet<String> = HashSet::new();
    let sizes: HashMap<String, u64> = tasks
        .values()
        .flat_map(|r| r.spec.outputs.iter().map(|o| (o.path.clone(), o.size)))
        .collect();

    let nodes: Vec<NodeId> = cluster.rm.alive_nodes();
    if nodes.is_empty() {
        return Err("no alive nodes".to_string());
    }
    let mut free_slots: HashMap<NodeId, u32> = nodes
        .iter()
        .map(|&n| {
            let slots = if config.slots_per_node == 0 {
                cluster.engine.spec().node(n).cores
            } else {
                config.slots_per_node
            };
            (n, slots)
        })
        .collect();
    let mut placements = Vec::new();
    let mut rr = 0usize;
    let mut rng = StdRng::seed_from_u64(config.seed);

    let input_ok = |cluster: &Cluster, on_volume: &HashSet<String>, path: &str| match config.storage
    {
        Storage::HdfsLocal => cluster.input_available(path),
        Storage::SharedVolume(_) => {
            on_volume.contains(path) || cluster.external_file(path).is_some()
        }
    };

    // For volume mode, seed availability with files that exist nowhere as
    // outputs — the caller staged them on the volume.
    if let Storage::SharedVolume(_) = config.storage {
        for r in tasks.values() {
            for p in &r.spec.inputs {
                if !sizes.contains_key(p) {
                    on_volume.insert(p.clone());
                }
            }
        }
    }

    loop {
        // Greedy dispatch of every runnable task onto free slots.
        let mut launched = Vec::new();
        for &tid in &order {
            let run = &tasks[&tid];
            if run.state != St::Waiting {
                continue;
            }
            if !run
                .spec
                .inputs
                .iter()
                .all(|p| input_ok(cluster, &on_volume, p))
            {
                continue;
            }
            // Placement-agnostic: next node with a free slot, round-robin.
            let slot = (0..nodes.len())
                .map(|k| nodes[(rr + k) % nodes.len()])
                .find(|n| free_slots[n] > 0);
            if let Some(node) = slot {
                rr = (nodes.iter().position(|x| *x == node).expect("member") + 1) % nodes.len();
                *free_slots.get_mut(&node).expect("slot") -= 1;
                launched.push((tid, node));
            }
        }
        for (tid, node) in launched {
            let run = tasks.get_mut(&tid).expect("known");
            run.state = St::Starting;
            run.node = node;
            cluster.engine.set_timer_after(
                config.startup_secs,
                Tag::ContainerStarted {
                    wf: u32::MAX,
                    task: tid,
                    attempt: 0,
                },
            );
        }

        if tasks.values().all(|r| r.state == St::Done) {
            break;
        }

        let events = match cluster.engine.step() {
            Some(events) => events,
            None => {
                return Err(format!(
                    "baseline '{name}' deadlocked with {} unfinished tasks",
                    tasks.values().filter(|r| r.state != St::Done).count()
                ))
            }
        };
        for ev in events {
            let tag = match ev {
                Completion::Activity { tag, .. } | Completion::Timer { tag, .. } => tag,
            };
            match tag {
                Tag::ContainerStarted { task, .. } => {
                    let run = tasks.get_mut(&task).expect("known");
                    run.state = St::StageIn;
                    let inputs = run.spec.inputs.clone();
                    let node = run.node;
                    let mut acts = 0usize;
                    for path in &inputs {
                        let stage_tag = Tag::StageIn {
                            wf: u32::MAX,
                            task,
                            attempt: 0,
                            file: 0,
                        };
                        match config.storage {
                            Storage::SharedVolume(vol) => {
                                let size = cluster
                                    .external_file(path)
                                    .map(|e| e.size)
                                    .or_else(|| sizes.get(path).copied())
                                    .unwrap_or(0);
                                if size > 0 {
                                    cluster.engine.start(
                                        Activity::Flow {
                                            src: Endpoint::External(vol),
                                            dst: Endpoint::Node(node),
                                            src_disk: false,
                                            dst_disk: true,
                                        },
                                        size as f64,
                                        stage_tag,
                                    );
                                    acts += 1;
                                }
                            }
                            Storage::HdfsLocal => {
                                if let Some(ext) = cluster.external_file(path) {
                                    if ext.size > 0 {
                                        cluster.engine.start(
                                            Activity::Flow {
                                                src: Endpoint::External(ext.service),
                                                dst: Endpoint::Node(node),
                                                src_disk: false,
                                                dst_disk: true,
                                            },
                                            ext.size as f64,
                                            stage_tag,
                                        );
                                        acts += 1;
                                    }
                                } else if config.shuffle_edges {
                                    // Shuffle edge: the bytes cross the
                                    // network from a random upstream
                                    // container's node.
                                    let size = cluster.hdfs.len(path).map_err(|e| e.to_string())?;
                                    let src = nodes[rng.gen_range(0..nodes.len())];
                                    if size > 0 && src != node {
                                        cluster.engine.start(
                                            Activity::Flow {
                                                src: Endpoint::Node(src),
                                                dst: Endpoint::Node(node),
                                                src_disk: true,
                                                dst_disk: true,
                                            },
                                            size as f64,
                                            stage_tag,
                                        );
                                        acts += 1;
                                    } else if size > 0 {
                                        cluster.engine.start(
                                            Activity::DiskRead { node },
                                            size as f64,
                                            stage_tag,
                                        );
                                        acts += 1;
                                    }
                                } else {
                                    let plan = cluster
                                        .hdfs
                                        .read_plan(path, node)
                                        .map_err(|e| e.to_string())?;
                                    acts += hdfs_exec::start_read(
                                        &mut cluster.engine,
                                        &plan,
                                        stage_tag,
                                    )
                                    .len();
                                }
                            }
                        }
                    }
                    let run = tasks.get_mut(&task).expect("known");
                    run.remaining = acts;
                    if acts == 0 {
                        start_exec(cluster, run, task, &config);
                    }
                }
                Tag::StageIn { task, .. } => {
                    let run = tasks.get_mut(&task).expect("known");
                    run.remaining -= 1;
                    if run.remaining == 0 {
                        start_exec(cluster, run, task, &config);
                    }
                }
                Tag::Exec { task, .. } => {
                    {
                        let run = tasks.get_mut(&task).expect("known");
                        run.remaining = run.remaining.saturating_sub(1);
                        if run.remaining > 0 {
                            continue;
                        }
                        if !run.scratch_done && run.spec.cost.scratch_bytes > 0 {
                            // Working-directory I/O: local disk for Tez,
                            // the shared volume for CloudMan — the
                            // difference Figure 8 measures.
                            run.scratch_done = true;
                            let bytes = run.spec.cost.scratch_bytes as f64;
                            let node = run.node;
                            let tag = Tag::Exec {
                                wf: u32::MAX,
                                task,
                                attempt: 0,
                            };
                            match config.storage {
                                Storage::HdfsLocal => {
                                    cluster.engine.start(
                                        Activity::DiskWrite { node },
                                        bytes,
                                        tag.clone(),
                                    );
                                    cluster
                                        .engine
                                        .start(Activity::DiskRead { node }, bytes, tag);
                                }
                                Storage::SharedVolume(vol) => {
                                    cluster.engine.start(
                                        Activity::Flow {
                                            src: Endpoint::Node(node),
                                            dst: Endpoint::External(vol),
                                            src_disk: false,
                                            dst_disk: false,
                                        },
                                        bytes,
                                        tag.clone(),
                                    );
                                    cluster.engine.start(
                                        Activity::Flow {
                                            src: Endpoint::External(vol),
                                            dst: Endpoint::Node(node),
                                            src_disk: false,
                                            dst_disk: false,
                                        },
                                        bytes,
                                        tag,
                                    );
                                }
                            }
                            let run = tasks.get_mut(&task).expect("known");
                            run.remaining = 2;
                            continue;
                        }
                    }
                    let run = tasks.get_mut(&task).expect("known");
                    run.state = St::StageOut;
                    let node = run.node;
                    let outputs = run.spec.outputs.clone();
                    let mut acts = 0usize;
                    for out in &outputs {
                        let stage_tag = Tag::StageOut {
                            wf: u32::MAX,
                            task,
                            attempt: 0,
                            file: 0,
                        };
                        match config.storage {
                            Storage::SharedVolume(vol) => {
                                if out.size > 0 {
                                    cluster.engine.start(
                                        Activity::Flow {
                                            src: Endpoint::Node(node),
                                            dst: Endpoint::External(vol),
                                            src_disk: false,
                                            dst_disk: false,
                                        },
                                        out.size as f64,
                                        stage_tag,
                                    );
                                    acts += 1;
                                }
                            }
                            Storage::HdfsLocal => {
                                let plan = cluster
                                    .hdfs
                                    .create(&out.path, out.size, node)
                                    .map_err(|e| e.to_string())?;
                                acts +=
                                    hdfs_exec::start_write(&mut cluster.engine, &plan, stage_tag)
                                        .len();
                            }
                        }
                    }
                    let run = tasks.get_mut(&task).expect("known");
                    run.remaining = acts;
                    if acts == 0 {
                        complete_task(
                            cluster,
                            &mut tasks,
                            task,
                            &mut free_slots,
                            &mut on_volume,
                            &config,
                            &mut placements,
                        );
                    }
                }
                Tag::StageOut { task, .. } => {
                    let run = tasks.get_mut(&task).expect("known");
                    run.remaining -= 1;
                    if run.remaining == 0 {
                        complete_task(
                            cluster,
                            &mut tasks,
                            task,
                            &mut free_slots,
                            &mut on_volume,
                            &config,
                            &mut placements,
                        );
                    }
                }
                _ => {}
            }
        }
    }

    Ok(BaselineReport {
        name,
        runtime_secs: cluster.engine.now().since(t0),
        placements,
    })
}

fn start_exec(cluster: &mut Cluster, run: &mut Run, task: TaskId, config: &BaselineConfig) {
    run.state = St::Running;
    run.remaining = 1;
    run.scratch_done = run.spec.cost.scratch_bytes == 0;
    let node_cores = cluster.engine.spec().node(run.node).cores;
    let cap = if config.multithread_full_node {
        node_cores
    } else if config.slot_vcores > 0 {
        config.slot_vcores
    } else if config.slots_per_node == 0 {
        node_cores
    } else {
        (node_cores / config.slots_per_node.max(1)).max(1)
    };
    let threads = run.spec.cost.threads.min(cap).max(1) as f64;
    cluster.engine.start(
        Activity::Compute {
            node: run.node,
            threads,
        },
        run.spec.cost.cpu_seconds,
        Tag::Exec {
            wf: u32::MAX,
            task,
            attempt: 0,
        },
    );
}

#[allow(clippy::too_many_arguments)]
fn complete_task(
    cluster: &mut Cluster,
    tasks: &mut HashMap<TaskId, Run>,
    task: TaskId,
    free_slots: &mut HashMap<NodeId, u32>,
    on_volume: &mut HashSet<String>,
    config: &BaselineConfig,
    placements: &mut Vec<(TaskId, NodeId)>,
) {
    let run = tasks.get_mut(&task).expect("known");
    run.state = St::Done;
    *free_slots.get_mut(&run.node).expect("slot") += 1;
    placements.push((task, run.node));
    for out in &run.spec.outputs {
        match config.storage {
            Storage::SharedVolume(_) => {
                on_volume.insert(out.path.clone());
            }
            Storage::HdfsLocal => cluster.commit_file(&out.path),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiway_lang::ir::{OutputSpec, TaskCost};
    use hiway_sim::{ClusterSpec, ExternalSpec, NodeSpec};

    fn task(id: u64, name: &str, inputs: &[&str], outputs: &[(&str, u64)], cpu: f64) -> TaskSpec {
        TaskSpec {
            id: TaskId(id),
            name: name.into(),
            command: name.into(),
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            outputs: outputs
                .iter()
                .map(|(p, s)| OutputSpec {
                    path: p.to_string(),
                    size: *s,
                })
                .collect(),
            cost: TaskCost::new(cpu, 2, 256),
        }
    }

    fn chain() -> StaticWorkflow {
        StaticWorkflow::new(
            "chain",
            "test",
            vec![
                task(0, "a", &["/in"], &[("/m", 50 << 20)], 10.0),
                task(1, "b", &["/m"], &[("/out", 1 << 20)], 10.0),
            ],
        )
    }

    #[test]
    fn tez_runs_a_chain_on_hdfs() {
        let spec = ClusterSpec::homogeneous(3, "n", &NodeSpec::m3_large("p"));
        let mut cluster = Cluster::new(spec, 1);
        cluster.prestage("/in", 10 << 20);
        let report = crate::baseline::run_tez(&mut cluster, chain()).unwrap();
        assert_eq!(report.placements.len(), 2);
        assert!(report.runtime_secs > 10.0);
        assert!(cluster.hdfs.exists("/out"));
    }

    #[test]
    fn cloudman_moves_everything_over_the_volume() {
        let mut spec = ClusterSpec::homogeneous(2, "n", &NodeSpec::c3_2xlarge("p"));
        let ebs = spec.add_external(ExternalSpec::ebs_shared());
        let mut cluster = Cluster::new(spec, 2);
        // Inputs live on the volume: register as external files.
        cluster.register_external_file("/in", ebs, 500 << 20);
        let report = crate::baseline::run_cloudman(&mut cluster, chain(), ebs).unwrap();
        assert_eq!(report.placements.len(), 2);
        // 500 MiB in at 62.5 MB/s cap (8.4 s) + compute + volume round
        // trips for /m: distinctly slower than local-disk execution.
        assert!(report.runtime_secs > 15.0, "{}", report.runtime_secs);
        // Nothing was written to HDFS.
        assert!(!cluster.hdfs.exists("/out"));
    }

    #[test]
    fn cloudman_is_slower_than_tez_on_io_heavy_chain() {
        // Same DAG, same node type; CloudMan pays the shared volume.
        let heavy = || {
            StaticWorkflow::new(
                "io",
                "test",
                vec![
                    task(0, "gen", &["/in"], &[("/big", 2 << 30)], 5.0),
                    task(1, "use", &["/big"], &[("/done", 1 << 20)], 5.0),
                ],
            )
        };
        let spec = ClusterSpec::homogeneous(2, "n", &NodeSpec::c3_2xlarge("p"));
        let mut tez_cluster = Cluster::new(spec, 3);
        tez_cluster.prestage("/in", 64 << 20);
        let tez = crate::baseline::run_tez(&mut tez_cluster, heavy()).unwrap();

        let mut spec2 = ClusterSpec::homogeneous(2, "n", &NodeSpec::c3_2xlarge("p"));
        let ebs = spec2.add_external(ExternalSpec::ebs_shared());
        let mut cm_cluster = Cluster::new(spec2, 3);
        cm_cluster.register_external_file("/in", ebs, 64 << 20);
        let cm = crate::baseline::run_cloudman(&mut cm_cluster, heavy(), ebs).unwrap();

        assert!(
            cm.runtime_secs > tez.runtime_secs * 1.25,
            "cloudman {} vs tez {}",
            cm.runtime_secs,
            tez.runtime_secs
        );
    }

    #[test]
    fn missing_input_is_a_deadlock_error() {
        let spec = ClusterSpec::homogeneous(1, "n", &NodeSpec::m3_large("p"));
        let mut cluster = Cluster::new(spec, 4);
        let err = crate::baseline::run_tez(&mut cluster, chain()).unwrap_err();
        assert!(err.contains("deadlocked"), "{err}");
    }

    #[test]
    fn slots_limit_concurrency() {
        // 4 independent 10s tasks, 1 node, 1 slot: strictly serial.
        let tasks: Vec<TaskSpec> = (0..4)
            .map(|i| task(i, "t", &[], &[(&format!("/o{i}"), 1)], 10.0))
            .collect();
        let wf = StaticWorkflow::new("serial", "test", tasks);
        let mut spec = ClusterSpec::homogeneous(1, "n", &NodeSpec::c3_2xlarge("p"));
        let ebs = spec.add_external(ExternalSpec::ebs_shared());
        let mut cluster = Cluster::new(spec, 5);
        let report = crate::baseline::run_cloudman(&mut cluster, wf, ebs).unwrap();
        // Each task runs alone: ~1 s startup + 10 CPU-s at 2 threads on a
        // speed-1.15 node ≈ 4.3 s wall, strictly serialized → ≥ 4 × 5 s.
        assert!(report.runtime_secs >= 20.0, "{}", report.runtime_secs);
        assert!(report.runtime_secs < 40.0, "{}", report.runtime_secs);
    }
}

#[cfg(test)]
mod limit_tests {
    use hiway_core::cluster::Cluster;
    use hiway_lang::ir::{StaticWorkflow, TaskCost, TaskId, TaskSpec};
    use hiway_sim::{ClusterSpec, ExternalSpec, NodeSpec};

    #[test]
    fn cloudman_refuses_clusters_beyond_twenty_nodes() {
        let mut spec = ClusterSpec::homogeneous(21, "n", &NodeSpec::c3_2xlarge("p"));
        let ebs = spec.add_external(ExternalSpec::ebs_shared());
        let mut cluster = Cluster::new(spec, 1);
        let wf = StaticWorkflow::new(
            "x",
            "test",
            vec![TaskSpec {
                id: TaskId(0),
                name: "t".into(),
                command: "t".into(),
                inputs: vec![],
                outputs: vec![],
                cost: TaskCost::default(),
            }],
        );
        let err = crate::baseline::run_cloudman(&mut cluster, wf, ebs).unwrap_err();
        assert!(err.contains("20 nodes"), "{err}");
    }
}
