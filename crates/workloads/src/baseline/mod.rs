//! Baseline systems the paper compares against.
//!
//! * **Tez** (§4.1, Figure 4): "an application master for YARN that
//!   enables the execution of DAGs comprising map, reduce, and custom
//!   tasks". Our model: a DAG engine on the same simulated cluster and
//!   HDFS, with greedy slot scheduling that is *placement-agnostic* (no
//!   data-aware task selection) and container reuse (lower per-task
//!   startup cost than Hi-WAY's fresh containers). The missing data
//!   awareness is exactly the differentiator Figure 4 probes behind a
//!   shared 1 GbE switch.
//! * **Galaxy CloudMan** (§4.2, Figure 8): Galaxy with a Slurm resource
//!   manager on EC2, all storage on a network-attached EBS volume shared
//!   by the whole cluster. Our model: one task per node (the paper's
//!   memory-driven configuration) and every stage-in/stage-out crossing
//!   the shared EBS service instead of node-local disks — the mechanism
//!   the paper credits for Hi-WAY's ≥25 % advantage.

pub mod runner;

pub use runner::{run_dag, BaselineConfig, BaselineReport, Storage};

use hiway_core::cluster::Cluster;
use hiway_lang::StaticWorkflow;
use hiway_sim::ExternalId;

/// Runs a workflow the way Apache Tez would: greedy, placement-agnostic,
/// reused containers, data in HDFS.
pub fn run_tez(cluster: &mut Cluster, workflow: StaticWorkflow) -> Result<BaselineReport, String> {
    run_dag(
        cluster,
        workflow,
        BaselineConfig {
            storage: Storage::HdfsLocal,
            slots_per_node: 0, // one slot per core
            slot_vcores: 1,
            shuffle_edges: true, // map/reduce-style edges between stages
            seed: 1,
            startup_secs: 0.2, // container reuse
            multithread_full_node: false,
        },
    )
}

/// Galaxy CloudMan "only supports the automated setup of virtual
/// clusters of up to 20 nodes" (paper §4.2) — the baseline refuses to
/// scale past it, exactly as the real system's launcher does.
pub const CLOUDMAN_MAX_NODES: usize = 20;

/// Runs a workflow the way Galaxy CloudMan (Slurm + shared EBS) would.
pub fn run_cloudman(
    cluster: &mut Cluster,
    workflow: StaticWorkflow,
    ebs: ExternalId,
) -> Result<BaselineReport, String> {
    if cluster.node_count() > CLOUDMAN_MAX_NODES {
        return Err(format!(
            "Galaxy CloudMan supports clusters of up to {CLOUDMAN_MAX_NODES} nodes, got {}",
            cluster.node_count()
        ));
    }
    run_dag(
        cluster,
        workflow,
        BaselineConfig {
            storage: Storage::SharedVolume(ebs),
            slots_per_node: 1, // one task per node, as configured in §4.2
            slot_vcores: 0,
            shuffle_edges: false,
            seed: 2,
            startup_secs: 1.0,
            multithread_full_node: true,
        },
    )
}
