//! The single-nucleotide-variant (SNV) calling workflow (paper §4.1).
//!
//! Pipeline (Pabinger et al. 2014, as deployed by the paper): genomic
//! reads are (1) aligned against a reference genome with **Bowtie 2**,
//! (2) sorted with **SAMtools**, (3) variant-called with **VarScan** per
//! sample, and (4) annotated with **ANNOVAR**. The workflow is written in
//! Cuneiform; this generator emits the Cuneiform source so the whole
//! language front-end is exercised.
//!
//! Two parameterizations mirror the two §4.1 experiments:
//!
//! * [`SnvParams::fig4`] — the 24-node local cluster run (Figure 4):
//!   reads pre-staged in HDFS, uncompressed intermediates, one-core
//!   containers. Alignment inputs are the dominant data volume, which is
//!   what makes the data-aware scheduler matter behind a 1 GbE switch.
//!   (The Bowtie reference index is treated as locally installed on every
//!   node, per the §3.6 provisioning model, and folded into CPU cost.)
//! * [`SnvParams::table2`] — the EC2 weak-scaling run (Table 2/Figure 5):
//!   reads streamed from S3 during execution, CRAM-compressed
//!   intermediates, whole-node containers. CPU costs are calibrated so a
//!   single m3.large worker processes one 8 GiB sample in roughly the
//!   340 minutes the paper reports.

/// Parameters of an SNV workflow instance.
#[derive(Clone, Debug)]
pub struct SnvParams {
    pub samples: usize,
    pub files_per_sample: usize,
    pub bytes_per_file: u64,
    /// Where read files live: an HDFS prefix (`/1kg`) or an S3 URI prefix
    /// (`s3://1kg`), in which case the harness registers them as external.
    pub input_prefix: String,
    /// Bowtie 2 CPU-seconds per input byte.
    pub align_cpu_per_byte: f64,
    /// SAMtools sort CPU-seconds per input byte.
    pub sort_cpu_per_byte: f64,
    /// VarScan CPU-seconds per byte of a sample's sorted alignments.
    pub varscan_cpu_per_byte: f64,
    /// ANNOVAR CPU-seconds per byte of the variant file.
    pub annovar_cpu_per_byte: f64,
    /// Alignment output size as a fraction of the input reads (CRAM
    /// referential compression ≈ 0.5; plain BAM ≈ 1.0).
    pub compression_factor: f64,
}

impl SnvParams {
    /// Figure 4 configuration: `samples` samples of 8×256 MiB read chunks
    /// in HDFS. CPU costs sized so ~576 single-core containers finish in
    /// tens of minutes.
    pub fn fig4(samples: usize) -> SnvParams {
        SnvParams {
            samples,
            files_per_sample: 8,
            bytes_per_file: 256 << 20,
            input_prefix: "/1kg".to_string(),
            align_cpu_per_byte: 2.2e-6,   // ≈ 590 CPU-s per 256 MiB chunk
            sort_cpu_per_byte: 4.0e-7,    // ≈ 107 CPU-s per chunk
            varscan_cpu_per_byte: 7.0e-8, // ≈ 150 CPU-s per sample
            annovar_cpu_per_byte: 1.0e-5, // ≈ 54 CPU-s per VCF
            compression_factor: 0.25,     // compact BAM/CRAM intermediates
        }
    }

    /// Table 2 / Figure 5 configuration: `samples` samples of 8×1 GiB
    /// read files in S3, CRAM intermediates. One sample ≈ 340 minutes on
    /// one 2-core m3.large worker.
    pub fn table2(samples: usize) -> SnvParams {
        SnvParams {
            samples,
            files_per_sample: 8,
            bytes_per_file: 1 << 30,
            input_prefix: "s3://1000genomes".to_string(),
            align_cpu_per_byte: 3.35e-6, // ≈ 3600 CPU-s per 1 GiB file
            sort_cpu_per_byte: 6.0e-7,
            varscan_cpu_per_byte: 1.4e-6,
            annovar_cpu_per_byte: 2.0e-5,
            compression_factor: 0.5, // CRAM
        }
    }

    /// Multiplies every CPU cost by `factor` — used by shrunk test/bench
    /// instances to keep the compute-to-network ratio of the full-size
    /// experiment while running in seconds.
    pub fn scaled(mut self, factor: f64) -> SnvParams {
        self.align_cpu_per_byte *= factor;
        self.sort_cpu_per_byte *= factor;
        self.varscan_cpu_per_byte *= factor;
        self.annovar_cpu_per_byte *= factor;
        self
    }

    /// Size of one read file. Real sequencing chunks vary (the paper says
    /// "each about one gigabyte in size"); a deterministic ±15 % jitter
    /// keeps task runtimes realistically de-synchronized.
    pub fn file_size(&self, sample: usize, file: usize) -> u64 {
        let mut h = (sample as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(file as u64)
            .wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 31;
        let jitter = 0.85 + 0.30 * ((h % 10_000) as f64 / 10_000.0);
        (self.bytes_per_file as f64 * jitter) as u64
    }

    /// Total input volume in bytes (the paper's "data volume" row).
    pub fn total_input_bytes(&self) -> u64 {
        self.input_files().iter().map(|(_, s)| *s).sum()
    }

    /// The read files this workflow consumes: `(path, size)`.
    pub fn input_files(&self) -> Vec<(String, u64)> {
        let mut files = Vec::with_capacity(self.samples * self.files_per_sample);
        for s in 0..self.samples {
            for f in 0..self.files_per_sample {
                files.push((
                    format!("{}/s{s}_f{f}.fq", self.input_prefix),
                    self.file_size(s, f),
                ));
            }
        }
        files
    }

    /// Whether inputs come from an external (S3-like) service.
    pub fn inputs_are_external(&self) -> bool {
        self.input_prefix.contains("://")
    }

    /// Emits the Cuneiform source of the workflow.
    pub fn cuneiform_source(&self) -> String {
        let mut src = String::new();
        src.push_str(&format!(
            "% SNV calling workflow: {} samples x {} files of {} bytes\n",
            self.samples, self.files_per_sample, self.bytes_per_file
        ));
        src.push_str(&format!(
            "deftask bowtie2( out(\"/work/aln_{{0}}.cram\", mul(insize(reads), {comp})) : reads )\n  \
             cpu mul(insize(reads), {a}) threads 8 mem 6500;\n",
            comp = self.compression_factor,
            a = self.align_cpu_per_byte
        ));
        src.push_str(&format!(
            "deftask samtools_sort( out(\"/work/sorted_{{0}}.cram\", insize(aln)) : aln )\n  \
             cpu mul(insize(aln), {s}) threads 4 mem 2500;\n",
            s = self.sort_cpu_per_byte
        ));
        src.push_str(&format!(
            "deftask varscan( out(\"/work/vars_{{0}}.vcf\", mul(insize(alns), 0.01)) : tag [alns] )\n  \
             cpu mul(insize(alns), {v}) threads 8 mem 5000;\n",
            v = self.varscan_cpu_per_byte
        ));
        src.push_str(&format!(
            "deftask annovar( out(\"/out/annotated_{{0}}.csv\", insize(vars)) : vars )\n  \
             cpu mul(insize(vars), {n}) threads 1 mem 2500;\n",
            n = self.annovar_cpu_per_byte
        ));
        for s in 0..self.samples {
            let files: Vec<String> = (0..self.files_per_sample)
                .map(|f| {
                    format!(
                        "file(\"{}/s{s}_f{f}.fq\", {})",
                        self.input_prefix,
                        self.file_size(s, f)
                    )
                })
                .collect();
            src.push_str(&format!("let sample{s} = [{}];\n", files.join(", ")));
            src.push_str(&format!(
                "let result{s} = annovar(varscan(\"s{s}\", samtools_sort(bowtie2(sample{s}))));\n"
            ));
        }
        let results: Vec<String> = (0..self.samples).map(|s| format!("result{s}")).collect();
        src.push_str(&format!("target [{}];\n", results.join(", ")));
        src
    }

    /// Expected task count: per sample, one align + one sort per file,
    /// one varscan, one annovar.
    pub fn expected_tasks(&self) -> usize {
        self.samples * (2 * self.files_per_sample + 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiway_lang::cuneiform::CuneiformWorkflow;
    use hiway_lang::ir::WorkflowSource;

    #[test]
    fn generated_source_parses_and_unfolds() {
        let params = SnvParams::fig4(3);
        let src = params.cuneiform_source();
        let mut wf = CuneiformWorkflow::parse("snv", &src, 1).unwrap();
        let tasks = wf.initial_tasks().unwrap();
        assert_eq!(tasks.len(), params.expected_tasks());
        assert_eq!(tasks.len(), 3 * (2 * 8 + 2));
        // Task mix.
        let count = |n: &str| tasks.iter().filter(|t| t.name == n).count();
        assert_eq!(count("bowtie2"), 24);
        assert_eq!(count("samtools_sort"), 24);
        assert_eq!(count("varscan"), 3);
        assert_eq!(count("annovar"), 3);
        // The whole pipeline is revealed statically (no val()/if).
        assert!(wf.is_complete());
        // Inputs are the declared read files.
        assert_eq!(wf.required_inputs().len(), 24);
    }

    #[test]
    fn varscan_consumes_whole_sample() {
        let params = SnvParams::fig4(1);
        let mut wf = CuneiformWorkflow::parse("snv", &params.cuneiform_source(), 1).unwrap();
        let tasks = wf.initial_tasks().unwrap();
        let varscan = tasks.iter().find(|t| t.name == "varscan").unwrap();
        assert_eq!(varscan.inputs.len(), 8, "aggregate over all sorted files");
        // VarScan sees the full sorted (compressed) sample volume, within
        // the ±15 % per-file size jitter.
        let nominal = 8.0 * (256u64 << 20) as f64 * 0.25 * 7.0e-8;
        assert!((varscan.cost.cpu_seconds - nominal).abs() < nominal * 0.2);
    }

    #[test]
    fn table2_single_sample_cpu_budget_matches_paper() {
        // One sample on one m3.large (2 cores): the paper measures ≈340
        // wall minutes. Sum our CPU costs and divide by 2 cores (plus the
        // single-threaded ANNOVAR tail).
        let p = SnvParams::table2(1);
        let file = p.bytes_per_file as f64;
        let align = 8.0 * file * p.align_cpu_per_byte;
        let sorted = 8.0 * file * p.compression_factor;
        let sort = sorted * p.sort_cpu_per_byte;
        let varscan = sorted * p.varscan_cpu_per_byte;
        let vars = sorted * 0.01;
        let annovar = vars * p.annovar_cpu_per_byte;
        let wall_mins = ((align + sort + varscan) / 2.0 + annovar) / 60.0;
        assert!(
            (280.0..400.0).contains(&wall_mins),
            "calibration drifted: {wall_mins:.1} min"
        );
    }

    #[test]
    fn input_helpers() {
        let p = SnvParams::table2(2);
        assert!(p.inputs_are_external());
        assert_eq!(p.input_files().len(), 16);
        let total = p.total_input_bytes() as f64;
        let nominal = (16u64 << 30) as f64;
        assert!(
            (total - nominal).abs() < nominal * 0.1,
            "jitter averages out"
        );
        let q = SnvParams::fig4(1);
        assert!(!q.inputs_are_external());
        assert!(q.input_files()[0].0.starts_with("/1kg/"));
    }
}
