//! The Montage astronomy workflow (paper §4.3, Figure 9).
//!
//! Montage (Berriman et al. 2004) assembles a mosaic image of a patch of
//! sky — here the 0.25-degree Omega Nebula mosaic of the paper — through
//! a fixed pipeline: raw telescope images are re-projected onto a common
//! plane (`mProjectPP`, the first parallel wave), overlapping pairs are
//! compared (`mDiffFit`), the fits are concatenated (`mConcatFit`) and a
//! background model solved (`mBgModel`), each projected image is
//! background-corrected (`mBackground`, the second parallel wave), and
//! the corrected images are tabulated (`mImgtbl`), co-added into the
//! mosaic (`mAdd`), shrunk (`mShrink`), and rendered (`mJPEG`).
//!
//! A degree of 0.25 yields "a comparably small workflow with a maximum
//! degree of parallelism of eleven during the image projection and
//! background radiation correction phases". The generator emits Pegasus
//! DAX XML, exercising that front-end, with task runtimes in the tens of
//! seconds as in the paper's Figure 9 (whole runs of 100–350 s).

/// Parameters of a Montage run.
#[derive(Clone, Debug)]
pub struct MontageParams {
    /// Images in the projection/correction waves (11 at degree 0.25).
    pub images: usize,
    /// Bytes per raw/projected image.
    pub image_bytes: u64,
    /// Uniform scale on all task runtimes.
    pub runtime_scale: f64,
}

impl Default for MontageParams {
    fn default() -> MontageParams {
        MontageParams {
            images: 11,
            image_bytes: 4 << 20,
            runtime_scale: 1.0,
        }
    }
}

impl MontageParams {
    /// Raw input images to stage: `(path, size)`.
    pub fn input_files(&self) -> Vec<(String, u64)> {
        (0..self.images)
            .map(|i| (format!("raw/image_{i}.fits"), self.image_bytes))
            .collect()
    }

    /// Emits the DAX document.
    pub fn dax_source(&self) -> String {
        let n = self.images;
        let img = self.image_bytes;
        let rt = |base: f64| base * self.runtime_scale;
        let mut jobs = Vec::new();
        let mut edges: Vec<(String, String)> = Vec::new();

        // Projection wave.
        for i in 0..n {
            jobs.push(format!(
                r#"<job id="proj{i}" name="mProjectPP" runtime="{}" threads="1" memory="1024">
  <argument>-X raw/image_{i}.fits</argument>
  <uses file="raw/image_{i}.fits" link="input" size="{img}"/>
  <uses file="work/proj_{i}.fits" link="output" size="{img}"/>
</job>"#,
                rt(18.0)
            ));
        }
        // Difference fits between neighbouring images.
        for i in 0..n.saturating_sub(1) {
            let j = i + 1;
            jobs.push(format!(
                r#"<job id="diff{i}" name="mDiffFit" runtime="{}" threads="1" memory="512">
  <uses file="work/proj_{i}.fits" link="input" size="{img}"/>
  <uses file="work/proj_{j}.fits" link="input" size="{img}"/>
  <uses file="work/fit_{i}.txt" link="output" size="8192"/>
</job>"#,
                rt(8.0)
            ));
            edges.push((format!("proj{i}"), format!("diff{i}")));
            edges.push((format!("proj{j}"), format!("diff{i}")));
        }
        // Concatenate fit results.
        let fit_uses: String = (0..n.saturating_sub(1))
            .map(|i| format!(r#"  <uses file="work/fit_{i}.txt" link="input" size="8192"/>"#))
            .collect::<Vec<_>>()
            .join("\n");
        jobs.push(format!(
            r#"<job id="concat" name="mConcatFit" runtime="{}" threads="1" memory="512">
{fit_uses}
  <uses file="work/fits.tbl" link="output" size="65536"/>
</job>"#,
            rt(2.0)
        ));
        // Background model.
        jobs.push(format!(
            r#"<job id="bgmodel" name="mBgModel" runtime="{}" threads="1" memory="1024">
  <uses file="work/fits.tbl" link="input" size="65536"/>
  <uses file="work/corrections.tbl" link="output" size="16384"/>
</job>"#,
            rt(5.0)
        ));
        // Correction wave.
        for i in 0..n {
            jobs.push(format!(
                r#"<job id="bg{i}" name="mBackground" runtime="{}" threads="1" memory="1024">
  <uses file="work/proj_{i}.fits" link="input" size="{img}"/>
  <uses file="work/corrections.tbl" link="input" size="16384"/>
  <uses file="work/bg_{i}.fits" link="output" size="{img}"/>
</job>"#,
                rt(10.0)
            ));
        }
        // Image table, co-addition, shrink, render.
        let bg_uses: String = (0..n)
            .map(|i| format!(r#"  <uses file="work/bg_{i}.fits" link="input" size="{img}"/>"#))
            .collect::<Vec<_>>()
            .join("\n");
        jobs.push(format!(
            r#"<job id="imgtbl" name="mImgtbl" runtime="{}" threads="1" memory="512">
{bg_uses}
  <uses file="work/images.tbl" link="output" size="32768"/>
</job>"#,
            rt(2.0)
        ));
        let mosaic = img * n as u64;
        jobs.push(format!(
            r#"<job id="madd" name="mAdd" runtime="{}" threads="1" memory="2048">
{bg_uses}
  <uses file="work/images.tbl" link="input" size="32768"/>
  <uses file="work/mosaic.fits" link="output" size="{mosaic}"/>
</job>"#,
            rt(8.0)
        ));
        jobs.push(format!(
            r#"<job id="shrink" name="mShrink" runtime="{}" threads="1" memory="1024">
  <uses file="work/mosaic.fits" link="input" size="{mosaic}"/>
  <uses file="work/shrunken.fits" link="output" size="{img}"/>
</job>"#,
            rt(4.0)
        ));
        jobs.push(format!(
            r#"<job id="jpeg" name="mJPEG" runtime="{}" threads="1" memory="512">
  <uses file="work/shrunken.fits" link="input" size="{img}"/>
  <uses file="out/mosaic.jpg" link="output" size="1048576"/>
</job>"#,
            rt(2.0)
        ));

        let children: String = edges
            .iter()
            .map(|(p, c)| format!(r#"<child ref="{c}"><parent ref="{p}"/></child>"#))
            .collect::<Vec<_>>()
            .join("\n");

        format!(
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<adag name=\"montage-omega-0.25\">\n{}\n{}\n</adag>\n",
            jobs.join("\n"),
            children
        )
    }

    /// Total task count.
    pub fn expected_tasks(&self) -> usize {
        // proj + diff + concat + bgmodel + bg + imgtbl + add + shrink + jpeg
        self.images + (self.images - 1) + 2 + self.images + 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiway_lang::dax::parse_dax;
    use hiway_lang::ir::WorkflowSource;

    #[test]
    fn generated_dax_parses() {
        let params = MontageParams::default();
        let wf = parse_dax(&params.dax_source()).unwrap();
        assert_eq!(wf.name, "montage-omega-0.25");
        assert_eq!(wf.tasks.len(), params.expected_tasks());
        assert_eq!(wf.tasks.len(), 38);
        let count = |n: &str| wf.tasks.iter().filter(|t| t.name == n).count();
        assert_eq!(count("mProjectPP"), 11);
        assert_eq!(count("mDiffFit"), 10);
        assert_eq!(count("mBackground"), 11);
        assert_eq!(count("mAdd"), 1);
    }

    #[test]
    fn parallelism_is_eleven_in_the_projection_wave() {
        let params = MontageParams::default();
        let mut wf = parse_dax(&params.dax_source()).unwrap();
        let tasks = wf.initial_tasks().unwrap();
        let roots = tasks
            .iter()
            .filter(|t| t.inputs.iter().all(|i| i.starts_with("raw/")))
            .count();
        assert_eq!(roots, 11);
    }

    #[test]
    fn external_inputs_are_the_raw_images() {
        let params = MontageParams::default();
        let wf = parse_dax(&params.dax_source()).unwrap();
        assert_eq!(wf.external_inputs().len(), 11);
        assert_eq!(params.input_files().len(), 11);
    }

    #[test]
    fn runtime_scale_multiplies_costs() {
        let params = MontageParams {
            runtime_scale: 3.0,
            ..Default::default()
        };
        let wf = parse_dax(&params.dax_source()).unwrap();
        let proj = wf.tasks.iter().find(|t| t.name == "mProjectPP").unwrap();
        assert_eq!(proj.cost.cpu_seconds, 54.0);
    }
}
