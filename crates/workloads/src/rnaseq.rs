//! The TRAPLINE RNA-seq workflow (paper §4.2, Figure 7/8).
//!
//! Trapnell et al.'s tuxedo protocol, as standardized by Wolfien et al.'s
//! TRAPLINE pipeline and published in Galaxy's workflow repository: reads
//! from two conditions (young vs. aged mice, GEO series GSE62762), each in
//! triplicate, are aligned with **TopHat 2** (backed by Bowtie 2),
//! transcripts are assembled and quantified per replicate with
//! **Cufflinks**, merged with **Cuffmerge**, and differentially compared
//! with **Cuffdiff**. With three replicates per condition and mostly
//! sequential per-replicate chains, "the workflow, without any manual
//! alterations, has a degree of parallelism of six across most of its
//! parts".
//!
//! The generator emits the exported-Galaxy `.ga` JSON (exercising the
//! Galaxy front-end), the input bindings, and the tool cost profiles.
//! Costs are calibrated so one c3.2xlarge worker runs the whole thing in
//! ≈230 minutes and six workers in ≈57 (Figure 8's Hi-WAY bars).

use std::collections::HashMap;

use hiway_lang::galaxy::{BoundInput, ToolProfile, ToolProfiles};

/// Parameters of a TRAPLINE instance.
#[derive(Clone, Debug)]
pub struct RnaseqParams {
    /// Replicates per condition (the paper's data has 3).
    pub replicates_per_condition: usize,
    /// Bytes of reads per replicate (~1.7 GB; >10 GB over all six).
    pub bytes_per_replicate: u64,
    /// Reference genome size in bytes.
    pub genome_bytes: u64,
}

impl Default for RnaseqParams {
    fn default() -> RnaseqParams {
        RnaseqParams {
            replicates_per_condition: 3,
            bytes_per_replicate: 1_700 << 20,
            genome_bytes: 2_800 << 20,
        }
    }
}

impl RnaseqParams {
    pub fn lanes(&self) -> usize {
        2 * self.replicates_per_condition
    }

    /// The `.ga` JSON of the exported workflow.
    pub fn galaxy_json(&self) -> String {
        let lanes = self.lanes();
        let mut steps = Vec::new();
        // Step 0: the reference genome input port.
        steps.push(
            r#""0": {"id": 0, "type": "data_input", "label": "genome",
                 "inputs": [{"name": "genome"}], "input_connections": {}, "outputs": []}"#
                .to_string(),
        );
        // Steps 1..=lanes: one reads input port per replicate.
        for lane in 0..lanes {
            let id = 1 + lane;
            steps.push(format!(
                r#""{id}": {{"id": {id}, "type": "data_input", "label": "reads_{lane}",
                     "inputs": [{{"name": "reads_{lane}"}}], "input_connections": {{}}, "outputs": []}}"#
            ));
        }
        // TopHat2 per lane.
        let tophat_base = 1 + lanes;
        for lane in 0..lanes {
            let id = tophat_base + lane;
            let reads_id = 1 + lane;
            steps.push(format!(
                r#""{id}": {{"id": {id}, "type": "tool",
                     "tool_id": "toolshed.g2.bx.psu.edu/repos/devteam/tophat2/tophat2/2.1.0",
                     "input_connections": {{
                        "input1": {{"id": {reads_id}, "output_name": "output"}},
                        "reference": {{"id": 0, "output_name": "output"}}}},
                     "outputs": [{{"name": "accepted_hits", "type": "bam"}}]}}"#
            ));
        }
        // Cufflinks per lane.
        let cufflinks_base = tophat_base + lanes;
        for lane in 0..lanes {
            let id = cufflinks_base + lane;
            let hits_id = tophat_base + lane;
            steps.push(format!(
                r#""{id}": {{"id": {id}, "type": "tool",
                     "tool_id": "toolshed.g2.bx.psu.edu/repos/devteam/cufflinks/cufflinks/2.2.1",
                     "input_connections": {{
                        "input": {{"id": {hits_id}, "output_name": "accepted_hits"}}}},
                     "outputs": [{{"name": "transcripts", "type": "gtf"}}]}}"#
            ));
        }
        // Cuffmerge over all lanes' transcripts.
        let merge_id = cufflinks_base + lanes;
        let merge_conns: Vec<String> = (0..lanes)
            .map(|lane| {
                format!(
                    r#"{{"id": {}, "output_name": "transcripts"}}"#,
                    cufflinks_base + lane
                )
            })
            .collect();
        steps.push(format!(
            r#""{merge_id}": {{"id": {merge_id}, "type": "tool",
                 "tool_id": "toolshed.g2.bx.psu.edu/repos/devteam/cuffmerge/cuffmerge/2.2.1",
                 "input_connections": {{"inputs": [{}]}},
                 "outputs": [{{"name": "merged_transcripts", "type": "gtf"}}]}}"#,
            merge_conns.join(", ")
        ));
        // Cuffdiff: merged transcripts + every lane's hits.
        let diff_id = merge_id + 1;
        let hit_conns: Vec<String> = (0..lanes)
            .map(|lane| {
                format!(
                    r#"{{"id": {}, "output_name": "accepted_hits"}}"#,
                    tophat_base + lane
                )
            })
            .collect();
        steps.push(format!(
            r#""{diff_id}": {{"id": {diff_id}, "type": "tool",
                 "tool_id": "toolshed.g2.bx.psu.edu/repos/devteam/cuffdiff/cuffdiff/2.2.1",
                 "input_connections": {{
                    "transcripts": {{"id": {merge_id}, "output_name": "merged_transcripts"}},
                    "hits": [{}]}},
                 "outputs": [{{"name": "differential_expression", "type": "tabular"}}]}}"#,
            hit_conns.join(", ")
        ));

        format!(
            "{{\n\"a_galaxy_workflow\": \"true\",\n\"name\": \"TRAPLINE\",\n\"steps\": {{\n{}\n}}\n}}",
            steps.join(",\n")
        )
    }

    /// Input port bindings: the staged HDFS paths of genome and reads.
    pub fn input_bindings(&self) -> HashMap<String, BoundInput> {
        let mut m = HashMap::new();
        m.insert(
            "genome".to_string(),
            BoundInput {
                path: "/ref/genome.fa".to_string(),
                size: self.genome_bytes,
            },
        );
        for lane in 0..self.lanes() {
            m.insert(
                format!("reads_{lane}"),
                BoundInput {
                    path: format!("/geo/GSE62762/reads_{lane}.fq"),
                    size: self.bytes_per_replicate,
                },
            );
        }
        m
    }

    /// Files to stage before execution: `(path, size)`, in a stable order.
    /// (Iterating the bindings map directly would prestage in hash order,
    /// which perturbs the HDFS placement RNG from run to run.)
    pub fn input_files(&self) -> Vec<(String, u64)> {
        let mut files: Vec<(String, u64)> = self
            .input_bindings()
            .into_values()
            .map(|b| (b.path, b.size))
            .collect();
        files.sort();
        files
    }

    /// Tool cost profiles calibrated against Figure 8: on one 8-core
    /// c3.2xlarge with one task at a time, the whole workflow takes about
    /// 230 minutes; on six nodes (parallelism 6) about 57.
    pub fn tool_profiles(&self) -> ToolProfiles {
        let mut p = ToolProfiles::default();
        // TopHat2: heavily multi-threaded, CPU-bound, writes large
        // intermediates (accepted_hits ≈ 1.2× reads — the "large amounts
        // of intermediate files" Figure 8's analysis points at).
        p.insert(
            "tophat2",
            ToolProfile {
                cpu_fixed: 600.0,
                cpu_per_byte: 2.2e-6,
                threads: 8,
                memory_mb: 12_000,
                output_factor: 0.26, // hits vs reads+genome input
                scratch_factor: 8.0, // TopHat temp files, several times the input
            },
        );
        p.insert(
            "cufflinks",
            ToolProfile {
                cpu_fixed: 300.0,
                cpu_per_byte: 3.6e-6,
                threads: 8,
                memory_mb: 8_000,
                output_factor: 0.02,
                scratch_factor: 1.0,
            },
        );
        p.insert(
            "cuffmerge",
            ToolProfile {
                cpu_fixed: 120.0,
                cpu_per_byte: 1.0e-6,
                threads: 1,
                memory_mb: 4_000,
                output_factor: 1.0,
                scratch_factor: 0.0,
            },
        );
        p.insert(
            "cuffdiff",
            ToolProfile {
                cpu_fixed: 1200.0,
                cpu_per_byte: 2.0e-6,
                threads: 8,
                memory_mb: 12_000,
                output_factor: 0.001,
                scratch_factor: 2.0,
            },
        );
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiway_lang::galaxy::parse_galaxy;
    use hiway_lang::ir::WorkflowSource;

    #[test]
    fn generated_ga_parses_with_six_lanes() {
        let params = RnaseqParams::default();
        let wf = parse_galaxy(
            &params.galaxy_json(),
            &params.input_bindings(),
            &params.tool_profiles(),
        )
        .unwrap();
        assert_eq!(wf.name, "TRAPLINE");
        // 6 tophat + 6 cufflinks + cuffmerge + cuffdiff.
        assert_eq!(wf.tasks.len(), 14);
        let count = |n: &str| wf.tasks.iter().filter(|t| t.name == n).count();
        assert_eq!(count("tophat2"), 6);
        assert_eq!(count("cufflinks"), 6);
        assert_eq!(count("cuffmerge"), 1);
        assert_eq!(count("cuffdiff"), 1);
    }

    #[test]
    fn degree_of_parallelism_is_six() {
        let params = RnaseqParams::default();
        let mut wf = parse_galaxy(
            &params.galaxy_json(),
            &params.input_bindings(),
            &params.tool_profiles(),
        )
        .unwrap();
        let tasks = wf.initial_tasks().unwrap();
        // The six tophat2 tasks depend only on workflow inputs: all six
        // are immediately runnable.
        let roots = tasks
            .iter()
            .filter(|t| {
                t.inputs
                    .iter()
                    .all(|i| i.starts_with("/ref") || i.starts_with("/geo"))
            })
            .count();
        assert_eq!(roots, 6);
    }

    #[test]
    fn cuffdiff_joins_everything() {
        let params = RnaseqParams::default();
        let wf = parse_galaxy(
            &params.galaxy_json(),
            &params.input_bindings(),
            &params.tool_profiles(),
        )
        .unwrap();
        let diff = wf.tasks.iter().find(|t| t.name == "cuffdiff").unwrap();
        assert_eq!(diff.inputs.len(), 7, "merged transcripts + 6 hit files");
    }

    #[test]
    fn single_node_cpu_budget_matches_fig8() {
        // Wall-clock estimate on one 8-core node running one task at a
        // time: Figure 8 reports 232 minutes for Hi-WAY.
        let params = RnaseqParams::default();
        let profiles = params.tool_profiles();
        let reads = params.bytes_per_replicate as f64;
        let genome = params.genome_bytes as f64;
        let tophat = profiles.lookup("tophat2");
        let tophat_cpu = tophat.cpu_fixed + tophat.cpu_per_byte * (reads + genome);
        let hits = (reads + genome) * tophat.output_factor;
        let cuff = profiles.lookup("cufflinks");
        let cufflinks_cpu = cuff.cpu_fixed + cuff.cpu_per_byte * hits;
        let merge = profiles.lookup("cuffmerge");
        let merge_cpu = merge.cpu_fixed; // tiny inputs
        let diff = profiles.lookup("cuffdiff");
        let diff_cpu = diff.cpu_fixed + diff.cpu_per_byte * (6.0 * hits);
        let wall_mins =
            (6.0 * (tophat_cpu + cufflinks_cpu) / 8.0 + merge_cpu + diff_cpu / 8.0) / 60.0;
        assert!(
            (180.0..280.0).contains(&wall_mins),
            "calibration drifted: {wall_mins:.1} min"
        );
    }

    #[test]
    fn input_files_cover_all_ports() {
        let params = RnaseqParams::default();
        assert_eq!(params.input_files().len(), 7);
        let total: u64 = params.input_files().iter().map(|(_, s)| *s).sum();
        assert!(total > 10 << 30, "more than 10 GB in total");
    }
}
