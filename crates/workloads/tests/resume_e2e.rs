//! End-to-end crash-and-resume: a durable provenance store plus the
//! `resume` flag must let a re-submitted workflow skip every invocation
//! the previous run completed — emitting `memo:hit` records instead of
//! execute phases — and produce byte-identical outputs.

use hiway_core::cluster::Cluster;
use hiway_core::config::{HiwayConfig, SchedulerPolicy};
use hiway_core::driver::Runtime;
use hiway_lang::dax::parse_dax;
use hiway_provdb::ProvDb;
use hiway_sim::{ClusterSpec, NodeSpec};
use hiway_workloads::montage::MontageParams;

/// Unique scratch directory for a durable store.
fn store_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hiway-resume-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A fresh cluster with the Montage raw images staged.
fn montage_cluster(montage: &MontageParams) -> Cluster {
    let spec = ClusterSpec::homogeneous(4, "w", &NodeSpec::m3_large("proto"));
    let mut cluster = Cluster::new(spec, 7);
    for (path, size) in montage.input_files() {
        cluster.prestage(&path, size);
    }
    cluster
}

fn montage_config(db_path: &std::path::Path, resume: bool) -> HiwayConfig {
    HiwayConfig::default()
        .with_scheduler(SchedulerPolicy::Fcfs)
        .with_seed(11)
        .with_provdb_path(db_path.to_str().expect("utf-8 path"))
        .with_resume(resume)
}

/// `(path, content digest)` of every file in HDFS, sorted — the output
/// identity a resumed run must reproduce byte-for-byte.
fn hdfs_digests(rt: &Runtime) -> Vec<(String, u64)> {
    let mut files: Vec<(String, u64)> = rt
        .cluster
        .hdfs
        .list()
        .into_iter()
        .map(|p| {
            let d = rt.cluster.hdfs.content_digest(&p).expect("digest");
            (p, d)
        })
        .collect();
    files.sort();
    files
}

#[test]
fn warm_resume_skips_every_completed_invocation() {
    let dir = store_dir("warm");
    let montage = MontageParams::default();
    let n_tasks = montage.expected_tasks();

    // Cold run: executes everything, memoizing into the durable store.
    let (cold_secs, cold_digests) = {
        let mut rt = Runtime::new(montage_cluster(&montage));
        let source = parse_dax(&montage.dax_source()).expect("montage dax");
        let wf = rt.submit(Box::new(source), montage_config(&dir, false), ProvDb::new());
        let reports = rt.run_to_completion();
        assert!(rt.error_of(wf).is_none(), "{:?}", rt.error_of(wf));
        assert_eq!(reports[wf].tasks.len(), n_tasks);
        assert_eq!(rt.memo_hits(wf), 0, "nothing to hit on a cold run");
        (reports[wf].runtime_secs(), hdfs_digests(&rt))
    };

    // Warm resume on a fresh cluster: every invocation is memo-satisfied.
    let mut rt = Runtime::new(montage_cluster(&montage));
    let source = parse_dax(&montage.dax_source()).expect("montage dax");
    let wf = rt.submit(Box::new(source), montage_config(&dir, true), ProvDb::new());
    let reports = rt.run_to_completion();
    assert!(rt.error_of(wf).is_none(), "{:?}", rt.error_of(wf));
    let report = &reports[wf];
    assert_eq!(report.tasks.len(), n_tasks);
    assert_eq!(rt.memo_hits(wf), n_tasks as u64, "zero re-executions");
    assert!(rt.memo_saved_secs(wf) > 0.0);
    for t in &report.tasks {
        assert_eq!(t.attempts, 0, "{}: memo hits launch no containers", t.name);
        assert!(
            t.node.starts_with("memo:"),
            "{}: ran on {} instead of a memo hit",
            t.name,
            t.node
        );
    }
    // Byte-identical outputs.
    assert_eq!(hdfs_digests(&rt), cold_digests);
    // And essentially free: no execute phases contribute to the makespan.
    assert!(
        report.runtime_secs() < cold_secs / 4.0,
        "resume {:.1}s vs cold {cold_secs:.1}s",
        report.runtime_secs()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_mid_run_resume_finishes_without_redoing_completed_work() {
    let dir = store_dir("crash");
    let montage = MontageParams::default();
    let n_tasks = montage.expected_tasks();

    // Reference digests from an uninterrupted in-memory run.
    let reference = {
        let mut rt = Runtime::new(montage_cluster(&montage));
        let source = parse_dax(&montage.dax_source()).expect("montage dax");
        let wf = rt.submit(
            Box::new(source),
            HiwayConfig::default()
                .with_scheduler(SchedulerPolicy::Fcfs)
                .with_seed(11),
            ProvDb::new(),
        );
        rt.run_to_completion();
        assert!(rt.error_of(wf).is_none());
        hdfs_digests(&rt)
    };

    // First run dies mid-DAG: drop the runtime with the workflow active.
    // Committed WAL frames survive the crash; nothing else does.
    {
        let mut rt = Runtime::new(montage_cluster(&montage));
        let source = parse_dax(&montage.dax_source()).expect("montage dax");
        let wf = rt.submit(Box::new(source), montage_config(&dir, false), ProvDb::new());
        let still_active = rt.run_until(hiway_sim::SimTime::from_secs(60.0));
        assert!(still_active, "montage must still be mid-run at t=60");
        assert!(rt.error_of(wf).is_none());
    }

    // Resume: completed invocations are memo hits, the rest execute.
    let mut rt = Runtime::new(montage_cluster(&montage));
    let source = parse_dax(&montage.dax_source()).expect("montage dax");
    let wf = rt.submit(Box::new(source), montage_config(&dir, true), ProvDb::new());
    let reports = rt.run_to_completion();
    assert!(rt.error_of(wf).is_none(), "{:?}", rt.error_of(wf));
    let report = &reports[wf];
    assert_eq!(report.tasks.len(), n_tasks);
    let hits = rt.memo_hits(wf);
    assert!(hits >= 1, "the crashed run committed at least one task");
    assert!(hits < n_tasks as u64, "the crashed run was interrupted");
    let memo_rows = report
        .tasks
        .iter()
        .filter(|t| t.node.starts_with("memo:"))
        .count();
    let executed = report.tasks.iter().filter(|t| t.attempts >= 1).count();
    assert_eq!(memo_rows as u64, hits);
    assert_eq!(memo_rows + executed, n_tasks, "every task: hit XOR exec");
    // The spliced run converges on the same bytes as the uninterrupted one.
    assert_eq!(hdfs_digests(&rt), reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_against_an_empty_store_is_a_plain_run() {
    let dir = store_dir("empty");
    let montage = MontageParams::default();
    let mut rt = Runtime::new(montage_cluster(&montage));
    let source = parse_dax(&montage.dax_source()).expect("montage dax");
    let wf = rt.submit(Box::new(source), montage_config(&dir, true), ProvDb::new());
    let reports = rt.run_to_completion();
    assert!(rt.error_of(wf).is_none(), "{:?}", rt.error_of(wf));
    assert_eq!(reports[wf].tasks.len(), montage.expected_tasks());
    assert_eq!(rt.memo_hits(wf), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unopenable_store_path_fails_the_submission() {
    // Point provdb_path below a regular file: create_dir_all must fail,
    // and the failure surfaces as a submission error, not a panic.
    let blocker = std::env::temp_dir().join(format!("hiway-resume-blocker-{}", std::process::id()));
    std::fs::write(&blocker, b"not a directory").expect("write blocker");
    let bad = blocker.join("db");
    let montage = MontageParams::default();
    let mut rt = Runtime::new(montage_cluster(&montage));
    let source = parse_dax(&montage.dax_source()).expect("montage dax");
    let config = HiwayConfig::default().with_provdb_path(bad.to_str().expect("utf-8"));
    let wf = rt.submit(Box::new(source), config, ProvDb::new());
    rt.run_to_completion();
    let err = rt.error_of(wf).expect("open failure must fail the run");
    assert!(err.contains("provenance store"), "{err}");
    let _ = std::fs::remove_file(&blocker);
}
