//! Turning a parsed recipe into a ready-to-run experiment.

use hiway_core::driver::Runtime;
use hiway_core::HiwayConfig;
use hiway_lang::cuneiform::CuneiformWorkflow;
use hiway_lang::ir::WorkflowSource;
use hiway_sim::NodeSpec;
use hiway_workloads::kmeans::KmeansParams;
use hiway_workloads::montage::MontageParams;
use hiway_workloads::profiles;
use hiway_workloads::rnaseq::RnaseqParams;
use hiway_workloads::snv::SnvParams;
use hiway_yarn::Resource;

use crate::parse::{ClusterKind, ContainerKind, Recipe, RecipeError, WorkflowKind};

/// A cooked recipe: infrastructure up, inputs staged, workflow parsed.
pub struct CookedExperiment {
    pub runtime: Runtime,
    pub config: HiwayConfig,
    pub source: Box<dyn WorkflowSource>,
    /// Worker node ids (excludes dedicated masters).
    pub workers: Vec<hiway_sim::NodeId>,
}

fn node_spec(name: &str) -> Result<NodeSpec, RecipeError> {
    match name {
        "m3.large" => Ok(NodeSpec::m3_large("proto")),
        "c3.2xlarge" => Ok(NodeSpec::c3_2xlarge("proto")),
        "xeon" => Ok(NodeSpec::xeon_e5_2620("proto")),
        other => Err(RecipeError {
            line: 0,
            message: format!("unknown node type '{other}'"),
        }),
    }
}

/// Builds everything a recipe describes. Mirrors what Karamel does with
/// the paper's Chef recipes: provision, install, stage data, register the
/// workflow — leaving just "run it".
pub fn cook(recipe: &Recipe) -> Result<CookedExperiment, RecipeError> {
    let boxed = |e: hiway_lang::LangError| RecipeError {
        line: 0,
        message: e.to_string(),
    };

    // 1. Infrastructure.
    let mut deployment = match &recipe.cluster {
        ClusterKind::Local { nodes } => profiles::local_cluster(*nodes, recipe.seed),
        ClusterKind::Ec2 { workers, node } => {
            profiles::ec2_cluster(*workers, &node_spec(node)?, recipe.seed)
        }
    };
    let node_proto = match &recipe.cluster {
        ClusterKind::Local { .. } => NodeSpec::xeon_e5_2620("proto"),
        ClusterKind::Ec2 { node, .. } => node_spec(node)?,
    };

    // 2. Workflow + input staging.
    let source: Box<dyn WorkflowSource> = match &recipe.workflow {
        WorkflowKind::Snv { profile, samples } => {
            let params = match profile.as_str() {
                "table2" => SnvParams::table2(*samples),
                "fig4" => SnvParams::fig4(*samples),
                other => {
                    return Err(RecipeError {
                        line: 0,
                        message: format!("unknown snv profile '{other}'"),
                    })
                }
            };
            if params.inputs_are_external() {
                let s3 = deployment.s3.ok_or_else(|| RecipeError {
                    line: 0,
                    message: "snv table2 profile needs an S3-attached (ec2) cluster".to_string(),
                })?;
                for (path, size) in params.input_files() {
                    deployment
                        .runtime
                        .cluster
                        .register_external_file(&path, s3, size);
                }
            } else {
                for (path, size) in params.input_files() {
                    deployment.runtime.cluster.prestage(&path, size);
                }
            }
            Box::new(
                CuneiformWorkflow::parse("snv-calling", &params.cuneiform_source(), recipe.seed)
                    .map_err(boxed)?,
            )
        }
        WorkflowKind::Rnaseq { replicates } => {
            let params = RnaseqParams {
                replicates_per_condition: *replicates,
                ..RnaseqParams::default()
            };
            for (path, size) in params.input_files() {
                deployment.runtime.cluster.prestage(&path, size);
            }
            Box::new(
                hiway_lang::galaxy::parse_galaxy(
                    &params.galaxy_json(),
                    &params.input_bindings(),
                    &params.tool_profiles(),
                )
                .map_err(boxed)?,
            )
        }
        WorkflowKind::Montage { images } => {
            let params = MontageParams {
                images: *images,
                ..MontageParams::default()
            };
            for (path, size) in params.input_files() {
                deployment.runtime.cluster.prestage(&path, size);
            }
            Box::new(hiway_lang::dax::parse_dax(&params.dax_source()).map_err(boxed)?)
        }
        WorkflowKind::Kmeans { partitions } => {
            let params = KmeansParams {
                partitions: *partitions,
                ..KmeansParams::default()
            };
            for (path, size) in params.input_files() {
                deployment.runtime.cluster.prestage(&path, size);
            }
            deployment
                .runtime
                .cluster
                .prestage("/kmeans/cents_init.dat", 65_536);
            Box::new(
                CuneiformWorkflow::parse("kmeans", &params.cuneiform_source(), recipe.seed)
                    .map_err(boxed)?,
            )
        }
    };

    for (path, size) in &recipe.extra_stage {
        deployment.runtime.cluster.prestage(path, *size);
    }

    // 3. AM configuration.
    let mut config = match recipe.container {
        ContainerKind::WholeNode => profiles::whole_node_config(&node_proto),
        ContainerKind::Fixed { vcores, memory_mb } => HiwayConfig {
            container_resource: Resource::new(vcores, memory_mb),
            ..HiwayConfig::default()
        },
    };
    config.scheduler = recipe.scheduler;
    config.seed = recipe.seed;

    let workers = deployment.worker_ids();
    Ok(CookedExperiment {
        runtime: deployment.runtime,
        config,
        source,
        workers,
    })
}

/// Parses and cooks in one step.
pub fn cook_str(text: &str) -> Result<CookedExperiment, RecipeError> {
    cook(&crate::parse::parse_recipe(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_recipe;
    use hiway_provdb::ProvDb;

    #[test]
    fn cook_and_run_a_small_montage() {
        let recipe = parse_recipe(
            "cluster ec2 workers=4 node=m3.large seed=5\n\
             scheduler fcfs\n\
             container vcores=1 memory=1024\n\
             workflow montage images=5\n",
        )
        .unwrap();
        let cooked = cook(&recipe).unwrap();
        assert_eq!(cooked.workers.len(), 4);
        let mut rt = cooked.runtime;
        let idx = rt.submit(cooked.source, cooked.config, ProvDb::new());
        let reports = rt.run_to_completion();
        assert!(rt.error_of(idx).is_none(), "{:?}", rt.error_of(idx));
        assert_eq!(reports[idx].tasks.len(), 5 + 4 + 2 + 5 + 4);
        assert!(rt.cluster.hdfs.exists("out/mosaic.jpg"));
    }

    #[test]
    fn cook_and_run_a_tiny_kmeans() {
        let cooked = cook_str(
            "cluster local nodes=3 seed=2\n\
             workflow kmeans partitions=2\n",
        )
        .unwrap();
        let mut rt = cooked.runtime;
        let idx = rt.submit(cooked.source, cooked.config, ProvDb::new());
        let reports = rt.run_to_completion();
        assert!(rt.error_of(idx).is_none(), "{:?}", rt.error_of(idx));
        assert!(reports[idx].tasks.len() >= 3, "at least one k-means round");
    }

    #[test]
    fn snv_table2_registers_external_inputs() {
        let cooked = cook_str(
            "cluster ec2 workers=1 node=m3.large seed=7\n\
             scheduler fcfs\n\
             container whole-node\n\
             workflow snv profile=table2 samples=1\n",
        )
        .unwrap();
        assert!(cooked
            .runtime
            .cluster
            .external_file("s3://1000genomes/s0_f0.fq")
            .is_some());
        // S3-streamed inputs require an EC2 cluster.
        let err = match cook_str("cluster local nodes=2\nworkflow snv profile=table2 samples=1\n") {
            Err(e) => e,
            Ok(_) => panic!("local cluster must not cook an S3-streamed workflow"),
        };
        assert!(err.message.contains("S3"), "{}", err.message);
    }

    #[test]
    fn unknown_node_type_rejected() {
        let err = match cook_str("cluster ec2 workers=1 node=cray\nworkflow montage\n") {
            Err(e) => e,
            Ok(_) => panic!("unknown node type must not cook"),
        };
        assert!(err.message.contains("cray"));
    }
}

#[cfg(test)]
mod rnaseq_tests {
    use super::cook_str;
    use hiway_provdb::ProvDb;

    #[test]
    fn cook_and_run_rnaseq_recipe() {
        let cooked = cook_str(
            "cluster ec2 workers=2 node=c3.2xlarge seed=8\n\
             scheduler data-aware\n\
             container whole-node\n\
             workflow rnaseq replicates=1\n",
        )
        .expect("cooks");
        let mut rt = cooked.runtime;
        let idx = rt.submit(cooked.source, cooked.config, ProvDb::new());
        let reports = rt.run_to_completion();
        assert!(rt.error_of(idx).is_none(), "{:?}", rt.error_of(idx));
        // 2 lanes × (tophat + cufflinks) + cuffmerge + cuffdiff.
        assert_eq!(reports[idx].tasks.len(), 6);
        assert_eq!(reports[idx].language, "galaxy");
    }

    #[test]
    fn adaptive_scheduler_recipe_cooks_with_iterative_workflow() {
        // Unlike heft/round-robin, adaptive is dynamic: legal for k-means.
        let cooked = cook_str(
            "cluster local nodes=2 seed=3\n\
             scheduler adaptive\n\
             workflow kmeans partitions=2\n",
        )
        .expect("adaptive + iterative is allowed");
        let mut rt = cooked.runtime;
        let idx = rt.submit(cooked.source, cooked.config, ProvDb::new());
        rt.run_to_completion();
        assert!(rt.error_of(idx).is_none(), "{:?}", rt.error_of(idx));
    }
}
