//! The recipe text format.
//!
//! Line-oriented: `#` starts a comment; each directive is a keyword
//! followed by positional words and `key=value` pairs.

use std::collections::HashMap;
use std::fmt;

use hiway_core::SchedulerPolicy;

/// A parse/validation error with line context.
#[derive(Clone, Debug)]
pub struct RecipeError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for RecipeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "recipe error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for RecipeError {}

/// Which infrastructure to stand up.
#[derive(Clone, Debug, PartialEq)]
pub enum ClusterKind {
    /// The paper's 24-node Xeon cluster behind one 1 GbE switch.
    Local { nodes: usize },
    /// EC2 virtual cluster with dedicated master nodes and S3 attached.
    Ec2 { workers: usize, node: String },
}

/// Container sizing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ContainerKind {
    /// Fixed vcores/memory per container.
    Fixed { vcores: u32, memory_mb: u64 },
    /// One whole worker node per container, in-container multithreading.
    WholeNode,
}

/// Which workflow to generate.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkflowKind {
    Snv { profile: String, samples: usize },
    Rnaseq { replicates: usize },
    Montage { images: usize },
    Kmeans { partitions: usize },
}

/// A parsed recipe.
#[derive(Clone, Debug)]
pub struct Recipe {
    pub cluster: ClusterKind,
    pub scheduler: SchedulerPolicy,
    pub container: ContainerKind,
    pub workflow: WorkflowKind,
    /// Extra files to stage beyond the workflow's own inputs.
    pub extra_stage: Vec<(String, u64)>,
    pub seed: u64,
}

fn err(line: usize, message: impl Into<String>) -> RecipeError {
    RecipeError {
        line,
        message: message.into(),
    }
}

struct Directive<'a> {
    line: usize,
    words: Vec<&'a str>,
    kv: HashMap<&'a str, &'a str>,
}

impl<'a> Directive<'a> {
    fn get_usize(&self, key: &str, default: usize) -> Result<usize, RecipeError> {
        match self.kv.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(self.line, format!("{key}={v} is not a number"))),
        }
    }

    fn get_u64(&self, key: &str, default: u64) -> Result<u64, RecipeError> {
        match self.kv.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(self.line, format!("{key}={v} is not a number"))),
        }
    }
}

/// Parses a recipe document.
pub fn parse_recipe(text: &str) -> Result<Recipe, RecipeError> {
    let mut cluster = None;
    let mut scheduler = SchedulerPolicy::DataAware;
    let mut container = ContainerKind::Fixed {
        vcores: 1,
        memory_mb: 1024,
    };
    let mut workflow = None;
    let mut extra_stage = Vec::new();
    let mut seed = 0u64;

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = Vec::new();
        let mut kv = HashMap::new();
        for token in line.split_whitespace() {
            match token.split_once('=') {
                Some((k, v)) => {
                    kv.insert(k, v);
                }
                None => words.push(token),
            }
        }
        let d = Directive {
            line: line_no,
            words,
            kv,
        };
        match d.words.first().copied() {
            Some("cluster") => {
                cluster = Some(match d.words.get(1).copied() {
                    Some("local") => ClusterKind::Local {
                        nodes: d.get_usize("nodes", 24)?,
                    },
                    Some("ec2") => ClusterKind::Ec2 {
                        workers: d.get_usize("workers", 1)?,
                        node: d.kv.get("node").unwrap_or(&"m3.large").to_string(),
                    },
                    other => return Err(err(line_no, format!("unknown cluster kind {other:?}"))),
                });
                seed = d.get_u64("seed", seed)?;
            }
            Some("scheduler") => {
                scheduler = match d.words.get(1).copied() {
                    Some("fcfs") => SchedulerPolicy::Fcfs,
                    Some("data-aware") => SchedulerPolicy::DataAware,
                    Some("round-robin") => SchedulerPolicy::RoundRobin,
                    Some("heft") => SchedulerPolicy::Heft,
                    Some("adaptive") => SchedulerPolicy::Adaptive,
                    other => return Err(err(line_no, format!("unknown scheduler {other:?}"))),
                };
            }
            Some("container") => {
                container = match d.words.get(1).copied() {
                    Some("whole-node") => ContainerKind::WholeNode,
                    _ => ContainerKind::Fixed {
                        vcores: d.get_usize("vcores", 1)? as u32,
                        memory_mb: d.get_u64("memory", 1024)?,
                    },
                };
            }
            Some("stage") => {
                let path = d
                    .words
                    .get(1)
                    .ok_or_else(|| err(line_no, "stage needs a path"))?;
                let size = d
                    .words
                    .get(2)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(line_no, "stage needs a byte size"))?;
                extra_stage.push((path.to_string(), size));
            }
            Some("workflow") => {
                workflow = Some(match d.words.get(1).copied() {
                    Some("snv") => WorkflowKind::Snv {
                        profile: d.kv.get("profile").unwrap_or(&"table2").to_string(),
                        samples: d.get_usize("samples", 1)?,
                    },
                    Some("rnaseq") => WorkflowKind::Rnaseq {
                        replicates: d.get_usize("replicates", 3)?,
                    },
                    Some("montage") => WorkflowKind::Montage {
                        images: d.get_usize("images", 11)?,
                    },
                    Some("kmeans") => WorkflowKind::Kmeans {
                        partitions: d.get_usize("partitions", 8)?,
                    },
                    other => return Err(err(line_no, format!("unknown workflow {other:?}"))),
                });
            }
            Some(other) => return Err(err(line_no, format!("unknown directive '{other}'"))),
            None => {}
        }
    }

    let cluster = cluster.ok_or_else(|| err(0, "recipe has no 'cluster' directive"))?;
    let workflow = workflow.ok_or_else(|| err(0, "recipe has no 'workflow' directive"))?;
    // Static schedulers cannot run the iterative languages.
    if scheduler.is_static() {
        if let WorkflowKind::Snv { .. } | WorkflowKind::Kmeans { .. } = workflow {
            return Err(err(
                0,
                format!(
                    "scheduler '{}' is static and cannot run an iterative (Cuneiform) workflow",
                    scheduler.name()
                ),
            ));
        }
    }
    Ok(Recipe {
        cluster,
        scheduler,
        container,
        workflow,
        extra_stage,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_recipe() {
        let r = parse_recipe(
            "# a comment\n\
             cluster ec2 workers=8 node=m3.large seed=42\n\
             scheduler fcfs\n\
             container whole-node\n\
             stage /ref/genome.fa 1000000\n\
             workflow snv profile=table2 samples=8\n",
        )
        .unwrap();
        assert_eq!(
            r.cluster,
            ClusterKind::Ec2 {
                workers: 8,
                node: "m3.large".into()
            }
        );
        assert_eq!(r.scheduler, SchedulerPolicy::Fcfs);
        assert_eq!(r.container, ContainerKind::WholeNode);
        assert_eq!(
            r.extra_stage,
            vec![("/ref/genome.fa".to_string(), 1_000_000)]
        );
        assert_eq!(
            r.workflow,
            WorkflowKind::Snv {
                profile: "table2".into(),
                samples: 8
            }
        );
        assert_eq!(r.seed, 42);
    }

    #[test]
    fn defaults_are_sensible() {
        let r = parse_recipe("cluster local nodes=4\nworkflow montage\n").unwrap();
        assert_eq!(r.scheduler, SchedulerPolicy::DataAware);
        assert_eq!(
            r.container,
            ContainerKind::Fixed {
                vcores: 1,
                memory_mb: 1024
            }
        );
        assert_eq!(r.workflow, WorkflowKind::Montage { images: 11 });
    }

    #[test]
    fn missing_sections_rejected() {
        assert!(parse_recipe("workflow montage\n").is_err());
        assert!(parse_recipe("cluster local\n").is_err());
    }

    #[test]
    fn bad_directives_carry_line_numbers() {
        let e = parse_recipe("cluster local\nbogus\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_recipe("cluster martian\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse_recipe("cluster ec2 workers=many\nworkflow montage\n").unwrap_err();
        assert!(e.message.contains("not a number"));
    }

    #[test]
    fn static_scheduler_with_iterative_workflow_rejected() {
        let e = parse_recipe("cluster local\nscheduler heft\nworkflow kmeans\n").unwrap_err();
        assert!(e.message.contains("iterative"), "{}", e.message);
        // … but HEFT over the static Montage DAX is fine.
        assert!(parse_recipe("cluster local\nscheduler heft\nworkflow montage\n").is_ok());
    }
}
