//! # hiway-recipes — reproducible experiment setup (paper §3.6)
//!
//! The original system ships Chef recipes, orchestrated by Karamel, that
//! stand up Hadoop + Hi-WAY and stage "a large variety of execution-ready
//! workflows… including obtaining their input data, placing it in HDFS,
//! and installing any software dependencies" — the paper's experiments
//! are all reproducible "with only a few clicks" from those recipes.
//!
//! This crate is the simulated equivalent: a small declarative text format
//! that describes an infrastructure, a workflow, and its input staging,
//! plus a `cook` step that turns the description into a ready-to-run
//! [`hiway_core::driver::Runtime`] with the workflow parsed and every
//! input either pre-staged in HDFS or registered on an external service.
//!
//! ```text
//! # SNV weak-scaling rung: 8 workers, one sample per worker
//! cluster ec2 workers=8 node=m3.large seed=42
//! scheduler fcfs
//! container whole-node
//! workflow snv profile=table2 samples=8
//! ```

pub mod cook;
pub mod parse;

pub use cook::{cook, cook_str, CookedExperiment};
pub use parse::{parse_recipe, ClusterKind, ContainerKind, Recipe, RecipeError, WorkflowKind};
