//! Property tests of the NameNode: placement, locality, and
//! failure-recovery invariants.

use proptest::prelude::*;

use hiway_hdfs::{Hdfs, HdfsConfig};
use hiway_sim::NodeId;

proptest! {
    /// Replica invariants for arbitrary namespaces: replica sets are
    /// duplicate-free, sized `min(replication, alive nodes)`, and the
    /// writer holds the first replica.
    #[test]
    fn placement_invariants(
        nodes in 1usize..12,
        replication in 1u16..5,
        files in proptest::collection::vec((0u64..2_000_000_000, 0u32..12), 1..10),
        seed in 0u64..1000,
    ) {
        let config = HdfsConfig { block_size: 64 << 20, replication };
        let mut fs = Hdfs::new(nodes, config, seed);
        for (i, (size, writer)) in files.iter().enumerate() {
            let writer = NodeId(writer % nodes as u32);
            let path = format!("/f{i}");
            fs.create(&path, *size, writer).expect("fresh path");
            let st = fs.status(&path).expect("exists");
            prop_assert_eq!(st.size, *size);
            let expected_replicas = (replication as usize).min(nodes);
            let total: u64 = st.blocks.iter().map(|b| b.size).sum();
            prop_assert_eq!(total, *size, "block sizes sum to the file size");
            for block in &st.blocks {
                prop_assert_eq!(block.replicas.len(), expected_replicas);
                let mut uniq = block.replicas.clone();
                uniq.sort();
                uniq.dedup();
                prop_assert_eq!(uniq.len(), block.replicas.len(), "duplicate replica");
                prop_assert_eq!(block.replicas[0], writer, "writer holds first replica");
            }
            // Locality bounds.
            let paths = vec![path.clone()];
            for n in 0..nodes {
                let frac = fs.locality_fraction(&paths, NodeId(n as u32));
                prop_assert!((0.0..=1.0).contains(&frac));
            }
            if *size > 0 {
                prop_assert_eq!(fs.locality_fraction(&paths, writer), 1.0);
            }
        }
    }

    /// Read plans cover exactly the file's bytes, from alive sources only.
    #[test]
    fn read_plans_are_complete(
        nodes in 2usize..10,
        size in 1u64..3_000_000_000,
        seed in 0u64..1000,
    ) {
        let mut fs = Hdfs::new(nodes, HdfsConfig::default(), seed);
        fs.create("/data", size, NodeId(0)).unwrap();
        for reader in 0..nodes {
            let plan = fs.read_plan("/data", NodeId(reader as u32)).unwrap();
            prop_assert_eq!(plan.total_bytes(), size);
            prop_assert_eq!(plan.local_bytes() + plan.remote_bytes(), size);
        }
    }

    /// After any single-node failure, data stays readable and
    /// re-replication restores the full factor on the survivors.
    #[test]
    fn failure_recovery_restores_replication(
        nodes in 4usize..10,
        files in proptest::collection::vec(1u64..500_000_000, 1..6),
        victim in 0u32..10,
        seed in 0u64..1000,
    ) {
        let mut fs = Hdfs::new(nodes, HdfsConfig::default(), seed);
        for (i, size) in files.iter().enumerate() {
            fs.create(&format!("/f{i}"), *size, NodeId(i as u32 % nodes as u32)).unwrap();
        }
        let victim = NodeId(victim % nodes as u32);
        fs.fail_node(victim).unwrap();
        // Everything still readable (replication 3 > 1 failure).
        for i in 0..files.len() {
            let plan = fs.read_plan(&format!("/f{i}"), victim).unwrap();
            prop_assert_eq!(plan.local_bytes(), 0, "dead node serves nothing");
        }
        let copies = fs.re_replicate().unwrap();
        // Copy sources and destinations are alive and distinct.
        for (src, dst, bytes) in &copies {
            prop_assert!(fs.is_alive(*src));
            prop_assert!(fs.is_alive(*dst));
            prop_assert_ne!(src, dst);
            prop_assert!(*bytes > 0);
        }
        // Full replication restored on survivors.
        let expected = 3usize.min(nodes - 1);
        for i in 0..files.len() {
            let st = fs.status(&format!("/f{i}")).unwrap();
            for block in &st.blocks {
                prop_assert_eq!(block.replicas.len(), expected);
                prop_assert!(!block.replicas.contains(&victim));
            }
        }
    }

    /// `delete` returns every byte of accounting.
    #[test]
    fn delete_is_accounting_neutral(
        nodes in 1usize..8,
        files in proptest::collection::vec(0u64..1_000_000_000, 1..8),
        seed in 0u64..1000,
    ) {
        let mut fs = Hdfs::new(nodes, HdfsConfig::default(), seed);
        for (i, size) in files.iter().enumerate() {
            fs.create(&format!("/f{i}"), *size, NodeId(0)).unwrap();
        }
        for i in 0..files.len() {
            fs.delete(&format!("/f{i}")).unwrap();
        }
        for n in 0..nodes {
            prop_assert_eq!(fs.used_on(NodeId(n as u32)), 0);
        }
        prop_assert!(fs.is_empty());
    }
}
