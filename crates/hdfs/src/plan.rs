//! Transfer plans: the NameNode's answer to "how do I move these bytes?".
//!
//! Plans are pure data. The metadata plane ([`crate::fs::Hdfs`]) computes
//! them; [`crate::exec`] (or the worker-container layer in `hiway-core`)
//! turns them into engine activities. Keeping the two apart makes the
//! placement logic trivially testable.

use hiway_sim::NodeId;

/// Where a read segment's bytes come from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TransferSource {
    /// A replica on the reading node itself — local disk only.
    Local,
    /// A replica on another DataNode — remote disk, both NICs, switch.
    Remote(NodeId),
}

/// A contiguous amount of data served from one source during a read.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReadSegment {
    pub source: TransferSource,
    pub bytes: u64,
}

/// The plan for reading one file onto one node. Segments from different
/// sources proceed concurrently, as HDFS client streams do in practice.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReadPlan {
    pub path: String,
    pub reader: Option<NodeId>,
    pub segments: Vec<ReadSegment>,
}

impl ReadPlan {
    pub fn total_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).sum()
    }

    pub fn local_bytes(&self) -> u64 {
        self.segments
            .iter()
            .filter(|s| s.source == TransferSource::Local)
            .map(|s| s.bytes)
            .sum()
    }

    pub fn remote_bytes(&self) -> u64 {
        self.total_bytes() - self.local_bytes()
    }
}

/// The plan for writing one file from one node: the full size goes to the
/// local disk (first replica) and to each pipeline target (further
/// replicas, one flow per target node).
#[derive(Clone, Debug, PartialEq)]
pub struct WritePlan {
    pub path: String,
    pub writer: NodeId,
    /// Bytes written to the writer's own disk (0 if the writer is not a
    /// DataNode or the first replica landed elsewhere).
    pub local_bytes: u64,
    /// (target node, bytes) for each remote replica.
    pub remote: Vec<(NodeId, u64)>,
}

impl WritePlan {
    pub fn total_network_bytes(&self) -> u64 {
        self.remote.iter().map(|(_, b)| *b).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_plan_byte_accounting() {
        let plan = ReadPlan {
            path: "/x".into(),
            reader: Some(NodeId(0)),
            segments: vec![
                ReadSegment {
                    source: TransferSource::Local,
                    bytes: 100,
                },
                ReadSegment {
                    source: TransferSource::Remote(NodeId(1)),
                    bytes: 50,
                },
                ReadSegment {
                    source: TransferSource::Remote(NodeId(2)),
                    bytes: 25,
                },
            ],
        };
        assert_eq!(plan.total_bytes(), 175);
        assert_eq!(plan.local_bytes(), 100);
        assert_eq!(plan.remote_bytes(), 75);
    }

    #[test]
    fn write_plan_network_bytes() {
        let plan = WritePlan {
            path: "/y".into(),
            writer: NodeId(0),
            local_bytes: 10,
            remote: vec![(NodeId(1), 10), (NodeId(2), 10)],
        };
        assert_eq!(plan.total_network_bytes(), 20);
    }
}
