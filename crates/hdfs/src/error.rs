//! HDFS error type.

use std::fmt;

/// Errors surfaced by the simulated NameNode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HdfsError {
    /// The path does not exist in the namespace.
    NotFound(String),
    /// `create` on a path that already exists.
    AlreadyExists(String),
    /// No alive DataNode can host a replica.
    NoAliveDatanodes,
    /// Every replica of a block of this file is on dead nodes.
    DataLost(String),
    /// The referenced DataNode id is outside the cluster.
    UnknownNode(u32),
}

impl fmt::Display for HdfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdfsError::NotFound(p) => write!(f, "hdfs: path not found: {p}"),
            HdfsError::AlreadyExists(p) => write!(f, "hdfs: path already exists: {p}"),
            HdfsError::NoAliveDatanodes => write!(f, "hdfs: no alive datanodes"),
            HdfsError::DataLost(p) => write!(f, "hdfs: all replicas lost for: {p}"),
            HdfsError::UnknownNode(n) => write!(f, "hdfs: unknown datanode {n}"),
        }
    }
}

impl std::error::Error for HdfsError {}
