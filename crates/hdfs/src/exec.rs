//! Turns transfer plans into engine activities.
//!
//! A worker container's lifecycle (paper §3.1) is: (i) obtain the task's
//! input data from HDFS, (ii) invoke the task's commands, (iii) store
//! outputs back into HDFS. Steps (i) and (iii) are the plans produced by
//! the NameNode; this module starts the corresponding disk and network
//! activities. Completion tracking (waiting for *all* activities of a
//! stage) is left to the caller, which owns the engine poll loop.

use hiway_sim::{Activity, ActivityId, Endpoint, Engine, NodeId};

use crate::plan::{ReadPlan, TransferSource, WritePlan};

/// Starts all activities of a read (stage-in) plan, tagging each with
/// `tag`. Returns the activity handles; the stage is complete when all of
/// them have completed. Zero-byte plans return no activities.
pub fn start_read<T: Clone>(engine: &mut Engine<T>, plan: &ReadPlan, tag: T) -> Vec<ActivityId> {
    let reader = plan
        .reader
        .expect("read plan must name the reading node to be executable");
    let mut ids = Vec::new();
    for seg in &plan.segments {
        if seg.bytes == 0 {
            continue;
        }
        let act = match seg.source {
            TransferSource::Local => Activity::DiskRead { node: reader },
            TransferSource::Remote(src) => Activity::Flow {
                src: Endpoint::Node(src),
                dst: Endpoint::Node(reader),
                src_disk: true,
                dst_disk: true,
            },
        };
        ids.push(engine.start(act, seg.bytes as f64, tag.clone()));
    }
    ids
}

/// Starts all activities of a write (stage-out) plan: the local replica
/// write plus one pipeline flow per remote replica target.
pub fn start_write<T: Clone>(engine: &mut Engine<T>, plan: &WritePlan, tag: T) -> Vec<ActivityId> {
    let mut ids = Vec::new();
    if plan.local_bytes > 0 {
        ids.push(engine.start(
            Activity::DiskWrite { node: plan.writer },
            plan.local_bytes as f64,
            tag.clone(),
        ));
    }
    for &(target, bytes) in &plan.remote {
        if bytes == 0 {
            continue;
        }
        ids.push(engine.start(
            Activity::Flow {
                src: Endpoint::Node(plan.writer),
                dst: Endpoint::Node(target),
                src_disk: false,
                dst_disk: true,
            },
            bytes as f64,
            tag.clone(),
        ));
    }
    ids
}

/// Starts the flows of a re-replication batch (`(src, dst, bytes)` from
/// [`crate::fs::Hdfs::re_replicate`]).
pub fn start_copies<T: Clone>(
    engine: &mut Engine<T>,
    copies: &[(NodeId, NodeId, u64)],
    tag: T,
) -> Vec<ActivityId> {
    copies
        .iter()
        .filter(|(_, _, b)| *b > 0)
        .map(|&(src, dst, bytes)| {
            engine.start(
                Activity::Flow {
                    src: Endpoint::Node(src),
                    dst: Endpoint::Node(dst),
                    src_disk: true,
                    dst_disk: true,
                },
                bytes as f64,
                tag.clone(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::{Hdfs, HdfsConfig};
    use hiway_sim::{ClusterSpec, NodeSpec};

    fn setup(n: usize) -> (Engine<u32>, Hdfs) {
        let spec = ClusterSpec::homogeneous(n, "n", &NodeSpec::m3_large("p"));
        (Engine::new(spec), Hdfs::new(n, HdfsConfig::default(), 11))
    }

    fn drain(engine: &mut Engine<u32>) -> usize {
        let mut fired = 0;
        while let Some(evts) = engine.step() {
            fired += evts.len();
        }
        fired
    }

    #[test]
    fn write_then_local_read_round_trip() {
        let (mut e, mut h) = setup(4);
        let wp = h.create("/data", 180 << 20, NodeId(0)).unwrap();
        let ids = start_write(&mut e, &wp, 1);
        // Local write + pipeline flows to the remote replica holders (the
        // per-block targets are random, so 2 or 3 distinct nodes).
        assert!(ids.len() >= 3 && ids.len() <= 4, "got {}", ids.len());
        assert_eq!(
            wp.total_network_bytes(),
            2 * (180 << 20),
            "2 remote replicas"
        );
        assert_eq!(drain(&mut e), ids.len());
        let write_done = e.now();
        assert!(write_done.as_secs() > 0.0);

        let rp = h.read_plan("/data", NodeId(0)).unwrap();
        let ids = start_read(&mut e, &rp, 2);
        assert_eq!(ids.len(), 1, "fully local read");
        drain(&mut e);
        // 180 MiB at 220 MB/s disk read ≈ 0.86 s.
        let read_secs = e.now().since(write_done);
        assert!((read_secs - (180 << 20) as f64 / 220.0e6).abs() < 0.05);
    }

    #[test]
    fn remote_read_is_slower_than_local() {
        let (mut e, mut h) = setup(8);
        h.create("/data", 256 << 20, NodeId(1)).unwrap();
        let st = h.status("/data").unwrap();
        let outsider = (0..8)
            .map(NodeId)
            .find(|n| st.blocks.iter().all(|b| !b.replicas.contains(n)))
            .expect("8 nodes, 3 replicas per block");

        // Local read timing.
        let rp_local = h.read_plan("/data", NodeId(1)).unwrap();
        let t0 = e.now();
        start_read(&mut e, &rp_local, 1);
        drain(&mut e);
        let local_secs = e.now().since(t0);

        // Remote read timing (NIC-bound at 87.5 MB/s vs disk 220 MB/s).
        let rp_remote = h.read_plan("/data", outsider).unwrap();
        let t1 = e.now();
        start_read(&mut e, &rp_remote, 2);
        drain(&mut e);
        let remote_secs = e.now().since(t1);
        assert!(
            remote_secs > local_secs * 1.5,
            "remote {remote_secs} vs local {local_secs}"
        );
    }

    #[test]
    fn re_replication_copies_execute() {
        let (mut e, mut h) = setup(5);
        h.create("/data", 64 << 20, NodeId(2)).unwrap();
        h.fail_node(NodeId(2)).unwrap();
        let copies = h.re_replicate().unwrap();
        let ids = start_copies(&mut e, &copies, 9);
        assert_eq!(ids.len(), copies.len());
        assert!(drain(&mut e) >= 1);
    }

    #[test]
    fn empty_plans_start_nothing() {
        let (mut e, mut h) = setup(3);
        h.create("/empty", 0, NodeId(0)).unwrap();
        let rp = h.read_plan("/empty", NodeId(1)).unwrap();
        assert!(start_read(&mut e, &rp, 1).is_empty());
        let wp = h.create("/empty2", 0, NodeId(0)).unwrap();
        assert!(start_write(&mut e, &wp, 2).is_empty());
    }
}
