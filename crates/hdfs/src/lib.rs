//! # hiway-hdfs — simulated HDFS
//!
//! Hi-WAY stores every workflow input, output, and intermediate file in
//! HDFS and relies on three of its properties (paper §3.1, §3.4):
//!
//! 1. **Replicated block storage** — files are split into blocks, each
//!    stored on `replication` (default 3) DataNodes, so data survives the
//!    crash of a storage node;
//! 2. **Locality metadata** — the data-aware scheduler asks, for every
//!    pending task, what fraction of its input bytes is already present on
//!    the node that just received a free container;
//! 3. **Realistic transfer costs** — reading a block locally touches only
//!    the local disk, while a remote read streams from the remote disk
//!    through both NICs (and the shared switch, when one is configured).
//!
//! This crate implements the NameNode metadata plane (namespace, block
//! placement, replica tracking, failure handling and re-replication)
//! and compiles reads/writes into *plans* of disk and network activities
//! that the caller executes on the [`hiway_sim::Engine`].

pub mod error;
pub mod exec;
pub mod fs;
pub mod plan;

pub use error::HdfsError;
pub use fs::{BlockInfo, FileStatus, Hdfs, HdfsConfig};
pub use plan::{ReadPlan, ReadSegment, TransferSource, WritePlan};
