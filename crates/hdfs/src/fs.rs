//! The NameNode metadata plane: namespace, block placement, locality
//! queries, DataNode failure, and re-replication.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use hiway_obs::Tracer;
use hiway_sim::NodeId;

use crate::error::HdfsError;
use crate::plan::{ReadPlan, ReadSegment, TransferSource, WritePlan};

/// NameNode configuration.
#[derive(Clone, Copy, Debug)]
pub struct HdfsConfig {
    /// Block size in bytes. HDFS's classic default of 64 MiB, which the
    /// paper's Hadoop 2.x deployments used.
    pub block_size: u64,
    /// Replication factor (default 3).
    pub replication: u16,
}

impl Default for HdfsConfig {
    fn default() -> HdfsConfig {
        HdfsConfig {
            block_size: 64 << 20,
            replication: 3,
        }
    }
}

/// One block of a file and the DataNodes currently holding replicas.
#[derive(Clone, Debug)]
pub struct BlockInfo {
    pub size: u64,
    pub replicas: Vec<NodeId>,
}

/// Public view of a file's metadata.
#[derive(Clone, Debug)]
pub struct FileStatus {
    pub path: String,
    pub size: u64,
    pub blocks: Vec<BlockInfo>,
}

#[derive(Clone, Debug)]
struct FileMeta {
    size: u64,
    blocks: Vec<BlockInfo>,
}

/// Locality-cache key: (canonical task-input-set string, node index).
type LocalityKey = (String, u32);
/// Locality-cache value: (epoch computed in, local bytes, readable bytes).
type LocalityEntry = (u64, u64, u64);

/// The simulated NameNode. All operations are metadata-only; data movement
/// happens in the engine via the plans these methods return.
pub struct Hdfs {
    config: HdfsConfig,
    files: BTreeMap<String, FileMeta>,
    alive: Vec<bool>,
    used_bytes: Vec<u64>,
    rng: StdRng,
    /// Bumped on every metadata mutation that can change locality
    /// (create/delete/node death/revival/re-replication). Cached locality
    /// answers are valid only for the epoch they were computed in.
    epoch: u64,
    /// Memoized `(local, readable-total)` byte counts per (task-input-set,
    /// node) pair, so the data-aware scheduler's per-candidate queries stop
    /// rescanning every block list (O(files × blocks × replicas)) on each
    /// container allocation.
    locality_cache: RefCell<HashMap<LocalityKey, LocalityEntry>>,
    /// Observability sink (disabled by default): block read/write volumes
    /// and locality-cache hit/miss counters.
    tracer: Tracer,
}

impl Hdfs {
    /// Creates a NameNode managing `num_datanodes` DataNodes (one per
    /// cluster node, by convention `NodeId(i)` for `i < num_datanodes`).
    pub fn new(num_datanodes: usize, config: HdfsConfig, seed: u64) -> Hdfs {
        Hdfs {
            config,
            files: BTreeMap::new(),
            alive: vec![true; num_datanodes],
            used_bytes: vec![0; num_datanodes],
            rng: StdRng::seed_from_u64(seed),
            epoch: 0,
            locality_cache: RefCell::new(HashMap::new()),
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches an observability tracer (shared with the other layers).
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
    }

    /// Current mutation epoch (exposed for cache-behaviour tests).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn bump_epoch(&mut self) {
        self.epoch += 1;
        // Drop stale entries wholesale once the map gets large; otherwise
        // let epoch checks filter them (mutations are frequent during
        // stage-out bursts, and clearing on every bump would defeat the
        // cache for the queries in between).
        if self.locality_cache.borrow().len() > 4096 {
            self.locality_cache.borrow_mut().clear();
        }
    }

    pub fn config(&self) -> &HdfsConfig {
        &self.config
    }

    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    pub fn len(&self, path: &str) -> Result<u64, HdfsError> {
        self.files
            .get(path)
            .map(|f| f.size)
            .ok_or_else(|| HdfsError::NotFound(path.to_string()))
    }

    /// Stable content digest of a file, usable as a memoization key
    /// component across processes and runs. The simulation models file
    /// *metadata* rather than bytes, so the digest is FNV-1a 64 over the
    /// canonical identity we do track — path and size — which is exactly
    /// what stays invariant when the same workflow stages the same inputs
    /// again. Placement (block replicas) deliberately does not contribute:
    /// two runs with different block placement but identical logical
    /// content must produce identical digests.
    pub fn content_digest(&self, path: &str) -> Result<u64, HdfsError> {
        let size = self.len(path)?;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in path.as_bytes().iter().chain(size.to_le_bytes().iter()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Ok(h)
    }

    /// True when the namespace is empty.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    pub fn status(&self, path: &str) -> Result<FileStatus, HdfsError> {
        let meta = self
            .files
            .get(path)
            .ok_or_else(|| HdfsError::NotFound(path.to_string()))?;
        Ok(FileStatus {
            path: path.to_string(),
            size: meta.size,
            blocks: meta.blocks.clone(),
        })
    }

    /// Bytes stored on a DataNode (sum over replicas).
    pub fn used_on(&self, node: NodeId) -> u64 {
        self.used_bytes.get(node.index()).copied().unwrap_or(0)
    }

    fn alive_nodes(&self) -> Vec<NodeId> {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, a)| **a)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Registers a new file written from `writer` and returns the plan of
    /// disk/network work the write costs. The first replica lands on the
    /// writer when it is an alive DataNode (HDFS's write-affinity rule,
    /// which is what makes data-aware scheduling pay off for chained
    /// tasks); remaining replicas go to distinct random alive nodes.
    pub fn create(
        &mut self,
        path: &str,
        size: u64,
        writer: NodeId,
    ) -> Result<WritePlan, HdfsError> {
        if self.files.contains_key(path) {
            return Err(HdfsError::AlreadyExists(path.to_string()));
        }
        let alive = self.alive_nodes();
        if alive.is_empty() {
            return Err(HdfsError::NoAliveDatanodes);
        }
        let writer_alive = writer.index() < self.alive.len() && self.alive[writer.index()];

        let mut blocks = Vec::new();
        let mut remote_bytes: BTreeMap<u32, u64> = BTreeMap::new();
        let mut local_bytes = 0u64;
        let mut remaining = size;
        // Zero-byte files still get one (empty) block for uniformity.
        loop {
            let bsize = remaining.min(self.config.block_size);
            remaining -= bsize;

            let mut replicas = Vec::with_capacity(self.config.replication as usize);
            if writer_alive {
                replicas.push(writer);
                local_bytes += bsize;
            }
            let mut others: Vec<NodeId> = alive
                .iter()
                .copied()
                .filter(|n| !(writer_alive && *n == writer))
                .collect();
            others.shuffle(&mut self.rng);
            for n in others {
                if replicas.len() >= self.config.replication as usize {
                    break;
                }
                replicas.push(n);
            }
            // Network cost: each replica other than the first one.
            for (i, n) in replicas.iter().enumerate() {
                if i == 0 {
                    if !writer_alive {
                        *remote_bytes.entry(n.0).or_default() += bsize;
                    }
                } else {
                    *remote_bytes.entry(n.0).or_default() += bsize;
                }
            }
            for n in &replicas {
                self.used_bytes[n.index()] += bsize;
            }
            blocks.push(BlockInfo {
                size: bsize,
                replicas,
            });
            if remaining == 0 {
                break;
            }
        }

        if self.tracer.is_enabled() {
            self.tracer.inc("hdfs.files_created", 1);
            self.tracer.inc("hdfs.blocks_written", blocks.len() as u64);
            self.tracer.inc("hdfs.bytes_written", size);
            self.tracer
                .observe("hdfs.write_mb", size as f64 / (1 << 20) as f64);
        }
        self.files
            .insert(path.to_string(), FileMeta { size, blocks });
        self.bump_epoch();
        Ok(WritePlan {
            path: path.to_string(),
            writer,
            local_bytes,
            remote: remote_bytes
                .into_iter()
                .map(|(n, b)| (NodeId(n), b))
                .collect(),
        })
    }

    /// Plans a read of `path` onto `reader`: every block is served from a
    /// local replica when one exists, otherwise from a random alive remote
    /// replica. Segments are merged per source node.
    pub fn read_plan(&mut self, path: &str, reader: NodeId) -> Result<ReadPlan, HdfsError> {
        let meta = self
            .files
            .get(path)
            .ok_or_else(|| HdfsError::NotFound(path.to_string()))?;
        let mut local = 0u64;
        let mut per_remote: BTreeMap<u32, u64> = BTreeMap::new();
        for block in &meta.blocks {
            let alive_replicas: Vec<NodeId> = block
                .replicas
                .iter()
                .copied()
                .filter(|n| self.alive[n.index()])
                .collect();
            if alive_replicas.is_empty() {
                return Err(HdfsError::DataLost(path.to_string()));
            }
            if alive_replicas.contains(&reader) {
                local += block.size;
            } else {
                let src = alive_replicas[self.rng.gen_range(0..alive_replicas.len())];
                *per_remote.entry(src.0).or_default() += block.size;
            }
        }
        if self.tracer.is_enabled() {
            self.tracer.inc("hdfs.reads_planned", 1);
            self.tracer.inc("hdfs.bytes_read_local", local);
            self.tracer
                .inc("hdfs.bytes_read_remote", per_remote.values().sum::<u64>());
        }
        let mut segments = Vec::new();
        if local > 0 {
            segments.push(ReadSegment {
                source: TransferSource::Local,
                bytes: local,
            });
        }
        for (n, bytes) in per_remote {
            segments.push(ReadSegment {
                source: TransferSource::Remote(NodeId(n)),
                bytes,
            });
        }
        Ok(ReadPlan {
            path: path.to_string(),
            reader: Some(reader),
            segments,
        })
    }

    /// Fraction of the readable bytes of `paths` that is already local to
    /// `node` — the quantity the data-aware scheduler maximizes (§3.4).
    /// Missing paths contribute zero local bytes but count their readable
    /// size if known; unknown paths are ignored entirely (e.g. a task
    /// input fetched from outside HDFS). Blocks whose every replica sits
    /// on a dead DataNode are unreadable from anywhere and count toward
    /// neither side of the fraction.
    pub fn locality_fraction(&self, paths: &[String], node: NodeId) -> f64 {
        let (local, total) = self.local_and_total(paths, node);
        if total == 0 {
            0.0
        } else {
            local as f64 / total as f64
        }
    }

    /// Absolute number of bytes of `paths` local to `node`.
    pub fn local_bytes(&self, paths: &[String], node: NodeId) -> u64 {
        self.local_and_total(paths, node).0
    }

    /// `(local, readable-total)` bytes of `paths` relative to `node`,
    /// served from the epoch-keyed cache when possible.
    fn local_and_total(&self, paths: &[String], node: NodeId) -> (u64, u64) {
        let key = (paths.join("\u{1f}"), node.0);
        if let Some(&(epoch, local, total)) = self.locality_cache.borrow().get(&key) {
            if epoch == self.epoch {
                self.tracer.inc("hdfs.locality_cache_hit", 1);
                return (local, total);
            }
        }
        self.tracer.inc("hdfs.locality_cache_miss", 1);
        // The query node's liveness is invariant across the scan: hoist it
        // out of the per-block loop (a dead node holds nothing locally).
        let node_alive = node.index() < self.alive.len() && self.alive[node.index()];
        let mut total = 0u64;
        let mut local = 0u64;
        for path in paths {
            if let Some(meta) = self.files.get(path) {
                for block in &meta.blocks {
                    if !block.replicas.iter().any(|r| self.alive[r.index()]) {
                        continue; // every replica dead: unreadable bytes
                    }
                    total += block.size;
                    if node_alive && block.replicas.contains(&node) {
                        local += block.size;
                    }
                }
            }
        }
        self.locality_cache
            .borrow_mut()
            .insert(key, (self.epoch, local, total));
        (local, total)
    }

    /// Removes a file from the namespace.
    pub fn delete(&mut self, path: &str) -> Result<(), HdfsError> {
        let meta = self
            .files
            .remove(path)
            .ok_or_else(|| HdfsError::NotFound(path.to_string()))?;
        for block in &meta.blocks {
            for n in &block.replicas {
                self.used_bytes[n.index()] = self.used_bytes[n.index()].saturating_sub(block.size);
            }
        }
        self.bump_epoch();
        Ok(())
    }

    /// Marks a DataNode dead. Files stay readable as long as each block
    /// retains one alive replica. Follow with [`Hdfs::re_replicate`] to
    /// restore the replication factor (returns copy plans to execute).
    pub fn fail_node(&mut self, node: NodeId) -> Result<(), HdfsError> {
        let idx = node.index();
        if idx >= self.alive.len() {
            return Err(HdfsError::UnknownNode(node.0));
        }
        self.alive[idx] = false;
        self.bump_epoch();
        Ok(())
    }

    /// Brings a DataNode back (without its old data — like a fresh disk).
    pub fn revive_node(&mut self, node: NodeId) -> Result<(), HdfsError> {
        let idx = node.index();
        if idx >= self.alive.len() {
            return Err(HdfsError::UnknownNode(node.0));
        }
        if !self.alive[idx] {
            self.alive[idx] = true;
            // Drop replica records pointing at the node: its disk is gone.
            self.used_bytes[idx] = 0;
            for meta in self.files.values_mut() {
                for block in &mut meta.blocks {
                    block.replicas.retain(|n| *n != node);
                }
            }
            self.bump_epoch();
        }
        Ok(())
    }

    /// True if the DataNode is alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        node.index() < self.alive.len() && self.alive[node.index()]
    }

    /// Number of alive DataNodes.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    /// Restores the replication factor for every under-replicated block.
    /// Returns `(src, dst, bytes)` copy tasks, merged per (src, dst) pair,
    /// and updates the metadata as if the copies had completed. The caller
    /// is expected to execute the corresponding flows on the engine.
    pub fn re_replicate(&mut self) -> Result<Vec<(NodeId, NodeId, u64)>, HdfsError> {
        let alive = self.alive_nodes();
        let mut copies: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        let mut added: Vec<(String, usize, NodeId, u64)> = Vec::new();
        for (path, meta) in &self.files {
            for (bi, block) in meta.blocks.iter().enumerate() {
                let alive_replicas: Vec<NodeId> = block
                    .replicas
                    .iter()
                    .copied()
                    .filter(|n| self.alive[n.index()])
                    .collect();
                if alive_replicas.is_empty() {
                    return Err(HdfsError::DataLost(path.clone()));
                }
                let deficit =
                    (self.config.replication as usize).saturating_sub(alive_replicas.len());
                if deficit == 0 {
                    continue;
                }
                let mut candidates: Vec<NodeId> = alive
                    .iter()
                    .copied()
                    .filter(|n| !alive_replicas.contains(n))
                    .collect();
                candidates.shuffle(&mut self.rng);
                for target in candidates.into_iter().take(deficit) {
                    let src = alive_replicas[self.rng.gen_range(0..alive_replicas.len())];
                    *copies.entry((src.0, target.0)).or_default() += block.size;
                    added.push((path.clone(), bi, target, block.size));
                }
            }
        }
        for (path, bi, target, size) in added {
            let meta = self.files.get_mut(&path).expect("exists");
            meta.blocks[bi].replicas.push(target);
            self.used_bytes[target.index()] += size;
        }
        // Purge dead replicas from metadata now that copies are scheduled.
        let alive_flags = self.alive.clone();
        for meta in self.files.values_mut() {
            for block in &mut meta.blocks {
                block.replicas.retain(|n| alive_flags[n.index()]);
            }
        }
        self.bump_epoch();
        let out: Vec<(NodeId, NodeId, u64)> = copies
            .into_iter()
            .map(|((s, d), b)| (NodeId(s), NodeId(d), b))
            .collect();
        if self.tracer.is_enabled() && !out.is_empty() {
            self.tracer.inc("hdfs.re_replications", 1);
            self.tracer.inc(
                "hdfs.re_replicated_bytes",
                out.iter().map(|(_, _, b)| *b).sum::<u64>(),
            );
        }
        Ok(out)
    }

    /// Paths currently in the namespace (sorted).
    pub fn list(&self) -> Vec<String> {
        self.files.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs(n: usize) -> Hdfs {
        Hdfs::new(n, HdfsConfig::default(), 42)
    }

    #[test]
    fn create_places_first_replica_on_writer() {
        let mut h = fs(5);
        let plan = h.create("/a", 10 << 20, NodeId(2)).unwrap();
        assert_eq!(plan.local_bytes, 10 << 20);
        assert_eq!(plan.remote.len(), 2, "two pipeline copies");
        let st = h.status("/a").unwrap();
        assert_eq!(st.blocks.len(), 1);
        assert_eq!(st.blocks[0].replicas[0], NodeId(2));
        assert_eq!(st.blocks[0].replicas.len(), 3);
    }

    #[test]
    fn create_splits_into_blocks() {
        let mut h = Hdfs::new(
            4,
            HdfsConfig {
                block_size: 4,
                replication: 2,
            },
            1,
        );
        let _ = h.create("/b", 10, NodeId(0)).unwrap();
        let st = h.status("/b").unwrap();
        assert_eq!(st.blocks.len(), 3);
        assert_eq!(
            st.blocks.iter().map(|b| b.size).collect::<Vec<_>>(),
            vec![4, 4, 2]
        );
        // Block replica sets differ (placement diversity): with 4 nodes and
        // a seeded RNG, at least the union spans more than 2 nodes.
        let mut nodes: Vec<u32> = st
            .blocks
            .iter()
            .flat_map(|b| b.replicas.iter().map(|n| n.0))
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert!(nodes.len() > 2, "placement should spread: {nodes:?}");
    }

    #[test]
    fn duplicate_create_rejected() {
        let mut h = fs(3);
        h.create("/a", 1, NodeId(0)).unwrap();
        assert!(matches!(
            h.create("/a", 1, NodeId(0)),
            Err(HdfsError::AlreadyExists(_))
        ));
    }

    #[test]
    fn read_prefers_local_replica() {
        let mut h = fs(5);
        h.create("/a", 100 << 20, NodeId(1)).unwrap();
        let plan = h.read_plan("/a", NodeId(1)).unwrap();
        assert_eq!(plan.local_bytes(), 100 << 20);
        assert_eq!(plan.remote_bytes(), 0);
    }

    #[test]
    fn read_from_non_replica_is_fully_remote() {
        let mut h = Hdfs::new(
            8,
            HdfsConfig {
                block_size: 64 << 20,
                replication: 2,
            },
            7,
        );
        h.create("/a", 128 << 20, NodeId(0)).unwrap();
        // Find a node with no replica.
        let st = h.status("/a").unwrap();
        let holding: Vec<NodeId> = st.blocks.iter().flat_map(|b| b.replicas.clone()).collect();
        let outsider = (0..8).map(NodeId).find(|n| !holding.contains(n)).unwrap();
        let plan = h.read_plan("/a", outsider).unwrap();
        assert_eq!(plan.local_bytes(), 0);
        assert_eq!(plan.remote_bytes(), 128 << 20);
    }

    #[test]
    fn locality_fraction_reflects_replicas() {
        let mut h = fs(6);
        h.create("/a", 64 << 20, NodeId(3)).unwrap();
        let paths = vec!["/a".to_string()];
        assert_eq!(h.locality_fraction(&paths, NodeId(3)), 1.0);
        let st = h.status("/a").unwrap();
        let outsider = (0..6)
            .map(NodeId)
            .find(|n| !st.blocks[0].replicas.contains(n))
            .unwrap();
        assert_eq!(h.locality_fraction(&paths, outsider), 0.0);
        // Unknown paths are ignored.
        assert_eq!(h.locality_fraction(&["/nope".to_string()], NodeId(0)), 0.0);
    }

    #[test]
    fn locality_ignores_bytes_lost_to_dead_nodes() {
        // Replication 1: each file lives on exactly one node.
        let config = HdfsConfig {
            replication: 1,
            ..Default::default()
        };
        let mut h = Hdfs::new(4, config, 9);
        h.create("/alive", 64 << 20, NodeId(1)).unwrap();
        h.create("/lost", 192 << 20, NodeId(2)).unwrap();
        let paths = vec!["/alive".to_string(), "/lost".to_string()];
        // Before the failure, node 1 holds a quarter of the input bytes.
        assert!((h.locality_fraction(&paths, NodeId(1)) - 0.25).abs() < 1e-12);

        h.fail_node(NodeId(2)).unwrap();
        // /lost is unreadable from anywhere; it must not dilute the
        // fraction (the old code kept its bytes in the denominator and
        // reported 0.25 here).
        assert_eq!(h.locality_fraction(&paths, NodeId(1)), 1.0);
        assert_eq!(h.local_bytes(&paths, NodeId(1)), 64 << 20);
        // A dead query node holds nothing locally.
        assert_eq!(h.locality_fraction(&paths, NodeId(2)), 0.0);
        assert_eq!(h.local_bytes(&paths, NodeId(2)), 0);
    }

    #[test]
    fn locality_cache_invalidates_on_mutation() {
        let config = HdfsConfig {
            replication: 1,
            ..Default::default()
        };
        let mut h = Hdfs::new(3, config, 5);
        h.create("/a", 10 << 20, NodeId(0)).unwrap();
        let paths = vec!["/a".to_string(), "/b".to_string()];
        let e0 = h.epoch();
        assert_eq!(h.locality_fraction(&paths, NodeId(0)), 1.0);
        // Repeated query in the same epoch is served from the cache.
        assert_eq!(h.locality_fraction(&paths, NodeId(0)), 1.0);
        assert_eq!(h.epoch(), e0);

        // Every mutation class bumps the epoch and refreshes the answer.
        h.create("/b", 30 << 20, NodeId(1)).unwrap();
        assert!(h.epoch() > e0);
        assert!((h.locality_fraction(&paths, NodeId(0)) - 0.25).abs() < 1e-12);
        h.delete("/b").unwrap();
        assert_eq!(h.locality_fraction(&paths, NodeId(0)), 1.0);
        h.fail_node(NodeId(0)).unwrap();
        assert_eq!(h.locality_fraction(&paths, NodeId(0)), 0.0);
        let e1 = h.epoch();
        h.revive_node(NodeId(0)).unwrap();
        assert!(h.epoch() > e1);
    }

    #[test]
    fn delete_frees_space() {
        let mut h = fs(3);
        h.create("/a", 10, NodeId(0)).unwrap();
        assert!(h.used_on(NodeId(0)) > 0);
        h.delete("/a").unwrap();
        assert_eq!(h.used_on(NodeId(0)), 0);
        assert!(!h.exists("/a"));
        assert!(h.delete("/a").is_err());
    }

    #[test]
    fn data_survives_single_node_failure() {
        let mut h = fs(5);
        h.create("/a", 200 << 20, NodeId(0)).unwrap();
        h.fail_node(NodeId(0)).unwrap();
        let plan = h.read_plan("/a", NodeId(0)).unwrap();
        // The failed node's replica is unusable: all bytes come remotely.
        assert_eq!(plan.local_bytes(), 0);
        assert_eq!(plan.remote_bytes(), 200 << 20);
    }

    #[test]
    fn re_replication_restores_factor() {
        let mut h = fs(6);
        h.create("/a", 128 << 20, NodeId(0)).unwrap();
        h.fail_node(NodeId(0)).unwrap();
        let copies = h.re_replicate().unwrap();
        assert!(!copies.is_empty());
        let st = h.status("/a").unwrap();
        for b in &st.blocks {
            assert_eq!(b.replicas.len(), 3);
            assert!(!b.replicas.contains(&NodeId(0)));
        }
        // Total copied bytes equal the lost replica bytes.
        let copied: u64 = copies.iter().map(|(_, _, b)| *b).sum();
        assert_eq!(copied, 128 << 20);
    }

    #[test]
    fn replication_capped_by_cluster_size() {
        let mut h = fs(2);
        h.create("/a", 1, NodeId(0)).unwrap();
        let st = h.status("/a").unwrap();
        assert_eq!(st.blocks[0].replicas.len(), 2);
    }

    #[test]
    fn data_lost_when_all_replicas_dead() {
        let mut h = Hdfs::new(
            2,
            HdfsConfig {
                block_size: 64,
                replication: 2,
            },
            3,
        );
        h.create("/a", 10, NodeId(0)).unwrap();
        h.fail_node(NodeId(0)).unwrap();
        h.fail_node(NodeId(1)).unwrap();
        assert!(matches!(
            h.read_plan("/a", NodeId(0)),
            Err(HdfsError::DataLost(_))
        ));
    }

    #[test]
    fn revive_forgets_old_replicas() {
        let mut h = fs(3);
        h.create("/a", 10, NodeId(0)).unwrap();
        h.fail_node(NodeId(0)).unwrap();
        h.revive_node(NodeId(0)).unwrap();
        let st = h.status("/a").unwrap();
        assert!(!st.blocks[0].replicas.contains(&NodeId(0)));
        assert!(h.is_alive(NodeId(0)));
        assert_eq!(h.used_on(NodeId(0)), 0);
    }

    #[test]
    fn tracer_counts_cache_hits_reads_and_writes() {
        let mut h = fs(4);
        let tracer = Tracer::enabled();
        h.set_tracer(&tracer);
        h.create("/a", 64 << 20, NodeId(0)).unwrap();
        let paths = vec!["/a".to_string()];
        h.locality_fraction(&paths, NodeId(0)); // miss (first query)
        h.locality_fraction(&paths, NodeId(0)); // hit (same epoch)
        h.delete("/a").unwrap();
        h.locality_fraction(&paths, NodeId(0)); // miss (epoch bumped)
        assert_eq!(tracer.counter_value("hdfs.locality_cache_hit"), 1);
        assert_eq!(tracer.counter_value("hdfs.locality_cache_miss"), 2);
        assert_eq!(tracer.counter_value("hdfs.files_created"), 1);
        assert_eq!(tracer.counter_value("hdfs.blocks_written"), 1);
        assert_eq!(tracer.counter_value("hdfs.bytes_written"), 64 << 20);

        h.create("/b", 10 << 20, NodeId(1)).unwrap();
        h.read_plan("/b", NodeId(1)).unwrap();
        assert_eq!(tracer.counter_value("hdfs.reads_planned"), 1);
        assert_eq!(tracer.counter_value("hdfs.bytes_read_local"), 10 << 20);
        assert_eq!(tracer.counter_value("hdfs.bytes_read_remote"), 0);
    }

    #[test]
    fn zero_byte_file_is_representable() {
        let mut h = fs(3);
        h.create("/empty", 0, NodeId(1)).unwrap();
        assert_eq!(h.len("/empty").unwrap(), 0);
        let plan = h.read_plan("/empty", NodeId(2)).unwrap();
        assert_eq!(plan.total_bytes(), 0);
    }

    #[test]
    fn content_digest_is_placement_independent_and_content_sensitive() {
        let mut a = fs(3);
        a.create("/x", 100, NodeId(0)).unwrap();
        let mut b = fs(5); // different cluster, different placement
        b.create("/x", 100, NodeId(3)).unwrap();
        assert_eq!(
            a.content_digest("/x").unwrap(),
            b.content_digest("/x").unwrap(),
            "same logical content digests identically regardless of placement"
        );
        b.delete("/x").unwrap();
        b.create("/x", 101, NodeId(3)).unwrap();
        assert_ne!(
            a.content_digest("/x").unwrap(),
            b.content_digest("/x").unwrap(),
            "size change changes the digest"
        );
        assert!(a.content_digest("/missing").is_err());
    }
}
