//! Fairness-invariant property battery for the RM's multi-tenant queues.
//!
//! Four invariants, each exercised over randomized queue configurations
//! and operation sequences:
//!
//! * **(a) Ceilings** — no queue's dominant share ever exceeds its
//!   max-capacity, no matter what the tenants ask for.
//! * **(b) No persistent starvation** — a queue with pending demand held
//!   below its fair share while a sibling runs above its guarantee gets
//!   preemption victims within the grace period and converges to within
//!   one container of fair share; the donor is never pushed below its
//!   own guarantee and preemption stops once shares balance.
//! * **(c) Work conservation** — after an allocation round, no pending
//!   admissible request coexists with a node that could host it.
//! * **(d) Determinism** — replaying an identical operation sequence on
//!   a fresh RM yields the identical grant log and final queue state.
//!
//! All requests are a uniform one-vcore unit, which keeps the battery
//! free of bin-packing fragmentation: any node with a spare core can
//! host any pending request, so (b) and (c) are exact statements, not
//! heuristics. The nightly CI job re-runs this file with
//! `PROPTEST_CASES` raised ~20x.

use proptest::collection::vec as any_vec;
use proptest::prelude::*;

use hiway_sim::{ClusterSpec, NodeId, NodeSpec};
use hiway_yarn::{
    Admission, AdmissionPolicy, AppId, ContainerId, ContainerRequest, QueueSpec, QueuesConfig,
    Resource, ResourceManager, RmConfig,
};

const EPS: f64 = 1e-9;

/// The uniform request every tenant issues (vcores are the dominant
/// dimension on m3.large nodes: 1/2 core vs 1024/7500 memory).
fn unit() -> Resource {
    Resource::new(1, 1024)
}

fn rm_with(nodes: usize, config: QueuesConfig) -> ResourceManager {
    let spec = ClusterSpec::homogeneous(nodes, "n", &NodeSpec::m3_large("p"));
    let mut rm = ResourceManager::new(&spec, RmConfig::default());
    rm.configure_queues(config).expect("valid queue config");
    rm
}

fn cluster_total(rm: &ResourceManager) -> Resource {
    let mut total = Resource::ZERO;
    for n in rm.alive_nodes() {
        total.add(&rm.total(n));
    }
    total
}

/// Invariant (a): every queue under its elastic ceiling.
fn assert_ceilings(rm: &ResourceManager) -> Result<(), TestCaseError> {
    for name in rm.queue_names() {
        let share = rm.queue_share(&name).unwrap();
        let (_, max) = rm.queue_limits(&name).unwrap();
        prop_assert!(
            share <= max + EPS,
            "queue '{name}' at share {share} over ceiling {max}"
        );
    }
    Ok(())
}

/// Invariant (c): an allocation round never leaves an admissible unit
/// request pending while some alive node could host it.
fn assert_work_conserving(rm: &ResourceManager) -> Result<(), TestCaseError> {
    let total = cluster_total(rm);
    let free_node = rm.alive_nodes().into_iter().find(|&n| {
        let a = rm.available(n);
        a.fits(&unit())
    });
    let Some(free) = free_node else {
        return Ok(());
    };
    for name in rm.queue_names() {
        if rm.queue_pending(&name).unwrap() == 0 {
            continue;
        }
        let used = rm.queue_usage(&name).unwrap();
        let (_, max) = rm.queue_limits(&name).unwrap();
        let admissible = (used.vcores + 1) as f64 <= max * total.vcores as f64 + EPS
            && (used.memory_mb + 1024) as f64 <= max * total.memory_mb as f64 + EPS;
        prop_assert!(
            !admissible,
            "queue '{name}' has an admissible pending request while node {free:?} \
             has {:?} free",
            rm.available(free)
        );
    }
    Ok(())
}

/// Replays one operation sequence and checks invariants (a) and (c)
/// after every allocation round. Returns the full grant log and the
/// final fair-share vector for the determinism test.
#[allow(clippy::type_complexity)]
fn run_ops(
    nodes: usize,
    config: &QueuesConfig,
    queue_names: &[String],
    ops: &[(u8, u8)],
) -> Result<(Vec<(ContainerId, AppId, NodeId)>, Vec<(String, f64)>), TestCaseError> {
    let mut rm = rm_with(nodes, config.clone());
    let apps: Vec<AppId> = queue_names
        .iter()
        .map(|q| {
            let (app, verdict) = rm.submit_app_to(q, format!("wf-{q}")).unwrap();
            assert_eq!(verdict, Admission::Admitted);
            app
        })
        .collect();
    let mut owned: Vec<Vec<ContainerId>> = vec![Vec::new(); queue_names.len()];
    let mut log = Vec::new();
    let mut t = 0.0;
    for &(kind, arg) in ops {
        let qi = (arg as usize) % queue_names.len();
        match kind % 4 {
            0 | 1 => {
                // Submit 1–3 unit requests to one queue.
                for _ in 0..(arg % 3 + 1) {
                    rm.request(apps[qi], ContainerRequest::anywhere(unit()));
                }
            }
            // Release the queue's oldest container, if any.
            2 if !owned[qi].is_empty() => {
                let cid = owned[qi].remove(0);
                prop_assert!(rm.release(cid).is_some());
            }
            _ => {} // pure tick
        }
        t += 1.0;
        for c in rm.allocate_at(t) {
            let owner = apps.iter().position(|&a| a == c.app).unwrap();
            owned[owner].push(c.id);
            log.push((c.id, c.app, c.node));
        }
        assert_ceilings(&rm)?;
        assert_work_conserving(&rm)?;
    }
    let fair = rm.queue_fair_shares();
    // Conservation: releasing everything restores full capacity.
    for held in owned {
        for cid in held {
            prop_assert!(rm.release(cid).is_some());
        }
    }
    prop_assert_eq!(rm.running_containers(), 0);
    for name in rm.queue_names() {
        prop_assert_eq!(rm.queue_usage(&name).unwrap(), Resource::ZERO);
    }
    for n in rm.alive_nodes() {
        prop_assert_eq!(rm.available(n), rm.total(n));
    }
    Ok((log, fair))
}

/// Builds a random flat two/three-tenant tree with quantized ceilings.
/// Guarantees are weight-proportional, clamped under each ceiling.
fn tenant_config(weights: &[u8], caps: &[u8]) -> (QueuesConfig, Vec<String>) {
    let total: f64 = weights.iter().map(|&w| w as f64).sum();
    let names: Vec<String> = (0..weights.len()).map(|i| format!("q{i}")).collect();
    let leaves = weights
        .iter()
        .zip(caps)
        .zip(&names)
        .map(|((&w, &c), name)| {
            let max = 0.25 * (c % 4 + 1) as f64; // 0.25 | 0.5 | 0.75 | 1.0
            let cap = (w as f64 / total).min(max);
            QueueSpec::leaf(name, w as f64, cap, max)
        })
        .collect();
    let config = QueuesConfig {
        root: QueueSpec::parent("root", 1.0, 1.0, 1.0, leaves),
        admission: AdmissionPolicy::Queue,
        preemption_grace_secs: None,
    };
    (config, names)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariants (a) + (c) plus capacity conservation over random
    /// operation sequences on random queue trees.
    #[test]
    fn random_ops_respect_ceilings_and_conserve_work(
        nodes in 2usize..6,
        weights in any_vec(1u8..5, 2..4),
        caps in any_vec(0u8..4, 3),
        ops in any_vec((0u8..4, any::<u8>()), 10..60),
    ) {
        let (config, names) = tenant_config(&weights, &caps[..weights.len()]);
        run_ops(nodes, &config, &names, &ops)?;
    }

    /// Invariant (d): the RM is a deterministic state machine — same
    /// operations, same grants, same final shares.
    #[test]
    fn identical_op_sequences_replay_identically(
        nodes in 2usize..6,
        weights in any_vec(1u8..5, 2..4),
        caps in any_vec(0u8..4, 3),
        ops in any_vec((0u8..4, any::<u8>()), 10..40),
    ) {
        let (config, names) = tenant_config(&weights, &caps[..weights.len()]);
        let first = run_ops(nodes, &config, &names, &ops)?;
        let second = run_ops(nodes, &config, &names, &ops)?;
        prop_assert_eq!(first, second);
    }

    /// DRF steady state: two queues with saturating demand split the
    /// cluster weight-proportionally, to within one container.
    #[test]
    fn drf_split_matches_weights_within_one_container(
        nodes in 2usize..6,
        wa in 1u32..5,
        wb in 1u32..5,
    ) {
        let mut rm = rm_with(
            nodes,
            QueuesConfig::weighted_leaves(&[("a", wa as f64), ("b", wb as f64)], None),
        );
        let (a, _) = rm.submit_app_to("a", "wf-a").unwrap();
        let (b, _) = rm.submit_app_to("b", "wf-b").unwrap();
        let cores = 2 * nodes as u32;
        for _ in 0..3 * cores {
            rm.request(a, ContainerRequest::anywhere(unit()));
            rm.request(b, ContainerRequest::anywhere(unit()));
        }
        let granted = rm.allocate_at(0.0);
        prop_assert_eq!(granted.len(), cores as usize, "cluster saturated");
        let unit_share = 1.0 / cores as f64;
        let fair_a = wa as f64 / (wa + wb) as f64;
        let share_a = rm.queue_share("a").unwrap();
        prop_assert!(
            (share_a - fair_a).abs() <= unit_share + EPS,
            "weights {wa}:{wb}, share {share_a} vs fair {fair_a} (unit {unit_share})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Invariant (b): a late tenant starved by an incumbent is made
    /// whole via preemption within the grace period, the incumbent never
    /// dips below its guarantee, and preemption quiesces at equilibrium.
    #[test]
    fn starved_queue_recovers_within_grace_and_stabilizes(
        nodes in 3usize..6,
        wa in 1u32..4,
        wb in 1u32..4,
    ) {
        const GRACE: f64 = 4.0;
        let mut rm = rm_with(
            nodes,
            QueuesConfig::weighted_leaves(
                &[("a", wa as f64), ("b", wb as f64)],
                Some(GRACE),
            ),
        );
        let (a, _) = rm.submit_app_to("a", "wf-a").unwrap();
        let (b, _) = rm.submit_app_to("b", "wf-b").unwrap();
        let cores = 2 * nodes as u32;
        let unit_share = 1.0 / cores as f64;
        // The incumbent grabs the whole cluster...
        for _ in 0..2 * cores {
            rm.request(a, ContainerRequest::anywhere(unit()));
        }
        let first = rm.allocate_at(0.0);
        prop_assert_eq!(first.len(), cores as usize);
        // ...then the late tenant shows saturating demand.
        for _ in 0..2 * cores {
            rm.request(b, ContainerRequest::anywhere(unit()));
        }
        let (cap_a, _) = rm.queue_limits("a").unwrap();
        let mut preempted = 0usize;
        let mut preempted_late = 0usize;
        for step in 1..=40u32 {
            rm.allocate_at(step as f64);
            // Conservation holds at the instant the round completes —
            // capacity freed by the victim kills below is only re-granted
            // on the next round.
            assert_ceilings(&rm)?;
            assert_work_conserving(&rm)?;
            let victims = rm.take_preemptions();
            preempted += victims.len();
            if step > 30 {
                preempted_late += victims.len();
            }
            for v in victims {
                // The driver kills victims via its failure path; here the
                // release is the part the RM observes.
                prop_assert!(rm.release(v).is_some());
            }
            // The donor is never preempted below its guarantee.
            prop_assert!(
                rm.queue_share("a").unwrap() >= cap_a - EPS,
                "step {step}: donor below guarantee"
            );
        }
        prop_assert!(preempted >= 1, "starved queue never received victims");
        prop_assert_eq!(preempted_late, 0, "preemption must quiesce at equilibrium");
        // B ended within one container of its fair share (i.e. no longer
        // starved: one more unit would overshoot fair).
        let fair_b = wb as f64 / (wa + wb) as f64;
        let share_b = rm.queue_share("b").unwrap();
        prop_assert!(
            share_b + unit_share + EPS > fair_b,
            "weights {wa}:{wb}: b stuck at {share_b}, fair {fair_b}"
        );
        // Work conservation at equilibrium: every core is busy.
        let busy: u32 = rm
            .alive_nodes()
            .into_iter()
            .map(|n| rm.total(n).vcores - rm.available(n).vcores)
            .sum();
        prop_assert_eq!(busy, cores);
    }
}
