//! Scenario tests of the ResourceManager beyond single-call units.

use hiway_sim::{ClusterSpec, NodeId, NodeSpec};
use hiway_yarn::{ContainerRequest, Resource, ResourceManager, RmConfig};

fn rm(nodes: usize) -> ResourceManager {
    let spec = ClusterSpec::homogeneous(nodes, "n", &NodeSpec::m3_large("p"));
    ResourceManager::new(&spec, RmConfig::default())
}

#[test]
fn set_capacity_reserves_master_nodes() {
    let mut r = rm(3);
    r.set_capacity(NodeId(0), Resource::ZERO);
    r.set_capacity(NodeId(1), Resource::new(1, 2048));
    let app = r.submit_app("wf");
    for _ in 0..5 {
        r.request(app, ContainerRequest::anywhere(Resource::new(1, 1024)));
    }
    let got = r.allocate();
    // Node 0 takes nothing; node 1 takes exactly one; node 2 two cores.
    assert_eq!(got.len(), 3);
    assert!(got.iter().all(|c| c.node != NodeId(0)));
    assert_eq!(got.iter().filter(|c| c.node == NodeId(1)).count(), 1);
    assert_eq!(got.iter().filter(|c| c.node == NodeId(2)).count(), 2);
}

#[test]
#[should_panic(expected = "set_capacity with containers outstanding")]
fn set_capacity_after_allocation_panics() {
    let mut r = rm(1);
    let app = r.submit_app("wf");
    r.request(app, ContainerRequest::anywhere(Resource::new(1, 1024)));
    r.allocate();
    r.set_capacity(NodeId(0), Resource::ZERO);
}

#[test]
fn churn_conserves_capacity() {
    let mut r = rm(4);
    let app = r.submit_app("wf");
    // Repeated allocate/release cycles must end with full capacity.
    for round in 0..10 {
        let asks = 3 + (round % 4);
        for _ in 0..asks {
            r.request(app, ContainerRequest::anywhere(Resource::new(1, 1000)));
        }
        let got = r.allocate();
        for c in &got {
            r.release(c.id);
        }
        // Drain whatever stayed queued so rounds are independent.
        while r.pending_requests() > 0 {
            let got = r.allocate();
            if got.is_empty() {
                break;
            }
            for c in &got {
                r.release(c.id);
            }
        }
    }
    for n in 0..4 {
        assert_eq!(r.available(NodeId(n)), r.total(NodeId(n)));
    }
    assert_eq!(r.running_containers(), 0);
}

#[test]
fn strict_request_completes_once_node_frees_up() {
    let mut r = rm(2);
    let app = r.submit_app("wf");
    // Occupy node 1 fully.
    r.request(
        app,
        ContainerRequest::pinned(Resource::new(2, 7000), NodeId(1)),
    );
    let first = r.allocate();
    assert_eq!(first.len(), 1);
    // A pinned ask for node 1 queues...
    r.request(
        app,
        ContainerRequest::pinned(Resource::new(1, 1000), NodeId(1)),
    );
    assert!(r.allocate().is_empty());
    // ...until the occupant releases.
    r.release(first[0].id);
    let got = r.allocate();
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].node, NodeId(1));
}

#[test]
fn multiple_apps_interleave_fairly_in_fifo_order() {
    let mut r = rm(1); // 2 vcores
    let a = r.submit_app("a");
    let b = r.submit_app("b");
    // Interleaved submissions: a, b, a, b.
    r.request(a, ContainerRequest::anywhere(Resource::new(1, 1000)));
    r.request(b, ContainerRequest::anywhere(Resource::new(1, 1000)));
    r.request(a, ContainerRequest::anywhere(Resource::new(1, 1000)));
    r.request(b, ContainerRequest::anywhere(Resource::new(1, 1000)));
    let got = r.allocate();
    assert_eq!(got.len(), 2);
    assert_eq!(got[0].app, a);
    assert_eq!(got[1].app, b, "FIFO across applications");
}
