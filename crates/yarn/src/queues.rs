//! Hierarchical fair/capacity scheduler queues with Dominant Resource
//! Fairness ordering — the mediation layer real YARN puts between
//! tenants (fair scheduler / capacity scheduler) and which the paper's
//! one-AM-per-workflow multi-tenancy (§3.1) relies on.
//!
//! The model follows the YARN schedulers where they agree and DRF
//! (Ghodsi et al., NSDI 2011) for cross-queue ordering:
//!
//! * **Hierarchy**: a tree of queues; applications live in *leaf* queues.
//! * **Capacity / max-capacity**: each queue has a *guaranteed* fraction
//!   of the cluster and an elastic *ceiling*. Between the two, a queue
//!   may borrow idle capacity from its siblings (work conservation);
//!   above the ceiling it may not grow, period.
//! * **DRF ordering**: when several queues have pending demand, the next
//!   container goes to the queue whose *dominant share* — the larger of
//!   its vcore share and its memory share of the live cluster — divided
//!   by its weight is smallest.
//! * **Preemption**: a queue held below its fair share for longer than a
//!   grace period may claw capacity back from siblings running above
//!   their guarantee. Victims are the newest containers of the most
//!   over-guarantee queues; a queue is never preempted below its
//!   guarantee, and containers flagged unpreemptable (AM containers) are
//!   skipped. The RM only *selects* victims — the driver routes them
//!   through the same infrastructure-failure path node crashes use, so
//!   AM retry budgets apply.
//! * **Admission control**: a leaf may cap its live applications; beyond
//!   the cap, submissions are queued FIFO or rejected outright.
//!
//! Everything here is deterministic: queue order is definition order,
//! ties break towards the earlier-defined queue, and no wall-clock or
//! ambient randomness enters any decision.

use crate::types::Resource;

/// Slack used in floating-point share comparisons. Shares are ratios of
/// small integers, so anything well below 1/(cores·memory) works.
const EPS: f64 = 1e-9;

/// How a leaf queue treats submissions past its `max_apps` limit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Refuse the application; the submitter gets an error.
    #[default]
    Reject,
    /// Park the application FIFO; it is admitted when a live application
    /// in the queue finishes.
    Queue,
}

/// The admission verdict for one submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// The application may request containers immediately.
    Admitted,
    /// The application is parked; its requests stay unschedulable until
    /// a slot frees up.
    Queued,
    /// The application was refused outright.
    Rejected,
}

/// Declarative description of one queue (leaf or parent).
#[derive(Clone, Debug)]
pub struct QueueSpec {
    /// Leaf names must be unique across the whole tree; applications are
    /// submitted by leaf name.
    pub name: String,
    /// DRF weight among siblings. Twice the weight ⇒ twice the steady-
    /// state share under saturating demand.
    pub weight: f64,
    /// Guaranteed fraction of the *parent's* capacity. A queue at or
    /// below its guarantee is never preempted.
    pub capacity: f64,
    /// Elastic ceiling, as a fraction of the parent's capacity. 1.0
    /// means the queue may absorb the whole parent when siblings idle.
    pub max_capacity: f64,
    /// Cap on live (admitted, unfinished) applications in this leaf.
    pub max_apps: Option<usize>,
    /// Child queues; empty for leaves.
    pub children: Vec<QueueSpec>,
}

impl QueueSpec {
    /// A leaf queue.
    pub fn leaf(name: &str, weight: f64, capacity: f64, max_capacity: f64) -> QueueSpec {
        QueueSpec {
            name: name.to_string(),
            weight,
            capacity,
            max_capacity,
            max_apps: None,
            children: Vec::new(),
        }
    }

    /// A parent queue with children.
    pub fn parent(
        name: &str,
        weight: f64,
        capacity: f64,
        max_capacity: f64,
        children: Vec<QueueSpec>,
    ) -> QueueSpec {
        QueueSpec {
            name: name.to_string(),
            weight,
            capacity,
            max_capacity,
            max_apps: None,
            children,
        }
    }

    /// Caps live applications in this (leaf) queue.
    pub fn with_max_apps(mut self, n: usize) -> QueueSpec {
        self.max_apps = Some(n);
        self
    }
}

/// Complete multi-tenancy configuration handed to the RM.
#[derive(Clone, Debug)]
pub struct QueuesConfig {
    pub root: QueueSpec,
    pub admission: AdmissionPolicy,
    /// How long a queue must sit starved (below fair share, with pending
    /// demand) before the RM selects preemption victims from over-
    /// guarantee siblings. `None` disables preemption.
    pub preemption_grace_secs: Option<f64>,
}

impl Default for QueuesConfig {
    /// A single all-absorbing leaf: exactly the pre-queue RM behaviour.
    fn default() -> QueuesConfig {
        QueuesConfig {
            root: QueueSpec::leaf("default", 1.0, 1.0, 1.0),
            admission: AdmissionPolicy::Reject,
            preemption_grace_secs: None,
        }
    }
}

impl QueuesConfig {
    /// Flat tenants under one root, weights as given. Guarantees are set
    /// weight-proportional and ceilings fully elastic — the classic fair-
    /// scheduler configuration.
    pub fn weighted_leaves(tenants: &[(&str, f64)], grace_secs: Option<f64>) -> QueuesConfig {
        let total: f64 = tenants.iter().map(|(_, w)| w).sum();
        let children = tenants
            .iter()
            .map(|(name, w)| QueueSpec::leaf(name, *w, *w / total.max(EPS), 1.0))
            .collect();
        QueuesConfig {
            root: QueueSpec::parent("root", 1.0, 1.0, 1.0, children),
            admission: AdmissionPolicy::Queue,
            preemption_grace_secs: grace_secs,
        }
    }
}

/// One node of the flattened queue tree.
pub(crate) struct QueueNode {
    pub name: String,
    pub parent: Option<usize>,
    pub children: Vec<usize>,
    pub weight: f64,
    /// Absolute guaranteed fraction of the cluster (product of `capacity`
    /// down from the root).
    pub cap_frac: f64,
    /// Absolute elastic ceiling (product of `max_capacity` down from the
    /// root).
    pub max_frac: f64,
    pub max_apps: Option<usize>,
    /// Current usage. Maintained at leaves and aggregated up the tree on
    /// every charge/uncharge, so DRF descent reads it directly.
    pub used: Resource,
    /// Admitted, unfinished applications (leaves only).
    pub live_apps: usize,
    /// Applications parked by admission control, FIFO (leaves only).
    pub waiting: Vec<u32>,
    /// When the leaf first became starved; cleared when it catches up.
    pub starved_since: Option<f64>,
}

/// The flattened queue tree plus policy knobs. Owned by the RM.
pub(crate) struct QueueSet {
    pub nodes: Vec<QueueNode>,
    pub admission: AdmissionPolicy,
    pub grace_secs: Option<f64>,
}

impl QueueSet {
    pub fn build(config: &QueuesConfig) -> Result<QueueSet, String> {
        let mut set = QueueSet {
            nodes: Vec::new(),
            admission: config.admission,
            grace_secs: config.preemption_grace_secs,
        };
        set.flatten(&config.root, None, 1.0, 1.0)?;
        let mut names: Vec<&str> = set.nodes.iter().map(|n| n.name.as_str()).collect();
        names.sort_unstable();
        if names.windows(2).any(|w| w[0] == w[1]) {
            return Err("queue names must be unique".to_string());
        }
        if set.leaves().is_empty() {
            return Err("queue tree has no leaves".to_string());
        }
        Ok(set)
    }

    fn flatten(
        &mut self,
        spec: &QueueSpec,
        parent: Option<usize>,
        parent_cap: f64,
        parent_max: f64,
    ) -> Result<usize, String> {
        if spec.weight <= 0.0 || spec.weight.is_nan() {
            return Err(format!("queue '{}' needs a positive weight", spec.name));
        }
        if !(0.0..=1.0).contains(&spec.capacity) || !(0.0..=1.0).contains(&spec.max_capacity) {
            return Err(format!(
                "queue '{}' capacities must be within [0, 1]",
                spec.name
            ));
        }
        if spec.capacity > spec.max_capacity + EPS {
            return Err(format!(
                "queue '{}' guarantee exceeds its max-capacity",
                spec.name
            ));
        }
        let idx = self.nodes.len();
        self.nodes.push(QueueNode {
            name: spec.name.clone(),
            parent,
            children: Vec::new(),
            weight: spec.weight,
            cap_frac: parent_cap * spec.capacity,
            max_frac: parent_max * spec.max_capacity,
            max_apps: spec.max_apps,
            used: Resource::ZERO,
            live_apps: 0,
            waiting: Vec::new(),
            starved_since: None,
        });
        for child in &spec.children {
            let c = self.flatten(
                child,
                Some(idx),
                parent_cap * spec.capacity,
                parent_max * spec.max_capacity,
            )?;
            self.nodes[idx].children.push(c);
        }
        Ok(idx)
    }

    /// Leaf indices in definition order.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].children.is_empty())
            .collect()
    }

    /// Resolves a leaf queue by name.
    pub fn leaf_by_name(&self, name: &str) -> Option<usize> {
        (0..self.nodes.len())
            .find(|&i| self.nodes[i].children.is_empty() && self.nodes[i].name == name)
    }

    /// The leaf submissions land on when no queue is named: the leaf
    /// called `default` if present, else the first-defined leaf.
    pub fn default_leaf(&self) -> usize {
        self.leaf_by_name("default")
            .unwrap_or_else(|| self.leaves()[0])
    }

    /// Dominant share of `used` against the live cluster total.
    pub fn dominant_share(used: Resource, total: Resource) -> f64 {
        let v = if total.vcores > 0 {
            used.vcores as f64 / total.vcores as f64
        } else {
            0.0
        };
        let m = if total.memory_mb > 0 {
            used.memory_mb as f64 / total.memory_mb as f64
        } else {
            0.0
        };
        v.max(m)
    }

    /// Adds a grant to `leaf` and every ancestor.
    pub fn charge(&mut self, leaf: usize, res: Resource) {
        let mut at = Some(leaf);
        while let Some(i) = at {
            self.nodes[i].used.add(&res);
            at = self.nodes[i].parent;
        }
    }

    /// Removes a released/killed container from `leaf` and every ancestor.
    pub fn uncharge(&mut self, leaf: usize, res: Resource) {
        let mut at = Some(leaf);
        while let Some(i) = at {
            let used = &mut self.nodes[i].used;
            used.vcores = used.vcores.saturating_sub(res.vcores);
            used.memory_mb = used.memory_mb.saturating_sub(res.memory_mb);
            at = self.nodes[i].parent;
        }
    }

    /// Whether `leaf` (and all its ancestors) can absorb `res` without
    /// any of them crossing its elastic ceiling. Per-dimension, because
    /// max-capacity caps each resource independently in YARN.
    pub fn fits_under_max(&self, leaf: usize, res: Resource, total: Resource) -> bool {
        let mut at = Some(leaf);
        while let Some(i) = at {
            let n = &self.nodes[i];
            let v_cap = n.max_frac * total.vcores as f64 + EPS;
            let m_cap = n.max_frac * total.memory_mb as f64 + EPS;
            if (n.used.vcores + res.vcores) as f64 > v_cap
                || (n.used.memory_mb + res.memory_mb) as f64 > m_cap
            {
                return false;
            }
            at = n.parent;
        }
        true
    }

    /// DRF descent: among `eligible` leaves (those with still-untried
    /// pending requests this round), pick the one to serve next. At each
    /// level the child with the smallest dominant-share/weight wins; ties
    /// break towards the earlier-defined child, which keeps single-queue
    /// configurations byte-identical to the pre-queue FIFO walk.
    pub fn pick_leaf(&self, eligible: &[bool], total: Resource) -> Option<usize> {
        let has_eligible = |mut i: usize| -> bool {
            // Depth-first without allocation: the tree is tiny.
            let mut stack = vec![i];
            while let Some(at) = stack.pop() {
                i = at;
                if self.nodes[i].children.is_empty() {
                    if eligible[i] {
                        return true;
                    }
                } else {
                    stack.extend(self.nodes[i].children.iter().copied());
                }
            }
            false
        };
        let mut at = 0usize; // root is always node 0
        if !has_eligible(at) {
            return None;
        }
        while !self.nodes[at].children.is_empty() {
            let mut best: Option<(f64, usize)> = None;
            for &c in &self.nodes[at].children {
                if !has_eligible(c) {
                    continue;
                }
                let key = Self::dominant_share(self.nodes[c].used, total) / self.nodes[c].weight;
                match best {
                    Some((k, _)) if key + EPS >= k => {}
                    _ => best = Some((key, c)),
                }
            }
            at = best?.1;
        }
        Some(at)
    }

    /// Instantaneous fair share (a fraction of the cluster, dominant-
    /// resource terms) for every node. Water-filling by weight at each
    /// level: a queue never gets more than its demand or ceiling; what it
    /// cannot use flows to its siblings.
    ///
    /// `leaf_demand[i]` must hold each leaf's demand as a cluster
    /// fraction (usage + pending asks, clamped to its ceiling); non-leaf
    /// entries are ignored.
    pub fn fair_shares(&self, leaf_demand: &[f64]) -> Vec<f64> {
        let n = self.nodes.len();
        let mut demand = vec![0.0f64; n];
        // Aggregate demand bottom-up (children precede nothing in the
        // flattened vec — parents come first — so walk indices backwards).
        for i in (0..n).rev() {
            let node = &self.nodes[i];
            demand[i] = if node.children.is_empty() {
                leaf_demand[i].min(node.max_frac)
            } else {
                let sum: f64 = node.children.iter().map(|&c| demand[c]).sum();
                sum.min(node.max_frac)
            };
        }
        let mut share = vec![0.0f64; n];
        share[0] = demand[0].min(1.0);
        // Distribute top-down.
        for i in 0..n {
            let children = self.nodes[i].children.clone();
            if children.is_empty() {
                continue;
            }
            let mut remaining = share[i];
            let mut open: Vec<usize> = children
                .iter()
                .copied()
                .filter(|&c| demand[c] > EPS)
                .collect();
            // Repeatedly saturate the children whose demand is below
            // their weighted slice, then re-level the rest.
            while !open.is_empty() && remaining > EPS {
                let wsum: f64 = open.iter().map(|&c| self.nodes[c].weight).sum();
                let level = remaining / wsum;
                let sat: Vec<usize> = open
                    .iter()
                    .copied()
                    .filter(|&c| demand[c] <= level * self.nodes[c].weight + EPS)
                    .collect();
                if sat.is_empty() {
                    for &c in &open {
                        share[c] = level * self.nodes[c].weight;
                    }
                    break;
                }
                for &c in &sat {
                    share[c] = demand[c];
                    remaining -= demand[c];
                }
                open.retain(|c| !sat.contains(c));
            }
        }
        share
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total() -> Resource {
        Resource::new(16, 64_000)
    }

    #[test]
    fn default_config_is_one_elastic_leaf() {
        let set = QueueSet::build(&QueuesConfig::default()).unwrap();
        assert_eq!(set.leaves(), vec![0]);
        assert_eq!(set.default_leaf(), 0);
        let n = &set.nodes[0];
        assert_eq!(n.name, "default");
        assert_eq!((n.cap_frac, n.max_frac), (1.0, 1.0));
        assert!(set.grace_secs.is_none());
    }

    #[test]
    fn weighted_leaves_normalize_guarantees() {
        let cfg = QueuesConfig::weighted_leaves(&[("a", 2.0), ("b", 1.0)], Some(10.0));
        let set = QueueSet::build(&cfg).unwrap();
        let a = set.leaf_by_name("a").unwrap();
        let b = set.leaf_by_name("b").unwrap();
        assert!((set.nodes[a].cap_frac - 2.0 / 3.0).abs() < 1e-9);
        assert!((set.nodes[b].cap_frac - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(set.nodes[a].max_frac, 1.0);
        assert_eq!(set.default_leaf(), a, "no 'default' leaf: first wins");
    }

    #[test]
    fn build_rejects_bad_specs() {
        let dup = QueuesConfig {
            root: QueueSpec::parent(
                "root",
                1.0,
                1.0,
                1.0,
                vec![
                    QueueSpec::leaf("x", 1.0, 0.5, 1.0),
                    QueueSpec::leaf("x", 1.0, 0.5, 1.0),
                ],
            ),
            ..QueuesConfig::default()
        };
        assert!(QueueSet::build(&dup).is_err());
        let inverted = QueuesConfig {
            root: QueueSpec::leaf("q", 1.0, 0.9, 0.5),
            ..QueuesConfig::default()
        };
        assert!(QueueSet::build(&inverted).is_err());
        let zero_weight = QueuesConfig {
            root: QueueSpec::leaf("q", 0.0, 1.0, 1.0),
            ..QueuesConfig::default()
        };
        assert!(QueueSet::build(&zero_weight).is_err());
    }

    #[test]
    fn absolute_fractions_multiply_down_the_tree() {
        let cfg = QueuesConfig {
            root: QueueSpec::parent(
                "root",
                1.0,
                1.0,
                1.0,
                vec![QueueSpec::parent(
                    "org",
                    1.0,
                    0.5,
                    0.8,
                    vec![QueueSpec::leaf("team", 1.0, 0.5, 0.5)],
                )],
            ),
            ..QueuesConfig::default()
        };
        let set = QueueSet::build(&cfg).unwrap();
        let team = set.leaf_by_name("team").unwrap();
        assert!((set.nodes[team].cap_frac - 0.25).abs() < 1e-9);
        assert!((set.nodes[team].max_frac - 0.4).abs() < 1e-9);
    }

    #[test]
    fn dominant_share_takes_the_larger_dimension() {
        let t = total();
        // 4/16 cores vs 8000/64000 MB: cores dominate.
        let s = QueueSet::dominant_share(Resource::new(4, 8_000), t);
        assert!((s - 0.25).abs() < 1e-9);
        // 1/16 cores vs 32000/64000 MB: memory dominates.
        let s = QueueSet::dominant_share(Resource::new(1, 32_000), t);
        assert!((s - 0.5).abs() < 1e-9);
        assert_eq!(
            QueueSet::dominant_share(Resource::ZERO, Resource::ZERO),
            0.0
        );
    }

    #[test]
    fn charge_aggregates_up_and_uncharge_reverses() {
        let cfg = QueuesConfig::weighted_leaves(&[("a", 1.0), ("b", 1.0)], None);
        let mut set = QueueSet::build(&cfg).unwrap();
        let a = set.leaf_by_name("a").unwrap();
        set.charge(a, Resource::new(2, 4_000));
        assert_eq!(set.nodes[a].used, Resource::new(2, 4_000));
        assert_eq!(
            set.nodes[0].used,
            Resource::new(2, 4_000),
            "root aggregates"
        );
        set.uncharge(a, Resource::new(2, 4_000));
        assert_eq!(set.nodes[0].used, Resource::ZERO);
    }

    #[test]
    fn fits_under_max_enforces_every_ancestor() {
        let cfg = QueuesConfig {
            root: QueueSpec::parent(
                "root",
                1.0,
                0.5,
                0.5,
                vec![QueueSpec::leaf("a", 1.0, 0.5, 1.0)],
            ),
            ..QueuesConfig::default()
        };
        let mut set = QueueSet::build(&cfg).unwrap();
        let a = set.leaf_by_name("a").unwrap();
        let t = total();
        // Leaf ceiling is elastic, but the root caps at 8 cores.
        assert!(set.fits_under_max(a, Resource::new(8, 1_000), t));
        set.charge(a, Resource::new(8, 1_000));
        assert!(!set.fits_under_max(a, Resource::new(1, 1_000), t));
    }

    #[test]
    fn drf_pick_prefers_lowest_weighted_dominant_share() {
        let cfg = QueuesConfig::weighted_leaves(&[("a", 2.0), ("b", 1.0)], None);
        let mut set = QueueSet::build(&cfg).unwrap();
        let a = set.leaf_by_name("a").unwrap();
        let b = set.leaf_by_name("b").unwrap();
        let t = total();
        let mut eligible = vec![false; set.nodes.len()];
        eligible[a] = true;
        eligible[b] = true;
        // Empty queues tie: definition order wins.
        assert_eq!(set.pick_leaf(&eligible, t), Some(a));
        // a at 4 cores (share .25 / w2 = .125), b at 1 core (.0625 / w1).
        set.charge(a, Resource::new(4, 1_000));
        set.charge(b, Resource::new(1, 1_000));
        assert_eq!(set.pick_leaf(&eligible, t), Some(b));
        // b climbs past the weighted tie-point: a wins again.
        set.charge(b, Resource::new(3, 1_000));
        assert_eq!(set.pick_leaf(&eligible, t), Some(a));
        // Only one eligible: it wins regardless of shares.
        eligible[a] = false;
        assert_eq!(set.pick_leaf(&eligible, t), Some(b));
        eligible[b] = false;
        assert_eq!(set.pick_leaf(&eligible, t), None);
    }

    #[test]
    fn fair_shares_water_fill_by_weight() {
        let cfg = QueuesConfig::weighted_leaves(&[("a", 2.0), ("b", 1.0)], None);
        let set = QueueSet::build(&cfg).unwrap();
        let a = set.leaf_by_name("a").unwrap();
        let b = set.leaf_by_name("b").unwrap();
        let mut demand = vec![0.0; set.nodes.len()];
        // Both saturating: 2:1 split.
        demand[a] = 1.0;
        demand[b] = 1.0;
        let s = set.fair_shares(&demand);
        assert!((s[a] - 2.0 / 3.0).abs() < 1e-9);
        assert!((s[b] - 1.0 / 3.0).abs() < 1e-9);
        // a wants little: b absorbs the slack (work conservation).
        demand[a] = 0.1;
        let s = set.fair_shares(&demand);
        assert!((s[a] - 0.1).abs() < 1e-9);
        assert!((s[b] - 0.9).abs() < 1e-9);
        // Idle tree: all zero.
        let s = set.fair_shares(&vec![0.0; set.nodes.len()]);
        assert!(s.iter().all(|&x| x.abs() < 1e-9));
    }

    #[test]
    fn fair_shares_respect_ceilings() {
        let cfg = QueuesConfig {
            root: QueueSpec::parent(
                "root",
                1.0,
                1.0,
                1.0,
                vec![
                    QueueSpec::leaf("capped", 1.0, 0.2, 0.25),
                    QueueSpec::leaf("open", 1.0, 0.8, 1.0),
                ],
            ),
            ..QueuesConfig::default()
        };
        let set = QueueSet::build(&cfg).unwrap();
        let c = set.leaf_by_name("capped").unwrap();
        let o = set.leaf_by_name("open").unwrap();
        let mut demand = vec![0.0; set.nodes.len()];
        demand[c] = 1.0;
        demand[o] = 1.0;
        let s = set.fair_shares(&demand);
        assert!((s[c] - 0.25).abs() < 1e-9, "ceiling binds: {}", s[c]);
        assert!((s[o] - 0.75).abs() < 1e-9, "sibling absorbs: {}", s[o]);
    }
}
