//! Core YARN vocabulary: resources, applications, containers, requests.

use hiway_sim::NodeId;

/// A bundle of virtual cores and memory — YARN's unit of capacity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Resource {
    pub vcores: u32,
    pub memory_mb: u64,
}

impl Resource {
    pub const ZERO: Resource = Resource {
        vcores: 0,
        memory_mb: 0,
    };

    pub fn new(vcores: u32, memory_mb: u64) -> Resource {
        Resource { vcores, memory_mb }
    }

    /// Whether `self` can accommodate `other`.
    pub fn fits(&self, other: &Resource) -> bool {
        self.vcores >= other.vcores && self.memory_mb >= other.memory_mb
    }

    pub fn subtract(&mut self, other: &Resource) {
        debug_assert!(self.fits(other), "capacity underflow");
        self.vcores -= other.vcores;
        self.memory_mb -= other.memory_mb;
    }

    pub fn add(&mut self, other: &Resource) {
        self.vcores += other.vcores;
        self.memory_mb += other.memory_mb;
    }
}

/// Identifier of a submitted application (one Hi-WAY AM per workflow).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AppId(pub u32);

/// Identifier of an allocated container.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ContainerId(pub u64);

/// Identifier of a pending container request.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RequestId(pub u64);

/// An allocated container: a resource lease on one node.
#[derive(Clone, Copy, Debug)]
pub struct Container {
    pub id: ContainerId,
    pub app: AppId,
    pub node: NodeId,
    pub resource: Resource,
    /// The request this allocation satisfied.
    pub request: RequestId,
    /// Inherited from the request: shields the container from cross-queue
    /// preemption (AM containers).
    pub unpreemptable: bool,
}

/// An application's ask for one container.
#[derive(Clone, Copy, Debug)]
pub struct ContainerRequest {
    pub resource: Resource,
    /// Preferred node, if any.
    pub preference: Option<NodeId>,
    /// When `false` and a preference is set, the request waits until the
    /// preferred node has capacity (static schedulers). When `true`, the
    /// RM falls back to any node with room.
    pub relax_locality: bool,
    /// Containers from this request are never selected as cross-queue
    /// preemption victims. Set for AM containers: killing the AM kills
    /// the whole workflow, which preemption must not do.
    pub unpreemptable: bool,
}

impl ContainerRequest {
    /// An anywhere-is-fine request (FCFS / data-aware schedulers).
    pub fn anywhere(resource: Resource) -> ContainerRequest {
        ContainerRequest {
            resource,
            preference: None,
            relax_locality: true,
            unpreemptable: false,
        }
    }

    /// A request pinned to `node` (static schedulers).
    pub fn pinned(resource: Resource, node: NodeId) -> ContainerRequest {
        ContainerRequest {
            resource,
            preference: Some(node),
            relax_locality: false,
            unpreemptable: false,
        }
    }

    /// Shields the resulting container from cross-queue preemption.
    pub fn never_preempt(mut self) -> ContainerRequest {
        self.unpreemptable = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_fits_and_arithmetic() {
        let mut cap = Resource::new(4, 8000);
        let ask = Resource::new(2, 4000);
        assert!(cap.fits(&ask));
        cap.subtract(&ask);
        assert_eq!(cap, Resource::new(2, 4000));
        assert!(!cap.fits(&Resource::new(4, 100)));
        assert!(!cap.fits(&Resource::new(1, 8000)));
        cap.add(&ask);
        assert_eq!(cap, Resource::new(4, 8000));
    }

    #[test]
    fn request_constructors() {
        let r = ContainerRequest::anywhere(Resource::new(1, 1000));
        assert!(r.relax_locality && r.preference.is_none());
        assert!(!r.unpreemptable);
        let p = ContainerRequest::pinned(Resource::new(1, 1000), NodeId(3));
        assert!(!p.relax_locality);
        assert_eq!(p.preference, Some(NodeId(3)));
        assert!(p.never_preempt().unpreemptable);
    }
}
