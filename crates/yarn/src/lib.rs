//! # hiway-yarn — simulated Hadoop YARN
//!
//! Hadoop 2.x split resource management out of MapReduce into YARN: a
//! central **ResourceManager** (RM) tracks the capacity of per-node
//! **NodeManagers** (NMs) and leases **containers** (a fixed bundle of
//! virtual cores and memory) to per-application **application masters**
//! (AMs). Hi-WAY is exactly such an AM (paper §3.1): one AM instance per
//! workflow, each AM requesting one worker container per ready task.
//!
//! This crate reproduces the slice of YARN that Hi-WAY consumes:
//!
//! * node registration with configurable container capacity,
//! * FIFO application admission with AM containers occupying capacity,
//! * container requests with optional *strict* node placement (used by the
//!   static round-robin and HEFT schedulers, which "enforce containers to
//!   be placed on specific compute nodes") or relaxed locality (the
//!   data-aware scheduler takes whatever node comes and picks the best
//!   task for it),
//! * allocation, release, and node-failure notification so the AM can
//!   re-try failed tasks on different nodes.
//!
//! The RM is a synchronous state machine; the AM drives it from its event
//! loop, modelling the AM–RM heartbeat with engine timers.

pub mod queues;
pub mod rm;
pub mod types;

pub use queues::{Admission, AdmissionPolicy, QueueSpec, QueuesConfig};
pub use rm::{ResourceManager, RmConfig};
pub use types::{AppId, Container, ContainerId, ContainerRequest, RequestId, Resource};
