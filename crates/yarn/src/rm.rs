//! The ResourceManager: node capacity tracking and container allocation
//! through hierarchical fair/capacity queues with DRF ordering.
//!
//! With the default configuration (one all-absorbing `default` queue)
//! the allocator degenerates to exactly the historical FIFO walk; real
//! multi-tenancy starts when [`ResourceManager::configure_queues`]
//! installs a tree of weighted queues. See [`crate::queues`] for the
//! queue model.

use std::collections::BTreeMap;

use hiway_obs::{QueueAudit, QueueEventKind, Tracer};
use hiway_sim::{ClusterSpec, NodeId};

use crate::queues::{Admission, AdmissionPolicy, QueueSet, QueuesConfig};
use crate::types::{AppId, Container, ContainerId, ContainerRequest, RequestId, Resource};

/// RM configuration.
#[derive(Clone, Copy, Debug)]
pub struct RmConfig {
    /// Capacity advertised by each NodeManager, as a fraction of the
    /// node's physical cores/memory (YARN reserves headroom for the OS
    /// and the NM itself; 1.0 hands everything to containers, which is
    /// how the paper's experiments were configured).
    pub capacity_fraction: f64,
}

impl Default for RmConfig {
    fn default() -> RmConfig {
        RmConfig {
            capacity_fraction: 1.0,
        }
    }
}

struct NodeState {
    total: Resource,
    available: Resource,
    alive: bool,
}

struct PendingRequest {
    app: AppId,
    request: ContainerRequest,
}

/// The simulated ResourceManager.
pub struct ResourceManager {
    nodes: Vec<NodeState>,
    /// FIFO queue of pending requests across all applications. Ordering
    /// within a scheduler queue is request-id order; ordering *between*
    /// scheduler queues is DRF.
    queue: BTreeMap<u64, PendingRequest>,
    containers: BTreeMap<u64, Container>,
    next_request: u64,
    next_container: u64,
    next_app: u32,
    apps: Vec<String>,
    /// Leaf queue each application was submitted to.
    app_queue: Vec<usize>,
    /// Whether each application has been admitted (may request containers).
    app_admitted: Vec<bool>,
    /// Whether each application has terminally finished.
    app_finished: Vec<bool>,
    /// The queue tree. Defaults to a single elastic `default` leaf.
    queues: QueueSet,
    /// True once [`Self::configure_queues`] ran. Gates all per-queue
    /// observability so default deployments keep their historical traces
    /// byte-identical.
    queues_configured: bool,
    /// Cross-queue preemption victims selected but not yet collected by
    /// the driver via [`Self::take_preemptions`].
    pending_preemptions: Vec<ContainerId>,
    /// Requests rejected at submission because no node (or queue ceiling)
    /// could ever satisfy them; drained via [`Self::take_infeasible`].
    infeasible: Vec<(AppId, String)>,
    /// Round-robin pointer so relaxed requests spread across the cluster
    /// instead of piling onto node 0.
    spread_cursor: usize,
    /// Latest virtual time seen by [`Self::allocate_at`]. Submission-time
    /// audit entries use it; the RM deliberately has no clock of its own.
    last_now: f64,
    /// Observability sink. Counters land in the metrics registry;
    /// timestamped container spans are emitted by the driver.
    tracer: Tracer,
}

impl ResourceManager {
    /// Builds an RM from the cluster hardware description: one NodeManager
    /// per node.
    pub fn new(spec: &ClusterSpec, config: RmConfig) -> ResourceManager {
        let nodes = spec
            .nodes
            .iter()
            .map(|n| {
                let total = Resource::new(
                    ((n.cores as f64) * config.capacity_fraction)
                        .floor()
                        .max(1.0) as u32,
                    ((n.memory_mb as f64) * config.capacity_fraction).floor() as u64,
                );
                NodeState {
                    total,
                    available: total,
                    alive: true,
                }
            })
            .collect();
        ResourceManager {
            nodes,
            queue: BTreeMap::new(),
            containers: BTreeMap::new(),
            next_request: 0,
            next_container: 0,
            next_app: 0,
            apps: Vec::new(),
            app_queue: Vec::new(),
            app_admitted: Vec::new(),
            app_finished: Vec::new(),
            queues: QueueSet::build(&QueuesConfig::default()).expect("default queue tree"),
            queues_configured: false,
            pending_preemptions: Vec::new(),
            infeasible: Vec::new(),
            spread_cursor: 0,
            last_now: 0.0,
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches an observability sink. Counters land in the shared
    /// metrics registry; a disabled tracer keeps every record a no-op.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
    }

    /// Installs a queue tree. Must run before any application is
    /// submitted — re-binning live applications is not modelled.
    pub fn configure_queues(&mut self, config: QueuesConfig) -> Result<(), String> {
        if self.next_app > 0 {
            return Err("configure_queues after applications were submitted".to_string());
        }
        self.queues = QueueSet::build(&config)?;
        self.queues_configured = true;
        Ok(())
    }

    /// Registers an application (a Hi-WAY AM about to start) on the
    /// default queue. The AM's own container is requested like any other
    /// via [`Self::request`]. Admission limits still apply: an app that
    /// was queued or rejected gets an id but no containers until (unless)
    /// admitted.
    pub fn submit_app(&mut self, name: impl Into<String>) -> AppId {
        let leaf = self.queues.default_leaf();
        self.admit(leaf, name.into()).0
    }

    /// Registers an application on a named leaf queue. Errs on unknown
    /// queue names; otherwise reports the admission verdict alongside the
    /// id.
    pub fn submit_app_to(
        &mut self,
        queue: &str,
        name: impl Into<String>,
    ) -> Result<(AppId, Admission), String> {
        let leaf = self
            .queues
            .leaf_by_name(queue)
            .ok_or_else(|| format!("unknown queue '{queue}'"))?;
        Ok(self.admit(leaf, name.into()))
    }

    fn admit(&mut self, leaf: usize, name: String) -> (AppId, Admission) {
        let id = AppId(self.next_app);
        self.next_app += 1;
        self.apps.push(name);
        self.app_queue.push(leaf);
        let node = &mut self.queues.nodes[leaf];
        let at_cap = node.max_apps.is_some_and(|cap| node.live_apps >= cap);
        let verdict = if !at_cap {
            node.live_apps += 1;
            Admission::Admitted
        } else {
            match self.queues.admission {
                AdmissionPolicy::Queue => {
                    node.waiting.push(id.0);
                    Admission::Queued
                }
                AdmissionPolicy::Reject => Admission::Rejected,
            }
        };
        self.app_admitted.push(verdict == Admission::Admitted);
        self.app_finished.push(verdict == Admission::Rejected);
        let kind = match verdict {
            Admission::Admitted => QueueEventKind::Admit,
            Admission::Queued => QueueEventKind::Queued,
            Admission::Rejected => QueueEventKind::Reject,
        };
        self.emit_queue_audit(leaf, kind, Some(id), None, String::new());
        (id, verdict)
    }

    /// Marks an application terminally finished, freeing its admission
    /// slot; the oldest waiting application in the queue (if any) is
    /// admitted in its place. Safe to call more than once.
    pub fn finish_app(&mut self, app: AppId) {
        let idx = app.0 as usize;
        if idx >= self.app_finished.len() || self.app_finished[idx] {
            return;
        }
        self.app_finished[idx] = true;
        if !self.app_admitted[idx] {
            // Still parked: just remove it from the wait list.
            let leaf = self.app_queue[idx];
            self.queues.nodes[leaf].waiting.retain(|&a| a != app.0);
            return;
        }
        let leaf = self.app_queue[idx];
        let node = &mut self.queues.nodes[leaf];
        node.live_apps = node.live_apps.saturating_sub(1);
        let can_admit = node.max_apps.is_none_or(|cap| node.live_apps < cap);
        if can_admit && !node.waiting.is_empty() {
            let next = node.waiting.remove(0);
            node.live_apps += 1;
            self.app_admitted[next as usize] = true;
            self.emit_queue_audit(
                leaf,
                QueueEventKind::Admit,
                Some(AppId(next)),
                None,
                "admitted from wait list".to_string(),
            );
        }
    }

    pub fn app_name(&self, app: AppId) -> &str {
        &self.apps[app.0 as usize]
    }

    /// The leaf queue an application was submitted to.
    pub fn queue_of(&self, app: AppId) -> &str {
        &self.queues.nodes[self.app_queue[app.0 as usize]].name
    }

    /// Whether an application is currently admitted (rejected or parked
    /// applications cannot be granted containers).
    pub fn is_admitted(&self, app: AppId) -> bool {
        self.app_admitted[app.0 as usize]
    }

    /// Enqueues a container request; allocation happens on the next
    /// [`Self::allocate`] (the AM–RM heartbeat). Requests no node (and no
    /// queue ceiling) could *ever* satisfy are failed fast instead of
    /// queued: they land in [`Self::take_infeasible`] and the driver
    /// fails the workflow rather than letting it hang.
    pub fn request(&mut self, app: AppId, request: ContainerRequest) -> RequestId {
        let id = RequestId(self.next_request);
        self.next_request += 1;
        if let Some(why) = self.infeasible_reason(app, &request) {
            self.infeasible.push((app, why.clone()));
            let leaf = self.app_queue[app.0 as usize];
            self.emit_queue_audit(leaf, QueueEventKind::Infeasible, Some(app), None, why);
            self.tracer.inc("rm.requests_infeasible", 1);
            return id;
        }
        self.queue.insert(id.0, PendingRequest { app, request });
        self.tracer.inc("rm.requests", 1);
        self.tracer
            .set_gauge("rm.pending_requests", self.queue.len() as f64);
        id
    }

    /// Why `request` can never be satisfied, if it cannot. Judged against
    /// node *totals* (dead nodes may revive) so transient failures never
    /// fail-fast a workflow.
    fn infeasible_reason(&self, app: AppId, request: &ContainerRequest) -> Option<String> {
        let res = request.resource;
        match request.preference {
            Some(pref) if !request.relax_locality => {
                if pref.index() >= self.nodes.len() {
                    return Some(format!("pinned to nonexistent node {}", pref.0));
                }
                if !self.nodes[pref.index()].total.fits(&res) {
                    return Some(format!(
                        "request {}vc/{}MB exceeds node {}'s capacity",
                        res.vcores, res.memory_mb, pref.0
                    ));
                }
            }
            _ => {
                if !self.nodes.iter().any(|n| n.total.fits(&res)) {
                    return Some(format!(
                        "request {}vc/{}MB fits no node in the cluster",
                        res.vcores, res.memory_mb
                    ));
                }
            }
        }
        // A request larger than the queue's elastic ceiling can never be
        // placed either, no matter how idle the cluster gets.
        let leaf = self.app_queue[app.0 as usize];
        let grand_total = self.grand_total();
        let node = &self.queues.nodes[leaf];
        if (res.vcores as f64) > node.max_frac * grand_total.vcores as f64 + 1e-9
            || (res.memory_mb as f64) > node.max_frac * grand_total.memory_mb as f64 + 1e-9
        {
            return Some(format!(
                "request {}vc/{}MB exceeds queue '{}' max-capacity",
                res.vcores, res.memory_mb, node.name
            ));
        }
        None
    }

    /// Withdraws a pending request (e.g. the workflow finished early).
    pub fn cancel_request(&mut self, id: RequestId) -> bool {
        let removed = self.queue.remove(&id.0).is_some();
        if removed {
            self.tracer.inc("rm.requests_cancelled", 1);
            self.tracer
                .set_gauge("rm.pending_requests", self.queue.len() as f64);
        }
        removed
    }

    pub fn pending_requests(&self) -> usize {
        self.queue.len()
    }

    /// One allocation round at an unspecified time — equivalent to
    /// [`Self::allocate_at`] at the last seen virtual time. Preemption
    /// grace periods only advance through `allocate_at`, so tests that
    /// don't care about time keep using this.
    pub fn allocate(&mut self) -> Vec<Container> {
        self.allocate_at(self.last_now)
    }

    /// One allocation round at virtual time `now`: serves queues in DRF
    /// order, each queue FIFO within itself, capped by every queue's
    /// elastic ceiling; then updates starvation clocks and selects
    /// cross-queue preemption victims. Requests that cannot be satisfied
    /// stay queued. Returns the new containers.
    pub fn allocate_at(&mut self, now: f64) -> Vec<Container> {
        self.last_now = now;
        let total = self.alive_total();
        let mut granted = Vec::new();
        // Per-leaf id-ordered snapshots of schedulable pending requests.
        let nq = self.queues.nodes.len();
        let mut per_leaf: Vec<Vec<u64>> = vec![Vec::new(); nq];
        for (&id, p) in &self.queue {
            if self.app_admitted[p.app.0 as usize] {
                per_leaf[self.app_queue[p.app.0 as usize]].push(id);
            }
        }
        let mut cursor = vec![0usize; nq];
        let mut eligible: Vec<bool> = per_leaf.iter().map(|v| !v.is_empty()).collect();
        while let Some(leaf) = self.queues.pick_leaf(&eligible, total) {
            let id = per_leaf[leaf][cursor[leaf]];
            cursor[leaf] += 1;
            if cursor[leaf] >= per_leaf[leaf].len() {
                eligible[leaf] = false;
            }
            let request = self.queue[&id].request;
            if !self.queues.fits_under_max(leaf, request.resource, total) {
                continue; // over the queue ceiling: stays pending
            }
            if let Some(node) = self.find_node(&request) {
                let pending = self.queue.remove(&id).expect("still queued");
                self.nodes[node.index()]
                    .available
                    .subtract(&pending.request.resource);
                let cid = ContainerId(self.next_container);
                self.next_container += 1;
                let container = Container {
                    id: cid,
                    app: pending.app,
                    node,
                    resource: pending.request.resource,
                    request: RequestId(id),
                    unpreemptable: pending.request.unpreemptable,
                };
                self.containers.insert(cid.0, container);
                self.queues.charge(leaf, container.resource);
                self.emit_queue_audit(
                    leaf,
                    QueueEventKind::Allocate,
                    Some(container.app),
                    Some(cid),
                    String::new(),
                );
                granted.push(container);
            }
        }
        self.update_preemption(now, total);
        if self.tracer.is_enabled() {
            self.tracer.inc("rm.allocation_rounds", 1);
            self.tracer
                .inc("rm.containers_allocated", granted.len() as u64);
            self.tracer
                .set_gauge("rm.pending_requests", self.queue.len() as f64);
            self.tracer
                .set_gauge("rm.running_containers", self.containers.len() as f64);
            self.emit_queue_usage(now);
        }
        granted
    }

    /// Per-leaf demand as cluster fractions: current usage plus pending
    /// admitted asks.
    fn leaf_demands(&self, total: Resource) -> Vec<f64> {
        let mut asked: Vec<Resource> = self.queues.nodes.iter().map(|n| n.used).collect();
        for p in self.queue.values() {
            if self.app_admitted[p.app.0 as usize] {
                asked[self.app_queue[p.app.0 as usize]].add(&p.request.resource);
            }
        }
        asked
            .iter()
            .map(|&r| QueueSet::dominant_share(r, total))
            .collect()
    }

    /// Pending admitted request count per leaf.
    fn leaf_pending(&self) -> Vec<u64> {
        let mut pending = vec![0u64; self.queues.nodes.len()];
        for p in self.queue.values() {
            if self.app_admitted[p.app.0 as usize] {
                pending[self.app_queue[p.app.0 as usize]] += 1;
            }
        }
        pending
    }

    /// Starvation bookkeeping + victim selection. A leaf is *starved*
    /// when it has pending demand and could absorb its next request while
    /// staying within its fair share — i.e. it is below fair share not by
    /// choice but because siblings hold the capacity. Once starved longer
    /// than the grace period, the newest containers of over-guarantee
    /// sibling queues are selected as victims (never below a queue's
    /// guarantee, never unpreemptable containers) and handed to the
    /// driver via [`Self::take_preemptions`].
    fn update_preemption(&mut self, now: f64, total: Resource) {
        let Some(grace) = self.queues.grace_secs else {
            return;
        };
        let demands = self.leaf_demands(total);
        let fair = self.queues.fair_shares(&demands);
        let leaves = self.queues.leaves();
        // Head request (lowest id) per leaf, for the "could take one more"
        // test.
        let mut head: Vec<Option<Resource>> = vec![None; self.queues.nodes.len()];
        for p in self.queue.values() {
            if !self.app_admitted[p.app.0 as usize] {
                continue;
            }
            let leaf = self.app_queue[p.app.0 as usize];
            if head[leaf].is_none() {
                head[leaf] = Some(p.request.resource);
            }
        }
        for &leaf in &leaves {
            let starved = match head[leaf] {
                Some(next) => {
                    let mut with_next = self.queues.nodes[leaf].used;
                    with_next.add(&next);
                    QueueSet::dominant_share(with_next, total) <= fair[leaf] + 1e-9
                }
                None => false,
            };
            if !starved {
                self.queues.nodes[leaf].starved_since = None;
                continue;
            }
            match self.queues.nodes[leaf].starved_since {
                None => self.queues.nodes[leaf].starved_since = Some(now),
                Some(t0) if now - t0 >= grace - 1e-9 => {
                    self.select_victims(leaf, &fair, total);
                    // Restart the grace clock: give the driver time to
                    // kill the victims before demanding more blood.
                    self.queues.nodes[leaf].starved_since = Some(now);
                }
                Some(_) => {}
            }
        }
    }

    /// Selects preemption victims on behalf of `starved`: walks live
    /// containers newest-first, taking those whose owning queue stays at
    /// or above its guarantee without them, until the starved queue's
    /// fair-share deficit is covered.
    fn select_victims(&mut self, starved: usize, fair: &[f64], total: Resource) {
        let mut need =
            fair[starved] - QueueSet::dominant_share(self.queues.nodes[starved].used, total);
        if need <= 1e-9 {
            return;
        }
        // Usage after victims already selected (this round and rounds the
        // driver has not yet acted on).
        let mut adjusted: Vec<Resource> = self.queues.nodes.iter().map(|n| n.used).collect();
        for cid in &self.pending_preemptions {
            if let Some(c) = self.containers.get(&cid.0) {
                let leaf = self.app_queue[c.app.0 as usize];
                adjusted[leaf].vcores = adjusted[leaf].vcores.saturating_sub(c.resource.vcores);
                adjusted[leaf].memory_mb = adjusted[leaf]
                    .memory_mb
                    .saturating_sub(c.resource.memory_mb);
            }
        }
        let ids: Vec<u64> = self.containers.keys().rev().copied().collect();
        for cid in ids {
            if need <= 1e-9 {
                break;
            }
            let c = self.containers[&cid];
            if c.unpreemptable || self.pending_preemptions.contains(&c.id) {
                continue;
            }
            let owner = self.app_queue[c.app.0 as usize];
            if owner == starved {
                continue;
            }
            let mut after = adjusted[owner];
            after.vcores = after.vcores.saturating_sub(c.resource.vcores);
            after.memory_mb = after.memory_mb.saturating_sub(c.resource.memory_mb);
            let over_guarantee = QueueSet::dominant_share(adjusted[owner], total)
                > self.queues.nodes[owner].cap_frac + 1e-9;
            let stays_at_guarantee =
                QueueSet::dominant_share(after, total) >= self.queues.nodes[owner].cap_frac - 1e-9;
            if !over_guarantee || !stays_at_guarantee {
                continue;
            }
            adjusted[owner] = after;
            need -= QueueSet::dominant_share(c.resource, total);
            self.pending_preemptions.push(c.id);
            self.tracer.inc("rm.queue_preemptions", 1);
            self.emit_queue_audit(
                owner,
                QueueEventKind::Preempt,
                Some(c.app),
                Some(c.id),
                format!("for starved queue '{}'", self.queues.nodes[starved].name),
            );
        }
    }

    /// Drains the preemption victims selected since the last call. The
    /// driver must kill each via its own failure path so AM infra-retry
    /// budgets apply.
    pub fn take_preemptions(&mut self) -> Vec<ContainerId> {
        std::mem::take(&mut self.pending_preemptions)
    }

    /// Drains requests that were failed fast as unsatisfiable, with the
    /// reason. The driver fails the owning workflow.
    pub fn take_infeasible(&mut self) -> Vec<(AppId, String)> {
        std::mem::take(&mut self.infeasible)
    }

    /// The leaf queue unnamed submissions land on.
    pub fn default_queue(&self) -> &str {
        &self.queues.nodes[self.queues.default_leaf()].name
    }

    /// Leaf queue names in definition order.
    pub fn queue_names(&self) -> Vec<String> {
        self.queues
            .leaves()
            .into_iter()
            .map(|i| self.queues.nodes[i].name.clone())
            .collect()
    }

    /// A leaf queue's current usage.
    pub fn queue_usage(&self, queue: &str) -> Option<Resource> {
        self.queues
            .leaf_by_name(queue)
            .map(|i| self.queues.nodes[i].used)
    }

    /// Pending admitted requests in a leaf queue.
    pub fn queue_pending(&self, queue: &str) -> Option<u64> {
        let leaf = self.queues.leaf_by_name(queue)?;
        Some(self.leaf_pending()[leaf])
    }

    /// Instantaneous fair shares (cluster fractions) of all leaf queues,
    /// in definition order — demand-bounded water-filling over weights.
    pub fn queue_fair_shares(&self) -> Vec<(String, f64)> {
        let total = self.alive_total();
        let fair = self.queues.fair_shares(&self.leaf_demands(total));
        self.queues
            .leaves()
            .into_iter()
            .map(|i| (self.queues.nodes[i].name.clone(), fair[i]))
            .collect()
    }

    /// A leaf queue's dominant share of the live cluster.
    pub fn queue_share(&self, queue: &str) -> Option<f64> {
        let leaf = self.queues.leaf_by_name(queue)?;
        Some(QueueSet::dominant_share(
            self.queues.nodes[leaf].used,
            self.alive_total(),
        ))
    }

    /// A leaf queue's absolute guaranteed / maximum cluster fractions.
    pub fn queue_limits(&self, queue: &str) -> Option<(f64, f64)> {
        let leaf = self.queues.leaf_by_name(queue)?;
        let n = &self.queues.nodes[leaf];
        Some((n.cap_frac, n.max_frac))
    }

    fn emit_queue_audit(
        &self,
        leaf: usize,
        kind: QueueEventKind,
        app: Option<AppId>,
        container: Option<ContainerId>,
        detail: String,
    ) {
        if !self.queues_configured || !self.tracer.is_enabled() {
            return;
        }
        let total = self.alive_total();
        let fair = self.queues.fair_shares(&self.leaf_demands(total));
        let n = &self.queues.nodes[leaf];
        self.tracer.queue_audit(QueueAudit {
            t: self.last_now,
            queue: n.name.clone(),
            kind,
            app: app.map(|a| a.0),
            container: container.map(|c| c.0),
            used_vcores: n.used.vcores as u64,
            used_memory_mb: n.used.memory_mb,
            pending: self.leaf_pending()[leaf],
            share: QueueSet::dominant_share(n.used, total),
            fair_share: fair[leaf],
            detail,
        });
    }

    /// One usage sample per leaf per allocation round, plus per-queue
    /// gauges. Only for explicitly configured queue trees.
    fn emit_queue_usage(&self, now: f64) {
        if !self.queues_configured {
            return;
        }
        let total = self.alive_total();
        let demands = self.leaf_demands(total);
        let fair = self.queues.fair_shares(&demands);
        let pending = self.leaf_pending();
        for leaf in self.queues.leaves() {
            let n = &self.queues.nodes[leaf];
            let share = QueueSet::dominant_share(n.used, total);
            self.tracer.set_gauge(
                &format!("rm.queue.{}.used_vcores", n.name),
                n.used.vcores as f64,
            );
            self.tracer.set_gauge(
                &format!("rm.queue.{}.used_memory_mb", n.name),
                n.used.memory_mb as f64,
            );
            self.tracer.set_gauge(
                &format!("rm.queue.{}.pending", n.name),
                pending[leaf] as f64,
            );
            self.tracer
                .set_gauge(&format!("rm.queue.{}.share", n.name), share);
            self.tracer
                .set_gauge(&format!("rm.queue.{}.fair_share", n.name), fair[leaf]);
            self.tracer.queue_audit(QueueAudit {
                t: now,
                queue: n.name.clone(),
                kind: QueueEventKind::Usage,
                app: None,
                container: None,
                used_vcores: n.used.vcores as u64,
                used_memory_mb: n.used.memory_mb,
                pending: pending[leaf],
                share,
                fair_share: fair[leaf],
                detail: String::new(),
            });
        }
    }

    /// Total capacity of live nodes.
    fn alive_total(&self) -> Resource {
        let mut t = Resource::ZERO;
        for n in self.nodes.iter().filter(|n| n.alive) {
            t.add(&n.total);
        }
        t
    }

    /// Total capacity of all nodes, dead or alive.
    fn grand_total(&self) -> Resource {
        let mut t = Resource::ZERO;
        for n in &self.nodes {
            t.add(&n.total);
        }
        t
    }

    fn find_node(&mut self, request: &ContainerRequest) -> Option<NodeId> {
        let fits = |state: &NodeState| state.alive && state.available.fits(&request.resource);
        if let Some(pref) = request.preference {
            if pref.index() < self.nodes.len() && fits(&self.nodes[pref.index()]) {
                return Some(pref);
            }
            if !request.relax_locality {
                return None; // strict placement waits for the exact node
            }
        }
        // Relaxed: round-robin over the cluster for an even spread.
        let n = self.nodes.len();
        for offset in 0..n {
            let idx = (self.spread_cursor + offset) % n;
            if fits(&self.nodes[idx]) {
                self.spread_cursor = (idx + 1) % n;
                return Some(NodeId(idx as u32));
            }
        }
        None
    }

    /// Returns a container's lease to the pool (task finished or killed).
    pub fn release(&mut self, id: ContainerId) -> Option<Container> {
        let container = self.containers.remove(&id.0)?;
        let state = &mut self.nodes[container.node.index()];
        if state.alive {
            state.available.add(&container.resource);
        }
        self.queues
            .uncharge(self.app_queue[container.app.0 as usize], container.resource);
        self.tracer.inc("rm.containers_released", 1);
        self.tracer
            .set_gauge("rm.running_containers", self.containers.len() as f64);
        Some(container)
    }

    /// Marks a node dead and returns the containers that were running on
    /// it — the owning AMs must be told their tasks are gone.
    pub fn fail_node(&mut self, node: NodeId) -> Vec<Container> {
        let state = &mut self.nodes[node.index()];
        state.alive = false;
        state.available = Resource::ZERO;
        let killed: Vec<Container> = self
            .containers
            .values()
            .filter(|c| c.node == node)
            .copied()
            .collect();
        for c in &killed {
            self.containers.remove(&c.id.0);
            self.queues
                .uncharge(self.app_queue[c.app.0 as usize], c.resource);
        }
        if self.tracer.is_enabled() {
            self.tracer.inc("rm.nodes_failed", 1);
            self.tracer
                .inc("rm.containers_lost_to_node_failure", killed.len() as u64);
            self.tracer
                .set_gauge("rm.running_containers", self.containers.len() as f64);
        }
        killed
    }

    /// Overrides a node's advertised capacity (e.g. to dedicate a node to
    /// master processes or to exactly one AM container). Must be called
    /// before any containers are allocated on the node.
    pub fn set_capacity(&mut self, node: NodeId, capacity: Resource) {
        let state = &mut self.nodes[node.index()];
        assert!(
            state.available == state.total,
            "set_capacity with containers outstanding on node {}",
            node.0
        );
        state.total = capacity;
        state.available = capacity;
    }

    /// Returns a node to service with full (empty) capacity.
    pub fn revive_node(&mut self, node: NodeId) {
        let state = &mut self.nodes[node.index()];
        if !state.alive {
            state.alive = true;
            state.available = state.total;
            self.tracer.inc("rm.nodes_revived", 1);
        }
    }

    pub fn is_alive(&self, node: NodeId) -> bool {
        self.nodes[node.index()].alive
    }

    pub fn available(&self, node: NodeId) -> Resource {
        self.nodes[node.index()].available
    }

    pub fn total(&self, node: NodeId) -> Resource {
        self.nodes[node.index()].total
    }

    pub fn container(&self, id: ContainerId) -> Option<&Container> {
        self.containers.get(&id.0)
    }

    pub fn running_containers(&self) -> usize {
        self.containers.len()
    }

    /// Alive nodes, in id order.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queues::QueueSpec;
    use hiway_sim::{ClusterSpec, NodeSpec};

    fn rm(nodes: usize) -> ResourceManager {
        let spec = ClusterSpec::homogeneous(nodes, "n", &NodeSpec::m3_large("p"));
        ResourceManager::new(&spec, RmConfig::default())
    }

    fn one_core() -> Resource {
        Resource::new(1, 1000)
    }

    #[test]
    fn allocation_respects_capacity() {
        let mut r = rm(1); // m3.large: 2 vcores, 7500 MB
        let app = r.submit_app("wf");
        for _ in 0..3 {
            r.request(app, ContainerRequest::anywhere(one_core()));
        }
        let got = r.allocate();
        assert_eq!(got.len(), 2, "only two cores available");
        assert_eq!(r.pending_requests(), 1);
        // Releasing one frees capacity for the queued request.
        r.release(got[0].id);
        assert_eq!(r.allocate().len(), 1);
    }

    #[test]
    fn memory_limits_bind_too() {
        let mut r = rm(1);
        let app = r.submit_app("wf");
        // Two 1-core/6000MB asks: only one fits in 7500 MB.
        for _ in 0..2 {
            r.request(app, ContainerRequest::anywhere(Resource::new(1, 6000)));
        }
        assert_eq!(r.allocate().len(), 1);
    }

    #[test]
    fn relaxed_requests_spread_round_robin() {
        let mut r = rm(4);
        let app = r.submit_app("wf");
        for _ in 0..4 {
            r.request(app, ContainerRequest::anywhere(one_core()));
        }
        let got = r.allocate();
        let mut nodes: Vec<u32> = got.iter().map(|c| c.node.0).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![0, 1, 2, 3]);
    }

    #[test]
    fn strict_placement_waits_for_its_node() {
        let mut r = rm(2);
        let app = r.submit_app("wf");
        // Fill node 0 completely.
        r.request(
            app,
            ContainerRequest::pinned(Resource::new(2, 7000), NodeId(0)),
        );
        assert_eq!(r.allocate().len(), 1);
        // A strict request for node 0 must wait even though node 1 is free.
        let rid = r.request(app, ContainerRequest::pinned(one_core(), NodeId(0)));
        assert!(r.allocate().is_empty());
        assert_eq!(r.pending_requests(), 1);
        // A relaxed request with the same preference falls back to node 1.
        r.cancel_request(rid);
        r.request(
            app,
            ContainerRequest {
                resource: one_core(),
                preference: Some(NodeId(0)),
                relax_locality: true,
                unpreemptable: false,
            },
        );
        let got = r.allocate();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].node, NodeId(1));
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut r = rm(1);
        let a1 = r.submit_app("first");
        let a2 = r.submit_app("second");
        r.request(a1, ContainerRequest::anywhere(Resource::new(2, 7000)));
        r.request(a2, ContainerRequest::anywhere(Resource::new(2, 7000)));
        let got = r.allocate();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].app, a1);
    }

    #[test]
    fn node_failure_kills_containers_and_capacity() {
        let mut r = rm(2);
        let app = r.submit_app("wf");
        r.request(app, ContainerRequest::pinned(one_core(), NodeId(0)));
        r.request(app, ContainerRequest::pinned(one_core(), NodeId(1)));
        let got = r.allocate();
        assert_eq!(got.len(), 2);
        let killed = r.fail_node(NodeId(0));
        assert_eq!(killed.len(), 1);
        assert_eq!(killed[0].node, NodeId(0));
        assert!(!r.is_alive(NodeId(0)));
        assert_eq!(r.alive_nodes(), vec![NodeId(1)]);
        // New relaxed requests land on the survivor.
        r.request(app, ContainerRequest::anywhere(one_core()));
        let got = r.allocate();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].node, NodeId(1));
        // Releasing a killed container is a no-op (already gone).
        assert!(r.release(killed[0].id).is_none());
        // Revive restores capacity.
        r.revive_node(NodeId(0));
        assert_eq!(r.available(NodeId(0)), r.total(NodeId(0)));
    }

    #[test]
    fn capacity_fraction_reserves_headroom() {
        let spec = ClusterSpec::homogeneous(1, "n", &NodeSpec::c3_2xlarge("p"));
        let r = ResourceManager::new(
            &spec,
            RmConfig {
                capacity_fraction: 0.5,
            },
        );
        assert_eq!(r.total(NodeId(0)).vcores, 4);
        assert_eq!(r.total(NodeId(0)).memory_mb, 7500);
    }

    #[test]
    fn app_names_are_recorded() {
        let mut r = rm(1);
        let a = r.submit_app("snv-calling");
        assert_eq!(r.app_name(a), "snv-calling");
        assert_eq!(r.queue_of(a), "default");
        assert!(r.is_admitted(a));
    }

    #[test]
    fn recovered_node_restores_full_capacity() {
        let mut r = rm(2);
        let app = r.submit_app("wf");
        // Two containers on node 0, then the node dies mid-flight.
        r.request(app, ContainerRequest::pinned(one_core(), NodeId(0)));
        r.request(app, ContainerRequest::pinned(one_core(), NodeId(0)));
        assert_eq!(r.allocate().len(), 2);
        assert_eq!(r.available(NodeId(0)).vcores, 0);
        r.fail_node(NodeId(0));

        r.revive_node(NodeId(0));
        assert!(r.is_alive(NodeId(0)));
        // The containers died with the node: the NodeManager re-registers
        // with its *full* capacity, not the pre-crash remainder.
        assert_eq!(r.available(NodeId(0)), r.total(NodeId(0)));
        assert_eq!(r.running_containers(), 0);
    }

    #[test]
    fn old_container_ids_stay_dead_after_recovery() {
        let mut r = rm(2);
        let app = r.submit_app("wf");
        r.request(app, ContainerRequest::pinned(one_core(), NodeId(0)));
        let got = r.allocate();
        let old = got[0].id;
        let killed = r.fail_node(NodeId(0));
        assert_eq!(killed[0].id, old);
        r.revive_node(NodeId(0));

        // The pre-crash container id is gone for good: no lookup, no
        // double-release, and fresh allocations never reuse it.
        assert!(r.container(old).is_none());
        assert!(r.release(old).is_none());
        assert_eq!(r.available(NodeId(0)), r.total(NodeId(0)));
        r.request(app, ContainerRequest::pinned(one_core(), NodeId(0)));
        let fresh = r.allocate();
        assert_eq!(fresh.len(), 1);
        assert_ne!(fresh[0].id, old);
    }

    #[test]
    fn new_allocations_land_on_recovered_node() {
        let mut r = rm(2);
        let app = r.submit_app("wf");
        r.fail_node(NodeId(0));
        // While node 0 is down, relaxed requests avoid it...
        r.request(app, ContainerRequest::anywhere(one_core()));
        assert_eq!(r.allocate()[0].node, NodeId(1));
        // ...and pinned requests for it starve.
        let starved = r.request(app, ContainerRequest::pinned(one_core(), NodeId(0)));
        assert!(r.allocate().is_empty());
        assert_eq!(r.pending_requests(), 1);

        r.revive_node(NodeId(0));
        // The queued pinned request is finally served on the revived node.
        let got = r.allocate();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].node, NodeId(0));
        let _ = starved;
        // And relaxed requests may use it again too.
        r.request(app, ContainerRequest::anywhere(one_core()));
        let nodes: Vec<NodeId> = r.allocate().iter().map(|c| c.node).collect();
        assert!(!nodes.is_empty());
    }

    #[test]
    fn tracer_counts_allocation_lifecycle() {
        use hiway_obs::Tracer;
        let tracer = Tracer::enabled();
        let mut r = rm(2);
        r.set_tracer(&tracer);
        let app = r.submit_app("wf");
        for _ in 0..3 {
            r.request(app, ContainerRequest::anywhere(one_core()));
        }
        let got = r.allocate();
        assert_eq!(tracer.counter_value("rm.requests"), 3);
        assert_eq!(
            tracer.counter_value("rm.containers_allocated"),
            got.len() as u64
        );
        r.release(got[0].id);
        assert_eq!(tracer.counter_value("rm.containers_released"), 1);
        r.fail_node(NodeId(1));
        assert_eq!(tracer.counter_value("rm.nodes_failed"), 1);
        r.revive_node(NodeId(1));
        assert_eq!(tracer.counter_value("rm.nodes_revived"), 1);
        let snap = tracer.snapshot().expect("enabled tracer snapshots");
        assert_eq!(snap.metrics.gauge("rm.pending_requests"), Some(0.0));
        // Default (unconfigured) queues stay silent: no queue audits, no
        // per-queue gauges — historical traces must not change.
        assert_eq!(tracer.queue_audit_count(), 0);
        assert_eq!(snap.metrics.gauge("rm.queue.default.used_vcores"), None);
    }

    #[test]
    fn disabled_tracer_leaves_rm_silent() {
        let tracer = hiway_obs::Tracer::disabled();
        let mut r = rm(1);
        r.set_tracer(&tracer);
        let app = r.submit_app("wf");
        r.request(app, ContainerRequest::anywhere(one_core()));
        r.allocate();
        assert_eq!(tracer.counter_value("rm.requests"), 0);
        assert!(tracer.snapshot().is_none());
    }

    #[test]
    fn revive_is_idempotent_on_alive_nodes() {
        let mut r = rm(1);
        let app = r.submit_app("wf");
        r.request(app, ContainerRequest::anywhere(one_core()));
        assert_eq!(r.allocate().len(), 1);
        let before = r.available(NodeId(0));
        // Reviving a node that never died must not resurrect capacity
        // currently leased to containers.
        r.revive_node(NodeId(0));
        assert_eq!(r.available(NodeId(0)), before);
        assert_eq!(r.running_containers(), 1);
    }

    // ----- edge cases: release/crash interactions --------------------------

    #[test]
    fn release_after_node_crash_is_a_noop() {
        let mut r = rm(2);
        let app = r.submit_app("wf");
        r.request(app, ContainerRequest::pinned(one_core(), NodeId(0)));
        let got = r.allocate();
        let cid = got[0].id;
        r.fail_node(NodeId(0));
        // The driver may still hold the container handle and release it
        // after learning of the crash: the id is already gone, capacity
        // must not be resurrected on the dead node.
        assert!(r.release(cid).is_none());
        assert_eq!(r.available(NodeId(0)), Resource::ZERO);
        assert_eq!(r.running_containers(), 0);
        // Queue accounting was already uncharged by fail_node; a revive
        // then re-allocate works from a clean slate.
        assert_eq!(r.queue_usage("default"), Some(Resource::ZERO));
    }

    #[test]
    fn double_release_is_idempotent() {
        let mut r = rm(1);
        let app = r.submit_app("wf");
        r.request(app, ContainerRequest::anywhere(one_core()));
        let got = r.allocate();
        let cid = got[0].id;
        assert!(r.release(cid).is_some());
        let avail = r.available(NodeId(0));
        // Second release of the same id: no capacity double-credit, no
        // queue-usage underflow, no panic.
        assert!(r.release(cid).is_none());
        assert_eq!(r.available(NodeId(0)), avail);
        assert_eq!(r.queue_usage("default"), Some(Resource::ZERO));
    }

    #[test]
    fn oversized_request_fails_fast_not_hangs() {
        let mut r = rm(2); // m3.large: 2 vcores / 7500 MB per node
        let app = r.submit_app("wf");
        // More cores than any node has: must not enter the queue at all.
        r.request(app, ContainerRequest::anywhere(Resource::new(64, 1000)));
        assert_eq!(r.pending_requests(), 0);
        assert!(r.allocate().is_empty());
        let infeasible = r.take_infeasible();
        assert_eq!(infeasible.len(), 1);
        assert_eq!(infeasible[0].0, app);
        assert!(
            infeasible[0].1.contains("fits no node"),
            "{}",
            infeasible[0].1
        );
        // Drained once: subsequent calls are empty.
        assert!(r.take_infeasible().is_empty());
        // Same for memory, and for a pinned request exceeding its node.
        r.request(app, ContainerRequest::anywhere(Resource::new(1, 1 << 30)));
        r.request(
            app,
            ContainerRequest::pinned(Resource::new(4, 1000), NodeId(1)),
        );
        assert_eq!(r.pending_requests(), 0);
        assert_eq!(r.take_infeasible().len(), 2);
        // A dead node does NOT make a fitting request infeasible — the
        // node may revive, so the request waits instead.
        r.fail_node(NodeId(0));
        r.fail_node(NodeId(1));
        r.request(app, ContainerRequest::anywhere(one_core()));
        assert_eq!(r.pending_requests(), 1);
        assert!(r.take_infeasible().is_empty());
    }

    // ----- queue behaviour -------------------------------------------------

    fn two_tenant_rm(nodes: usize, grace: Option<f64>) -> ResourceManager {
        let mut r = rm(nodes);
        r.configure_queues(QueuesConfig::weighted_leaves(
            &[("tenant-a", 2.0), ("tenant-b", 1.0)],
            grace,
        ))
        .unwrap();
        r
    }

    #[test]
    fn configure_queues_rejects_late_or_bad_configs() {
        let mut r = rm(1);
        r.submit_app("wf");
        assert!(r.configure_queues(QueuesConfig::default()).is_err());
        let mut r = rm(1);
        assert!(r
            .configure_queues(QueuesConfig {
                root: QueueSpec::leaf("q", 0.0, 1.0, 1.0),
                ..QueuesConfig::default()
            })
            .is_err());
        assert!(r.submit_app_to("nope", "wf").is_err());
    }

    #[test]
    fn drf_orders_cross_queue_allocation() {
        // 4 nodes × 2 cores = 8 cores. Weights 2:1 ⇒ under saturating
        // demand tenant-a should end up with ~2× tenant-b's cores.
        let mut r = two_tenant_rm(4, None);
        let (a, v) = r.submit_app_to("tenant-a", "wf-a").unwrap();
        assert_eq!(v, Admission::Admitted);
        let (b, _) = r.submit_app_to("tenant-b", "wf-b").unwrap();
        for _ in 0..8 {
            r.request(a, ContainerRequest::anywhere(one_core()));
            r.request(b, ContainerRequest::anywhere(one_core()));
        }
        let got = r.allocate();
        assert_eq!(got.len(), 8, "work conservation: all cores in use");
        let a_cores = got.iter().filter(|c| c.app == a).count();
        let b_cores = got.iter().filter(|c| c.app == b).count();
        // Integer water-line: 5+3 or 6+2 both satisfy DRF within one
        // container; exact split is 5/3 with the alternating descent.
        assert!(a_cores > b_cores, "weighted: {a_cores} vs {b_cores}");
        assert!(b_cores >= 2, "lighter tenant not starved: {b_cores}");
        assert_eq!(r.queue_usage("tenant-a").unwrap().vcores, a_cores as u32);
        assert_eq!(r.queue_usage("tenant-b").unwrap().vcores, b_cores as u32);
    }

    #[test]
    fn max_capacity_caps_elastic_growth() {
        let mut r = rm(4); // 8 cores
        r.configure_queues(QueuesConfig {
            root: QueueSpec::parent(
                "root",
                1.0,
                1.0,
                1.0,
                vec![
                    QueueSpec::leaf("capped", 1.0, 0.25, 0.5),
                    QueueSpec::leaf("open", 1.0, 0.75, 1.0),
                ],
            ),
            admission: AdmissionPolicy::Reject,
            preemption_grace_secs: None,
        })
        .unwrap();
        let (a, _) = r.submit_app_to("capped", "wf").unwrap();
        for _ in 0..8 {
            r.request(a, ContainerRequest::anywhere(one_core()));
        }
        // Even with the whole cluster idle, "capped" stops at 50% = 4 cores.
        let got = r.allocate();
        assert_eq!(got.len(), 4);
        assert_eq!(r.pending_requests(), 4);
        assert_eq!(r.queue_usage("capped").unwrap().vcores, 4);
        // The sibling may use the rest (work conservation).
        let (b, _) = r.submit_app_to("open", "wf2").unwrap();
        for _ in 0..4 {
            r.request(b, ContainerRequest::anywhere(one_core()));
        }
        assert_eq!(r.allocate().len(), 4);
    }

    #[test]
    fn elastic_sharing_borrows_idle_capacity() {
        // tenant-b alone on the cluster may exceed its 1/3 guarantee all
        // the way to the full cluster.
        let mut r = two_tenant_rm(2, None); // 4 cores
        let (b, _) = r.submit_app_to("tenant-b", "wf").unwrap();
        for _ in 0..4 {
            r.request(b, ContainerRequest::anywhere(one_core()));
        }
        assert_eq!(r.allocate().len(), 4);
        assert!(r.queue_share("tenant-b").unwrap() > 0.9);
    }

    #[test]
    fn admission_rejects_past_limit() {
        let mut r = rm(2);
        r.configure_queues(QueuesConfig {
            root: QueueSpec::leaf("only", 1.0, 1.0, 1.0).with_max_apps(1),
            admission: AdmissionPolicy::Reject,
            preemption_grace_secs: None,
        })
        .unwrap();
        let (a, va) = r.submit_app_to("only", "first").unwrap();
        assert_eq!(va, Admission::Admitted);
        let (b, vb) = r.submit_app_to("only", "second").unwrap();
        assert_eq!(vb, Admission::Rejected);
        assert!(!r.is_admitted(b));
        // Rejected apps' requests never schedule.
        r.request(b, ContainerRequest::anywhere(one_core()));
        assert!(r.allocate().is_empty());
        // The admitted app is unaffected.
        r.request(a, ContainerRequest::anywhere(one_core()));
        assert_eq!(r.allocate().len(), 1);
    }

    #[test]
    fn admission_queues_and_admits_fifo_on_finish() {
        let mut r = rm(2);
        r.configure_queues(QueuesConfig {
            root: QueueSpec::leaf("only", 1.0, 1.0, 1.0).with_max_apps(1),
            admission: AdmissionPolicy::Queue,
            preemption_grace_secs: None,
        })
        .unwrap();
        let (a, _) = r.submit_app_to("only", "first").unwrap();
        let (b, vb) = r.submit_app_to("only", "second").unwrap();
        let (c, vc) = r.submit_app_to("only", "third").unwrap();
        assert_eq!(vb, Admission::Queued);
        assert_eq!(vc, Admission::Queued);
        // Parked apps' requests are held back.
        r.request(b, ContainerRequest::anywhere(one_core()));
        assert!(r.allocate().is_empty());
        // First finishes: b (older) admitted, c still parked.
        r.finish_app(a);
        assert!(r.is_admitted(b));
        assert!(!r.is_admitted(c));
        assert_eq!(r.allocate().len(), 1);
        // finish_app is idempotent; finishing b admits c.
        r.finish_app(a);
        assert!(!r.is_admitted(c));
        r.finish_app(b);
        assert!(r.is_admitted(c));
    }

    #[test]
    fn preemption_claws_back_capacity_for_starved_queue() {
        // 4 nodes × 2 cores; tenant-a (w2, guarantee 2/3) hogs all 8.
        let mut r = two_tenant_rm(4, Some(10.0));
        let (a, _) = r.submit_app_to("tenant-a", "hog").unwrap();
        for _ in 0..8 {
            r.request(a, ContainerRequest::anywhere(one_core()));
        }
        assert_eq!(r.allocate_at(0.0).len(), 8);
        // tenant-b arrives with demand. Its fair share is 1/3.
        let (b, _) = r.submit_app_to("tenant-b", "late").unwrap();
        for _ in 0..4 {
            r.request(b, ContainerRequest::anywhere(one_core()));
        }
        // Starvation clock starts at 1.0; before the grace expires, no
        // victims.
        assert!(r.allocate_at(1.0).is_empty());
        assert!(r.take_preemptions().is_empty());
        assert!(r.allocate_at(5.0).is_empty());
        assert!(r.take_preemptions().is_empty());
        // Grace (10s) elapsed: victims selected from tenant-a's newest
        // containers, but never below its 2/3 guarantee.
        r.allocate_at(11.5);
        let victims = r.take_preemptions();
        assert!(!victims.is_empty(), "grace expired, victims expected");
        let over_guarantee: f64 = 8.0 - (2.0 / 3.0) * 8.0; // ≈ 2.67 cores
        assert!(victims.len() as f64 <= over_guarantee.ceil() + 1e-9);
        // Newest first.
        let mut sorted = victims.clone();
        sorted.sort_by(|x, y| y.cmp(x));
        assert_eq!(victims, sorted);
        // The driver kills them; the freed cores go to tenant-b.
        for v in victims {
            r.release(v);
        }
        let got = r.allocate_at(12.0);
        assert!(got.iter().all(|c| c.app == b));
        assert!(!got.is_empty());
        assert!(r.queue_share("tenant-b").unwrap() > 0.2);
    }

    #[test]
    fn preemption_skips_unpreemptable_containers() {
        let mut r = two_tenant_rm(1, Some(1.0)); // 2 cores total
        let (a, _) = r.submit_app_to("tenant-a", "am-heavy").unwrap();
        // Both of tenant-a's containers are AM-style unpreemptable.
        r.request(a, ContainerRequest::anywhere(one_core()).never_preempt());
        r.request(a, ContainerRequest::anywhere(one_core()).never_preempt());
        assert_eq!(r.allocate_at(0.0).len(), 2);
        let (b, _) = r.submit_app_to("tenant-b", "late").unwrap();
        r.request(b, ContainerRequest::anywhere(one_core()));
        r.allocate_at(1.0);
        r.allocate_at(3.0);
        r.allocate_at(5.0);
        assert!(
            r.take_preemptions().is_empty(),
            "unpreemptable containers must never be selected"
        );
    }

    #[test]
    fn queue_audit_records_lifecycle() {
        use hiway_obs::Tracer;
        let tracer = Tracer::enabled();
        let mut r = two_tenant_rm(2, None);
        r.set_tracer(&tracer);
        let (a, _) = r.submit_app_to("tenant-a", "wf").unwrap();
        r.request(a, ContainerRequest::anywhere(one_core()));
        r.allocate_at(2.0);
        tracer.with_queue_audits(|audits| {
            assert!(audits
                .iter()
                .any(|q| q.kind == hiway_obs::QueueEventKind::Admit && q.app == Some(a.0)));
            assert!(audits
                .iter()
                .any(|q| q.kind == hiway_obs::QueueEventKind::Allocate
                    && q.queue == "tenant-a"
                    && q.used_vcores == 1));
            // One usage sample per leaf for the allocation round.
            let usage: Vec<_> = audits
                .iter()
                .filter(|q| q.kind == hiway_obs::QueueEventKind::Usage)
                .collect();
            assert_eq!(usage.len(), 2);
            assert!(usage.iter().all(|q| (q.t - 2.0).abs() < 1e-9));
        });
        let snap = tracer.snapshot().unwrap();
        assert_eq!(
            snap.metrics.gauge("rm.queue.tenant-a.used_vcores"),
            Some(1.0)
        );
        assert_eq!(
            snap.metrics.gauge("rm.queue.tenant-b.used_vcores"),
            Some(0.0)
        );
    }
}
