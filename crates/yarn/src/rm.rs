//! The ResourceManager: node capacity tracking and FIFO container
//! allocation with optional strict placement.

use std::collections::BTreeMap;

use hiway_obs::Tracer;
use hiway_sim::{ClusterSpec, NodeId};

use crate::types::{AppId, Container, ContainerId, ContainerRequest, RequestId, Resource};

/// RM configuration.
#[derive(Clone, Copy, Debug)]
pub struct RmConfig {
    /// Capacity advertised by each NodeManager, as a fraction of the
    /// node's physical cores/memory (YARN reserves headroom for the OS
    /// and the NM itself; 1.0 hands everything to containers, which is
    /// how the paper's experiments were configured).
    pub capacity_fraction: f64,
}

impl Default for RmConfig {
    fn default() -> RmConfig {
        RmConfig {
            capacity_fraction: 1.0,
        }
    }
}

struct NodeState {
    total: Resource,
    available: Resource,
    alive: bool,
}

struct PendingRequest {
    app: AppId,
    request: ContainerRequest,
}

/// The simulated ResourceManager.
pub struct ResourceManager {
    nodes: Vec<NodeState>,
    /// FIFO queue of pending requests across all applications.
    queue: BTreeMap<u64, PendingRequest>,
    containers: BTreeMap<u64, Container>,
    next_request: u64,
    next_container: u64,
    next_app: u32,
    apps: Vec<String>,
    /// Round-robin pointer so relaxed requests spread across the cluster
    /// instead of piling onto node 0.
    spread_cursor: usize,
    /// Observability sink. The RM deliberately has no clock, so it only
    /// feeds the metrics registry (counters and queue gauges); timestamped
    /// container spans are emitted by the driver, which knows `now`.
    tracer: Tracer,
}

impl ResourceManager {
    /// Builds an RM from the cluster hardware description: one NodeManager
    /// per node.
    pub fn new(spec: &ClusterSpec, config: RmConfig) -> ResourceManager {
        let nodes = spec
            .nodes
            .iter()
            .map(|n| {
                let total = Resource::new(
                    ((n.cores as f64) * config.capacity_fraction)
                        .floor()
                        .max(1.0) as u32,
                    ((n.memory_mb as f64) * config.capacity_fraction).floor() as u64,
                );
                NodeState {
                    total,
                    available: total,
                    alive: true,
                }
            })
            .collect();
        ResourceManager {
            nodes,
            queue: BTreeMap::new(),
            containers: BTreeMap::new(),
            next_request: 0,
            next_container: 0,
            next_app: 0,
            apps: Vec::new(),
            spread_cursor: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches an observability sink. Counters land in the shared
    /// metrics registry; a disabled tracer keeps every record a no-op.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
    }

    /// Registers an application (a Hi-WAY AM about to start). The AM's own
    /// container is requested like any other via [`Self::request`].
    pub fn submit_app(&mut self, name: impl Into<String>) -> AppId {
        let id = AppId(self.next_app);
        self.next_app += 1;
        self.apps.push(name.into());
        id
    }

    pub fn app_name(&self, app: AppId) -> &str {
        &self.apps[app.0 as usize]
    }

    /// Enqueues a container request; allocation happens on the next
    /// [`Self::allocate`] (the AM–RM heartbeat).
    pub fn request(&mut self, app: AppId, request: ContainerRequest) -> RequestId {
        let id = RequestId(self.next_request);
        self.next_request += 1;
        self.queue.insert(id.0, PendingRequest { app, request });
        self.tracer.inc("rm.requests", 1);
        self.tracer
            .set_gauge("rm.pending_requests", self.queue.len() as f64);
        id
    }

    /// Withdraws a pending request (e.g. the workflow finished early).
    pub fn cancel_request(&mut self, id: RequestId) -> bool {
        let removed = self.queue.remove(&id.0).is_some();
        if removed {
            self.tracer.inc("rm.requests_cancelled", 1);
            self.tracer
                .set_gauge("rm.pending_requests", self.queue.len() as f64);
        }
        removed
    }

    pub fn pending_requests(&self) -> usize {
        self.queue.len()
    }

    /// One allocation round: walks the FIFO queue and hands out containers
    /// wherever capacity (and placement constraints) permit. Requests that
    /// cannot be satisfied stay queued. Returns the new containers.
    pub fn allocate(&mut self) -> Vec<Container> {
        let mut granted = Vec::new();
        let ids: Vec<u64> = self.queue.keys().copied().collect();
        for id in ids {
            let request = self.queue[&id].request;
            if let Some(node) = self.find_node(&request) {
                let pending = self.queue.remove(&id).expect("still queued");
                self.nodes[node.index()]
                    .available
                    .subtract(&pending.request.resource);
                let cid = ContainerId(self.next_container);
                self.next_container += 1;
                let container = Container {
                    id: cid,
                    app: pending.app,
                    node,
                    resource: pending.request.resource,
                    request: RequestId(id),
                };
                self.containers.insert(cid.0, container);
                granted.push(container);
            }
        }
        if self.tracer.is_enabled() {
            self.tracer.inc("rm.allocation_rounds", 1);
            self.tracer
                .inc("rm.containers_allocated", granted.len() as u64);
            self.tracer
                .set_gauge("rm.pending_requests", self.queue.len() as f64);
            self.tracer
                .set_gauge("rm.running_containers", self.containers.len() as f64);
        }
        granted
    }

    fn find_node(&mut self, request: &ContainerRequest) -> Option<NodeId> {
        let fits = |state: &NodeState| state.alive && state.available.fits(&request.resource);
        if let Some(pref) = request.preference {
            if pref.index() < self.nodes.len() && fits(&self.nodes[pref.index()]) {
                return Some(pref);
            }
            if !request.relax_locality {
                return None; // strict placement waits for the exact node
            }
        }
        // Relaxed: round-robin over the cluster for an even spread.
        let n = self.nodes.len();
        for offset in 0..n {
            let idx = (self.spread_cursor + offset) % n;
            if fits(&self.nodes[idx]) {
                self.spread_cursor = (idx + 1) % n;
                return Some(NodeId(idx as u32));
            }
        }
        None
    }

    /// Returns a container's lease to the pool (task finished or killed).
    pub fn release(&mut self, id: ContainerId) -> Option<Container> {
        let container = self.containers.remove(&id.0)?;
        let state = &mut self.nodes[container.node.index()];
        if state.alive {
            state.available.add(&container.resource);
        }
        self.tracer.inc("rm.containers_released", 1);
        self.tracer
            .set_gauge("rm.running_containers", self.containers.len() as f64);
        Some(container)
    }

    /// Marks a node dead and returns the containers that were running on
    /// it — the owning AMs must be told their tasks are gone.
    pub fn fail_node(&mut self, node: NodeId) -> Vec<Container> {
        let state = &mut self.nodes[node.index()];
        state.alive = false;
        state.available = Resource::ZERO;
        let killed: Vec<Container> = self
            .containers
            .values()
            .filter(|c| c.node == node)
            .copied()
            .collect();
        for c in &killed {
            self.containers.remove(&c.id.0);
        }
        if self.tracer.is_enabled() {
            self.tracer.inc("rm.nodes_failed", 1);
            self.tracer
                .inc("rm.containers_lost_to_node_failure", killed.len() as u64);
            self.tracer
                .set_gauge("rm.running_containers", self.containers.len() as f64);
        }
        killed
    }

    /// Overrides a node's advertised capacity (e.g. to dedicate a node to
    /// master processes or to exactly one AM container). Must be called
    /// before any containers are allocated on the node.
    pub fn set_capacity(&mut self, node: NodeId, capacity: Resource) {
        let state = &mut self.nodes[node.index()];
        assert!(
            state.available == state.total,
            "set_capacity with containers outstanding on node {}",
            node.0
        );
        state.total = capacity;
        state.available = capacity;
    }

    /// Returns a node to service with full (empty) capacity.
    pub fn revive_node(&mut self, node: NodeId) {
        let state = &mut self.nodes[node.index()];
        if !state.alive {
            state.alive = true;
            state.available = state.total;
            self.tracer.inc("rm.nodes_revived", 1);
        }
    }

    pub fn is_alive(&self, node: NodeId) -> bool {
        self.nodes[node.index()].alive
    }

    pub fn available(&self, node: NodeId) -> Resource {
        self.nodes[node.index()].available
    }

    pub fn total(&self, node: NodeId) -> Resource {
        self.nodes[node.index()].total
    }

    pub fn container(&self, id: ContainerId) -> Option<&Container> {
        self.containers.get(&id.0)
    }

    pub fn running_containers(&self) -> usize {
        self.containers.len()
    }

    /// Alive nodes, in id order.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiway_sim::{ClusterSpec, NodeSpec};

    fn rm(nodes: usize) -> ResourceManager {
        let spec = ClusterSpec::homogeneous(nodes, "n", &NodeSpec::m3_large("p"));
        ResourceManager::new(&spec, RmConfig::default())
    }

    fn one_core() -> Resource {
        Resource::new(1, 1000)
    }

    #[test]
    fn allocation_respects_capacity() {
        let mut r = rm(1); // m3.large: 2 vcores, 7500 MB
        let app = r.submit_app("wf");
        for _ in 0..3 {
            r.request(app, ContainerRequest::anywhere(one_core()));
        }
        let got = r.allocate();
        assert_eq!(got.len(), 2, "only two cores available");
        assert_eq!(r.pending_requests(), 1);
        // Releasing one frees capacity for the queued request.
        r.release(got[0].id);
        assert_eq!(r.allocate().len(), 1);
    }

    #[test]
    fn memory_limits_bind_too() {
        let mut r = rm(1);
        let app = r.submit_app("wf");
        // Two 1-core/6000MB asks: only one fits in 7500 MB.
        for _ in 0..2 {
            r.request(app, ContainerRequest::anywhere(Resource::new(1, 6000)));
        }
        assert_eq!(r.allocate().len(), 1);
    }

    #[test]
    fn relaxed_requests_spread_round_robin() {
        let mut r = rm(4);
        let app = r.submit_app("wf");
        for _ in 0..4 {
            r.request(app, ContainerRequest::anywhere(one_core()));
        }
        let got = r.allocate();
        let mut nodes: Vec<u32> = got.iter().map(|c| c.node.0).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![0, 1, 2, 3]);
    }

    #[test]
    fn strict_placement_waits_for_its_node() {
        let mut r = rm(2);
        let app = r.submit_app("wf");
        // Fill node 0 completely.
        r.request(
            app,
            ContainerRequest::pinned(Resource::new(2, 7000), NodeId(0)),
        );
        assert_eq!(r.allocate().len(), 1);
        // A strict request for node 0 must wait even though node 1 is free.
        let rid = r.request(app, ContainerRequest::pinned(one_core(), NodeId(0)));
        assert!(r.allocate().is_empty());
        assert_eq!(r.pending_requests(), 1);
        // A relaxed request with the same preference falls back to node 1.
        r.cancel_request(rid);
        r.request(
            app,
            ContainerRequest {
                resource: one_core(),
                preference: Some(NodeId(0)),
                relax_locality: true,
            },
        );
        let got = r.allocate();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].node, NodeId(1));
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut r = rm(1);
        let a1 = r.submit_app("first");
        let a2 = r.submit_app("second");
        r.request(a1, ContainerRequest::anywhere(Resource::new(2, 7000)));
        r.request(a2, ContainerRequest::anywhere(Resource::new(2, 7000)));
        let got = r.allocate();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].app, a1);
    }

    #[test]
    fn node_failure_kills_containers_and_capacity() {
        let mut r = rm(2);
        let app = r.submit_app("wf");
        r.request(app, ContainerRequest::pinned(one_core(), NodeId(0)));
        r.request(app, ContainerRequest::pinned(one_core(), NodeId(1)));
        let got = r.allocate();
        assert_eq!(got.len(), 2);
        let killed = r.fail_node(NodeId(0));
        assert_eq!(killed.len(), 1);
        assert_eq!(killed[0].node, NodeId(0));
        assert!(!r.is_alive(NodeId(0)));
        assert_eq!(r.alive_nodes(), vec![NodeId(1)]);
        // New relaxed requests land on the survivor.
        r.request(app, ContainerRequest::anywhere(one_core()));
        let got = r.allocate();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].node, NodeId(1));
        // Releasing a killed container is a no-op (already gone).
        assert!(r.release(killed[0].id).is_none());
        // Revive restores capacity.
        r.revive_node(NodeId(0));
        assert_eq!(r.available(NodeId(0)), r.total(NodeId(0)));
    }

    #[test]
    fn capacity_fraction_reserves_headroom() {
        let spec = ClusterSpec::homogeneous(1, "n", &NodeSpec::c3_2xlarge("p"));
        let r = ResourceManager::new(
            &spec,
            RmConfig {
                capacity_fraction: 0.5,
            },
        );
        assert_eq!(r.total(NodeId(0)).vcores, 4);
        assert_eq!(r.total(NodeId(0)).memory_mb, 7500);
    }

    #[test]
    fn app_names_are_recorded() {
        let mut r = rm(1);
        let a = r.submit_app("snv-calling");
        assert_eq!(r.app_name(a), "snv-calling");
    }

    #[test]
    fn recovered_node_restores_full_capacity() {
        let mut r = rm(2);
        let app = r.submit_app("wf");
        // Two containers on node 0, then the node dies mid-flight.
        r.request(app, ContainerRequest::pinned(one_core(), NodeId(0)));
        r.request(app, ContainerRequest::pinned(one_core(), NodeId(0)));
        assert_eq!(r.allocate().len(), 2);
        assert_eq!(r.available(NodeId(0)).vcores, 0);
        r.fail_node(NodeId(0));

        r.revive_node(NodeId(0));
        assert!(r.is_alive(NodeId(0)));
        // The containers died with the node: the NodeManager re-registers
        // with its *full* capacity, not the pre-crash remainder.
        assert_eq!(r.available(NodeId(0)), r.total(NodeId(0)));
        assert_eq!(r.running_containers(), 0);
    }

    #[test]
    fn old_container_ids_stay_dead_after_recovery() {
        let mut r = rm(2);
        let app = r.submit_app("wf");
        r.request(app, ContainerRequest::pinned(one_core(), NodeId(0)));
        let got = r.allocate();
        let old = got[0].id;
        let killed = r.fail_node(NodeId(0));
        assert_eq!(killed[0].id, old);
        r.revive_node(NodeId(0));

        // The pre-crash container id is gone for good: no lookup, no
        // double-release, and fresh allocations never reuse it.
        assert!(r.container(old).is_none());
        assert!(r.release(old).is_none());
        assert_eq!(r.available(NodeId(0)), r.total(NodeId(0)));
        r.request(app, ContainerRequest::pinned(one_core(), NodeId(0)));
        let fresh = r.allocate();
        assert_eq!(fresh.len(), 1);
        assert_ne!(fresh[0].id, old);
    }

    #[test]
    fn new_allocations_land_on_recovered_node() {
        let mut r = rm(2);
        let app = r.submit_app("wf");
        r.fail_node(NodeId(0));
        // While node 0 is down, relaxed requests avoid it...
        r.request(app, ContainerRequest::anywhere(one_core()));
        assert_eq!(r.allocate()[0].node, NodeId(1));
        // ...and pinned requests for it starve.
        let starved = r.request(app, ContainerRequest::pinned(one_core(), NodeId(0)));
        assert!(r.allocate().is_empty());
        assert_eq!(r.pending_requests(), 1);

        r.revive_node(NodeId(0));
        // The queued pinned request is finally served on the revived node.
        let got = r.allocate();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].node, NodeId(0));
        let _ = starved;
        // And relaxed requests may use it again too.
        r.request(app, ContainerRequest::anywhere(one_core()));
        let nodes: Vec<NodeId> = r.allocate().iter().map(|c| c.node).collect();
        assert!(!nodes.is_empty());
    }

    #[test]
    fn tracer_counts_allocation_lifecycle() {
        use hiway_obs::Tracer;
        let tracer = Tracer::enabled();
        let mut r = rm(2);
        r.set_tracer(&tracer);
        let app = r.submit_app("wf");
        for _ in 0..3 {
            r.request(app, ContainerRequest::anywhere(one_core()));
        }
        let got = r.allocate();
        assert_eq!(tracer.counter_value("rm.requests"), 3);
        assert_eq!(
            tracer.counter_value("rm.containers_allocated"),
            got.len() as u64
        );
        r.release(got[0].id);
        assert_eq!(tracer.counter_value("rm.containers_released"), 1);
        r.fail_node(NodeId(1));
        assert_eq!(tracer.counter_value("rm.nodes_failed"), 1);
        r.revive_node(NodeId(1));
        assert_eq!(tracer.counter_value("rm.nodes_revived"), 1);
        let snap = tracer.snapshot().expect("enabled tracer snapshots");
        assert_eq!(snap.metrics.gauge("rm.pending_requests"), Some(0.0));
    }

    #[test]
    fn disabled_tracer_leaves_rm_silent() {
        let tracer = hiway_obs::Tracer::disabled();
        let mut r = rm(1);
        r.set_tracer(&tracer);
        let app = r.submit_app("wf");
        r.request(app, ContainerRequest::anywhere(one_core()));
        r.allocate();
        assert_eq!(tracer.counter_value("rm.requests"), 0);
        assert!(tracer.snapshot().is_none());
    }

    #[test]
    fn revive_is_idempotent_on_alive_nodes() {
        let mut r = rm(1);
        let app = r.submit_app("wf");
        r.request(app, ContainerRequest::anywhere(one_core()));
        assert_eq!(r.allocate().len(), 1);
        let before = r.available(NodeId(0));
        // Reviving a node that never died must not resurrect capacity
        // currently leased to containers.
        r.revive_node(NodeId(0));
        assert_eq!(r.available(NodeId(0)), before);
        assert_eq!(r.running_containers(), 1);
    }
}
