//! Virtual time for the simulation.
//!
//! Time is a non-negative `f64` number of seconds wrapped in [`SimTime`] so
//! it can be totally ordered (the simulator never produces NaN) and so that
//! raw seconds don't leak into APIs unannotated.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in seconds since simulation start.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from seconds. Panics on NaN or negative input —
    /// both indicate a simulator bug, not a recoverable condition.
    pub fn from_secs(secs: f64) -> SimTime {
        assert!(secs.is_finite() && secs >= 0.0, "invalid SimTime: {secs}");
        SimTime(secs)
    }

    /// Creates a time from minutes.
    pub fn from_mins(mins: f64) -> SimTime {
        SimTime::from_secs(mins * 60.0)
    }

    /// Seconds since simulation start.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Minutes since simulation start.
    pub fn as_mins(self) -> f64 {
        self.0 / 60.0
    }

    /// Duration from `earlier` to `self`; saturates at zero.
    pub fn since(self, earlier: SimTime) -> f64 {
        (self.0 - earlier.0).max(0.0)
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Values are always finite (enforced at construction).
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, secs: f64) -> SimTime {
        SimTime::from_secs(self.0 + secs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, secs: f64) {
        *self = *self + secs;
    }
}

impl Sub for SimTime {
    type Output = f64;
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::from_secs(1.0);
        let b = a + 2.5;
        assert!(b > a);
        assert_eq!(b - a, 2.5);
        assert_eq!(b.since(a), 2.5);
        assert_eq!(a.since(b), 0.0);
        assert_eq!(SimTime::from_mins(2.0).as_secs(), 120.0);
        assert_eq!(SimTime::from_secs(90.0).as_mins(), 1.5);
    }

    #[test]
    #[should_panic(expected = "invalid SimTime")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_secs(1.5).to_string(), "1.500s");
    }
}
