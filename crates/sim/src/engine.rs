//! The rate-based discrete-event engine.
//!
//! Every ongoing piece of work is an [`Activity`] with a remaining volume:
//! CPU work in reference CPU-seconds, disk and network transfers in bytes.
//! Whenever the set of activities changes, the engine recomputes the
//! affected activities' rates with the fair-sharing models in
//! [`crate::cpufair`] and [`crate::netfair`], then advances virtual time to
//! the earliest completion or timer. Completions are *returned* to the
//! caller rather than delivered through callbacks, so the layers above
//! (HDFS, YARN, the Hi-WAY AM) drive the simulation with an ordinary poll
//! loop and stay borrow-checker friendly.
//!
//! ## Incremental hot path
//!
//! Rate refresh is incremental: CPU fair-sharing is independent per node,
//! so `fair_cores` reruns only for nodes whose compute set changed (dirty
//! node tracking), and the global max-min network fill reruns only when an
//! IO activity (flow or disk stream) started, finished, or was cancelled —
//! compute-only churn no longer pays the O(flows × constraints)
//! progressive-filling loop. The IO constraint vector is built once at
//! construction (the cluster spec is immutable) and each activity's
//! [`FlowPath`] once at `start`, with the filling itself running in a
//! preallocated [`NetFairWorkspace`].
//!
//! Activities live in a slab (dense slots with a free list), so the
//! per-step settle and completion passes are straight array walks rather
//! than hash or tree lookups. Event lookup is heap-based: timers sit in a
//! deadline-ordered binary heap, and activity completions in a
//! predicted-completion heap whose entries are lazily invalidated (via
//! per-slot stamps) when an activity's rate changes or its slot is
//! reused. Remaining volumes are still settled with one subtraction per
//! finite activity per step — the exact arithmetic of the naive engine
//! (see [`crate::reference`]), which keeps virtual timestamps bit-for-bit
//! identical — but background loads (infinite volume, e.g. the paper's
//! `stress` processes in the Figure 9 experiment) live outside the finite
//! list, so neither the settle pass nor completion scans ever iterate
//! them.
//!
//! The equivalence contract with the naive engine is enforced by property
//! tests (`tests/incremental_vs_reference.rs`).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use hiway_obs::{Tracer, TrackId};

use crate::cpufair::fair_cores_into;
use crate::metrics::NodeUsage;
use crate::netfair::{Constraint, FlowPath, NetFairWorkspace};
use crate::spec::{ClusterSpec, ExternalId, NodeId};
use crate::time::SimTime;

/// Handle to a running activity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ActivityId(pub u64);

/// Handle to a pending timer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId(pub u64);

/// One side of a network transfer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Endpoint {
    Node(NodeId),
    External(ExternalId),
}

/// The kinds of work the kernel knows how to pace.
#[derive(Clone, Debug)]
pub enum Activity {
    /// CPU work on `node`, able to use up to `threads` cores concurrently.
    /// Volume is measured in *reference* CPU-seconds: a node with speed `s`
    /// burns them at `allocated_cores * s` per second.
    Compute { node: NodeId, threads: f64 },
    /// A local disk read on `node` (shares the node's read bandwidth).
    DiskRead { node: NodeId },
    /// A local disk write on `node` (shares the node's write bandwidth).
    DiskWrite { node: NodeId },
    /// A network transfer. When `src_disk`/`dst_disk` are set the flow is
    /// additionally throttled by the source's disk-read / destination's
    /// disk-write bandwidth — e.g. an HDFS remote read streams from the
    /// remote disk through both NICs onto the local disk.
    Flow {
        src: Endpoint,
        dst: Endpoint,
        src_disk: bool,
        dst_disk: bool,
    },
}

/// Something that fired during [`Engine::step`].
#[derive(Clone, Debug)]
pub enum Completion<T> {
    /// An activity ran its volume down to zero.
    Activity { id: ActivityId, tag: T },
    /// A timer reached its deadline.
    Timer { id: TimerId, tag: T },
}

struct Act<T> {
    id: u64,
    kind: Activity,
    remaining: f64,
    rate: f64,
    tag: T,
}

/// One slab slot. The stamp is bumped on every rate assignment *and* on
/// slot reuse, so completion-heap entries carrying an older stamp — or
/// pointing at a freed slot — are recognizably stale.
struct Slot<T> {
    stamp: u64,
    act: Option<Act<T>>,
}

struct Timer<T> {
    tag: T,
    cancelled: bool,
}

/// Residual volume below which an activity counts as finished. Volumes are
/// bytes or CPU-seconds, so a micro-unit is far below observable scale.
const COMPLETION_EPS: f64 = 1e-6;

/// Activities whose remaining volume would drain within this many seconds
/// at their current rate also count as finished. This absorbs the
/// floating-point residue left by repeated `remaining -= rate * dt`
/// updates: without it, a residue slightly above `COMPLETION_EPS` whose
/// finish instant rounds to `now` would freeze virtual time.
const COMPLETION_TIME_EPS: f64 = 1e-9;

fn is_complete(remaining: f64, rate: f64) -> bool {
    remaining <= COMPLETION_EPS.max(rate * COMPLETION_TIME_EPS)
}

/// Builds the constraint-index path an IO activity traverses. The layout is
/// fixed at engine construction: per node `[disk_read, disk_write, nic_out,
/// nic_in]`, then the switch at `switch_idx`, then one aggregate constraint
/// per external service from `ext_base`. Shared with the naive reference
/// engine so both build bit-identical max-min inputs.
#[doc(hidden)]
pub fn io_flow_path(
    spec: &ClusterSpec,
    kind: &Activity,
    switch_idx: usize,
    ext_base: usize,
) -> FlowPath {
    let disk_r = |n: NodeId| n.index() * 4;
    let disk_w = |n: NodeId| n.index() * 4 + 1;
    let nic_out = |n: NodeId| n.index() * 4 + 2;
    let nic_in = |n: NodeId| n.index() * 4 + 3;
    match kind {
        Activity::Compute { .. } => unreachable!("compute has no flow path"),
        Activity::DiskRead { node } => FlowPath {
            constraints: vec![disk_r(*node)],
            rate_cap: None,
        },
        Activity::DiskWrite { node } => FlowPath {
            constraints: vec![disk_w(*node)],
            rate_cap: None,
        },
        Activity::Flow {
            src,
            dst,
            src_disk,
            dst_disk,
        } => {
            let mut cs = Vec::with_capacity(5);
            let mut cap = None;
            let mut via_switch;
            match src {
                Endpoint::Node(n) => {
                    cs.push(nic_out(*n));
                    if *src_disk {
                        cs.push(disk_r(*n));
                    }
                    via_switch = true; // may be cleared by a WAN dst
                }
                Endpoint::External(e) => {
                    cs.push(ext_base + e.index());
                    let ext = &spec.externals[e.index()];
                    cap = ext.per_flow_bps;
                    via_switch = ext.via_switch;
                }
            }
            match dst {
                Endpoint::Node(n) => {
                    cs.push(nic_in(*n));
                    if *dst_disk {
                        cs.push(disk_w(*n));
                    }
                }
                Endpoint::External(e) => {
                    cs.push(ext_base + e.index());
                    let ext = &spec.externals[e.index()];
                    cap = cap.min_opt(ext.per_flow_bps);
                    if !ext.via_switch {
                        via_switch = false;
                    }
                }
            }
            if via_switch && spec.switch_bps.is_some() {
                cs.push(switch_idx);
            }
            FlowPath {
                constraints: cs,
                rate_cap: cap,
            }
        }
    }
}

/// The simulation engine. `T` is the caller's completion tag type.
pub struct Engine<T> {
    spec: ClusterSpec,
    now: SimTime,
    slab: Vec<Slot<T>>,
    free: Vec<u32>,
    id_to_slot: HashMap<u64, u32>,
    next_id: u64,
    /// `(id, slot)` of finite-volume activities, id-ascending — the only
    /// activities that can complete. Background loads (infinite volume)
    /// are excluded, so settle/completion passes never touch them.
    finite: Vec<(u64, u32)>,
    timers: HashMap<u64, Timer<T>>,
    /// Deadline-ordered timer queue; entries for cancelled timers are
    /// discarded lazily when they surface.
    timer_heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    /// Predicted completion instants `(at, slot, stamp)`; an entry whose
    /// stamp no longer matches the slot's is stale.
    comp_heap: BinaryHeap<Reverse<(SimTime, u32, u64)>>,
    /// Per-node flag + worklist of nodes whose compute set changed.
    cpu_dirty: Vec<bool>,
    cpu_dirty_list: Vec<u32>,
    io_dirty: bool,
    /// Compute activities per node as `(id, slot, threads)`, id-ascending —
    /// the same member order the naive engine derives from its sorted map.
    compute_members: Vec<Vec<(u64, u32, f64)>>,
    /// IO activities `(id, slot)` (id-ascending) with their precomputed
    /// flow paths, parallel vectors feeding `max_min_rates` directly.
    io: Vec<(u64, u32)>,
    io_paths: Vec<FlowPath>,
    /// IO constraint vector, built once (the cluster spec is immutable).
    constraints: Vec<Constraint>,
    switch_idx: usize,
    ext_base: usize,
    netfair_ws: NetFairWorkspace,
    caps_buf: Vec<f64>,
    alloc_buf: Vec<f64>,
    order_buf: Vec<usize>,
    peek_buf: Vec<(SimTime, u32, u64)>,
    done_buf: Vec<(u64, u32)>,
    usage: Vec<NodeUsage>,
    /// Cached instantaneous per-node totals, refreshed with the rates:
    /// (alloc cores, disk read B/s, disk write B/s, net in B/s, net out B/s).
    inst: Vec<[f64; 5]>,
    /// Observability sink; [`Tracer::disabled`] by default, so the hot
    /// path pays one pointer-null check per guarded block and nothing else.
    tracer: Tracer,
    node_tracks: Vec<TrackId>,
    engine_track: TrackId,
}

impl<T: Clone> Engine<T> {
    pub fn new(spec: ClusterSpec) -> Engine<T> {
        let n = spec.nodes.len();
        // Constraint layout: per node [disk_read, disk_write, nic_out,
        // nic_in], then the optional switch, then one per external service.
        let mut constraints = Vec::with_capacity(n * 4 + 1 + spec.externals.len());
        for node in &spec.nodes {
            constraints.push(Constraint {
                capacity: node.disk_read_bps,
            });
            constraints.push(Constraint {
                capacity: node.disk_write_bps,
            });
            constraints.push(Constraint {
                capacity: node.nic_bps,
            });
            constraints.push(Constraint {
                capacity: node.nic_bps,
            });
        }
        let switch_idx = constraints.len();
        constraints.push(Constraint {
            capacity: spec.switch_bps.unwrap_or(f64::INFINITY),
        });
        let ext_base = constraints.len();
        for ext in &spec.externals {
            constraints.push(Constraint {
                capacity: ext.aggregate_bps,
            });
        }
        Engine {
            spec,
            now: SimTime::ZERO,
            slab: Vec::new(),
            free: Vec::new(),
            id_to_slot: HashMap::new(),
            next_id: 0,
            finite: Vec::new(),
            timers: HashMap::new(),
            timer_heap: BinaryHeap::new(),
            comp_heap: BinaryHeap::new(),
            cpu_dirty: vec![false; n],
            cpu_dirty_list: Vec::new(),
            io_dirty: false,
            compute_members: vec![Vec::new(); n],
            io: Vec::new(),
            io_paths: Vec::new(),
            constraints,
            switch_idx,
            ext_base,
            netfair_ws: NetFairWorkspace::default(),
            caps_buf: Vec::new(),
            alloc_buf: Vec::new(),
            order_buf: Vec::new(),
            peek_buf: Vec::new(),
            done_buf: Vec::new(),
            usage: vec![NodeUsage::default(); n],
            inst: vec![[0.0; 5]; n],
            tracer: Tracer::disabled(),
            node_tracks: Vec::new(),
            engine_track: TrackId::NONE,
        }
    }

    /// Attaches an observability tracer. Registers one track per node
    /// (interned by node name, so HDFS and the driver land events on the
    /// same tracks) plus a synthetic `engine` track for counters and
    /// flows with no node endpoint.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
        self.engine_track = self.tracer.track("engine");
        let t = &self.tracer;
        self.node_tracks = self.spec.nodes.iter().map(|n| t.track(&n.name)).collect();
    }

    /// The track an activity's events render on, plus its kind label.
    fn act_track(&self, kind: &Activity) -> (TrackId, &'static str) {
        match kind {
            Activity::Compute { node, .. } => (self.node_tracks[node.index()], "compute"),
            Activity::DiskRead { node } => (self.node_tracks[node.index()], "disk_read"),
            Activity::DiskWrite { node } => (self.node_tracks[node.index()], "disk_write"),
            Activity::Flow { src, dst, .. } => {
                let track = match (src, dst) {
                    (Endpoint::Node(n), _) => self.node_tracks[n.index()],
                    (_, Endpoint::Node(n)) => self.node_tracks[n.index()],
                    _ => self.engine_track,
                };
                (track, "flow")
            }
        }
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    fn mark_cpu_dirty(&mut self, node: u32) {
        if !self.cpu_dirty[node as usize] {
            self.cpu_dirty[node as usize] = true;
            self.cpu_dirty_list.push(node);
        }
    }

    fn alloc_slot(&mut self, act: Act<T>) -> u32 {
        if let Some(s) = self.free.pop() {
            let slot = &mut self.slab[s as usize];
            slot.stamp += 1; // orphan any heap entries of prior occupants
            slot.act = Some(act);
            s
        } else {
            self.slab.push(Slot {
                stamp: 1,
                act: Some(act),
            });
            (self.slab.len() - 1) as u32
        }
    }

    /// Starts an activity with `volume` units of work. `f64::INFINITY`
    /// creates a background load that never completes (cancel to stop it).
    pub fn start(&mut self, kind: Activity, volume: f64, tag: T) -> ActivityId {
        assert!(volume >= 0.0, "negative activity volume");
        if let Activity::Compute { node, threads } = &kind {
            assert!(
                *threads > 0.0,
                "compute must use at least a sliver of a core"
            );
            assert!(node.index() < self.spec.nodes.len(), "unknown node");
        }
        let id = self.next_id;
        self.next_id += 1;
        let remaining = volume.max(COMPLETION_EPS / 2.0);
        if self.tracer.is_enabled() {
            let (track, what) = self.act_track(&kind);
            self.tracer.instant(
                track,
                &format!("act.start:{what}"),
                "engine",
                self.now.as_secs(),
                &[("id", id.to_string())],
            );
            self.tracer.inc("engine.activities_started", 1);
        }
        // Classify before `kind` moves into the slab.
        let compute = match &kind {
            Activity::Compute { node, threads } => Some((node.0, *threads)),
            io => {
                let path = io_flow_path(&self.spec, io, self.switch_idx, self.ext_base);
                self.io_paths.push(path);
                None
            }
        };
        let slot = self.alloc_slot(Act {
            id,
            kind,
            remaining,
            rate: 0.0,
            tag,
        });
        self.id_to_slot.insert(id, slot);
        if remaining.is_finite() {
            // Ids are monotone, so a push keeps the list sorted.
            self.finite.push((id, slot));
        }
        match compute {
            Some((node, threads)) => {
                self.compute_members[node as usize].push((id, slot, threads));
                self.mark_cpu_dirty(node);
            }
            None => {
                self.io.push((id, slot));
                self.io_dirty = true;
            }
        }
        ActivityId(id)
    }

    /// Unlinks a removed activity from the rate-sharing sets and marks the
    /// affected model dirty.
    fn detach(&mut self, id: u64, kind: &Activity) {
        match kind {
            Activity::Compute { node, .. } => {
                let members = &mut self.compute_members[node.index()];
                if let Ok(pos) = members.binary_search_by_key(&id, |&(i, _, _)| i) {
                    members.remove(pos);
                }
                self.mark_cpu_dirty(node.0);
            }
            _ => {
                if let Ok(pos) = self.io.binary_search_by_key(&id, |&(i, _)| i) {
                    self.io.remove(pos);
                    self.io_paths.remove(pos);
                }
                self.io_dirty = true;
            }
        }
    }

    /// Cancels a running activity, returning its tag (None if already done).
    pub fn cancel(&mut self, id: ActivityId) -> Option<T> {
        let slot = self.id_to_slot.remove(&id.0)?;
        let act = self.slab[slot as usize].act.take().expect("slot mapped");
        self.free.push(slot);
        self.detach(id.0, &act.kind);
        if act.remaining.is_finite() {
            if let Ok(pos) = self.finite.binary_search_by_key(&id.0, |&(i, _)| i) {
                self.finite.remove(pos);
            }
        }
        Some(act.tag)
    }

    /// Number of in-flight activities (including background loads).
    pub fn active_count(&self) -> usize {
        self.id_to_slot.len()
    }

    /// Schedules a timer at absolute time `at` (clamped to now).
    pub fn set_timer(&mut self, at: SimTime, tag: T) -> TimerId {
        let id = self.next_id;
        self.next_id += 1;
        let at = at.max(self.now);
        self.timers.insert(
            id,
            Timer {
                tag,
                cancelled: false,
            },
        );
        self.timer_heap.push(Reverse((at, id)));
        TimerId(id)
    }

    /// Schedules a timer `delay` seconds from now.
    pub fn set_timer_after(&mut self, delay: f64, tag: T) -> TimerId {
        let at = self.now + delay.max(0.0);
        self.set_timer(at, tag)
    }

    pub fn cancel_timer(&mut self, id: TimerId) {
        if let Some(t) = self.timers.get_mut(&id.0) {
            t.cancelled = true;
        }
    }

    /// Debug: dump remaining activities (id, kind, remaining, rate).
    pub fn debug_activities(&mut self) -> Vec<(u64, String, f64, f64)> {
        self.refresh_rates();
        let mut out: Vec<(u64, String, f64, f64)> = self
            .slab
            .iter()
            .filter_map(|s| s.act.as_ref())
            .map(|a| (a.id, format!("{:?}", a.kind), a.remaining, a.rate))
            .collect();
        out.sort_by_key(|e| e.0);
        out
    }

    /// Debug: pending (non-cancelled) timer count.
    pub fn debug_timer_count(&self) -> usize {
        self.timers.values().filter(|t| !t.cancelled).count()
    }

    /// Earliest predicted activity completion. The heap orders candidates
    /// by the prediction made at their last rate change; every candidate
    /// within the float-drift window of the top is re-evaluated from its
    /// current remaining volume, so the returned instant is exactly the
    /// naive engine's scan minimum.
    fn peek_completion(&mut self) -> Option<SimTime> {
        // Bound stale-entry buildup: rebuild from live activities when the
        // heap far outgrows them.
        if self.comp_heap.len() > 64 + 8 * self.finite.len() {
            self.comp_heap.clear();
            for &(_, slot) in &self.finite {
                let s = &self.slab[slot as usize];
                let a = s.act.as_ref().expect("finite act exists");
                if a.rate > 0.0 {
                    let key = if is_complete(a.remaining, a.rate) {
                        self.now
                    } else {
                        self.now + a.remaining / a.rate
                    };
                    self.comp_heap.push(Reverse((key, slot, s.stamp)));
                }
            }
        }
        loop {
            let &Reverse((key, slot, stamp)) = self.comp_heap.peek()?;
            {
                let s = &self.slab[slot as usize];
                if s.stamp != stamp || s.act.is_none() {
                    self.comp_heap.pop();
                    continue;
                }
            }
            // Cached keys may drift from fresh predictions by accumulated
            // settle rounding; the window is orders of magnitude wider
            // than that drift and far narrower than real event gaps.
            let limit = key + (1e-6 + key.as_secs() * 1e-9);
            let mut best: Option<SimTime> = None;
            let mut kept = std::mem::take(&mut self.peek_buf);
            kept.clear();
            while let Some(&Reverse((k, sl, st))) = self.comp_heap.peek() {
                if k > limit {
                    break;
                }
                self.comp_heap.pop();
                let s = &self.slab[sl as usize];
                if s.stamp == st {
                    if let Some(a) = s.act.as_ref() {
                        let fresh = if is_complete(a.remaining, a.rate) {
                            self.now
                        } else {
                            self.now + a.remaining / a.rate
                        };
                        best = Some(best.map_or(fresh, |b| b.min(fresh)));
                        kept.push((k, sl, st));
                    }
                }
            }
            for e in kept.drain(..) {
                self.comp_heap.push(Reverse(e));
            }
            self.peek_buf = kept;
            return best;
        }
    }

    /// Earliest pending timer deadline, discarding surfaced cancellations.
    fn peek_timer(&mut self) -> Option<SimTime> {
        loop {
            let &Reverse((at, id)) = self.timer_heap.peek()?;
            match self.timers.get(&id) {
                Some(t) if !t.cancelled => return Some(at),
                _ => {
                    self.timer_heap.pop();
                    self.timers.remove(&id);
                }
            }
        }
    }

    /// Virtual time of the next completion or timer, if any work is pending.
    pub fn peek_next_time(&mut self) -> Option<SimTime> {
        self.refresh_rates();
        match (self.peek_completion(), self.peek_timer()) {
            (Some(a), Some(t)) => Some(a.min(t)),
            (a, t) => a.or(t),
        }
    }

    /// Advances to the next completion/timer instant and returns everything
    /// that fired there, in deterministic (creation) order. Returns `None`
    /// when only background activities remain.
    pub fn step(&mut self) -> Option<Vec<Completion<T>>> {
        let target = self.peek_next_time()?;
        self.advance_to(target);

        let mut fired = Vec::new();
        // Only finite activities can complete; `finite` is id-ascending,
        // so completions fire in creation order like the naive scan.
        let mut done = std::mem::take(&mut self.done_buf);
        done.clear();
        for &(id, slot) in &self.finite {
            let a = self.slab[slot as usize]
                .act
                .as_ref()
                .expect("finite act exists");
            if is_complete(a.remaining, a.rate) {
                done.push((id, slot));
            }
        }
        if !done.is_empty() {
            self.finite
                .retain(|&(id, _)| done.binary_search_by_key(&id, |&(i, _)| i).is_err());
            for &(id, slot) in &done {
                let act = self.slab[slot as usize]
                    .act
                    .take()
                    .expect("collected above");
                self.free.push(slot);
                self.id_to_slot.remove(&id);
                self.detach(id, &act.kind);
                if self.tracer.is_enabled() {
                    let (track, what) = self.act_track(&act.kind);
                    self.tracer.instant(
                        track,
                        &format!("act.end:{what}"),
                        "engine",
                        self.now.as_secs(),
                        &[("id", id.to_string())],
                    );
                }
                fired.push(Completion::Activity {
                    id: ActivityId(id),
                    tag: act.tag,
                });
            }
        }
        done.clear();
        self.done_buf = done;

        let mut due: Vec<u64> = Vec::new();
        while let Some(&Reverse((at, id))) = self.timer_heap.peek() {
            if at > self.now {
                break;
            }
            self.timer_heap.pop();
            match self.timers.get(&id) {
                // Cancelled timers that have passed are garbage-collected.
                Some(t) if t.cancelled => {
                    self.timers.remove(&id);
                }
                Some(_) => due.push(id),
                None => {}
            }
        }
        // The heap surfaces due timers deadline-first; fire in id order.
        due.sort_unstable();
        for id in due {
            let timer = self.timers.remove(&id).expect("collected above");
            fired.push(Completion::Timer {
                id: TimerId(id),
                tag: timer.tag,
            });
        }
        if self.tracer.is_enabled() {
            let now = self.now.as_secs();
            self.tracer.counter(
                self.engine_track,
                "engine.heap_depth",
                now,
                self.comp_heap.len() as f64,
            );
            self.tracer.counter(
                self.engine_track,
                "engine.active",
                now,
                self.id_to_slot.len() as f64,
            );
            self.tracer.inc("engine.steps", 1);
        }
        Some(fired)
    }

    /// Advances virtual time to `target` without processing completions
    /// (used by `step`, and by callers that want to sample metrics at a
    /// fixed cadence).
    pub fn advance_to(&mut self, target: SimTime) {
        assert!(target >= self.now, "time cannot run backwards");
        self.refresh_rates();
        let dt = target - self.now;
        if dt > 0.0 {
            for &(_, slot) in &self.finite {
                let act = self.slab[slot as usize]
                    .act
                    .as_mut()
                    .expect("finite act exists");
                act.remaining -= act.rate * dt;
                if act.remaining < 0.0 {
                    act.remaining = 0.0;
                }
            }
            for (node, inst) in self.inst.iter().enumerate() {
                self.usage[node].accumulate(dt, inst, &self.spec.nodes[node]);
            }
            self.now = target;
        }
    }

    /// Drains and returns the usage accumulated on `node` since the last
    /// call (or simulation start).
    pub fn take_usage(&mut self, node: NodeId) -> NodeUsage {
        std::mem::take(&mut self.usage[node.index()])
    }

    /// Recomputes the rates invalidated since the last refresh: one
    /// `fair_cores` run per dirty node, one max-min fill iff the IO set
    /// changed. Every freshly rated activity gets a new completion-heap
    /// entry; its previous entries go stale via the stamp bump.
    fn refresh_rates(&mut self) {
        while let Some(n) = self.cpu_dirty_list.pop() {
            let n = n as usize;
            self.cpu_dirty[n] = false;
            let node_spec = &self.spec.nodes[n];
            self.caps_buf.clear();
            self.caps_buf
                .extend(self.compute_members[n].iter().map(|&(_, _, t)| t));
            fair_cores_into(
                &self.caps_buf,
                node_spec.cores as f64,
                &mut self.alloc_buf,
                &mut self.order_buf,
            );
            let mut total = 0.0;
            for (k, &(_, slot, _)) in self.compute_members[n].iter().enumerate() {
                let cores = self.alloc_buf[k];
                let s = &mut self.slab[slot as usize];
                let act = s.act.as_mut().expect("member exists");
                act.rate = cores * node_spec.speed;
                s.stamp += 1;
                if act.remaining.is_finite() && act.rate > 0.0 {
                    let key = if is_complete(act.remaining, act.rate) {
                        self.now
                    } else {
                        self.now + act.remaining / act.rate
                    };
                    self.comp_heap.push(Reverse((key, slot, s.stamp)));
                }
                total += cores;
            }
            self.inst[n][0] = total;
        }

        if self.io_dirty {
            self.io_dirty = false;
            let rates = self.netfair_ws.compute(&self.constraints, &self.io_paths);
            for row in self.inst.iter_mut() {
                row[1] = 0.0;
                row[2] = 0.0;
                row[3] = 0.0;
                row[4] = 0.0;
            }
            for (idx, &(_, slot)) in self.io.iter().enumerate() {
                let rate = rates[idx];
                let s = &mut self.slab[slot as usize];
                let act = s.act.as_mut().expect("flow exists");
                act.rate = rate;
                s.stamp += 1;
                if act.remaining.is_finite() && rate > 0.0 {
                    let key = if is_complete(act.remaining, rate) {
                        self.now
                    } else {
                        self.now + act.remaining / rate
                    };
                    self.comp_heap.push(Reverse((key, slot, s.stamp)));
                }
                match &act.kind {
                    Activity::DiskRead { node } => self.inst[node.index()][1] += rate,
                    Activity::DiskWrite { node } => self.inst[node.index()][2] += rate,
                    Activity::Flow {
                        src,
                        dst,
                        src_disk,
                        dst_disk,
                    } => {
                        if let Endpoint::Node(n) = src {
                            self.inst[n.index()][4] += rate;
                            if *src_disk {
                                self.inst[n.index()][1] += rate;
                            }
                        }
                        if let Endpoint::Node(n) = dst {
                            self.inst[n.index()][3] += rate;
                            if *dst_disk {
                                self.inst[n.index()][2] += rate;
                            }
                        }
                    }
                    Activity::Compute { .. } => unreachable!("not in the IO set"),
                }
            }
        }
    }
}

/// `Option<f64>` min helper for combining per-flow caps.
trait MinOpt {
    fn min_opt(self, other: Option<f64>) -> Option<f64>;
}

impl MinOpt for Option<f64> {
    fn min_opt(self, other: Option<f64>) -> Option<f64> {
        match (self, other) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::NodeSpec;

    fn one_node_cluster() -> ClusterSpec {
        ClusterSpec::homogeneous(1, "n", &NodeSpec::m3_large("proto"))
    }

    fn two_node_cluster() -> ClusterSpec {
        ClusterSpec::homogeneous(2, "n", &NodeSpec::m3_large("proto"))
    }

    #[test]
    fn compute_runs_at_thread_count() {
        let mut e: Engine<u32> = Engine::new(one_node_cluster());
        // 2-core node, 2 threads, 10 CPU-seconds -> 5 wall seconds.
        e.start(
            Activity::Compute {
                node: NodeId(0),
                threads: 2.0,
            },
            10.0,
            7,
        );
        let fired = e.step().expect("one completion");
        assert_eq!(fired.len(), 1);
        assert!(matches!(fired[0], Completion::Activity { tag: 7, .. }));
        assert!((e.now().as_secs() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn node_speed_scales_compute() {
        let mut spec = one_node_cluster();
        spec.nodes[0].speed = 2.0;
        let mut e: Engine<u32> = Engine::new(spec);
        e.start(
            Activity::Compute {
                node: NodeId(0),
                threads: 1.0,
            },
            10.0,
            0,
        );
        e.step().expect("completes");
        assert!((e.now().as_secs() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn two_tasks_share_cores() {
        let mut e: Engine<u32> = Engine::new(one_node_cluster());
        // Both want both cores of the 2-core node; each gets 1 core.
        e.start(
            Activity::Compute {
                node: NodeId(0),
                threads: 2.0,
            },
            10.0,
            1,
        );
        e.start(
            Activity::Compute {
                node: NodeId(0),
                threads: 2.0,
            },
            10.0,
            2,
        );
        let fired = e.step().expect("both at t=10");
        assert_eq!(fired.len(), 2);
        assert!((e.now().as_secs() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn short_task_completion_speeds_up_survivor() {
        let mut e: Engine<u32> = Engine::new(one_node_cluster());
        e.start(
            Activity::Compute {
                node: NodeId(0),
                threads: 2.0,
            },
            4.0,
            1,
        );
        e.start(
            Activity::Compute {
                node: NodeId(0),
                threads: 2.0,
            },
            12.0,
            2,
        );
        // Shared phase: both at 1 core. Task 1 finishes at t=4 with task 2
        // at 8 remaining; then task 2 runs at 2 cores -> 4 more seconds.
        let f1 = e.step().unwrap();
        assert_eq!(f1.len(), 1);
        assert!((e.now().as_secs() - 4.0).abs() < 1e-6);
        e.step().unwrap();
        assert!((e.now().as_secs() - 8.0).abs() < 1e-6);
    }

    #[test]
    fn disk_read_paced_by_bandwidth() {
        let mut e: Engine<u32> = Engine::new(one_node_cluster());
        // m3.large reads at 220 MB/s; 220 MB -> 1 second.
        e.start(Activity::DiskRead { node: NodeId(0) }, 220.0e6, 0);
        e.step().unwrap();
        assert!((e.now().as_secs() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn flow_bounded_by_slower_nic() {
        let mut spec = two_node_cluster();
        spec.nodes[1].nic_bps = 10.0e6;
        let mut e: Engine<u32> = Engine::new(spec);
        e.start(
            Activity::Flow {
                src: Endpoint::Node(NodeId(0)),
                dst: Endpoint::Node(NodeId(1)),
                src_disk: false,
                dst_disk: false,
            },
            100.0e6,
            0,
        );
        e.step().unwrap();
        assert!((e.now().as_secs() - 10.0).abs() < 1e-3);
    }

    #[test]
    fn switch_aggregate_throttles_parallel_flows() {
        let mut spec = ClusterSpec::homogeneous(4, "n", &NodeSpec::m3_large("p"));
        spec.switch_bps = Some(50.0e6);
        let mut e: Engine<u32> = Engine::new(spec);
        // Two disjoint flows, each NIC-capped at 87.5 MB/s, but sharing a
        // 50 MB/s switch -> 25 MB/s each.
        for (s, d) in [(0, 1), (2, 3)] {
            e.start(
                Activity::Flow {
                    src: Endpoint::Node(NodeId(s)),
                    dst: Endpoint::Node(NodeId(d)),
                    src_disk: false,
                    dst_disk: false,
                },
                25.0e6,
                0,
            );
        }
        e.step().unwrap();
        assert!((e.now().as_secs() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn external_per_flow_cap_applies() {
        let mut spec = one_node_cluster();
        let s3 = spec.add_external(crate::spec::ExternalSpec::s3());
        let mut e: Engine<u32> = Engine::new(spec);
        e.start(
            Activity::Flow {
                src: Endpoint::External(s3),
                dst: Endpoint::Node(NodeId(0)),
                src_disk: false,
                dst_disk: true,
            },
            160.0e6,
            0,
        );
        // S3 per-flow cap is 80 MB/s (< NIC and < disk write): 2 seconds.
        e.step().unwrap();
        assert!((e.now().as_secs() - 2.0).abs() < 1e-3);
    }

    #[test]
    fn background_stress_slows_compute() {
        let mut e: Engine<u32> = Engine::new(one_node_cluster());
        // One single-thread task + two infinite single-thread stress procs
        // on 2 cores: everyone is below the fair level (2/3), caps bind at
        // 2/3 each... cap is 1.0 > 2/3, so each gets 2/3 core.
        e.start(
            Activity::Compute {
                node: NodeId(0),
                threads: 1.0,
            },
            2.0,
            1,
        );
        e.start(
            Activity::Compute {
                node: NodeId(0),
                threads: 1.0,
            },
            f64::INFINITY,
            8,
        );
        e.start(
            Activity::Compute {
                node: NodeId(0),
                threads: 1.0,
            },
            f64::INFINITY,
            9,
        );
        let fired = e.step().unwrap();
        assert_eq!(fired.len(), 1);
        assert!((e.now().as_secs() - 3.0).abs() < 1e-6, "now={}", e.now());
        // Background loads remain; no further completions.
        assert!(e.step().is_none());
        assert_eq!(e.active_count(), 2);
    }

    #[test]
    fn timers_fire_in_order_and_cancel() {
        let mut e: Engine<u32> = Engine::new(one_node_cluster());
        let t1 = e.set_timer_after(1.0, 1);
        let _t2 = e.set_timer_after(2.0, 2);
        e.cancel_timer(t1);
        let fired = e.step().unwrap();
        assert_eq!(fired.len(), 1);
        assert!(matches!(fired[0], Completion::Timer { tag: 2, .. }));
        assert!((e.now().as_secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cancel_activity_returns_tag() {
        let mut e: Engine<u32> = Engine::new(one_node_cluster());
        let id = e.start(
            Activity::Compute {
                node: NodeId(0),
                threads: 1.0,
            },
            100.0,
            42,
        );
        assert_eq!(e.cancel(id), Some(42));
        assert_eq!(e.cancel(id), None);
        assert!(e.step().is_none());
    }

    #[test]
    fn usage_accounting_tracks_cpu() {
        let mut e: Engine<u32> = Engine::new(one_node_cluster());
        e.start(
            Activity::Compute {
                node: NodeId(0),
                threads: 2.0,
            },
            10.0,
            0,
        );
        e.step().unwrap();
        let u = e.take_usage(NodeId(0));
        assert!((u.core_seconds - 10.0).abs() < 1e-6);
        assert!((u.elapsed - 5.0).abs() < 1e-6);
        // Second take returns zeroes.
        let u2 = e.take_usage(NodeId(0));
        assert_eq!(u2.elapsed, 0.0);
    }

    #[test]
    fn stale_completion_entries_are_discarded_on_rate_change() {
        let mut e: Engine<u32> = Engine::new(one_node_cluster());
        // The long task's first prediction (t=20 at 1 core) goes stale
        // when the short task finishes and it doubles its rate.
        e.start(
            Activity::Compute {
                node: NodeId(0),
                threads: 2.0,
            },
            4.0,
            1,
        );
        let _long = e.start(
            Activity::Compute {
                node: NodeId(0),
                threads: 2.0,
            },
            16.0,
            2,
        );
        assert!((e.peek_next_time().unwrap().as_secs() - 4.0).abs() < 1e-9);
        e.step().unwrap();
        // Fresh prediction: 12 remaining at 2 cores -> t = 4 + 6 = 10.
        assert!((e.peek_next_time().unwrap().as_secs() - 10.0).abs() < 1e-6);
        e.step().unwrap();
        assert!((e.now().as_secs() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn compute_churn_leaves_io_rates_alone() {
        let mut e: Engine<u32> = Engine::new(one_node_cluster());
        // A disk read shares nothing with compute: starting and finishing
        // compute work must not perturb its completion time.
        e.start(Activity::DiskRead { node: NodeId(0) }, 440.0e6, 0);
        e.start(
            Activity::Compute {
                node: NodeId(0),
                threads: 1.0,
            },
            1.0,
            1,
        );
        let f1 = e.step().unwrap();
        assert_eq!(f1.len(), 1, "compute finishes first");
        assert!((e.now().as_secs() - 1.0).abs() < 1e-6);
        let f2 = e.step().unwrap();
        assert_eq!(f2.len(), 1, "disk read unchanged: 440 MB at 220 MB/s");
        assert!((e.now().as_secs() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn many_cancelled_timers_do_not_linger() {
        let mut e: Engine<u32> = Engine::new(one_node_cluster());
        let ids: Vec<TimerId> = (0..100)
            .map(|i| e.set_timer_after(1.0 + i as f64, i))
            .collect();
        for id in &ids[1..] {
            e.cancel_timer(*id);
        }
        assert_eq!(e.debug_timer_count(), 1);
        let fired = e.step().unwrap();
        assert_eq!(fired.len(), 1);
        assert!(matches!(fired[0], Completion::Timer { tag: 0, .. }));
        assert!(e.step().is_none());
        assert_eq!(e.debug_timer_count(), 0);
    }

    #[test]
    fn tracer_records_activity_lifecycle() {
        let mut e: Engine<u32> = Engine::new(one_node_cluster());
        let tracer = Tracer::enabled();
        e.set_tracer(&tracer);
        e.start(
            Activity::Compute {
                node: NodeId(0),
                threads: 1.0,
            },
            2.0,
            0,
        );
        e.step().unwrap();
        let data = tracer.snapshot().unwrap();
        // start + end instants, plus the per-step heap/active counters.
        let names: Vec<&str> = data
            .events
            .iter()
            .map(|ev| match ev {
                hiway_obs::TraceEvent::Instant { name, .. } => name.as_str(),
                hiway_obs::TraceEvent::Counter { name, .. } => name.as_str(),
                hiway_obs::TraceEvent::Span { name, .. } => name.as_str(),
            })
            .collect();
        assert_eq!(
            names,
            vec![
                "act.start:compute",
                "act.end:compute",
                "engine.heap_depth",
                "engine.active"
            ]
        );
        assert_eq!(tracer.counter_value("engine.activities_started"), 1);
        assert_eq!(tracer.counter_value("engine.steps"), 1);
        // Tracks: "engine" plus the node's name.
        assert_eq!(data.tracks[0], "engine");
        assert_eq!(data.tracks.len(), 2);
    }

    #[test]
    fn disabled_tracer_stays_empty_through_a_run() {
        let mut e: Engine<u32> = Engine::new(one_node_cluster());
        let tracer = Tracer::disabled();
        e.set_tracer(&tracer);
        e.start(
            Activity::Compute {
                node: NodeId(0),
                threads: 1.0,
            },
            2.0,
            0,
        );
        e.step().unwrap();
        assert_eq!(tracer.event_count(), 0);
        assert!(tracer.snapshot().is_none());
    }

    #[test]
    fn slot_reuse_does_not_resurrect_stale_predictions() {
        let mut e: Engine<u32> = Engine::new(two_node_cluster());
        // Create a prediction entry for a task, cancel it (freeing its
        // slot), then start a different task that reuses the slot. The
        // stale entry must not surface as the new task's completion.
        let a = e.start(
            Activity::Compute {
                node: NodeId(0),
                threads: 1.0,
            },
            1.0,
            1,
        );
        assert!((e.peek_next_time().unwrap().as_secs() - 1.0).abs() < 1e-9);
        assert_eq!(e.cancel(a), Some(1));
        e.start(
            Activity::Compute {
                node: NodeId(1),
                threads: 1.0,
            },
            50.0,
            2,
        );
        assert!((e.peek_next_time().unwrap().as_secs() - 50.0).abs() < 1e-6);
        let fired = e.step().unwrap();
        assert_eq!(fired.len(), 1);
        assert!(matches!(fired[0], Completion::Activity { tag: 2, .. }));
        assert!((e.now().as_secs() - 50.0).abs() < 1e-6);
    }
}
