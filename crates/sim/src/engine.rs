//! The rate-based discrete-event engine.
//!
//! Every ongoing piece of work is an [`Activity`] with a remaining volume:
//! CPU work in reference CPU-seconds, disk and network transfers in bytes.
//! Whenever the set of activities changes, the engine recomputes every
//! activity's rate with the fair-sharing models in [`crate::cpufair`] and
//! [`crate::netfair`], then advances virtual time to the earliest completion
//! or timer. Completions are *returned* to the caller rather than delivered
//! through callbacks, so the layers above (HDFS, YARN, the Hi-WAY AM) drive
//! the simulation with an ordinary poll loop and stay borrow-checker
//! friendly.
//!
//! Background load (the paper's `stress` processes in the Figure 9
//! experiment) is modelled as activities with infinite volume: they consume
//! capacity forever and never complete.

use std::collections::{BTreeMap, HashMap};

use crate::cpufair::fair_cores;
use crate::metrics::NodeUsage;
use crate::netfair::{max_min_rates, Constraint, FlowPath};
use crate::spec::{ClusterSpec, ExternalId, NodeId};
use crate::time::SimTime;

/// Handle to a running activity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ActivityId(pub u64);

/// Handle to a pending timer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId(pub u64);

/// One side of a network transfer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Endpoint {
    Node(NodeId),
    External(ExternalId),
}

/// The kinds of work the kernel knows how to pace.
#[derive(Clone, Debug)]
pub enum Activity {
    /// CPU work on `node`, able to use up to `threads` cores concurrently.
    /// Volume is measured in *reference* CPU-seconds: a node with speed `s`
    /// burns them at `allocated_cores * s` per second.
    Compute { node: NodeId, threads: f64 },
    /// A local disk read on `node` (shares the node's read bandwidth).
    DiskRead { node: NodeId },
    /// A local disk write on `node` (shares the node's write bandwidth).
    DiskWrite { node: NodeId },
    /// A network transfer. When `src_disk`/`dst_disk` are set the flow is
    /// additionally throttled by the source's disk-read / destination's
    /// disk-write bandwidth — e.g. an HDFS remote read streams from the
    /// remote disk through both NICs onto the local disk.
    Flow {
        src: Endpoint,
        dst: Endpoint,
        src_disk: bool,
        dst_disk: bool,
    },
}

/// Something that fired during [`Engine::step`].
#[derive(Clone, Debug)]
pub enum Completion<T> {
    /// An activity ran its volume down to zero.
    Activity { id: ActivityId, tag: T },
    /// A timer reached its deadline.
    Timer { id: TimerId, tag: T },
}

struct Act<T> {
    kind: Activity,
    remaining: f64,
    rate: f64,
    tag: T,
}

struct Timer<T> {
    at: SimTime,
    tag: T,
    cancelled: bool,
}

/// Residual volume below which an activity counts as finished. Volumes are
/// bytes or CPU-seconds, so a micro-unit is far below observable scale.
const COMPLETION_EPS: f64 = 1e-6;

/// Activities whose remaining volume would drain within this many seconds
/// at their current rate also count as finished. This absorbs the
/// floating-point residue left by repeated `remaining -= rate * dt`
/// updates: without it, a residue slightly above `COMPLETION_EPS` whose
/// finish instant rounds to `now` would freeze virtual time.
const COMPLETION_TIME_EPS: f64 = 1e-9;

fn is_complete(remaining: f64, rate: f64) -> bool {
    remaining <= COMPLETION_EPS.max(rate * COMPLETION_TIME_EPS)
}

/// The simulation engine. `T` is the caller's completion tag type.
pub struct Engine<T> {
    spec: ClusterSpec,
    now: SimTime,
    acts: BTreeMap<u64, Act<T>>,
    timers: BTreeMap<u64, Timer<T>>,
    next_id: u64,
    rates_dirty: bool,
    usage: Vec<NodeUsage>,
    /// Cached instantaneous per-node totals, refreshed with the rates:
    /// (alloc cores, disk read B/s, disk write B/s, net in B/s, net out B/s).
    inst: Vec<[f64; 5]>,
}

impl<T: Clone> Engine<T> {
    pub fn new(spec: ClusterSpec) -> Engine<T> {
        let n = spec.nodes.len();
        Engine {
            spec,
            now: SimTime::ZERO,
            acts: BTreeMap::new(),
            timers: BTreeMap::new(),
            next_id: 0,
            rates_dirty: true,
            usage: vec![NodeUsage::default(); n],
            inst: vec![[0.0; 5]; n],
        }
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Starts an activity with `volume` units of work. `f64::INFINITY`
    /// creates a background load that never completes (cancel to stop it).
    pub fn start(&mut self, kind: Activity, volume: f64, tag: T) -> ActivityId {
        assert!(volume >= 0.0, "negative activity volume");
        if let Activity::Compute { node, threads } = &kind {
            assert!(*threads > 0.0, "compute must use at least a sliver of a core");
            assert!(node.index() < self.spec.nodes.len(), "unknown node");
        }
        let id = self.next_id;
        self.next_id += 1;
        self.acts.insert(
            id,
            Act {
                kind,
                remaining: volume.max(COMPLETION_EPS / 2.0),
                rate: 0.0,
                tag,
            },
        );
        self.rates_dirty = true;
        ActivityId(id)
    }

    /// Cancels a running activity, returning its tag (None if already done).
    pub fn cancel(&mut self, id: ActivityId) -> Option<T> {
        let act = self.acts.remove(&id.0)?;
        self.rates_dirty = true;
        Some(act.tag)
    }

    /// Number of in-flight activities (including background loads).
    pub fn active_count(&self) -> usize {
        self.acts.len()
    }

    /// Schedules a timer at absolute time `at` (clamped to now).
    pub fn set_timer(&mut self, at: SimTime, tag: T) -> TimerId {
        let id = self.next_id;
        self.next_id += 1;
        self.timers.insert(
            id,
            Timer {
                at: at.max(self.now),
                tag,
                cancelled: false,
            },
        );
        TimerId(id)
    }

    /// Schedules a timer `delay` seconds from now.
    pub fn set_timer_after(&mut self, delay: f64, tag: T) -> TimerId {
        let at = self.now + delay.max(0.0);
        self.set_timer(at, tag)
    }

    pub fn cancel_timer(&mut self, id: TimerId) {
        if let Some(t) = self.timers.get_mut(&id.0) {
            t.cancelled = true;
        }
    }

    /// Debug: dump remaining activities (id, kind, remaining, rate).
    pub fn debug_activities(&mut self) -> Vec<(u64, String, f64, f64)> {
        self.refresh_rates();
        self.acts
            .iter()
            .map(|(id, a)| (*id, format!("{:?}", a.kind), a.remaining, a.rate))
            .collect()
    }

    /// Debug: pending (non-cancelled) timer count.
    pub fn debug_timer_count(&self) -> usize {
        self.timers.values().filter(|t| !t.cancelled).count()
    }

    /// Virtual time of the next completion or timer, if any work is pending.
    pub fn peek_next_time(&mut self) -> Option<SimTime> {
        self.refresh_rates();
        let mut next: Option<SimTime> = None;
        for act in self.acts.values() {
            if act.remaining.is_finite() && act.rate > 0.0 {
                let t = if is_complete(act.remaining, act.rate) {
                    self.now // already effectively finished
                } else {
                    self.now + act.remaining / act.rate
                };
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        }
        for timer in self.timers.values() {
            if !timer.cancelled {
                next = Some(next.map_or(timer.at, |n| n.min(timer.at)));
            }
        }
        next
    }

    /// Advances to the next completion/timer instant and returns everything
    /// that fired there, in deterministic (creation) order. Returns `None`
    /// when only background activities remain.
    pub fn step(&mut self) -> Option<Vec<Completion<T>>> {
        let target = self.peek_next_time()?;
        self.advance_to(target);

        let mut fired = Vec::new();
        let done: Vec<u64> = self
            .acts
            .iter()
            .filter(|(_, a)| a.remaining.is_finite() && is_complete(a.remaining, a.rate))
            .map(|(id, _)| *id)
            .collect();
        for id in done {
            let act = self.acts.remove(&id).expect("collected above");
            fired.push(Completion::Activity {
                id: ActivityId(id),
                tag: act.tag,
            });
            self.rates_dirty = true;
        }
        let due: Vec<u64> = self
            .timers
            .iter()
            .filter(|(_, t)| !t.cancelled && t.at <= self.now)
            .map(|(id, _)| *id)
            .collect();
        for id in due {
            let timer = self.timers.remove(&id).expect("collected above");
            fired.push(Completion::Timer {
                id: TimerId(id),
                tag: timer.tag,
            });
        }
        // Cancelled timers that have passed are garbage-collected here.
        let now = self.now;
        self.timers.retain(|_, t| !(t.cancelled && t.at <= now));
        Some(fired)
    }

    /// Advances virtual time to `target` without processing completions
    /// (used by `step`, and by callers that want to sample metrics at a
    /// fixed cadence).
    pub fn advance_to(&mut self, target: SimTime) {
        assert!(target >= self.now, "time cannot run backwards");
        self.refresh_rates();
        let dt = target - self.now;
        if dt > 0.0 {
            for act in self.acts.values_mut() {
                if act.remaining.is_finite() {
                    act.remaining -= act.rate * dt;
                    if act.remaining < 0.0 {
                        act.remaining = 0.0;
                    }
                }
            }
            for (node, inst) in self.inst.iter().enumerate() {
                self.usage[node].accumulate(dt, inst, &self.spec.nodes[node]);
            }
            self.now = target;
        }
    }

    /// Drains and returns the usage accumulated on `node` since the last
    /// call (or simulation start).
    pub fn take_usage(&mut self, node: NodeId) -> NodeUsage {
        std::mem::take(&mut self.usage[node.index()])
    }

    /// Recomputes all activity rates if the activity set changed.
    fn refresh_rates(&mut self) {
        if !self.rates_dirty {
            return;
        }
        self.rates_dirty = false;
        for row in self.inst.iter_mut() {
            *row = [0.0; 5];
        }

        self.refresh_cpu_rates();
        self.refresh_io_rates();
    }

    fn refresh_cpu_rates(&mut self) {
        // Group compute activities per node, run the water-filling model.
        let mut per_node: HashMap<u32, Vec<(u64, f64)>> = HashMap::new();
        for (&id, act) in &self.acts {
            if let Activity::Compute { node, threads } = act.kind {
                per_node.entry(node.0).or_default().push((id, threads));
            }
        }
        let mut nodes: Vec<u32> = per_node.keys().copied().collect();
        nodes.sort_unstable();
        for n in nodes {
            let members = &per_node[&n];
            let spec = &self.spec.nodes[n as usize];
            let caps: Vec<f64> = members.iter().map(|(_, t)| *t).collect();
            let alloc = fair_cores(&caps, spec.cores as f64);
            let mut total = 0.0;
            for ((id, _), cores) in members.iter().zip(alloc.iter()) {
                self.acts.get_mut(id).expect("member exists").rate = cores * spec.speed;
                total += cores;
            }
            self.inst[n as usize][0] = total;
        }
    }

    fn refresh_io_rates(&mut self) {
        // Constraint layout: per node [disk_read, disk_write, nic_out,
        // nic_in], then the optional switch, then one per external service.
        let nn = self.spec.nodes.len();
        let mut constraints = Vec::with_capacity(nn * 4 + 1 + self.spec.externals.len());
        for node in &self.spec.nodes {
            constraints.push(Constraint { capacity: node.disk_read_bps });
            constraints.push(Constraint { capacity: node.disk_write_bps });
            constraints.push(Constraint { capacity: node.nic_bps });
            constraints.push(Constraint { capacity: node.nic_bps });
        }
        let switch_idx = constraints.len();
        constraints.push(Constraint {
            capacity: self.spec.switch_bps.unwrap_or(f64::INFINITY),
        });
        let ext_base = constraints.len();
        for ext in &self.spec.externals {
            constraints.push(Constraint { capacity: ext.aggregate_bps });
        }

        let disk_r = |n: NodeId| n.index() * 4;
        let disk_w = |n: NodeId| n.index() * 4 + 1;
        let nic_out = |n: NodeId| n.index() * 4 + 2;
        let nic_in = |n: NodeId| n.index() * 4 + 3;

        let mut ids = Vec::new();
        let mut paths = Vec::new();
        for (&id, act) in &self.acts {
            let path = match &act.kind {
                Activity::Compute { .. } => continue,
                Activity::DiskRead { node } => FlowPath {
                    constraints: vec![disk_r(*node)],
                    rate_cap: None,
                },
                Activity::DiskWrite { node } => FlowPath {
                    constraints: vec![disk_w(*node)],
                    rate_cap: None,
                },
                Activity::Flow { src, dst, src_disk, dst_disk } => {
                    let mut cs = Vec::with_capacity(5);
                    let mut cap = None;
                    let mut via_switch;
                    match src {
                        Endpoint::Node(n) => {
                            cs.push(nic_out(*n));
                            if *src_disk {
                                cs.push(disk_r(*n));
                            }
                            via_switch = true; // may be cleared by a WAN dst
                        }
                        Endpoint::External(e) => {
                            cs.push(ext_base + e.index());
                            let ext = &self.spec.externals[e.index()];
                            cap = ext.per_flow_bps;
                            via_switch = ext.via_switch;
                        }
                    }
                    match dst {
                        Endpoint::Node(n) => {
                            cs.push(nic_in(*n));
                            if *dst_disk {
                                cs.push(disk_w(*n));
                            }
                        }
                        Endpoint::External(e) => {
                            cs.push(ext_base + e.index());
                            let ext = &self.spec.externals[e.index()];
                            cap = cap.min_opt(ext.per_flow_bps);
                            if !ext.via_switch {
                                via_switch = false;
                            }
                        }
                    }
                    if via_switch && self.spec.switch_bps.is_some() {
                        cs.push(switch_idx);
                    }
                    FlowPath {
                        constraints: cs,
                        rate_cap: cap,
                    }
                }
            };
            ids.push(id);
            paths.push(path);
        }

        let rates = max_min_rates(&constraints, &paths);
        for (idx, id) in ids.iter().enumerate() {
            let rate = rates[idx];
            let act = self.acts.get_mut(id).expect("flow exists");
            act.rate = rate;
            match &act.kind {
                Activity::DiskRead { node } => self.inst[node.index()][1] += rate,
                Activity::DiskWrite { node } => self.inst[node.index()][2] += rate,
                Activity::Flow { src, dst, src_disk, dst_disk } => {
                    if let Endpoint::Node(n) = src {
                        self.inst[n.index()][4] += rate;
                        if *src_disk {
                            self.inst[n.index()][1] += rate;
                        }
                    }
                    if let Endpoint::Node(n) = dst {
                        self.inst[n.index()][3] += rate;
                        if *dst_disk {
                            self.inst[n.index()][2] += rate;
                        }
                    }
                }
                Activity::Compute { .. } => unreachable!("filtered above"),
            }
        }
    }
}

/// `Option<f64>` min helper for combining per-flow caps.
trait MinOpt {
    fn min_opt(self, other: Option<f64>) -> Option<f64>;
}

impl MinOpt for Option<f64> {
    fn min_opt(self, other: Option<f64>) -> Option<f64> {
        match (self, other) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::NodeSpec;

    fn one_node_cluster() -> ClusterSpec {
        ClusterSpec::homogeneous(1, "n", &NodeSpec::m3_large("proto"))
    }

    fn two_node_cluster() -> ClusterSpec {
        ClusterSpec::homogeneous(2, "n", &NodeSpec::m3_large("proto"))
    }

    #[test]
    fn compute_runs_at_thread_count() {
        let mut e: Engine<u32> = Engine::new(one_node_cluster());
        // 2-core node, 2 threads, 10 CPU-seconds -> 5 wall seconds.
        e.start(Activity::Compute { node: NodeId(0), threads: 2.0 }, 10.0, 7);
        let fired = e.step().expect("one completion");
        assert_eq!(fired.len(), 1);
        assert!(matches!(fired[0], Completion::Activity { tag: 7, .. }));
        assert!((e.now().as_secs() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn node_speed_scales_compute() {
        let mut spec = one_node_cluster();
        spec.nodes[0].speed = 2.0;
        let mut e: Engine<u32> = Engine::new(spec);
        e.start(Activity::Compute { node: NodeId(0), threads: 1.0 }, 10.0, 0);
        e.step().expect("completes");
        assert!((e.now().as_secs() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn two_tasks_share_cores() {
        let mut e: Engine<u32> = Engine::new(one_node_cluster());
        // Both want both cores of the 2-core node; each gets 1 core.
        e.start(Activity::Compute { node: NodeId(0), threads: 2.0 }, 10.0, 1);
        e.start(Activity::Compute { node: NodeId(0), threads: 2.0 }, 10.0, 2);
        let fired = e.step().expect("both at t=10");
        assert_eq!(fired.len(), 2);
        assert!((e.now().as_secs() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn short_task_completion_speeds_up_survivor() {
        let mut e: Engine<u32> = Engine::new(one_node_cluster());
        e.start(Activity::Compute { node: NodeId(0), threads: 2.0 }, 4.0, 1);
        e.start(Activity::Compute { node: NodeId(0), threads: 2.0 }, 12.0, 2);
        // Shared phase: both at 1 core. Task 1 finishes at t=4 with task 2
        // at 8 remaining; then task 2 runs at 2 cores -> 4 more seconds.
        let f1 = e.step().unwrap();
        assert_eq!(f1.len(), 1);
        assert!((e.now().as_secs() - 4.0).abs() < 1e-6);
        e.step().unwrap();
        assert!((e.now().as_secs() - 8.0).abs() < 1e-6);
    }

    #[test]
    fn disk_read_paced_by_bandwidth() {
        let mut e: Engine<u32> = Engine::new(one_node_cluster());
        // m3.large reads at 220 MB/s; 220 MB -> 1 second.
        e.start(Activity::DiskRead { node: NodeId(0) }, 220.0e6, 0);
        e.step().unwrap();
        assert!((e.now().as_secs() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn flow_bounded_by_slower_nic() {
        let mut spec = two_node_cluster();
        spec.nodes[1].nic_bps = 10.0e6;
        let mut e: Engine<u32> = Engine::new(spec);
        e.start(
            Activity::Flow {
                src: Endpoint::Node(NodeId(0)),
                dst: Endpoint::Node(NodeId(1)),
                src_disk: false,
                dst_disk: false,
            },
            100.0e6,
            0,
        );
        e.step().unwrap();
        assert!((e.now().as_secs() - 10.0).abs() < 1e-3);
    }

    #[test]
    fn switch_aggregate_throttles_parallel_flows() {
        let mut spec = ClusterSpec::homogeneous(4, "n", &NodeSpec::m3_large("p"));
        spec.switch_bps = Some(50.0e6);
        let mut e: Engine<u32> = Engine::new(spec);
        // Two disjoint flows, each NIC-capped at 87.5 MB/s, but sharing a
        // 50 MB/s switch -> 25 MB/s each.
        for (s, d) in [(0, 1), (2, 3)] {
            e.start(
                Activity::Flow {
                    src: Endpoint::Node(NodeId(s)),
                    dst: Endpoint::Node(NodeId(d)),
                    src_disk: false,
                    dst_disk: false,
                },
                25.0e6,
                0,
            );
        }
        e.step().unwrap();
        assert!((e.now().as_secs() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn external_per_flow_cap_applies() {
        let mut spec = one_node_cluster();
        let s3 = spec.add_external(crate::spec::ExternalSpec::s3());
        let mut e: Engine<u32> = Engine::new(spec);
        e.start(
            Activity::Flow {
                src: Endpoint::External(s3),
                dst: Endpoint::Node(NodeId(0)),
                src_disk: false,
                dst_disk: true,
            },
            160.0e6,
            0,
        );
        // S3 per-flow cap is 80 MB/s (< NIC and < disk write): 2 seconds.
        e.step().unwrap();
        assert!((e.now().as_secs() - 2.0).abs() < 1e-3);
    }

    #[test]
    fn background_stress_slows_compute() {
        let mut e: Engine<u32> = Engine::new(one_node_cluster());
        // One single-thread task + two infinite single-thread stress procs
        // on 2 cores: everyone is below the fair level (2/3), caps bind at
        // 2/3 each... cap is 1.0 > 2/3, so each gets 2/3 core.
        e.start(Activity::Compute { node: NodeId(0), threads: 1.0 }, 2.0, 1);
        e.start(Activity::Compute { node: NodeId(0), threads: 1.0 }, f64::INFINITY, 8);
        e.start(Activity::Compute { node: NodeId(0), threads: 1.0 }, f64::INFINITY, 9);
        let fired = e.step().unwrap();
        assert_eq!(fired.len(), 1);
        assert!((e.now().as_secs() - 3.0).abs() < 1e-6, "now={}", e.now());
        // Background loads remain; no further completions.
        assert!(e.step().is_none());
        assert_eq!(e.active_count(), 2);
    }

    #[test]
    fn timers_fire_in_order_and_cancel() {
        let mut e: Engine<u32> = Engine::new(one_node_cluster());
        let t1 = e.set_timer_after(1.0, 1);
        let _t2 = e.set_timer_after(2.0, 2);
        e.cancel_timer(t1);
        let fired = e.step().unwrap();
        assert_eq!(fired.len(), 1);
        assert!(matches!(fired[0], Completion::Timer { tag: 2, .. }));
        assert!((e.now().as_secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cancel_activity_returns_tag() {
        let mut e: Engine<u32> = Engine::new(one_node_cluster());
        let id = e.start(Activity::Compute { node: NodeId(0), threads: 1.0 }, 100.0, 42);
        assert_eq!(e.cancel(id), Some(42));
        assert_eq!(e.cancel(id), None);
        assert!(e.step().is_none());
    }

    #[test]
    fn usage_accounting_tracks_cpu() {
        let mut e: Engine<u32> = Engine::new(one_node_cluster());
        e.start(Activity::Compute { node: NodeId(0), threads: 2.0 }, 10.0, 0);
        e.step().unwrap();
        let u = e.take_usage(NodeId(0));
        assert!((u.core_seconds - 10.0).abs() < 1e-6);
        assert!((u.elapsed - 5.0).abs() < 1e-6);
        // Second take returns zeroes.
        let u2 = e.take_usage(NodeId(0));
        assert_eq!(u2.elapsed, 0.0);
    }
}
