//! Synthetic background load, mirroring the Linux `stress` tool.
//!
//! The adaptive-scheduling experiment (Section 4.3 / Figure 9) perturbs a
//! homogeneous EC2 cluster into a heterogeneous one by running `stress`
//! with 1, 4, 16, 64, and 256 CPU-bound processes on five machines and the
//! same counts of disk-writer processes on five others. These helpers
//! create the equivalent never-completing activities; the returned handles
//! can be cancelled to stop the load.

use crate::engine::{Activity, ActivityId, Engine};
use crate::spec::NodeId;

/// Starts `procs` CPU-bound single-threaded hog processes on `node`
/// (`stress -c procs`). Each competes for one core under processor sharing.
pub fn cpu_stress<T: Clone>(
    engine: &mut Engine<T>,
    node: NodeId,
    procs: u32,
    tag: T,
) -> Vec<ActivityId> {
    (0..procs)
        .map(|_| {
            engine.start(
                Activity::Compute { node, threads: 1.0 },
                f64::INFINITY,
                tag.clone(),
            )
        })
        .collect()
}

/// Starts `procs` disk-writer hog processes on `node` (`stress -d procs`),
/// each an endless stream sharing the node's disk write bandwidth.
pub fn disk_stress<T: Clone>(
    engine: &mut Engine<T>,
    node: NodeId,
    procs: u32,
    tag: T,
) -> Vec<ActivityId> {
    (0..procs)
        .map(|_| engine.start(Activity::DiskWrite { node }, f64::INFINITY, tag.clone()))
        .collect()
}

/// Stops a previously started load.
pub fn stop_stress<T: Clone>(engine: &mut Engine<T>, handles: &[ActivityId]) {
    for &h in handles {
        engine.cancel(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ClusterSpec, NodeSpec};

    #[test]
    fn cpu_stress_dilates_task_runtime() {
        let spec = ClusterSpec::homogeneous(1, "n", &NodeSpec::m3_large("p"));
        let mut e: Engine<u32> = Engine::new(spec);
        let handles = cpu_stress(&mut e, NodeId(0), 2, 0);
        assert_eq!(handles.len(), 2);
        // 1-thread task vs 2 hogs on 2 cores: everyone at 2/3 core.
        e.start(
            Activity::Compute {
                node: NodeId(0),
                threads: 1.0,
            },
            2.0,
            1,
        );
        e.step().unwrap();
        assert!((e.now().as_secs() - 3.0).abs() < 1e-6);

        // After stopping the stress the next task runs at full speed.
        stop_stress(&mut e, &handles);
        e.start(
            Activity::Compute {
                node: NodeId(0),
                threads: 1.0,
            },
            2.0,
            2,
        );
        let t0 = e.now();
        e.step().unwrap();
        assert!((e.now().since(t0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn disk_stress_dilates_writes() {
        let spec = ClusterSpec::homogeneous(1, "n", &NodeSpec::m3_large("p"));
        let mut e: Engine<u32> = Engine::new(spec);
        disk_stress(&mut e, NodeId(0), 1, 0);
        // Write 90 MB at 180 MB/s shared between 2 streams -> 1 second.
        e.start(Activity::DiskWrite { node: NodeId(0) }, 90.0e6, 1);
        e.step().unwrap();
        assert!((e.now().as_secs() - 1.0).abs() < 1e-3);
    }
}
