//! Cluster hardware descriptions.
//!
//! A [`ClusterSpec`] captures everything the kernel needs to know about the
//! simulated datacenter: the compute nodes (cores, memory, disk and NIC
//! bandwidth), an optional shared-switch aggregate capacity (the paper's
//! local 24-node cluster hangs off a single 1 GbE switch, which is exactly
//! the bottleneck Figure 4 exercises), and external data services such as
//! Amazon S3 (the staging source in the Table 2 weak-scaling experiment) or
//! a network-attached EBS volume (the Galaxy CloudMan baseline of Figure 8).

/// Identifier of a simulated compute node (index into [`ClusterSpec::nodes`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of an external data service (index into [`ClusterSpec::externals`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ExternalId(pub u32);

impl ExternalId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Hardware profile of one compute node.
#[derive(Clone, Debug)]
pub struct NodeSpec {
    /// Human-readable name, e.g. `worker-3`.
    pub name: String,
    /// Number of (virtual) processor cores.
    pub cores: u32,
    /// Main memory in megabytes. Enforced by the YARN layer, not the kernel.
    pub memory_mb: u64,
    /// Local disk read bandwidth in bytes/second.
    pub disk_read_bps: f64,
    /// Local disk write bandwidth in bytes/second.
    pub disk_write_bps: f64,
    /// NIC bandwidth in bytes/second (full duplex: the cap applies to each
    /// direction independently).
    pub nic_bps: f64,
    /// Relative CPU speed factor; 1.0 is the reference machine. CPU work is
    /// expressed in reference CPU-seconds, so a node with `speed` 0.5 takes
    /// twice as long. Used to model heterogeneous infrastructures.
    pub speed: f64,
}

impl NodeSpec {
    /// A convenience profile resembling an EC2 m3.large instance
    /// (2 vCPUs, 7.5 GB RAM, local SSD), used throughout the paper's
    /// scalability and scheduling experiments.
    pub fn m3_large(name: impl Into<String>) -> NodeSpec {
        NodeSpec {
            name: name.into(),
            cores: 2,
            memory_mb: 7_500,
            disk_read_bps: 220.0e6,
            disk_write_bps: 180.0e6,
            nic_bps: 87.5e6, // ~700 Mbit/s "moderate" EC2 networking
            speed: 1.0,
        }
    }

    /// EC2 c3.2xlarge (8 vCPUs, 15 GB RAM, 160 GB local SSD) — the node
    /// type of the RNA-seq experiment in Section 4.2.
    pub fn c3_2xlarge(name: impl Into<String>) -> NodeSpec {
        NodeSpec {
            name: name.into(),
            cores: 8,
            memory_mb: 15_000,
            disk_read_bps: 350.0e6,
            disk_write_bps: 300.0e6,
            nic_bps: 125.0e6, // ~1 Gbit/s
            speed: 1.15,
        }
    }

    /// The paper's local cluster node: two Xeon E5-2620 processors exposing
    /// 24 virtual cores and 24 GB of memory, on a shared 1 GbE switch.
    pub fn xeon_e5_2620(name: impl Into<String>) -> NodeSpec {
        NodeSpec {
            name: name.into(),
            cores: 24,
            memory_mb: 24_000,
            disk_read_bps: 150.0e6,
            disk_write_bps: 120.0e6,
            nic_bps: 125.0e6, // 1 Gbit/s NIC
            speed: 1.0,
        }
    }
}

/// An external data service reachable over the network (S3, EBS, a remote
/// repository). Flows to/from an external endpoint are constrained by the
/// service's aggregate capacity and optionally by a per-flow cap, in
/// addition to the node NIC on the cluster side.
#[derive(Clone, Debug)]
pub struct ExternalSpec {
    pub name: String,
    /// Total bandwidth across all concurrent flows, bytes/second.
    /// `f64::INFINITY` models an effectively unlimited service such as S3.
    pub aggregate_bps: f64,
    /// Optional per-flow cap in bytes/second (e.g. EBS volume throughput).
    pub per_flow_bps: Option<f64>,
    /// Whether traffic to this service traverses the cluster switch and
    /// therefore counts against [`ClusterSpec::switch_bps`]. WAN services
    /// (S3) leave through a border router and do not; a SAN volume does.
    pub via_switch: bool,
}

impl ExternalSpec {
    /// Amazon-S3-like blob store: effectively unlimited aggregate capacity,
    /// ~80 MB/s per connection, not constrained by the cluster switch.
    pub fn s3() -> ExternalSpec {
        ExternalSpec {
            name: "s3".to_string(),
            aggregate_bps: f64::INFINITY,
            per_flow_bps: Some(80.0e6),
            via_switch: false,
        }
    }

    /// EBS-like network-attached volume shared by the whole cluster:
    /// limited aggregate throughput, traffic crosses the shared fabric.
    pub fn ebs_shared() -> ExternalSpec {
        ExternalSpec {
            name: "ebs".to_string(),
            aggregate_bps: 250.0e6,
            per_flow_bps: Some(62.5e6),
            via_switch: true,
        }
    }
}

/// Full description of a simulated cluster.
#[derive(Clone, Debug, Default)]
pub struct ClusterSpec {
    pub nodes: Vec<NodeSpec>,
    /// Aggregate switch capacity in bytes/second for all node-to-node
    /// traffic (plus external traffic flagged `via_switch`). `None` models
    /// a non-blocking fabric, appropriate for EC2 experiments.
    pub switch_bps: Option<f64>,
    pub externals: Vec<ExternalSpec>,
}

impl ClusterSpec {
    /// Builds a homogeneous cluster of `n` copies of `proto`, named
    /// `{prefix}-{i}`.
    pub fn homogeneous(n: usize, prefix: &str, proto: &NodeSpec) -> ClusterSpec {
        let nodes = (0..n)
            .map(|i| NodeSpec {
                name: format!("{prefix}-{i}"),
                ..proto.clone()
            })
            .collect();
        ClusterSpec {
            nodes,
            switch_bps: None,
            externals: Vec::new(),
        }
    }

    /// Adds an external service, returning its id.
    pub fn add_external(&mut self, ext: ExternalSpec) -> ExternalId {
        self.externals.push(ext);
        ExternalId(self.externals.len() as u32 - 1)
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self, node: NodeSpec) -> NodeId {
        self.nodes.push(node);
        NodeId(self.nodes.len() as u32 - 1)
    }

    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    pub fn node(&self, id: NodeId) -> &NodeSpec {
        &self.nodes[id.index()]
    }

    pub fn external(&self, id: ExternalId) -> &ExternalSpec {
        &self.externals[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_builder_names_nodes() {
        let c = ClusterSpec::homogeneous(3, "w", &NodeSpec::m3_large("proto"));
        assert_eq!(c.nodes.len(), 3);
        assert_eq!(c.nodes[0].name, "w-0");
        assert_eq!(c.nodes[2].name, "w-2");
        assert!(c.switch_bps.is_none());
    }

    #[test]
    fn add_external_assigns_sequential_ids() {
        let mut c = ClusterSpec::default();
        let s3 = c.add_external(ExternalSpec::s3());
        let ebs = c.add_external(ExternalSpec::ebs_shared());
        assert_eq!(s3, ExternalId(0));
        assert_eq!(ebs, ExternalId(1));
        assert_eq!(c.external(ebs).name, "ebs");
        assert!(c.external(s3).aggregate_bps.is_infinite());
    }

    #[test]
    fn node_profiles_are_sane() {
        let m3 = NodeSpec::m3_large("a");
        assert_eq!(m3.cores, 2);
        let xeon = NodeSpec::xeon_e5_2620("b");
        assert_eq!(xeon.cores, 24);
        assert!(xeon.nic_bps <= 125.0e6);
    }
}
