//! Flow-level max-min fair bandwidth allocation (progressive filling).
//!
//! The simulated network is a star: every node's NIC is a capacity
//! constraint (independently per direction), the switch core is an optional
//! aggregate constraint, and external services contribute an aggregate
//! constraint plus an optional per-flow cap. A flow is a set of constraint
//! memberships; rates are assigned by progressive filling, the textbook
//! algorithm for max-min fairness: raise all rates uniformly, freeze flows
//! when a constraint they traverse saturates, repeat.

/// Rate assigned to a flow that traverses no finite constraint (bytes/s).
/// Kept finite so completion times remain computable.
pub const UNCONSTRAINED_BPS: f64 = 1.0e15;

/// One capacity constraint (a NIC direction, the switch core, an external
/// service). Capacity may be `f64::INFINITY`.
#[derive(Clone, Copy, Debug)]
pub struct Constraint {
    pub capacity: f64,
}

/// A flow's view of the network: the indices of the constraints it
/// traverses, plus an optional private rate cap.
#[derive(Clone, Debug, Default)]
pub struct FlowPath {
    pub constraints: Vec<usize>,
    pub rate_cap: Option<f64>,
}

/// Computes max-min fair rates for `flows` subject to `constraints`.
///
/// Returned rates satisfy: per-constraint sums never exceed capacity;
/// per-flow caps are honoured; and the allocation is max-min fair (no
/// flow's rate can be raised without lowering that of a flow with an equal
/// or smaller rate).
pub fn max_min_rates(constraints: &[Constraint], flows: &[FlowPath]) -> Vec<f64> {
    let mut ws = NetFairWorkspace::default();
    ws.compute(constraints, flows).to_vec()
}

/// Reusable scratch buffers for [`max_min_rates`]. The engine runs one
/// refill per IO-set change; holding the workspace across refreshes keeps
/// the progressive-filling loop allocation-free.
#[derive(Default)]
pub struct NetFairWorkspace {
    rates: Vec<f64>,
    frozen: Vec<bool>,
    residual: Vec<f64>,
    count: Vec<usize>,
    caps: Vec<f64>,
    members: Vec<Vec<usize>>,
    newly_frozen: Vec<bool>,
}

impl NetFairWorkspace {
    /// [`max_min_rates`] into the workspace's buffers. The returned slice
    /// is valid until the next `compute` call. Identical arithmetic to the
    /// free function (which delegates here).
    pub fn compute(&mut self, constraints: &[Constraint], flows: &[FlowPath]) -> &[f64] {
        let nf = flows.len();
        self.rates.clear();
        if nf == 0 {
            return &self.rates;
        }

        self.rates.resize(nf, 0.0);
        self.frozen.clear();
        self.frozen.resize(nf, false);
        let rates = &mut self.rates;
        let frozen = &mut self.frozen;

        // Residual capacity and unfrozen-flow count per constraint. A
        // flow's private cap is modelled as one extra single-flow
        // constraint.
        self.residual.clear();
        self.residual.extend(constraints.iter().map(|c| c.capacity));
        let residual = &mut self.residual;
        self.count.clear();
        self.count.resize(constraints.len(), 0);
        let count = &mut self.count;
        for f in flows {
            for &c in &f.constraints {
                count[c] += 1;
            }
        }
        self.caps.clear();
        self.caps
            .extend(flows.iter().map(|f| f.rate_cap.unwrap_or(f64::INFINITY)));
        let caps = &mut self.caps;

        // Constraint → member-flow index, so freezing on saturation is
        // O(members) instead of a scan over every flow (the Figure 4
        // experiment runs hundreds of concurrent flows).
        if self.members.len() < constraints.len() {
            self.members.resize_with(constraints.len(), Vec::new);
        }
        for m in self.members.iter_mut() {
            m.clear();
        }
        let members = &mut self.members;
        for (fi, f) in flows.iter().enumerate() {
            for &c in &f.constraints {
                members[c].push(fi);
            }
        }

        let mut unfrozen = nf;
        while unfrozen > 0 {
            // Smallest uniform increment saturating a constraint or a cap.
            let mut inc = f64::INFINITY;
            for (i, c) in residual.iter().enumerate() {
                if count[i] > 0 && c.is_finite() {
                    inc = inc.min(c / count[i] as f64);
                }
            }
            for i in 0..nf {
                if !frozen[i] && caps[i].is_finite() {
                    inc = inc.min(caps[i] - rates[i]);
                }
            }
            if !inc.is_finite() {
                // No binding constraint: remaining flows are unconstrained.
                for i in 0..nf {
                    if !frozen[i] {
                        rates[i] = UNCONSTRAINED_BPS;
                        frozen[i] = true;
                    }
                }
                break;
            }

            // Raise every unfrozen flow by `inc`; charge the constraints.
            for i in 0..nf {
                if !frozen[i] {
                    rates[i] += inc;
                }
            }
            for (i, r) in residual.iter_mut().enumerate() {
                if count[i] > 0 {
                    *r -= inc * count[i] as f64;
                }
            }

            // Freeze flows on saturated constraints or at their private
            // cap. Thresholds are *relative* to the capacity: with
            // capacities in the 1e9 range, the float error of repeated
            // subtraction can exceed any fixed absolute epsilon.
            self.newly_frozen.clear();
            self.newly_frozen.resize(nf, false);
            let newly_frozen = &mut self.newly_frozen;
            for (ci, r) in residual.iter().enumerate() {
                let eps = 1e-6 + constraints[ci].capacity.abs() * 1e-9;
                if count[ci] > 0 && constraints[ci].capacity.is_finite() && *r <= eps {
                    for &fi in &members[ci] {
                        if !frozen[fi] {
                            newly_frozen[fi] = true;
                        }
                    }
                }
            }
            for (fi, rate) in rates.iter().enumerate() {
                if !frozen[fi] && caps[fi].is_finite() {
                    let eps = 1e-9 + caps[fi].abs() * 1e-9;
                    if *rate >= caps[fi] - eps {
                        newly_frozen[fi] = true;
                    }
                }
            }

            let mut progress = false;
            for fi in 0..nf {
                if newly_frozen[fi] {
                    frozen[fi] = true;
                    unfrozen -= 1;
                    progress = true;
                    for &c in &flows[fi].constraints {
                        count[c] -= 1;
                    }
                }
            }
            if !progress {
                // Numeric fallback: the increment was swallowed by
                // rounding. Freeze everything at the current (feasible)
                // rates — this sacrifices at most an epsilon of max-min
                // optimality while guaranteeing termination.
                frozen[..nf].fill(true);
                break;
            }
        }
        &self.rates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6 * b.abs().max(1.0)
    }

    fn flow(cs: &[usize]) -> FlowPath {
        FlowPath {
            constraints: cs.to_vec(),
            rate_cap: None,
        }
    }

    #[test]
    fn two_flows_share_one_link() {
        let cons = [Constraint { capacity: 100.0 }];
        let rates = max_min_rates(&cons, &[flow(&[0]), flow(&[0])]);
        assert!(close(rates[0], 50.0) && close(rates[1], 50.0));
    }

    #[test]
    fn bottleneck_frees_capacity_elsewhere() {
        // Flow A uses links 0 and 1; flow B only link 0. Link 0 has 100,
        // link 1 has 30. A is capped at 30 by link 1; B then gets 70.
        let cons = [
            Constraint { capacity: 100.0 },
            Constraint { capacity: 30.0 },
        ];
        let rates = max_min_rates(&cons, &[flow(&[0, 1]), flow(&[0])]);
        assert!(close(rates[0], 30.0), "{rates:?}");
        assert!(close(rates[1], 70.0), "{rates:?}");
    }

    #[test]
    fn per_flow_cap_is_honoured() {
        let cons = [Constraint { capacity: 100.0 }];
        let flows = [
            FlowPath {
                constraints: vec![0],
                rate_cap: Some(10.0),
            },
            flow(&[0]),
        ];
        let rates = max_min_rates(&cons, &flows);
        assert!(close(rates[0], 10.0));
        assert!(close(rates[1], 90.0));
    }

    #[test]
    fn unconstrained_flow_gets_sentinel_rate() {
        let cons = [Constraint {
            capacity: f64::INFINITY,
        }];
        let rates = max_min_rates(&cons, &[flow(&[0])]);
        assert_eq!(rates[0], UNCONSTRAINED_BPS);
    }

    #[test]
    fn switch_aggregate_binds_many_nics() {
        // 4 flows, each on its own 125 MB/s NIC pair, all through a
        // 250 MB/s switch: each gets 62.5 MB/s.
        let mut cons = vec![Constraint { capacity: 250.0e6 }];
        let mut flows = Vec::new();
        for i in 0..4 {
            cons.push(Constraint { capacity: 125.0e6 }); // src nic
            cons.push(Constraint { capacity: 125.0e6 }); // dst nic
            flows.push(flow(&[0, 1 + 2 * i, 2 + 2 * i]));
        }
        let rates = max_min_rates(&cons, &flows);
        for r in &rates {
            assert!(close(*r, 62.5e6), "{rates:?}");
        }
    }

    #[test]
    fn empty_flows() {
        assert!(max_min_rates(&[], &[]).is_empty());
    }
}
