//! Per-node resource usage accounting.
//!
//! The paper's Figure 6 monitors CPU load (`uptime`), I/O device
//! utilization (`iostat`), and network throughput (`ifstat`) on the Hadoop
//! master, the Hi-WAY AM node, and a worker during the weak-scaling
//! experiment. The engine integrates the same quantities exactly (they are
//! piecewise constant between events), and callers drain them with
//! [`crate::Engine::take_usage`].

use crate::spec::NodeSpec;

/// Time-integrated resource usage of one node over a sampling window.
#[derive(Clone, Debug, Default)]
pub struct NodeUsage {
    /// Window length in (virtual) seconds.
    pub elapsed: f64,
    /// Integral of allocated cores over time — divide by `elapsed` to get
    /// the average CPU load in the `uptime` sense (peaks at `cores`).
    pub core_seconds: f64,
    /// Bytes read from the local disk.
    pub disk_read_bytes: f64,
    /// Bytes written to the local disk.
    pub disk_write_bytes: f64,
    /// Bytes received from the network.
    pub net_in_bytes: f64,
    /// Bytes sent to the network.
    pub net_out_bytes: f64,
    /// Integral of instantaneous I/O utilization (0..=1, the `iostat`
    /// device-saturation sense) over time.
    pub io_util_seconds: f64,
}

impl NodeUsage {
    /// Folds `dt` seconds at the instantaneous per-node totals
    /// `[alloc_cores, disk_read_bps, disk_write_bps, net_in_bps,
    /// net_out_bps]` into the accumulator.
    pub(crate) fn accumulate(&mut self, dt: f64, inst: &[f64; 5], spec: &NodeSpec) {
        self.elapsed += dt;
        self.core_seconds += inst[0] * dt;
        self.disk_read_bytes += inst[1] * dt;
        self.disk_write_bytes += inst[2] * dt;
        self.net_in_bytes += inst[3] * dt;
        self.net_out_bytes += inst[4] * dt;
        let util_r = if spec.disk_read_bps > 0.0 {
            inst[1] / spec.disk_read_bps
        } else {
            0.0
        };
        let util_w = if spec.disk_write_bps > 0.0 {
            inst[2] / spec.disk_write_bps
        } else {
            0.0
        };
        self.io_util_seconds += util_r.max(util_w).min(1.0) * dt;
    }

    /// Averages the accumulated usage into a [`UsageSample`].
    pub fn sample(&self) -> UsageSample {
        let dt = self.elapsed;
        if dt <= 0.0 {
            return UsageSample::default();
        }
        UsageSample {
            cpu_load: self.core_seconds / dt,
            io_util: self.io_util_seconds / dt,
            net_in_bps: self.net_in_bytes / dt,
            net_out_bps: self.net_out_bytes / dt,
            disk_read_bps: self.disk_read_bytes / dt,
            disk_write_bps: self.disk_write_bytes / dt,
        }
    }

    /// Merges another window into this one (windows must be disjoint).
    pub fn merge(&mut self, other: &NodeUsage) {
        self.elapsed += other.elapsed;
        self.core_seconds += other.core_seconds;
        self.disk_read_bytes += other.disk_read_bytes;
        self.disk_write_bytes += other.disk_write_bytes;
        self.net_in_bytes += other.net_in_bytes;
        self.net_out_bytes += other.net_out_bytes;
        self.io_util_seconds += other.io_util_seconds;
    }
}

/// Averaged usage over a window — what the paper's monitoring tools print.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct UsageSample {
    /// Average CPU load (allocated cores), `uptime`-style.
    pub cpu_load: f64,
    /// Average I/O utilization in `[0, 1]`, `iostat`-style.
    pub io_util: f64,
    pub net_in_bps: f64,
    pub net_out_bps: f64,
    pub disk_read_bps: f64,
    pub disk_write_bps: f64,
}

impl UsageSample {
    /// Total network throughput, both directions, in bytes/second.
    pub fn net_bps(&self) -> f64 {
        self.net_in_bps + self.net_out_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::NodeSpec;

    #[test]
    fn accumulate_and_sample() {
        let spec = NodeSpec::m3_large("n");
        let mut u = NodeUsage::default();
        u.accumulate(2.0, &[1.5, 110.0e6, 0.0, 10.0e6, 0.0], &spec);
        let s = u.sample();
        assert!((s.cpu_load - 1.5).abs() < 1e-9);
        assert!((s.io_util - 0.5).abs() < 1e-9); // 110 of 220 MB/s read
        assert!((s.net_in_bps - 10.0e6).abs() < 1.0);
        assert!((s.net_bps() - 10.0e6).abs() < 1.0);
    }

    #[test]
    fn empty_window_samples_zero() {
        assert_eq!(NodeUsage::default().sample(), UsageSample::default());
    }

    #[test]
    fn merge_windows() {
        let spec = NodeSpec::m3_large("n");
        let mut a = NodeUsage::default();
        a.accumulate(1.0, &[2.0, 0.0, 0.0, 0.0, 0.0], &spec);
        let mut b = NodeUsage::default();
        b.accumulate(1.0, &[0.0, 0.0, 0.0, 0.0, 0.0], &spec);
        a.merge(&b);
        assert!((a.sample().cpu_load - 1.0).abs() < 1e-9);
    }

    #[test]
    fn io_util_saturates_at_one() {
        let spec = NodeSpec::m3_large("n");
        let mut u = NodeUsage::default();
        // Read + write at full tilt: util clamps to 1.
        u.accumulate(1.0, &[0.0, 400.0e6, 400.0e6, 0.0, 0.0], &spec);
        assert!((u.sample().io_util - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_elapsed_accumulation_samples_zero() {
        // A zero-length window (two events at the same instant) must not
        // divide by zero — sample() returns all-zero, not NaN.
        let spec = NodeSpec::m3_large("n");
        let mut u = NodeUsage::default();
        u.accumulate(0.0, &[4.0, 100.0e6, 100.0e6, 1.0e6, 1.0e6], &spec);
        assert_eq!(u.elapsed, 0.0);
        let s = u.sample();
        assert_eq!(s, UsageSample::default());
        assert!(!s.cpu_load.is_nan() && !s.io_util.is_nan());
    }

    #[test]
    fn io_util_clamps_even_when_rates_exceed_spec() {
        // Instantaneous totals can transiently exceed the device spec
        // (e.g. several flows sharing a disk mid-refresh); utilization
        // must still integrate as saturated, never above 1 per second.
        let spec = NodeSpec::m3_large("n");
        let mut u = NodeUsage::default();
        u.accumulate(2.0, &[0.0, 10.0 * spec.disk_read_bps, 0.0, 0.0, 0.0], &spec);
        assert!((u.io_util_seconds - 2.0).abs() < 1e-9);
        assert!((u.sample().io_util - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_bandwidth_disk_spec_reports_zero_util() {
        // A node with no disk bandwidth (e.g. a diskless master profile)
        // must not produce inf/NaN utilization from the 0/0 division.
        let mut spec = NodeSpec::m3_large("n");
        spec.disk_read_bps = 0.0;
        spec.disk_write_bps = 0.0;
        let mut u = NodeUsage::default();
        u.accumulate(3.0, &[1.0, 5.0e6, 5.0e6, 0.0, 0.0], &spec);
        let s = u.sample();
        assert_eq!(s.io_util, 0.0);
        assert!(!s.io_util.is_nan());
        // Byte integrals still accumulate — only utilization is undefined.
        assert!((u.disk_read_bytes - 15.0e6).abs() < 1.0);
    }

    #[test]
    fn one_sided_zero_bandwidth_uses_the_other_side() {
        // Write bandwidth zero, read side active: utilization comes from
        // the read ratio alone.
        let mut spec = NodeSpec::m3_large("n");
        spec.disk_write_bps = 0.0;
        let mut u = NodeUsage::default();
        u.accumulate(
            1.0,
            &[0.0, spec.disk_read_bps / 2.0, 123.0, 0.0, 0.0],
            &spec,
        );
        assert!((u.sample().io_util - 0.5).abs() < 1e-9);
    }
}
