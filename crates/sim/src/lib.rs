//! # hiway-sim — discrete-event cluster simulation kernel
//!
//! This crate is the hardware substrate of the Hi-WAY reproduction. The
//! original system (Bux et al., EDBT 2017) executed workflows on real
//! Hadoop clusters; here, nodes, disks, NICs, and the datacenter switch are
//! simulated so that the Hi-WAY application-master logic, the HDFS-like
//! block store, and the YARN-like resource manager can run unmodified on a
//! laptop while preserving the performance phenomena the paper's evaluation
//! depends on (network-bound scaling, local-SSD vs network-attached storage,
//! heterogeneous node performance under synthetic stress).
//!
//! The kernel is *rate-based*: every ongoing piece of work is an
//! [`engine::Activity`] with a remaining volume (CPU-seconds, bytes) and a
//! dynamically recomputed rate. Rates come from three fair-sharing models:
//!
//! * **CPU** — per-node max-min fair processor sharing with per-activity
//!   thread caps ([`cpufair`]),
//! * **disk** — per-node equal sharing among active streams,
//! * **network** — flow-level max-min fairness over a star topology with
//!   per-NIC, per-external-service, and optional switch-aggregate capacity
//!   constraints ([`netfair`]).
//!
//! The engine advances virtual time to the next activity completion or timer
//! and returns completion events to the caller (poll-based — the kernel
//! never calls back into user code, which keeps ownership simple and the
//! simulation deterministic). All randomness is injected through a single
//! seeded RNG owned by the caller.

pub mod cpufair;
pub mod engine;
pub mod metrics;
pub mod netfair;
#[doc(hidden)]
pub mod reference;
pub mod spec;
pub mod stress;
pub mod time;

pub use engine::{Activity, ActivityId, Completion, Endpoint, Engine, TimerId};
pub use metrics::{NodeUsage, UsageSample};
pub use spec::{ClusterSpec, ExternalId, ExternalSpec, NodeId, NodeSpec};
pub use time::SimTime;
