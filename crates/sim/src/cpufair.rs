//! Max-min fair processor sharing with per-task concurrency caps.
//!
//! Each compute activity on a node declares how many threads it can use.
//! The node's cores are divided max-min fairly: every activity would like
//! an equal share, but no activity can consume more than its thread cap,
//! and capacity freed by capped activities is redistributed among the rest
//! (water-filling). This models the Linux CFS behaviour the paper relies on
//! when it co-schedules multi-threaded bioinformatics tools and synthetic
//! `stress` processes on the same machine.

/// Computes the max-min fair core allocation.
///
/// `caps[i]` is the maximum parallelism (in cores) demand `i` can use;
/// `cores` is the node capacity. Returns the per-demand allocation, in
/// cores (may be fractional). The result satisfies:
///
/// * `alloc[i] <= caps[i]`
/// * `sum(alloc) <= cores` (equal when `sum(caps) >= cores`)
/// * water-filling: if `alloc[i] < caps[i]` then `alloc[i] >= alloc[j]`
///   for every `j` (nobody below their cap gets less than anyone else).
pub fn fair_cores(caps: &[f64], cores: f64) -> Vec<f64> {
    let mut alloc = Vec::new();
    let mut order = Vec::new();
    fair_cores_into(caps, cores, &mut alloc, &mut order);
    alloc
}

/// [`fair_cores`] writing into caller-owned buffers, so per-refresh heap
/// allocation disappears from the engine's hot path. `alloc` receives the
/// result; `order` is sort scratch. Identical arithmetic to `fair_cores`.
pub fn fair_cores_into(caps: &[f64], cores: f64, alloc: &mut Vec<f64>, order: &mut Vec<usize>) {
    let n = caps.len();
    alloc.clear();
    if n == 0 {
        return;
    }
    debug_assert!(caps.iter().all(|c| *c >= 0.0 && c.is_finite()));

    let total_demand: f64 = caps.iter().sum();
    if total_demand <= cores {
        // Uncontended: everyone runs at full parallelism.
        alloc.extend_from_slice(caps);
        return;
    }

    // Water-filling: process demands in increasing cap order; each either
    // gets its full cap (if below the current fair level) or the final
    // level shared by all unsatisfied demands.
    order.clear();
    order.extend(0..n);
    order.sort_by(|&a, &b| caps[a].partial_cmp(&caps[b]).expect("caps are finite"));

    alloc.resize(n, 0.0);
    let mut remaining = cores;
    let mut left = n;
    for (pos, &i) in order.iter().enumerate() {
        let level = remaining / left as f64;
        if caps[i] <= level {
            alloc[i] = caps[i];
            remaining -= caps[i];
            left -= 1;
        } else {
            // Everyone from here on shares the remaining capacity equally.
            for &j in &order[pos..] {
                alloc[j] = level;
            }
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn uncontended_gets_full_caps() {
        let a = fair_cores(&[1.0, 2.0], 8.0);
        assert_eq!(a, vec![1.0, 2.0]);
    }

    #[test]
    fn equal_demands_split_evenly() {
        let a = fair_cores(&[4.0, 4.0], 4.0);
        assert!(close(a[0], 2.0) && close(a[1], 2.0));
    }

    #[test]
    fn small_cap_is_satisfied_first() {
        // caps 1, 8, 8 on 6 cores: the 1-thread task gets 1, the other two
        // split the remaining 5.
        let a = fair_cores(&[1.0, 8.0, 8.0], 6.0);
        assert!(close(a[0], 1.0));
        assert!(close(a[1], 2.5) && close(a[2], 2.5));
    }

    #[test]
    fn stress_halves_a_single_task() {
        // One 2-thread task + two single-thread stress processes on a
        // 2-core node: task gets ~0.667 per fair share? No — max-min:
        // level = 2/3; stress caps are 1 > 2/3 so all three get 2/3.
        let a = fair_cores(&[2.0, 1.0, 1.0], 2.0);
        for x in &a {
            assert!(close(*x, 2.0 / 3.0));
        }
    }

    #[test]
    fn empty_input() {
        assert!(fair_cores(&[], 4.0).is_empty());
    }

    #[test]
    fn zero_cap_gets_zero() {
        let a = fair_cores(&[0.0, 4.0], 2.0);
        assert!(close(a[0], 0.0) && close(a[1], 2.0));
    }

    #[test]
    fn conservation_and_cap_invariants() {
        let caps = [3.0, 1.0, 5.0, 0.5, 2.0];
        let a = fair_cores(&caps, 4.0);
        let total: f64 = a.iter().sum();
        assert!(close(total, 4.0));
        for (x, c) in a.iter().zip(caps.iter()) {
            assert!(*x <= c + 1e-9);
        }
    }
}
