//! A naive recompute-everything port of the original engine, kept as the
//! semantic oracle for the incremental engine in [`crate::engine`].
//!
//! Every refresh regroups all compute activities, rebuilds every flow path
//! and the whole constraint vector, and reruns both fairness models from
//! scratch; `peek_next_time` and `step` scan every activity and timer
//! linearly. This is exactly the pre-overhaul hot path — O(all activities)
//! per event — and the incremental engine must reproduce its completion
//! sequences and virtual times bit for bit (see the property tests in
//! `tests/incremental_vs_reference.rs` and the criterion benchmark).
//!
//! Not public API: exposed (`#[doc(hidden)]` from the crate root) only so
//! the benchmark harness can measure the speedup against it.

use std::collections::{BTreeMap, HashMap};

use crate::cpufair::fair_cores;
use crate::engine::{Activity, ActivityId, Completion, Endpoint, TimerId};
use crate::metrics::NodeUsage;
use crate::netfair::{max_min_rates, Constraint};
use crate::spec::{ClusterSpec, NodeId};
use crate::time::SimTime;

struct Act<T> {
    kind: Activity,
    remaining: f64,
    rate: f64,
    tag: T,
}

struct Timer<T> {
    at: SimTime,
    tag: T,
    cancelled: bool,
}

const COMPLETION_EPS: f64 = 1e-6;
const COMPLETION_TIME_EPS: f64 = 1e-9;

fn is_complete(remaining: f64, rate: f64) -> bool {
    remaining <= COMPLETION_EPS.max(rate * COMPLETION_TIME_EPS)
}

/// The naive engine. Same construction/driving API as [`crate::Engine`].
pub struct ReferenceEngine<T> {
    spec: ClusterSpec,
    now: SimTime,
    acts: BTreeMap<u64, Act<T>>,
    timers: BTreeMap<u64, Timer<T>>,
    next_id: u64,
    rates_dirty: bool,
    usage: Vec<NodeUsage>,
    inst: Vec<[f64; 5]>,
}

impl<T: Clone> ReferenceEngine<T> {
    pub fn new(spec: ClusterSpec) -> ReferenceEngine<T> {
        let n = spec.nodes.len();
        ReferenceEngine {
            spec,
            now: SimTime::ZERO,
            acts: BTreeMap::new(),
            timers: BTreeMap::new(),
            next_id: 0,
            rates_dirty: true,
            usage: vec![NodeUsage::default(); n],
            inst: vec![[0.0; 5]; n],
        }
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    pub fn start(&mut self, kind: Activity, volume: f64, tag: T) -> ActivityId {
        assert!(volume >= 0.0, "negative activity volume");
        if let Activity::Compute { node, threads } = &kind {
            assert!(
                *threads > 0.0,
                "compute must use at least a sliver of a core"
            );
            assert!(node.index() < self.spec.nodes.len(), "unknown node");
        }
        let id = self.next_id;
        self.next_id += 1;
        self.acts.insert(
            id,
            Act {
                kind,
                remaining: volume.max(COMPLETION_EPS / 2.0),
                rate: 0.0,
                tag,
            },
        );
        self.rates_dirty = true;
        ActivityId(id)
    }

    pub fn cancel(&mut self, id: ActivityId) -> Option<T> {
        let act = self.acts.remove(&id.0)?;
        self.rates_dirty = true;
        Some(act.tag)
    }

    pub fn active_count(&self) -> usize {
        self.acts.len()
    }

    pub fn set_timer(&mut self, at: SimTime, tag: T) -> TimerId {
        let id = self.next_id;
        self.next_id += 1;
        self.timers.insert(
            id,
            Timer {
                at: at.max(self.now),
                tag,
                cancelled: false,
            },
        );
        TimerId(id)
    }

    pub fn set_timer_after(&mut self, delay: f64, tag: T) -> TimerId {
        let at = self.now + delay.max(0.0);
        self.set_timer(at, tag)
    }

    pub fn cancel_timer(&mut self, id: TimerId) {
        if let Some(t) = self.timers.get_mut(&id.0) {
            t.cancelled = true;
        }
    }

    pub fn debug_timer_count(&self) -> usize {
        self.timers.values().filter(|t| !t.cancelled).count()
    }

    pub fn peek_next_time(&mut self) -> Option<SimTime> {
        self.refresh_rates();
        let mut next: Option<SimTime> = None;
        for act in self.acts.values() {
            if act.remaining.is_finite() && act.rate > 0.0 {
                let t = if is_complete(act.remaining, act.rate) {
                    self.now
                } else {
                    self.now + act.remaining / act.rate
                };
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        }
        for timer in self.timers.values() {
            if !timer.cancelled {
                next = Some(next.map_or(timer.at, |n| n.min(timer.at)));
            }
        }
        next
    }

    pub fn step(&mut self) -> Option<Vec<Completion<T>>> {
        let target = self.peek_next_time()?;
        self.advance_to(target);

        let mut fired = Vec::new();
        let done: Vec<u64> = self
            .acts
            .iter()
            .filter(|(_, a)| a.remaining.is_finite() && is_complete(a.remaining, a.rate))
            .map(|(id, _)| *id)
            .collect();
        for id in done {
            let act = self.acts.remove(&id).expect("collected above");
            fired.push(Completion::Activity {
                id: ActivityId(id),
                tag: act.tag,
            });
            self.rates_dirty = true;
        }
        let due: Vec<u64> = self
            .timers
            .iter()
            .filter(|(_, t)| !t.cancelled && t.at <= self.now)
            .map(|(id, _)| *id)
            .collect();
        for id in due {
            let timer = self.timers.remove(&id).expect("collected above");
            fired.push(Completion::Timer {
                id: TimerId(id),
                tag: timer.tag,
            });
        }
        let now = self.now;
        self.timers.retain(|_, t| !(t.cancelled && t.at <= now));
        Some(fired)
    }

    pub fn advance_to(&mut self, target: SimTime) {
        assert!(target >= self.now, "time cannot run backwards");
        self.refresh_rates();
        let dt = target - self.now;
        if dt > 0.0 {
            for act in self.acts.values_mut() {
                if act.remaining.is_finite() {
                    act.remaining -= act.rate * dt;
                    if act.remaining < 0.0 {
                        act.remaining = 0.0;
                    }
                }
            }
            for (node, inst) in self.inst.iter().enumerate() {
                self.usage[node].accumulate(dt, inst, &self.spec.nodes[node]);
            }
            self.now = target;
        }
    }

    pub fn take_usage(&mut self, node: NodeId) -> NodeUsage {
        std::mem::take(&mut self.usage[node.index()])
    }

    fn refresh_rates(&mut self) {
        if !self.rates_dirty {
            return;
        }
        self.rates_dirty = false;
        for row in self.inst.iter_mut() {
            *row = [0.0; 5];
        }

        self.refresh_cpu_rates();
        self.refresh_io_rates();
    }

    fn refresh_cpu_rates(&mut self) {
        let mut per_node: HashMap<u32, Vec<(u64, f64)>> = HashMap::new();
        for (&id, act) in &self.acts {
            if let Activity::Compute { node, threads } = act.kind {
                per_node.entry(node.0).or_default().push((id, threads));
            }
        }
        let mut nodes: Vec<u32> = per_node.keys().copied().collect();
        nodes.sort_unstable();
        for n in nodes {
            let members = &per_node[&n];
            let spec = &self.spec.nodes[n as usize];
            let caps: Vec<f64> = members.iter().map(|(_, t)| *t).collect();
            let alloc = fair_cores(&caps, spec.cores as f64);
            let mut total = 0.0;
            for ((id, _), cores) in members.iter().zip(alloc.iter()) {
                self.acts.get_mut(id).expect("member exists").rate = cores * spec.speed;
                total += cores;
            }
            self.inst[n as usize][0] = total;
        }
    }

    fn refresh_io_rates(&mut self) {
        let nn = self.spec.nodes.len();
        let mut constraints = Vec::with_capacity(nn * 4 + 1 + self.spec.externals.len());
        for node in &self.spec.nodes {
            constraints.push(Constraint {
                capacity: node.disk_read_bps,
            });
            constraints.push(Constraint {
                capacity: node.disk_write_bps,
            });
            constraints.push(Constraint {
                capacity: node.nic_bps,
            });
            constraints.push(Constraint {
                capacity: node.nic_bps,
            });
        }
        let switch_idx = constraints.len();
        constraints.push(Constraint {
            capacity: self.spec.switch_bps.unwrap_or(f64::INFINITY),
        });
        let ext_base = constraints.len();
        for ext in &self.spec.externals {
            constraints.push(Constraint {
                capacity: ext.aggregate_bps,
            });
        }

        let mut ids = Vec::new();
        let mut paths = Vec::new();
        for (&id, act) in &self.acts {
            let path = match &act.kind {
                Activity::Compute { .. } => continue,
                other => crate::engine::io_flow_path(&self.spec, other, switch_idx, ext_base),
            };
            ids.push(id);
            paths.push(path);
        }

        let rates = max_min_rates(&constraints, &paths);
        for (idx, id) in ids.iter().enumerate() {
            let rate = rates[idx];
            let act = self.acts.get_mut(id).expect("flow exists");
            act.rate = rate;
            match &act.kind {
                Activity::DiskRead { node } => self.inst[node.index()][1] += rate,
                Activity::DiskWrite { node } => self.inst[node.index()][2] += rate,
                Activity::Flow {
                    src,
                    dst,
                    src_disk,
                    dst_disk,
                } => {
                    if let Endpoint::Node(n) = src {
                        self.inst[n.index()][4] += rate;
                        if *src_disk {
                            self.inst[n.index()][1] += rate;
                        }
                    }
                    if let Endpoint::Node(n) = dst {
                        self.inst[n.index()][3] += rate;
                        if *dst_disk {
                            self.inst[n.index()][2] += rate;
                        }
                    }
                }
                Activity::Compute { .. } => unreachable!("filtered above"),
            }
        }
    }
}
