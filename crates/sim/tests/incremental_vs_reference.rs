//! Lockstep equivalence: the incremental engine (dirty-node CPU refresh,
//! cached flow paths, timer + predicted-completion heaps) must be
//! observationally identical — same completion sequences, same virtual
//! timestamps bit for bit — to the naive recompute-everything reference
//! engine it replaced. Random workloads mix compute, disk streams, flows,
//! external transfers, timers, cancellations, infinite background loads,
//! and partial time advances.

use proptest::prelude::*;

use hiway_sim::reference::ReferenceEngine;
use hiway_sim::{
    Activity, ActivityId, ClusterSpec, Completion, Endpoint, Engine, ExternalSpec, NodeId,
    NodeSpec, TimerId,
};

#[derive(Clone, Debug)]
enum Op {
    Compute {
        node: u8,
        threads: f64,
        volume: f64,
    },
    DiskRead {
        node: u8,
        volume: f64,
    },
    DiskWrite {
        node: u8,
        volume: f64,
    },
    Flow {
        src: u8,
        dst: u8,
        src_disk: bool,
        dst_disk: bool,
        volume: f64,
    },
    External {
        node: u8,
        upload: bool,
        volume: f64,
    },
    Background {
        node: u8,
        threads: f64,
    },
    Timer {
        delay: f64,
    },
    CancelAct {
        pick: u16,
    },
    CancelTimer {
        pick: u16,
    },
    Step,
    Advance {
        dt: f64,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..8, 0.5f64..4.0, 0.05f64..30.0).prop_map(|(node, threads, volume)| Op::Compute {
            node,
            threads,
            volume
        }),
        (0u8..8, 1.0e6f64..5.0e8).prop_map(|(node, volume)| Op::DiskRead { node, volume }),
        (0u8..8, 1.0e6f64..5.0e8).prop_map(|(node, volume)| Op::DiskWrite { node, volume }),
        (
            0u8..8,
            0u8..8,
            any::<bool>(),
            any::<bool>(),
            1.0e6f64..5.0e8
        )
            .prop_map(|(src, dst, src_disk, dst_disk, volume)| Op::Flow {
                src,
                dst,
                src_disk,
                dst_disk,
                volume
            }),
        (0u8..8, any::<bool>(), 1.0e6f64..2.0e8).prop_map(|(node, upload, volume)| Op::External {
            node,
            upload,
            volume
        }),
        (0u8..8, 0.5f64..2.0).prop_map(|(node, threads)| Op::Background { node, threads }),
        (0.0f64..20.0).prop_map(|delay| Op::Timer { delay }),
        (0u16..1000).prop_map(|pick| Op::CancelAct { pick }),
        (0u16..1000).prop_map(|pick| Op::CancelTimer { pick }),
        Just(Op::Step),
        (0.01f64..5.0).prop_map(|dt| Op::Advance { dt }),
    ]
}

/// Both engines report the same instant, bit for bit.
macro_rules! assert_same_time {
    ($a:expr, $b:expr, $ctx:expr) => {{
        let a = $a.map(|t| t.as_secs().to_bits());
        let b = $b.map(|t| t.as_secs().to_bits());
        prop_assert_eq!(a, b, "virtual time diverged at {}", $ctx);
    }};
}

fn completion_key(c: &Completion<u32>) -> (u8, u64, u32) {
    match c {
        Completion::Activity { id, tag } => (0, id.0, *tag),
        Completion::Timer { id, tag } => (1, id.0, *tag),
    }
}

fn lockstep(
    nodes: usize,
    switch_gbps: Option<f64>,
    ops: &[Op],
) -> Result<(), proptest::test_runner::TestCaseError> {
    let mut spec = ClusterSpec::homogeneous(nodes, "n", &NodeSpec::m3_large("p"));
    spec.switch_bps = switch_gbps.map(|g| g * 1.0e9);
    let s3 = spec.add_external(ExternalSpec::s3());
    let mut inc: Engine<u32> = Engine::new(spec.clone());
    let mut refe: ReferenceEngine<u32> = ReferenceEngine::new(spec);

    let node = |sel: u8| NodeId(sel as u32 % nodes as u32);
    let mut act_ids: Vec<ActivityId> = Vec::new();
    let mut timer_ids: Vec<TimerId> = Vec::new();
    let mut tag = 0u32;
    let start = |inc: &mut Engine<u32>,
                 refe: &mut ReferenceEngine<u32>,
                 ids: &mut Vec<ActivityId>,
                 kind: Activity,
                 volume: f64,
                 tag: &mut u32| {
        let a = inc.start(kind.clone(), volume, *tag);
        let b = refe.start(kind, volume, *tag);
        assert_eq!(a, b, "activity ids diverged");
        *tag += 1;
        ids.push(a);
    };

    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Compute {
                node: n,
                threads,
                volume,
            } => start(
                &mut inc,
                &mut refe,
                &mut act_ids,
                Activity::Compute {
                    node: node(*n),
                    threads: *threads,
                },
                *volume,
                &mut tag,
            ),
            Op::DiskRead { node: n, volume } => start(
                &mut inc,
                &mut refe,
                &mut act_ids,
                Activity::DiskRead { node: node(*n) },
                *volume,
                &mut tag,
            ),
            Op::DiskWrite { node: n, volume } => start(
                &mut inc,
                &mut refe,
                &mut act_ids,
                Activity::DiskWrite { node: node(*n) },
                *volume,
                &mut tag,
            ),
            Op::Flow {
                src,
                dst,
                src_disk,
                dst_disk,
                volume,
            } => start(
                &mut inc,
                &mut refe,
                &mut act_ids,
                Activity::Flow {
                    src: Endpoint::Node(node(*src)),
                    dst: Endpoint::Node(node(*dst)),
                    src_disk: *src_disk,
                    dst_disk: *dst_disk,
                },
                *volume,
                &mut tag,
            ),
            Op::External {
                node: n,
                upload,
                volume,
            } => {
                let (src, dst) = if *upload {
                    (Endpoint::Node(node(*n)), Endpoint::External(s3))
                } else {
                    (Endpoint::External(s3), Endpoint::Node(node(*n)))
                };
                start(
                    &mut inc,
                    &mut refe,
                    &mut act_ids,
                    Activity::Flow {
                        src,
                        dst,
                        src_disk: !*upload,
                        dst_disk: *upload,
                    },
                    *volume,
                    &mut tag,
                )
            }
            Op::Background { node: n, threads } => start(
                &mut inc,
                &mut refe,
                &mut act_ids,
                Activity::Compute {
                    node: node(*n),
                    threads: *threads,
                },
                f64::INFINITY,
                &mut tag,
            ),
            Op::Timer { delay } => {
                let a = inc.set_timer_after(*delay, tag);
                let b = refe.set_timer_after(*delay, tag);
                prop_assert_eq!(a, b, "timer ids diverged");
                tag += 1;
                timer_ids.push(a);
            }
            Op::CancelAct { pick } => {
                if !act_ids.is_empty() {
                    let id = act_ids[*pick as usize % act_ids.len()];
                    prop_assert_eq!(inc.cancel(id), refe.cancel(id), "cancel tag diverged");
                }
            }
            Op::CancelTimer { pick } => {
                if !timer_ids.is_empty() {
                    let id = timer_ids[*pick as usize % timer_ids.len()];
                    inc.cancel_timer(id);
                    refe.cancel_timer(id);
                }
            }
            Op::Step => {
                let a = inc.step();
                let b = refe.step();
                match (a, b) {
                    (None, None) => {}
                    (Some(fa), Some(fb)) => {
                        let ka: Vec<_> = fa.iter().map(completion_key).collect();
                        let kb: Vec<_> = fb.iter().map(completion_key).collect();
                        prop_assert_eq!(ka, kb, "completion sequence diverged at op {}", i);
                    }
                    (a, b) => {
                        return Err(proptest::test_runner::TestCaseError::fail(format!(
                            "step presence diverged at op {i}: inc={} ref={}",
                            a.is_some(),
                            b.is_some()
                        )));
                    }
                }
            }
            Op::Advance { dt } => {
                // Real callers (metrics sampling) never advance past the
                // next event; bound the target the same way they do.
                let mut t = inc.now() + *dt;
                if let Some(bound) = inc.peek_next_time() {
                    t = t.min(bound);
                }
                inc.advance_to(t);
                refe.advance_to(t);
            }
        }
        assert_same_time!(Some(inc.now()), Some(refe.now()), format!("op {i}"));
        assert_same_time!(
            inc.peek_next_time(),
            refe.peek_next_time(),
            format!("peek after op {i}")
        );
        prop_assert_eq!(inc.active_count(), refe.active_count());
        prop_assert_eq!(inc.debug_timer_count(), refe.debug_timer_count());
    }

    // Drain to quiescence (only background loads may remain).
    for round in 0..10_000 {
        let a = inc.step();
        let b = refe.step();
        match (a, b) {
            (None, None) => {
                // Accumulated usage must agree too (same rates, same dts).
                for n in 0..nodes {
                    let ua = inc.take_usage(NodeId(n as u32));
                    let ub = refe.take_usage(NodeId(n as u32));
                    prop_assert_eq!(ua.core_seconds.to_bits(), ub.core_seconds.to_bits());
                    prop_assert_eq!(ua.elapsed.to_bits(), ub.elapsed.to_bits());
                }
                return Ok(());
            }
            (Some(fa), Some(fb)) => {
                let ka: Vec<_> = fa.iter().map(completion_key).collect();
                let kb: Vec<_> = fb.iter().map(completion_key).collect();
                prop_assert_eq!(
                    ka,
                    kb,
                    "drain completion sequence diverged at round {}",
                    round
                );
                assert_same_time!(Some(inc.now()), Some(refe.now()), format!("drain {round}"));
            }
            _ => {
                return Err(proptest::test_runner::TestCaseError::fail(
                    "drain presence diverged".to_string(),
                ));
            }
        }
    }
    Err(proptest::test_runner::TestCaseError::fail(
        "engines failed to quiesce in 10k steps".to_string(),
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]
    #[test]
    fn incremental_engine_matches_reference(
        nodes in 1usize..6,
        switch in proptest::option::of(0.5f64..4.0),
        ops in proptest::collection::vec(op_strategy(), 1..80),
    ) {
        lockstep(nodes, switch, &ops)?;
    }
}
