//! Edge-case tests for the simulation kernel beyond the in-module units.

use hiway_sim::{Activity, ClusterSpec, Endpoint, Engine, ExternalSpec, NodeId, NodeSpec, SimTime};

fn cluster(n: usize) -> ClusterSpec {
    ClusterSpec::homogeneous(n, "n", &NodeSpec::m3_large("p"))
}

#[test]
fn empty_engine_has_nothing_to_do() {
    let mut e: Engine<u8> = Engine::new(cluster(1));
    assert!(e.peek_next_time().is_none());
    assert!(e.step().is_none());
    assert_eq!(e.now(), SimTime::ZERO);
}

#[test]
fn advance_without_activities_moves_the_clock_only() {
    let mut e: Engine<u8> = Engine::new(cluster(2));
    e.advance_to(SimTime::from_secs(10.0));
    assert_eq!(e.now().as_secs(), 10.0);
    let u = e.take_usage(NodeId(0));
    assert_eq!(u.elapsed, 10.0);
    assert_eq!(u.core_seconds, 0.0);
}

#[test]
fn zero_volume_activity_completes_immediately() {
    let mut e: Engine<u8> = Engine::new(cluster(1));
    e.start(Activity::DiskRead { node: NodeId(0) }, 0.0, 1);
    let fired = e.step().expect("fires");
    assert_eq!(fired.len(), 1);
    assert_eq!(e.now(), SimTime::ZERO);
}

#[test]
fn many_concurrent_flows_conserve_bytes() {
    // 16 node-to-node flows through a constrained switch: total volume
    // must drain in exactly total/switch time regardless of fairness.
    let mut spec = cluster(8);
    spec.switch_bps = Some(100.0e6);
    let mut e: Engine<u32> = Engine::new(spec);
    let per_flow = 50.0e6;
    for i in 0..16u32 {
        e.start(
            Activity::Flow {
                src: Endpoint::Node(NodeId(i % 8)),
                dst: Endpoint::Node(NodeId((i + 1) % 8)),
                src_disk: false,
                dst_disk: false,
            },
            per_flow,
            i,
        );
    }
    let mut fired = 0;
    while let Some(evts) = e.step() {
        fired += evts.len();
    }
    assert_eq!(fired, 16);
    let expected = 16.0 * per_flow / 100.0e6;
    assert!(
        (e.now().as_secs() - expected).abs() < 0.5,
        "switch-bound drain time: {} vs {expected}",
        e.now()
    );
}

#[test]
fn duplex_nic_carries_both_directions() {
    // A->B and B->A simultaneously: full-duplex NICs let both run at the
    // full 87.5 MB/s rather than sharing.
    let mut e: Engine<u8> = Engine::new(cluster(2));
    for (s, d, tag) in [(0, 1, 1u8), (1, 0, 2u8)] {
        e.start(
            Activity::Flow {
                src: Endpoint::Node(NodeId(s)),
                dst: Endpoint::Node(NodeId(d)),
                src_disk: false,
                dst_disk: false,
            },
            87.5e6,
            tag,
        );
    }
    let fired = e.step().expect("both finish together");
    assert_eq!(fired.len(), 2);
    assert!((e.now().as_secs() - 1.0).abs() < 1e-3, "{}", e.now());
}

#[test]
fn external_aggregate_is_shared_across_flows() {
    let mut spec = cluster(4);
    let ebs = spec.add_external(ExternalSpec {
        name: "vol".into(),
        aggregate_bps: 100.0e6,
        per_flow_bps: None,
        via_switch: false,
    });
    let mut e: Engine<u8> = Engine::new(spec);
    for i in 0..4u8 {
        e.start(
            Activity::Flow {
                src: Endpoint::External(ebs),
                dst: Endpoint::Node(NodeId(i as u32)),
                src_disk: false,
                dst_disk: false,
            },
            25.0e6,
            i,
        );
    }
    // 4 × 25 MB through a 100 MB/s service: 1 second.
    while e.step().is_some() {}
    assert!((e.now().as_secs() - 1.0).abs() < 1e-3, "{}", e.now());
}

#[test]
fn cancelling_mid_flight_preserves_remaining_work_of_others() {
    let mut e: Engine<u8> = Engine::new(cluster(1));
    // Two equal compute tasks share 2 cores; cancel one at t=2.
    let a = e.start(
        Activity::Compute {
            node: NodeId(0),
            threads: 2.0,
        },
        8.0,
        1,
    );
    e.start(
        Activity::Compute {
            node: NodeId(0),
            threads: 2.0,
        },
        8.0,
        2,
    );
    e.set_timer_after(2.0, 9);
    let fired = e.step().expect("timer first");
    assert_eq!(fired.len(), 1);
    e.cancel(a);
    // Task 2 has 8 - 1·2 = 6 CPU-s left, now at 2 cores: 3 more seconds.
    e.step().expect("task 2 completes");
    assert!((e.now().as_secs() - 5.0).abs() < 1e-6, "{}", e.now());
}

#[test]
fn heterogeneous_speeds_scale_compute_only() {
    let mut spec = cluster(2);
    spec.nodes[1].speed = 0.5;
    let mut e: Engine<u8> = Engine::new(spec);
    e.start(
        Activity::Compute {
            node: NodeId(0),
            threads: 1.0,
        },
        10.0,
        1,
    );
    e.start(
        Activity::Compute {
            node: NodeId(1),
            threads: 1.0,
        },
        10.0,
        2,
    );
    let first = e.step().expect("fast node first");
    assert!(matches!(
        first[0],
        hiway_sim::Completion::Activity { tag: 1, .. }
    ));
    assert!((e.now().as_secs() - 10.0).abs() < 1e-6);
    e.step().expect("slow node");
    assert!((e.now().as_secs() - 20.0).abs() < 1e-6);
    // Disk speed is not affected by the CPU speed factor.
    e.start(Activity::DiskRead { node: NodeId(1) }, 220.0e6, 3);
    let t0 = e.now();
    e.step().expect("read done");
    assert!((e.now().since(t0) - 1.0).abs() < 1e-3);
}

#[test]
fn timers_at_identical_instants_fire_together_in_creation_order() {
    let mut e: Engine<u8> = Engine::new(cluster(1));
    e.set_timer(SimTime::from_secs(5.0), 1);
    e.set_timer(SimTime::from_secs(5.0), 2);
    e.set_timer(SimTime::from_secs(5.0), 3);
    let fired = e.step().expect("all three");
    let tags: Vec<u8> = fired
        .iter()
        .map(|c| match c {
            hiway_sim::Completion::Timer { tag, .. } => *tag,
            hiway_sim::Completion::Activity { tag, .. } => *tag,
        })
        .collect();
    assert_eq!(tags, vec![1, 2, 3]);
}

#[test]
fn usage_windows_partition_time_exactly() {
    let mut e: Engine<u8> = Engine::new(cluster(1));
    e.start(
        Activity::Compute {
            node: NodeId(0),
            threads: 1.0,
        },
        4.0,
        1,
    );
    e.step();
    let w1 = e.take_usage(NodeId(0));
    e.start(
        Activity::Compute {
            node: NodeId(0),
            threads: 2.0,
        },
        4.0,
        2,
    );
    e.step();
    let w2 = e.take_usage(NodeId(0));
    assert!((w1.elapsed - 4.0).abs() < 1e-9);
    assert!((w1.core_seconds - 4.0).abs() < 1e-6);
    assert!((w2.elapsed - 2.0).abs() < 1e-6);
    assert!((w2.core_seconds - 4.0).abs() < 1e-6);
}
