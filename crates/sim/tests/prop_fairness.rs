//! Property tests of the fair-sharing kernels: these invariants are what
//! make the simulated performance numbers trustworthy.

use proptest::prelude::*;

use hiway_sim::cpufair::fair_cores;
use hiway_sim::netfair::{max_min_rates, Constraint, FlowPath};

proptest! {
    /// CPU water-filling: caps respected, capacity never exceeded, full
    /// utilization under contention, and the max-min property (nobody
    /// below their cap receives less than anyone else).
    #[test]
    fn cpu_fair_share_invariants(
        caps in proptest::collection::vec(0.0f64..16.0, 1..12),
        cores in 0.5f64..64.0,
    ) {
        let alloc = fair_cores(&caps, cores);
        prop_assert_eq!(alloc.len(), caps.len());
        let total: f64 = alloc.iter().sum();
        let demand: f64 = caps.iter().sum();
        for (a, c) in alloc.iter().zip(caps.iter()) {
            prop_assert!(*a <= c + 1e-9, "allocation exceeds cap");
            prop_assert!(*a >= -1e-12);
        }
        prop_assert!(total <= cores + 1e-6, "capacity exceeded");
        if demand >= cores {
            prop_assert!((total - cores).abs() < 1e-6, "under-utilized under contention");
        } else {
            prop_assert!((total - demand).abs() < 1e-6, "work not conserved");
        }
        // Max-min: unsatisfied demands all sit at the same water level.
        let level = alloc
            .iter()
            .zip(caps.iter())
            .filter(|(a, c)| **a < **c - 1e-9)
            .map(|(a, _)| *a)
            .fold(f64::NEG_INFINITY, f64::max);
        if level.is_finite() {
            for (a, c) in alloc.iter().zip(caps.iter()) {
                if *a < c - 1e-9 {
                    prop_assert!((a - level).abs() < 1e-6, "unequal water levels");
                }
            }
        }
    }

    /// Network max-min fairness: per-constraint sums within capacity,
    /// per-flow caps respected, and Pareto efficiency (every flow is
    /// limited by *something* — a cap or a saturated constraint).
    #[test]
    fn network_rate_invariants(
        topo in proptest::collection::vec(
            (1.0e6f64..1.0e9, proptest::collection::vec(0usize..6, 1..4), proptest::option::of(1.0e5f64..1.0e8)),
            1..10,
        ),
    ) {
        // Six shared constraints with random capacities derived from the
        // first flow entries (deterministic given the inputs).
        let constraints: Vec<Constraint> = (0..6)
            .map(|i| Constraint { capacity: 1.0e6 * (i as f64 + 1.0) * 7.0 })
            .collect();
        let flows: Vec<FlowPath> = topo
            .iter()
            .map(|(_, cs, cap)| {
                let mut cs = cs.clone();
                cs.sort_unstable();
                cs.dedup();
                FlowPath { constraints: cs, rate_cap: *cap }
            })
            .collect();
        let rates = max_min_rates(&constraints, &flows);
        prop_assert_eq!(rates.len(), flows.len());

        // Capacity per constraint.
        for (ci, c) in constraints.iter().enumerate() {
            let used: f64 = flows
                .iter()
                .zip(rates.iter())
                .filter(|(f, _)| f.constraints.contains(&ci))
                .map(|(_, r)| *r)
                .sum();
            prop_assert!(used <= c.capacity * (1.0 + 1e-6) + 1.0, "constraint {ci} over capacity");
        }
        // Caps and positivity.
        for (f, r) in flows.iter().zip(rates.iter()) {
            prop_assert!(*r >= 0.0);
            if let Some(cap) = f.rate_cap {
                prop_assert!(*r <= cap * (1.0 + 1e-6) + 1.0, "flow over its cap");
            }
        }
        // Pareto: every flow is at its cap or crosses a saturated constraint.
        for (f, r) in flows.iter().zip(rates.iter()) {
            let at_cap = f.rate_cap.map(|c| *r >= c * (1.0 - 1e-6)).unwrap_or(false);
            let on_saturated = f.constraints.iter().any(|&ci| {
                let used: f64 = flows
                    .iter()
                    .zip(rates.iter())
                    .filter(|(g, _)| g.constraints.contains(&ci))
                    .map(|(_, r)| *r)
                    .sum();
                used >= constraints[ci].capacity * (1.0 - 1e-6)
            });
            prop_assert!(at_cap || on_saturated, "flow not limited by anything");
        }
    }
}

/// Engine-level property: a batch of compute activities with random
/// volumes on one node always completes, in total-work time.
#[test]
fn engine_conserves_cpu_work() {
    use hiway_sim::{Activity, ClusterSpec, Engine, NodeId, NodeSpec};
    use proptest::test_runner::{Config, TestRunner};

    let mut runner = TestRunner::new(Config::with_cases(64));
    runner
        .run(
            &proptest::collection::vec((0.1f64..50.0, 1u32..4), 1..10),
            |jobs| {
                let spec = ClusterSpec::homogeneous(1, "n", &NodeSpec::m3_large("p"));
                let mut engine: Engine<u32> = Engine::new(spec);
                let total_work: f64 = jobs.iter().map(|(w, _)| *w).sum();
                for (i, (work, threads)) in jobs.iter().enumerate() {
                    engine.start(
                        Activity::Compute {
                            node: NodeId(0),
                            threads: *threads as f64,
                        },
                        *work,
                        i as u32,
                    );
                }
                let mut completions = 0;
                while let Some(evts) = engine.step() {
                    completions += evts.len();
                }
                prop_assert_eq!(completions, jobs.len());
                // 2 cores: elapsed ≥ total/2 (can't beat capacity) and
                // ≤ total (can't be slower than serial on one core).
                let elapsed = engine.now().as_secs();
                prop_assert!(elapsed >= total_work / 2.0 - 1e-6);
                prop_assert!(elapsed <= total_work + 1e-6);
                Ok(())
            },
        )
        .unwrap();
}
