//! Table 1: the overview of conducted experiments.
//!
//! Purely descriptive — the table enumerates the four experiments, their
//! workflows, languages, schedulers, infrastructures, repetition counts,
//! and evaluation goals, exactly as the paper's Table 1 does.

/// One row of Table 1.
#[derive(Clone, Copy, Debug)]
pub struct Table1Row {
    pub workflow: &'static str,
    pub domain: &'static str,
    pub language: &'static str,
    pub scheduler: &'static str,
    pub infrastructure: &'static str,
    pub runs: u32,
    pub evaluation: &'static str,
    pub section: &'static str,
    pub regenerated_by: &'static str,
}

/// The four experiments.
pub fn rows() -> Vec<Table1Row> {
    vec![
        Table1Row {
            workflow: "SNV Calling",
            domain: "genomics",
            language: "Cuneiform",
            scheduler: "data-aware",
            infrastructure: "24 Xeon E5-2620",
            runs: 3,
            evaluation: "performance, scalability",
            section: "4.1",
            regenerated_by: "fig4",
        },
        Table1Row {
            workflow: "SNV Calling",
            domain: "genomics",
            language: "Cuneiform",
            scheduler: "FCFS",
            infrastructure: "128 EC2 m3.large",
            runs: 3,
            evaluation: "scalability",
            section: "4.1",
            regenerated_by: "table2",
        },
        Table1Row {
            workflow: "RNA-seq",
            domain: "bioinformatics",
            language: "Galaxy",
            scheduler: "data-aware",
            infrastructure: "6 EC2 c3.2xlarge",
            runs: 5,
            evaluation: "performance",
            section: "4.2",
            regenerated_by: "fig8",
        },
        Table1Row {
            workflow: "Montage",
            domain: "astronomy",
            language: "DAX",
            scheduler: "HEFT",
            infrastructure: "8 EC2 m3.large (11 workers)",
            runs: 80,
            evaluation: "adaptive scheduling",
            section: "4.3",
            regenerated_by: "fig9",
        },
    ]
}

/// Renders the table.
pub fn render() -> String {
    let body: Vec<Vec<String>> = rows()
        .iter()
        .map(|r| {
            vec![
                r.workflow.to_string(),
                r.domain.to_string(),
                r.language.to_string(),
                r.scheduler.to_string(),
                r.infrastructure.to_string(),
                r.runs.to_string(),
                r.evaluation.to_string(),
                r.section.to_string(),
                r.regenerated_by.to_string(),
            ]
        })
        .collect();
    crate::experiments::common::render_table(
        &[
            "workflow",
            "domain",
            "language",
            "scheduler",
            "infrastructure",
            "runs",
            "evaluation",
            "section",
            "harness",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_lists_all_four_experiments() {
        let rows = super::rows();
        assert_eq!(rows.len(), 4);
        let rendered = super::render();
        for needle in [
            "SNV Calling",
            "RNA-seq",
            "Montage",
            "HEFT",
            "Cuneiform",
            "Galaxy",
            "DAX",
        ] {
            assert!(rendered.contains(needle), "missing {needle}");
        }
    }
}
