//! Figure 6: resource utilization of the potential bottleneck nodes.
//!
//! During the weak-scaling runs, the paper monitors CPU load (`uptime`),
//! I/O device utilization (`iostat`), and network throughput (`ifstat`)
//! on the Hadoop-master VM, the Hi-WAY-AM VM, and one worker. Findings to
//! reproduce: "a steady increase in load across all resources for the
//! Hadoop and Hi-WAY master nodes when repeatedly doubling the workload…
//! all resources are still utilized less than 5 % even when processing
//! one terabyte of data across 128 worker nodes", while "CPU utilization
//! stays close to the maximum of 2.0 on the worker nodes".

use hiway_sim::{NodeId, UsageSample};

use crate::experiments::table2::run_rung;

/// Utilization of the three monitored roles at one cluster size.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    pub workers: usize,
    pub hadoop_master: UsageSample,
    pub hiway_am: UsageSample,
    pub worker: UsageSample,
}

/// Parameters (cluster sizes to sample).
#[derive(Clone, Debug)]
pub struct Fig6Params {
    pub worker_counts: Vec<usize>,
}

impl Default for Fig6Params {
    fn default() -> Fig6Params {
        Fig6Params {
            worker_counts: vec![1, 2, 4, 8, 16, 32, 64, 128],
        }
    }
}

/// Runs the sweep, sampling each node's whole-run average utilization.
pub fn run(params: &Fig6Params) -> Result<Vec<Fig6Row>, String> {
    let mut rows = Vec::new();
    for &workers in &params.worker_counts {
        let (mut runtime, _secs) = run_rung(workers, workers as u64)?;
        let hadoop_master = runtime.cluster.engine.take_usage(NodeId(0)).sample();
        let hiway_am = runtime.cluster.engine.take_usage(NodeId(1)).sample();
        let worker = runtime.cluster.engine.take_usage(NodeId(2)).sample();
        rows.push(Fig6Row {
            workers,
            hadoop_master,
            hiway_am,
            worker,
        });
    }
    Ok(rows)
}

/// Renders the three panels as one table.
pub fn render(rows: &[Fig6Row]) -> String {
    let fmt = |s: &UsageSample| {
        vec![
            format!("{:.3}", s.cpu_load),
            format!("{:.3}", s.io_util),
            format!("{:.2}", s.net_bps() / 1.0e6),
        ]
    };
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![r.workers.to_string()];
            row.extend(fmt(&r.hadoop_master));
            row.extend(fmt(&r.hiway_am));
            row.extend(fmt(&r.worker));
            row
        })
        .collect();
    crate::experiments::common::render_table(
        &[
            "workers", "hdp cpu", "hdp io", "hdp MB/s", "am cpu", "am io", "am MB/s", "wrk cpu",
            "wrk io", "wrk MB/s",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masters_stay_idle_while_workers_saturate() {
        let params = Fig6Params {
            worker_counts: vec![1, 4],
        };
        let rows = run(&params).unwrap();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            // Master CPU load stays below 5% of the node's 2 cores.
            assert!(
                row.hadoop_master.cpu_load < 0.1,
                "hadoop master load {}",
                row.hadoop_master.cpu_load
            );
            assert!(
                row.hiway_am.cpu_load < 0.2,
                "am load {}",
                row.hiway_am.cpu_load
            );
            // Workers are CPU-bound: close to the 2-core ceiling.
            assert!(
                row.worker.cpu_load > 1.5,
                "worker load {}",
                row.worker.cpu_load
            );
            assert!(row.worker.cpu_load <= 2.0 + 1e-9);
        }
        // Master load grows with the cluster.
        assert!(rows[1].hadoop_master.cpu_load >= rows[0].hadoop_master.cpu_load);
    }
}
